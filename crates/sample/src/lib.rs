//! Neighbor sampling for sample-based GNN training (Algorithm 1 of the
//! paper).
//!
//! A mini-batch of training vertices is expanded hop by hop into a stack of
//! [`Block`]s (message-flow graphs). `blocks[0]` is the **bottom** layer —
//! the one whose source vertices read raw features, which the paper shows
//! dominates both computation and transfer volume (§4.1.1, Fig 7) and which
//! NeutronOrch offloads to the CPU.
//!
//! The crate also implements GNNLab-style **pre-sampling** (§4.1.2): before
//! training, sampling is simulated for a few epochs and per-vertex access
//! frequencies are recorded; the resulting hotness ranking drives both
//! NeutronOrch's CPU offloading and the feature-cache baselines.

pub mod batch;
pub mod block;
pub mod fanout;
pub mod full;
pub mod hotness;
pub mod neighbor;
pub mod presample;
pub mod stats;

pub use batch::{BatchIterator, EpochBatches};
pub use block::{Block, BlockParts};
pub use fanout::Fanout;
pub use full::{full_blocks, full_one_hop};
pub use hotness::{HotSet, HotnessRanking};
pub use neighbor::{BlockBuilder, LocalityCounts, NeighborSampler, SamplerScratch};
pub use presample::PreSampler;
pub use stats::SampleStats;
