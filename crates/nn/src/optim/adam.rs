//! Adam optimizer.

use super::Optimizer;
use crate::param::Param;
use neutron_tensor::Matrix;

/// Adam (Kingma & Ba) with bias correction — the optimizer the reference
/// GNN systems default to; used by the convergence experiments' GAT runs.
#[derive(Clone, Debug)]
pub struct Adam {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    t: u64,
    moments: Vec<(Matrix, Matrix)>,
}

impl Adam {
    /// Creates Adam with the standard betas (0.9, 0.999).
    pub fn new(lr: f32) -> Self {
        assert!(lr > 0.0);
        Self {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            t: 0,
            moments: Vec::new(),
        }
    }
}

impl Optimizer for Adam {
    fn step(&mut self, params: &mut [&mut Param]) {
        if self.moments.is_empty() {
            self.moments = params
                .iter()
                .map(|p| {
                    let (r, c) = p.value.shape();
                    (Matrix::zeros(r, c), Matrix::zeros(r, c))
                })
                .collect();
        }
        assert_eq!(
            self.moments.len(),
            params.len(),
            "param list must be stable"
        );
        self.t += 1;
        let b1t = 1.0 - self.beta1.powi(self.t as i32);
        let b2t = 1.0 - self.beta2.powi(self.t as i32);
        for (p, (m, v)) in params.iter_mut().zip(&mut self.moments) {
            for ((w, g), (mm, vv)) in p
                .value
                .as_mut_slice()
                .iter_mut()
                .zip(p.grad.as_slice())
                .zip(m.as_mut_slice().iter_mut().zip(v.as_mut_slice()))
            {
                *mm = self.beta1 * *mm + (1.0 - self.beta1) * g;
                *vv = self.beta2 * *vv + (1.0 - self.beta2) * g * g;
                let m_hat = *mm / b1t;
                let v_hat = *vv / b2t;
                *w -= self.lr * m_hat / (v_hat.sqrt() + self.eps);
            }
        }
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimises_a_quadratic() {
        // f(w) = (w - 3)^2, grad = 2(w - 3).
        let mut p = Param::new(Matrix::from_rows(&[&[0.0]]));
        let mut opt = Adam::new(0.1);
        for _ in 0..500 {
            let w = p.value.get(0, 0);
            p.grad.set(0, 0, 2.0 * (w - 3.0));
            opt.step(&mut [&mut p]);
        }
        assert!(
            (p.value.get(0, 0) - 3.0).abs() < 0.05,
            "got {}",
            p.value.get(0, 0)
        );
    }

    #[test]
    fn first_step_size_is_about_lr() {
        let mut p = Param::new(Matrix::from_rows(&[&[1.0]]));
        p.grad.set(0, 0, 10.0); // any positive gradient
        let mut opt = Adam::new(0.01);
        opt.step(&mut [&mut p]);
        // Bias-corrected first step ≈ lr regardless of gradient magnitude.
        assert!((1.0 - p.value.get(0, 0) - 0.01).abs() < 1e-4);
    }
}
