//! Static GPU/host memory accounting.
//!
//! Memory is not a rate resource: either the working set fits or the run
//! dies with OOM, exactly like the "OOM" cells in Fig 10/11 and Tables 5/6.
//! Orchestrators allocate named regions before an epoch; the ledger rejects
//! over-subscription and reports the peak.

use std::collections::BTreeMap;
use std::fmt;

/// Allocation failure: the device would exceed its capacity.
#[derive(Clone, Debug, PartialEq)]
pub struct OomError {
    /// Region that could not be allocated.
    pub region: String,
    /// Bytes requested for the region.
    pub requested: u64,
    /// Bytes still free when the request arrived.
    pub available: u64,
    /// Device capacity.
    pub capacity: u64,
}

impl fmt::Display for OomError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "OOM allocating '{}': requested {} B, {} B free of {} B",
            self.region, self.requested, self.available, self.capacity
        )
    }
}

impl std::error::Error for OomError {}

/// A named-region memory ledger for one device.
#[derive(Clone, Debug)]
pub struct MemLedger {
    capacity: u64,
    regions: BTreeMap<String, u64>,
}

impl MemLedger {
    /// Ledger over `capacity` bytes.
    pub fn new(capacity: u64) -> Self {
        Self {
            capacity,
            regions: BTreeMap::new(),
        }
    }

    /// Allocates (or grows) a named region. Fails with [`OomError`] if the
    /// total would exceed capacity.
    pub fn alloc(&mut self, region: impl Into<String>, bytes: u64) -> Result<(), OomError> {
        let region = region.into();
        let current = self.regions.get(&region).copied().unwrap_or(0);
        let new_used = self.used() - current + bytes.max(current);
        let grown = bytes.saturating_sub(current);
        if self.used() + grown > self.capacity {
            return Err(OomError {
                region,
                requested: grown,
                available: self.available(),
                capacity: self.capacity,
            });
        }
        let _ = new_used;
        self.regions.insert(region, bytes.max(current));
        Ok(())
    }

    /// Frees a region entirely (no-op if absent).
    pub fn free(&mut self, region: &str) {
        self.regions.remove(region);
    }

    /// Bytes currently used.
    pub fn used(&self) -> u64 {
        self.regions.values().sum()
    }

    /// Bytes still free.
    pub fn available(&self) -> u64 {
        self.capacity - self.used()
    }

    /// Device capacity.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Size of a region (0 if absent).
    pub fn region(&self, name: &str) -> u64 {
        self.regions.get(name).copied().unwrap_or(0)
    }

    /// All regions, name-sorted (deterministic reports).
    pub fn regions(&self) -> impl Iterator<Item = (&str, u64)> {
        self.regions.iter().map(|(k, &v)| (k.as_str(), v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_free_roundtrip() {
        let mut m = MemLedger::new(1000);
        m.alloc("topology", 400).unwrap();
        m.alloc("cache", 500).unwrap();
        assert_eq!(m.used(), 900);
        assert_eq!(m.available(), 100);
        m.free("cache");
        assert_eq!(m.used(), 400);
    }

    #[test]
    fn oversubscription_is_oom_not_panic() {
        let mut m = MemLedger::new(100);
        m.alloc("a", 80).unwrap();
        let err = m.alloc("b", 30).unwrap_err();
        assert_eq!(err.requested, 30);
        assert_eq!(err.available, 20);
        assert!(err.to_string().contains("OOM"));
        // Failed alloc must not corrupt state.
        assert_eq!(m.used(), 80);
    }

    #[test]
    fn regrow_only_charges_the_delta() {
        let mut m = MemLedger::new(100);
        m.alloc("batch", 60).unwrap();
        // Growing the same region to 90 needs 30 more, which fits.
        m.alloc("batch", 90).unwrap();
        assert_eq!(m.used(), 90);
        // Shrinking requests keep the high-water mark (peak accounting).
        m.alloc("batch", 10).unwrap();
        assert_eq!(m.region("batch"), 90);
    }

    #[test]
    fn exact_fit_is_allowed() {
        let mut m = MemLedger::new(50);
        m.alloc("x", 50).unwrap();
        assert_eq!(m.available(), 0);
        assert!(m.alloc("y", 1).is_err());
    }

    #[test]
    fn regions_iterates_sorted() {
        let mut m = MemLedger::new(100);
        m.alloc("b", 1).unwrap();
        m.alloc("a", 2).unwrap();
        let names: Vec<&str> = m.regions().map(|(n, _)| n).collect();
        assert_eq!(names, vec!["a", "b"]);
    }
}
