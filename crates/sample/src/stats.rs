//! Sampled-subgraph statistics — the workload quantities the hardware
//! simulator converts into time (Fig 7's per-layer |V| and dimensions).

use crate::block::Block;
use crate::hotness::HotSet;

/// Per-layer size statistics of one sampled batch.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct LayerStats {
    /// Destination (output) vertices of the layer.
    pub num_dst: usize,
    /// Source (input) vertices of the layer.
    pub num_src: usize,
    /// Sampled edges (excluding implicit self edges).
    pub num_edges: usize,
}

/// Statistics of a full multi-hop sampled batch, bottom layer first.
#[derive(Clone, Debug, Default)]
pub struct SampleStats {
    /// One entry per layer, `layers[0]` = bottom.
    pub layers: Vec<LayerStats>,
    /// Bottom-layer source vertices that are hot (reusable / cacheable).
    pub bottom_hot_src: usize,
    /// Bottom-layer source vertices that are cold (raw feature loads).
    pub bottom_cold_src: usize,
    /// Bottom-layer sampled edges incident to *cold* destinations only —
    /// the aggregation work left on the GPU under layer-based orchestration.
    pub bottom_cold_edges: usize,
}

impl SampleStats {
    /// Measures a sampled batch; `hot` marks vertices whose bottom-layer
    /// embeddings are served from the CPU/HE store or GPU cache.
    pub fn measure(blocks: &[Block], hot: Option<&HotSet>) -> Self {
        let layers: Vec<LayerStats> = blocks
            .iter()
            .map(|b| LayerStats {
                num_dst: b.num_dst(),
                num_src: b.num_src(),
                num_edges: b.num_edges(),
            })
            .collect();
        let mut bottom_hot_src = 0usize;
        let mut bottom_cold_src = 0usize;
        let mut bottom_cold_edges = 0usize;
        if let Some(bottom) = blocks.first() {
            match hot {
                Some(h) => {
                    for &v in bottom.src() {
                        if h.contains(v) {
                            bottom_hot_src += 1;
                        } else {
                            bottom_cold_src += 1;
                        }
                    }
                    for i in 0..bottom.num_dst() {
                        if !h.contains(bottom.dst()[i]) {
                            bottom_cold_edges += bottom.sampled_degree(i);
                        }
                    }
                }
                None => {
                    bottom_cold_src = bottom.num_src();
                    bottom_cold_edges = bottom.num_edges();
                }
            }
        }
        Self {
            layers,
            bottom_hot_src,
            bottom_cold_src,
            bottom_cold_edges,
        }
    }

    /// Total sampled edges across all layers.
    pub fn total_edges(&self) -> usize {
        self.layers.iter().map(|l| l.num_edges).sum()
    }

    /// Total source vertices across all layers (with multiplicity across
    /// layers) — proportional to activation memory during training.
    pub fn total_src(&self) -> usize {
        self.layers.iter().map(|l| l.num_src).sum()
    }

    /// Bottom-layer source count — the raw-feature working set of the batch.
    pub fn bottom_src(&self) -> usize {
        self.layers.first().map_or(0, |l| l.num_src)
    }

    /// Share of all sampled edges that belong to the bottom layer; the
    /// paper's §5.7 reports 59–65% for 3–5-layer models.
    pub fn bottom_edge_share(&self) -> f64 {
        let total = self.total_edges();
        if total == 0 {
            return 0.0;
        }
        self.layers[0].num_edges as f64 / total as f64
    }

    /// Element-wise accumulation (used to average over batches).
    pub fn accumulate(&mut self, other: &SampleStats) {
        if self.layers.is_empty() {
            self.layers = vec![LayerStats::default(); other.layers.len()];
        }
        assert_eq!(self.layers.len(), other.layers.len());
        for (a, b) in self.layers.iter_mut().zip(&other.layers) {
            a.num_dst += b.num_dst;
            a.num_src += b.num_src;
            a.num_edges += b.num_edges;
        }
        self.bottom_hot_src += other.bottom_hot_src;
        self.bottom_cold_src += other.bottom_cold_src;
        self.bottom_cold_edges += other.bottom_cold_edges;
    }

    /// Divides all counters by `n` (integer mean over batches).
    pub fn scale_down(&mut self, n: usize) {
        assert!(n > 0);
        for l in &mut self.layers {
            l.num_dst /= n;
            l.num_src /= n;
            l.num_edges /= n;
        }
        self.bottom_hot_src /= n;
        self.bottom_cold_src /= n;
        self.bottom_cold_edges /= n;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fanout::Fanout;
    use crate::neighbor::NeighborSampler;
    use neutron_graph::generate::{rmat, RmatParams};
    use neutron_sample_test_util::*;

    mod neutron_sample_test_util {
        use neutron_graph::Csr;
        pub fn skewed_graph() -> Csr {
            rmat_graph()
        }
        fn rmat_graph() -> Csr {
            neutron_graph::generate::rmat(
                600,
                9_000,
                neutron_graph::generate::RmatParams::graph500(),
                11,
            )
        }
    }

    #[test]
    fn bottom_layer_dominates_edges_with_paper_fanout() {
        let g = rmat(3000, 60_000, RmatParams::graph500(), 1);
        let s = NeighborSampler::new(Fanout::paper_default(3));
        let blocks = s.sample_batch(&g, &(0..128).collect::<Vec<_>>(), 2);
        let stats = SampleStats::measure(&blocks, None);
        assert!(
            stats.bottom_edge_share() > 0.5,
            "bottom layer should hold most sampled edges, got {:.2}",
            stats.bottom_edge_share()
        );
        assert!(stats.layers[0].num_src >= stats.layers[2].num_src);
    }

    #[test]
    fn hot_split_partitions_bottom_src() {
        let g = skewed_graph();
        let s = NeighborSampler::new(Fanout::new(vec![4, 4]));
        let blocks = s.sample_batch(&g, &(0..64).collect::<Vec<_>>(), 3);
        let counts: Vec<u32> = (0..600).map(|v| g.degree(v) as u32).collect();
        let ranking = crate::hotness::HotnessRanking::from_counts(counts);
        let hot = ranking.hot_set(0.2);
        let stats = SampleStats::measure(&blocks, Some(&hot));
        assert_eq!(
            stats.bottom_hot_src + stats.bottom_cold_src,
            blocks[0].num_src()
        );
        assert!(
            stats.bottom_hot_src > 0,
            "20% hottest should appear in samples"
        );
        assert!(stats.bottom_cold_edges <= blocks[0].num_edges());
    }

    #[test]
    fn accumulate_and_scale_down_average() {
        let mut acc = SampleStats::default();
        let a = SampleStats {
            layers: vec![LayerStats {
                num_dst: 2,
                num_src: 4,
                num_edges: 6,
            }],
            bottom_hot_src: 1,
            bottom_cold_src: 3,
            bottom_cold_edges: 4,
        };
        acc.accumulate(&a);
        acc.accumulate(&a);
        acc.scale_down(2);
        assert_eq!(acc.layers[0], a.layers[0]);
        assert_eq!(acc.bottom_cold_src, 3);
    }
}
