//! The pipelined executor: NeutronOrch's super-batch pipeline (Fig 8) as
//! real multi-threaded concurrency rather than a discrete-event simulation.
//!
//! The stage graph (sample → gather → transfer → train) runs as actual
//! threads connected by bounded channels; since the persistent-engine
//! refactor the machinery lives in [`crate::engine`] and
//! [`PipelineExecutor::run_epoch`] is a thin compatibility wrapper over a
//! one-epoch [`crate::engine::TrainingEngine`] session. Multi-epoch callers
//! should use the engine directly: it spawns the worker pool once per
//! session instead of once per epoch and closes the §4.1.3 occupancy
//! feedback loop between epochs.
//!
//! Determinism: block sampling is seeded by `(config seed, epoch, batch
//! index)` ([`crate::trainer::batch_sample_seed`]) and the train stage
//! consumes batches in epoch order, so the loss trajectory is **bit-identical
//! to the sequential trainer for any thread count** — concurrency changes
//! wall-clock, never results.
//!
//! Staleness: the super-batch boundary runs on the train thread between
//! batches, publishing the refresh prepared during the *previous*
//! super-batch (double buffering, see [`crate::refresh`]); every
//! historical-embedding read observes a version gap `< 2n`, enforced hard
//! by the bounded [`neutron_cache::EmbeddingStore`].

use crate::engine::{transfer_stage, BusyNs, EngineConfig, TrainingEngine};
use crate::gather::{GatheredFeatures, StagedBatch};
use crate::pool::BatchBuffers;
use crate::trainer::{batch_sample_seed, ConvergenceTrainer, EpochObservation};
use neutron_cache::FeatureCache;
use neutron_tensor::alloc::{self, Stage};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Pipelined-executor configuration.
#[derive(Clone, Debug)]
pub struct PipelineConfig {
    /// CPU sampling worker threads (stage 1).
    pub sampler_threads: usize,
    /// CPU feature-gather worker threads (stage 2).
    pub gather_threads: usize,
    /// Capacity of each inter-stage channel, in batches. Bounds memory:
    /// at most `3 * channel_depth + reorder window` batches are in flight.
    pub channel_depth: usize,
    /// Simulated host→device bandwidth in GiB/s; `0.0` disables the
    /// transfer stall (bytes are still accounted). Replica methodology:
    /// compute on the replica is orders of magnitude slower than the
    /// paper's V100, so a faithfully *proportioned* transfer stage scales
    /// PCIe bandwidth down by the same factor (the simulator applies the
    /// identical rule to memory capacities).
    pub h2d_gibps: f64,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        Self {
            sampler_threads: 2,
            gather_threads: 1,
            channel_depth: 4,
            h2d_gibps: 0.0,
        }
    }
}

/// Per-stage busy time and throughput of one pipelined epoch — the measured
/// counterpart of the simulator's [`crate::report::EpochReport`] (same
/// field naming so tables can mix both).
#[derive(Clone, Debug)]
pub struct PipelineReport {
    /// Wall-clock of the epoch, seconds.
    pub epoch_seconds: f64,
    /// Batches executed.
    pub num_batches: usize,
    /// Busy seconds summed across sampling workers.
    pub sample_seconds: f64,
    /// Busy seconds summed across gather workers ("Gather (FC)").
    pub gather_collect_seconds: f64,
    /// Busy seconds of the transfer stage ("Gather (FT)"), including the
    /// simulated stall.
    pub transfer_seconds: f64,
    /// Seconds the train stage spent actually training (wall minus time
    /// blocked waiting for upstream stages).
    pub train_seconds: f64,
    /// Seconds the train stage spent starved, waiting on upstream.
    pub train_wait_seconds: f64,
    /// Host→device bytes the epoch shipped — miss features plus block
    /// structure; cache-resident features never cross the link.
    pub h2d_bytes: u64,
    /// Largest out-of-order reorder buffer the train stage needed.
    pub reorder_peak: usize,
    /// Source vertices whose features were served from the GPU feature
    /// cache this epoch (no host gather, no H2D bytes).
    pub cache_hits: u64,
    /// Source vertices host-gathered and transferred this epoch.
    /// `cache_hits + cache_misses` is the epoch's total gathered vertex
    /// count, invariant across cache budgets.
    pub cache_misses: u64,
    /// Failure/recovery timeline recorded during the epoch: injected
    /// faults, detections and the supervisor's responses, in detection
    /// order. Empty in healthy epochs.
    pub failures: Vec<crate::fault::FailureEvent>,
}

impl PipelineReport {
    /// Epoch throughput in batches per second.
    pub fn batches_per_second(&self) -> f64 {
        self.num_batches as f64 / self.epoch_seconds.max(1e-12)
    }

    /// Fraction of the epoch the train stage was compute-bound (1.0 means
    /// the pipeline kept the trainer perfectly fed). This is the measured
    /// signal the engine feeds back into the §4.1.3 hybrid planner.
    pub fn train_occupancy(&self) -> f64 {
        self.train_seconds / self.epoch_seconds.max(1e-12)
    }
}

/// The single-epoch pipelined executor — a compatibility facade over the
/// persistent [`TrainingEngine`] (see module docs).
pub struct PipelineExecutor {
    config: PipelineConfig,
}

impl PipelineExecutor {
    /// Builds an executor; thread counts must be positive.
    pub fn new(config: PipelineConfig) -> Self {
        assert!(
            config.sampler_threads > 0,
            "need at least one sampler thread"
        );
        assert!(config.gather_threads > 0, "need at least one gather thread");
        Self { config }
    }

    /// The executor's configuration.
    pub fn config(&self) -> &PipelineConfig {
        &self.config
    }

    /// Runs one epoch through the concurrent stage graph. Numerically
    /// identical to `trainer.train_epoch(epoch)` (see module docs).
    ///
    /// Compatibility wrapper: spawns a one-epoch engine session, paying
    /// thread startup per call. Loops over epochs should use
    /// [`TrainingEngine::run_session`] instead.
    pub fn run_epoch(
        &self,
        trainer: &mut ConvergenceTrainer,
        epoch: usize,
    ) -> (EpochObservation, PipelineReport) {
        let engine = TrainingEngine::new(EngineConfig {
            pipeline: self.config.clone(),
            adaptive_split: false,
            gpu_free_bytes: 0,
            ..EngineConfig::default()
        });
        // Time the whole one-epoch session minus test-set evaluation: this
        // compat path pays worker spawn/join *per epoch*, and that overhead
        // is exactly what distinguishes it from a persistent session —
        // hiding it would make the respawn-vs-engine comparison
        // meaningless. Evaluation stays out of the timed region, as always.
        let wall = Instant::now();
        let mut session = engine.run_session(trainer, epoch, 1);
        let mut run = session.epochs.pop().expect("session ran one epoch");
        let epoch_seconds = (wall.elapsed().as_secs_f64() - run.eval_seconds).max(0.0);
        run.report.epoch_seconds = epoch_seconds;
        run.report.train_seconds = (epoch_seconds - run.report.train_wait_seconds).max(0.0);
        (run.observation, run.report)
    }

    /// The unpipelined baseline: the *same* stage costing (including the
    /// simulated transfer stall) executed serially on the calling thread —
    /// the paper's "w/o pipelining" ablation (Fig 14). Comparing
    /// [`Self::run_epoch`] against this isolates the benefit of overlap,
    /// with identical per-batch work on both sides.
    pub fn run_epoch_sequential(
        &self,
        trainer: &mut ConvergenceTrainer,
        epoch: usize,
    ) -> (EpochObservation, PipelineReport) {
        let dataset = trainer.dataset_handle();
        let sampler = trainer.sampler().clone();
        let config_seed = trainer.config().seed;
        let batches = trainer.epoch_batches(epoch);
        let total = batches.len();

        let sample_busy = BusyNs::default();
        let gather_busy = BusyNs::default();
        let transfer_busy = BusyNs::default();
        let h2d_bytes = AtomicU64::new(0);

        // The cache-less baseline runs the *same* cache-keyed gather,
        // transfer costing and device-side assembly as the engine, against
        // an empty cache (all-miss). One shared path means the accounting
        // can never drift between executors. Per-stage alloc tags give the
        // honest allocating "before" numbers the pooled engine is compared
        // against in `BENCH_engine.json`.
        let empty_cache = FeatureCache::empty();
        let mut gathered_vertices = 0u64;
        let wall = Instant::now();
        let items = batches.iter().enumerate().map(|(i, batch)| {
            alloc::set_stage(Stage::Sample);
            let t0 = Instant::now();
            let blocks = sampler.sample_batch(
                &dataset.csr,
                batch,
                batch_sample_seed(config_seed, epoch, i),
            );
            sample_busy.add(t0);
            alloc::set_stage(Stage::Gather);
            let t1 = Instant::now();
            let features = GatheredFeatures::gather(&dataset, &blocks[0], &empty_cache);
            gather_busy.add(t1);
            gathered_vertices += features.num_misses() as u64;
            let item = StagedBatch {
                index: i,
                blocks,
                features,
                bufs: BatchBuffers::new(),
            };
            alloc::set_stage(Stage::Transfer);
            let t2 = Instant::now();
            transfer_stage(&self.config, &item, &h2d_bytes);
            transfer_busy.add(t2);
            alloc::set_stage(Stage::Train);
            item.into_prepared(&empty_cache)
        });
        let prev_stage = alloc::set_stage(Stage::Train);
        let stats = trainer.train_batches(items);
        alloc::set_stage(prev_stage);

        // Same timed region as `run_epoch`: stage graph only, no eval.
        let epoch_seconds = wall.elapsed().as_secs_f64();
        let observation = trainer.observe_epoch(stats);
        let staged = sample_busy.seconds() + gather_busy.seconds() + transfer_busy.seconds();
        let report = PipelineReport {
            epoch_seconds,
            num_batches: total,
            sample_seconds: sample_busy.seconds(),
            gather_collect_seconds: gather_busy.seconds(),
            transfer_seconds: transfer_busy.seconds(),
            train_seconds: (epoch_seconds - staged).max(0.0),
            train_wait_seconds: staged,
            h2d_bytes: h2d_bytes.load(Ordering::Relaxed),
            reorder_peak: 0,
            cache_hits: 0,
            cache_misses: gathered_vertices,
            failures: Vec::new(),
        };
        (observation, report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trainer::{ReusePolicy, TrainerConfig};
    use neutron_graph::DatasetSpec;
    use neutron_nn::LayerKind;

    fn trainer(policy: ReusePolicy) -> ConvergenceTrainer {
        let ds = DatasetSpec::tiny().build_full();
        let mut cfg = TrainerConfig::convergence_default(LayerKind::Gcn, policy);
        cfg.batch_size = 64;
        cfg.lr = 0.5;
        ConvergenceTrainer::new(ds, cfg)
    }

    #[test]
    fn pipelined_epoch_matches_sequential_exactly() {
        let mut seq = trainer(ReusePolicy::Exact);
        let mut pip = trainer(ReusePolicy::Exact);
        let exec = PipelineExecutor::new(PipelineConfig {
            sampler_threads: 3,
            gather_threads: 2,
            channel_depth: 2,
            h2d_gibps: 0.0,
        });
        for epoch in 0..3 {
            let a = seq.train_epoch(epoch);
            let (b, report) = exec.run_epoch(&mut pip, epoch);
            assert_eq!(a.train_loss, b.train_loss, "epoch {epoch} loss diverged");
            assert_eq!(a.test_accuracy, b.test_accuracy);
            assert_eq!(report.num_batches, 4);
            assert!(report.sample_seconds > 0.0);
        }
    }

    #[test]
    fn pipelined_hotness_aware_keeps_staleness_bound() {
        let n = 2;
        let mut t = trainer(ReusePolicy::HotnessAware {
            hot_ratio: 0.3,
            super_batch: n,
        });
        let exec = PipelineExecutor::new(PipelineConfig::default());
        for epoch in 0..4 {
            let (obs, _) = exec.run_epoch(&mut t, epoch);
            assert!(
                obs.max_staleness < 2 * n as u64,
                "gap {} ≥ 2n",
                obs.max_staleness
            );
        }
        assert!(t.embedding_reuses() > 0);
    }

    #[test]
    fn transfer_stall_is_hidden_by_the_pipeline() {
        // With a slow simulated link, the sequential baseline pays the full
        // stall; the pipelined run overlaps it with compute. The tiny
        // dataset's per-epoch compute (<1 ms) is smaller than scheduler
        // noise, so this comparison needs a workload whose overlappable
        // compute dwarfs both engine startup and timing jitter.
        let make = || {
            let ds = DatasetSpec::reddit_convergence().build_full();
            let cfg = TrainerConfig::convergence_default(LayerKind::Gcn, ReusePolicy::Exact);
            ConvergenceTrainer::new(ds, cfg)
        };
        let cfg = PipelineConfig {
            h2d_gibps: 0.2,
            ..PipelineConfig::default()
        };
        let exec = PipelineExecutor::new(cfg);
        // Even so, the whole workspace suite may be running concurrently
        // on this one core, and the pipelined side can lose its slice to a
        // competing test binary. The overlap itself is deterministic, so
        // one fairly-scheduled paired attempt out of three is conclusive.
        let mut attempts = Vec::new();
        for _ in 0..3 {
            let mut seq = make();
            let mut pip = make();
            let (_, seq_report) = exec.run_epoch_sequential(&mut seq, 0);
            let (_, pip_report) = exec.run_epoch(&mut pip, 0);
            assert_eq!(seq_report.h2d_bytes, pip_report.h2d_bytes);
            if pip_report.epoch_seconds < seq_report.epoch_seconds {
                return;
            }
            attempts.push((pip_report.epoch_seconds, seq_report.epoch_seconds));
        }
        panic!("pipelined never beat sequential in 3 paired runs (pip, seq): {attempts:?}");
    }
}
