//! Degree statistics and degree-ordered vertex rankings.

use crate::csr::{Csr, VertexId};

/// Summary statistics of a degree distribution.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DegreeStats {
    pub min: usize,
    pub max: usize,
    pub avg: f64,
    /// Share of all edges held by the top 10% highest-degree vertices; a
    /// cheap skew proxy used to sanity-check replicas against their
    /// real-world counterparts.
    pub top_decile_edge_share: f64,
}

/// Computes [`DegreeStats`] for a graph.
pub fn degree_stats(g: &Csr) -> DegreeStats {
    let n = g.num_vertices();
    if n == 0 {
        return DegreeStats {
            min: 0,
            max: 0,
            avg: 0.0,
            top_decile_edge_share: 0.0,
        };
    }
    let mut degs: Vec<usize> = (0..n).map(|v| g.degree(v as VertexId)).collect();
    let min = *degs.iter().min().unwrap();
    let max = *degs.iter().max().unwrap();
    let total: usize = degs.iter().sum();
    degs.sort_unstable_by(|a, b| b.cmp(a));
    let decile = (n / 10).max(1);
    let top: usize = degs[..decile].iter().sum();
    DegreeStats {
        min,
        max,
        avg: total as f64 / n as f64,
        top_decile_edge_share: if total == 0 {
            0.0
        } else {
            top as f64 / total as f64
        },
    }
}

/// Vertices sorted by descending degree — PaGraph's cache ranking.
pub fn vertices_by_degree_desc(g: &Csr) -> Vec<VertexId> {
    let mut ids: Vec<VertexId> = (0..g.num_vertices() as VertexId).collect();
    ids.sort_by_key(|&v| std::cmp::Reverse(g.degree(v)));
    ids
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::{erdos_renyi, rmat, RmatParams};

    #[test]
    fn stats_on_hand_built_graph() {
        let g = Csr::from_adjacency(vec![vec![1, 2, 3], vec![0], vec![], vec![0]]);
        let s = degree_stats(&g);
        assert_eq!(s.min, 0);
        assert_eq!(s.max, 3);
        assert!((s.avg - 1.25).abs() < 1e-9);
    }

    #[test]
    fn rmat_is_more_skewed_than_er() {
        let r = rmat(2000, 30_000, RmatParams::graph500(), 1);
        let e = erdos_renyi(2000, 30_000, 1);
        assert!(
            degree_stats(&r).top_decile_edge_share > degree_stats(&e).top_decile_edge_share,
            "R-MAT should concentrate edges in hubs"
        );
    }

    #[test]
    fn degree_ranking_is_descending() {
        let g = rmat(500, 5_000, RmatParams::graph500(), 2);
        let order = vertices_by_degree_desc(&g);
        assert_eq!(order.len(), 500);
        for w in order.windows(2) {
            assert!(g.degree(w[0]) >= g.degree(w[1]));
        }
    }

    #[test]
    fn empty_graph_stats() {
        let g = Csr::from_adjacency(vec![]);
        let s = degree_stats(&g);
        assert_eq!(s.max, 0);
        assert_eq!(s.avg, 0.0);
    }
}
