//! Fig 6 — (a) GPU utilization vs batch size, (b) runtime and memory vs
//! batch size, (c) transfer volume and memory vs cache ratio (Wikipedia,
//! 3-layer GCN, DGL-style training).

use crate::util::{fmt_gb, fmt_pct, fmt_secs, render_table};
use crate::Setup;
use neutron_core::baselines::Case1Dgl;
use neutron_core::orchestrator::{Lens, Orchestrator};
use neutron_hetero::HardwareSpec;
use neutron_nn::LayerKind;

/// One batch-size point for panels (a) and (b).
#[derive(Clone, Debug)]
pub struct BatchPoint {
    pub batch_size: usize,
    pub gpu_util: f64,
    pub runtime: f64,
    /// Paper-scale GPU memory bytes.
    pub memory: u64,
}

/// One cache-ratio point for panel (c).
#[derive(Clone, Debug)]
pub struct CachePoint {
    pub cache_ratio: f64,
    /// Paper-scale feature bytes transferred per epoch.
    pub transfer: u64,
    /// Paper-scale cache memory bytes.
    pub memory: u64,
}

/// Panels (a)+(b): batch-size sweep.
pub fn batch_sweep(setup: Setup) -> Vec<BatchPoint> {
    let spec = setup.dataset("Wikipedia");
    let hw = HardwareSpec::v100_server(1.0);
    let sizes: Vec<usize> = match setup {
        Setup::Paper => vec![128, 256, 512, 1024, 2048, 4096, 8192, 10_000],
        Setup::Smoke => vec![128, 512],
    };
    sizes
        .into_iter()
        .map(|bs| {
            let profile = crate::build_profile(setup, &spec, LayerKind::Gcn, 3, bs);
            let lens = Lens::new(&profile);
            let memory = lens.paper_batch_bytes(bs);
            match (Case1Dgl { pipelined: true }).simulate_epoch(&profile, &hw) {
                Ok(r) => BatchPoint {
                    batch_size: bs,
                    gpu_util: r.gpu_util,
                    runtime: r.epoch_seconds,
                    memory,
                },
                // OOM at huge batches: report zero util/time, memory demand.
                Err(_) => BatchPoint {
                    batch_size: bs,
                    gpu_util: 0.0,
                    runtime: f64::NAN,
                    memory,
                },
            }
        })
        .collect()
}

/// Panel (c): cache-ratio sweep at fixed batch size.
pub fn cache_sweep(setup: Setup) -> Vec<CachePoint> {
    let spec = setup.dataset("Wikipedia");
    let profile = crate::build_profile(setup, &spec, LayerKind::Gcn, 3, 1024);
    let ratios = [0.0, 0.05, 0.10, 0.15, 0.20];
    let feat_row = profile.spec.feature_row_bytes();
    ratios
        .iter()
        .map(|&ratio| {
            let k = (ratio * profile.num_vertices as f64).round() as usize;
            let hit = profile.presample_coverage_topk(k);
            // Transfer: misses of every batch's bottom feature load,
            // reported at paper scale.
            let per_epoch: u64 = (0..profile.num_batches)
                .map(|i| {
                    let bytes = profile.stats(i).bottom_src() as u64 * feat_row;
                    ((bytes as f64) * (1.0 - hit)) as u64
                })
                .sum();
            let transfer = (per_epoch as f64 * profile.spec.scale) as u64;
            let memory = (ratio * profile.spec.paper_vertices as f64) as u64 * feat_row;
            CachePoint {
                cache_ratio: ratio,
                transfer,
                memory,
            }
        })
        .collect()
}

/// Renders all three panels.
pub fn run(setup: Setup) -> String {
    let mut out = String::new();
    let rows: Vec<Vec<String>> = batch_sweep(setup)
        .into_iter()
        .map(|p| {
            vec![
                p.batch_size.to_string(),
                fmt_pct(p.gpu_util),
                if p.runtime.is_nan() {
                    "OOM".into()
                } else {
                    fmt_secs(p.runtime)
                },
                fmt_gb(p.memory),
            ]
        })
        .collect();
    out.push_str(&render_table(
        "Fig 6(a,b): batch size vs GPU util / runtime / memory (Wikipedia, GCN)",
        &["batch", "GPU util", "runtime (s)", "memory (GB)"],
        &rows,
    ));
    out.push('\n');
    let rows: Vec<Vec<String>> = cache_sweep(setup)
        .into_iter()
        .map(|p| {
            vec![
                format!("{:.2}", p.cache_ratio),
                fmt_gb(p.transfer),
                fmt_gb(p.memory),
            ]
        })
        .collect();
    out.push_str(&render_table(
        "Fig 6(c): cache ratio vs transfer volume / memory (Wikipedia, GCN)",
        &["cache ratio", "transfer (GB/epoch)", "memory (GB)"],
        &rows,
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gpu_util_and_memory_grow_with_batch_size() {
        let pts = batch_sweep(Setup::Smoke);
        assert!(pts.len() >= 2);
        assert!(
            pts[1].gpu_util >= pts[0].gpu_util,
            "Fig 6a: util grows with batch"
        );
        assert!(
            pts[1].memory > pts[0].memory,
            "Fig 6b: memory grows with batch"
        );
    }

    #[test]
    fn bigger_cache_cuts_transfer_linearly_and_costs_memory() {
        let pts = cache_sweep(Setup::Smoke);
        assert!(
            pts.windows(2).all(|w| w[1].transfer <= w[0].transfer),
            "Fig 6c transfer"
        );
        assert!(
            pts.windows(2).all(|w| w[1].memory >= w[0].memory),
            "Fig 6c memory"
        );
        assert!(pts.last().unwrap().transfer < pts[0].transfer);
    }
}
