//! Discrete-event CPU/GPU/PCIe hardware simulator.
//!
//! The paper's findings are about *resource contention, pipeline overlap and
//! transfer volume* on a V100 + Xeon testbed this reproduction does not
//! have. This crate substitutes a discrete-event simulator whose resources
//! are **processor-sharing capacity pools**:
//!
//! - tasks declare a `demand` (how much of the resource they can use alone)
//!   and a `work` amount (resource-unit-seconds);
//! - concurrent tasks on one resource share its capacity by water-filling,
//!   which is what makes GPU kernel contention (paper Cases 2 and 4) and
//!   PCIe sharing *emerge* rather than being assumed;
//! - dependencies form a DAG, so orchestrators express pipelines as chains
//!   per stage stream (Fig 5);
//! - per-resource busy time yields the utilization numbers of Figs 2 and 15.
//!
//! GPU memory is a separate static [`memory::MemLedger`]: allocations either
//! fit or surface as OOM, reproducing the "OOM" entries of Fig 10/11 and
//! Tables 5/6. Device constants live in [`device`], workload→time conversion
//! in [`cost`].

pub mod cost;
pub mod device;
pub mod engine;
pub mod gantt;
pub mod interconnect;
pub mod memory;

pub use cost::{Cost, CostModel};
pub use device::{DeviceProfile, GpuSpec, HardwareSpec};
pub use engine::{Engine, ResourceId, RunReport, TaskId, TaskKind, TraceSpan};
pub use interconnect::{ring_allreduce_bytes, InterconnectSpec};
pub use memory::{MemLedger, OomError};
