//! Table 3 — the effect of pipelining under CPU-based vs GPU-based
//! sampling (Reddit, 3-layer GCN, batch size 10000).

use crate::util::{fmt_secs, render_table};
use crate::Setup;
use neutron_core::baselines::{Case1Dgl, Case2DglUva};
use neutron_core::Orchestrator;
use neutron_hetero::HardwareSpec;
use neutron_nn::LayerKind;

/// One configuration row of Table 3.
#[derive(Clone, Debug)]
pub struct Table3Row {
    /// "CPU-based sampling" / "GPU-based sampling".
    pub config: &'static str,
    /// Sample seconds (non-pipelined).
    pub sample: f64,
    /// Gather seconds (FC + FT, non-pipelined).
    pub gather: f64,
    /// Train seconds (non-pipelined).
    pub train: f64,
    /// Non-pipelined epoch total.
    pub total: f64,
    /// Pipelined epoch total.
    pub pipelined: f64,
}

/// Computes Table 3.
pub fn data(setup: Setup) -> Vec<Table3Row> {
    let spec = setup.dataset("Reddit");
    // The paper uses bs 10000 on the full 233k-vertex Reddit (≈16 batches);
    // the replica train set holds ~9.5k vertices, so the equivalent
    // multi-batch epoch uses bs 1024 (≈9 batches). With one batch per epoch
    // there would be nothing to pipeline.
    let bs = match setup {
        Setup::Paper => 1024,
        Setup::Smoke => 256,
    };
    let profile = crate::build_profile(setup, &spec, LayerKind::Gcn, 3, bs);
    let hw = HardwareSpec::v100_server(1.0);
    let mut rows = Vec::new();
    {
        let serial = Case1Dgl { pipelined: false }
            .simulate_epoch(&profile, &hw)
            .unwrap();
        let piped = Case1Dgl { pipelined: true }
            .simulate_epoch(&profile, &hw)
            .unwrap();
        rows.push(Table3Row {
            config: "CPU-based sampling",
            sample: serial.sample_seconds,
            gather: serial.gather_seconds(),
            train: serial.train_seconds,
            total: serial.epoch_seconds,
            pipelined: piped.epoch_seconds,
        });
    }
    {
        let serial = Case2DglUva { pipelined: false }
            .simulate_epoch(&profile, &hw)
            .unwrap();
        let piped = Case2DglUva { pipelined: true }
            .simulate_epoch(&profile, &hw)
            .unwrap();
        rows.push(Table3Row {
            config: "GPU-based sampling",
            sample: serial.sample_seconds,
            gather: serial.gather_seconds(),
            train: serial.train_seconds,
            total: serial.epoch_seconds,
            pipelined: piped.epoch_seconds,
        });
    }
    rows
}

/// Renders Table 3.
pub fn run(setup: Setup) -> String {
    let rows: Vec<Vec<String>> = data(setup)
        .into_iter()
        .map(|r| {
            let gain = (1.0 - r.pipelined / r.total) * 100.0;
            vec![
                r.config.to_string(),
                fmt_secs(r.sample),
                fmt_secs(r.gather),
                fmt_secs(r.train),
                fmt_secs(r.total),
                format!("{} (-{:.1}%)", fmt_secs(r.pipelined), gain),
            ]
        })
        .collect();
    render_table(
        "Table 3: pipelining under CPU vs GPU sampling (Reddit, 3-layer GCN)",
        &["Configuration", "S", "G", "T", "Total", "+pipeline"],
        &rows,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pipeline_gain_is_larger_for_cpu_sampling() {
        // The paper's Table 3 finding: pipelining helps CPU-based sampling
        // more (-56.6%) than GPU-based sampling (-43.1%), because GPU
        // sampling contends with training for the same device.
        let rows = data(Setup::Smoke);
        let cpu_gain = 1.0 - rows[0].pipelined / rows[0].total;
        let gpu_gain = 1.0 - rows[1].pipelined / rows[1].total;
        assert!(cpu_gain > 0.0 && gpu_gain >= 0.0);
        assert!(
            cpu_gain > gpu_gain,
            "cpu gain {cpu_gain:.2} should exceed gpu gain {gpu_gain:.2}"
        );
    }

    #[test]
    fn gpu_sampling_is_faster_at_the_sample_step() {
        let rows = data(Setup::Smoke);
        assert!(
            rows[1].sample < rows[0].sample,
            "GPU sampling accelerates S"
        );
    }
}
