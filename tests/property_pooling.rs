//! Property tests of the pooled (buffer-recycling) hot paths introduced
//! with the allocation-free engine: for any seed set, recycled-buffer
//! state and cache membership — including degenerate shapes (empty batch,
//! single vertex, heavily reused dirty buffers) — the pooled sampler and
//! the pooled gather/assembly must be **value-identical** to the
//! allocating paths. Pooling transfers capacity, never contents.

use neutronorch::cache::FeatureCache;
use neutronorch::core::gather::GatheredFeatures;
use neutronorch::core::pool::BatchBuffers;
use neutronorch::graph::dataset::DatasetSpec;
use neutronorch::sample::{Block, BlockBuilder, Fanout, NeighborSampler};
use neutronorch::tensor::Matrix;
use proptest::prelude::*;

fn assert_blocks_match(fresh: &[Block], pooled: &[Block], what: &str) {
    assert_eq!(fresh.len(), pooled.len(), "{what}: layer count");
    for (a, b) in fresh.iter().zip(pooled) {
        assert_eq!(a.dst(), b.dst(), "{what}: dst");
        assert_eq!(a.src(), b.src(), "{what}: src");
        assert_eq!(a.num_edges(), b.num_edges(), "{what}: edges");
        for i in 0..a.num_dst() {
            assert_eq!(a.neighbors_local(i), b.neighbors_local(i), "{what}: adj");
        }
        b.validate().expect(what);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The pooled sampler replays the allocating sampler exactly, with one
    /// builder reused (and re-fed dirty buffers) across a whole run of
    /// randomly sized batches — empty and single-vertex batches included.
    #[test]
    fn pooled_sampler_is_value_identical_on_any_batch_shape(
        seed in 0u64..1000,
        sizes in proptest::collection::vec(0usize..24, 1..6),
    ) {
        let ds = DatasetSpec::tiny().build_topology();
        let n = ds.csr.num_vertices() as u32;
        let sampler = NeighborSampler::new(Fanout::new(vec![4, 3]));
        let mut builder = BlockBuilder::new();
        for (bi, &size) in sizes.iter().enumerate() {
            let seeds: Vec<u32> = (0..size as u32)
                .map(|i| (seed as u32).wrapping_mul(31).wrapping_add(i * 7) % n)
                .collect();
            let s = seed ^ (bi as u64) << 32;
            let fresh = sampler.sample_batch(&ds.csr, &seeds, s);
            let pooled = sampler.sample_batch_pooled(&ds.csr, &seeds, s, &mut builder);
            assert_blocks_match(&fresh, &pooled, &format!("batch {bi} (|seeds|={size})"));
            // Recycle the pooled stack, dirty, into the builder — the next
            // batch must still match the allocating path bit for bit.
            let mut stack = pooled;
            for block in stack.drain(..) {
                builder.donate_parts(block.into_parts());
            }
            builder.donate_stack(stack);
        }
    }

    /// Pooled gather + assembly round-trips through an arbitrarily dirty
    /// buffer bundle and still reproduces the allocating path float for
    /// float, for any cache membership and source set (empty and singleton
    /// included). The spent buffers must fold back into the bundle.
    #[test]
    fn pooled_gather_and_assembly_are_value_identical(
        dim in 1usize..5,
        cached_flags in proptest::collection::vec(any::<bool>(), 16..17),
        src_flags in proptest::collection::vec(any::<bool>(), 16..17),
        stale in proptest::collection::vec(0u32..100, 0..8),
    ) {
        let n = cached_flags.len();
        let mut host = Matrix::zeros(n, dim);
        for v in 0..n {
            let row: Vec<f32> = (0..dim).map(|c| (v * 31 + c) as f32).collect();
            host.copy_row_from(v, &row);
        }
        let cached: Vec<u32> = cached_flags
            .iter()
            .enumerate()
            .filter_map(|(v, &f)| f.then_some(v as u32))
            .collect();
        let cache = FeatureCache::for_vertices(&cached, n, host.as_slice(), dim);
        let src: Vec<u32> = src_flags
            .iter()
            .enumerate()
            .filter_map(|(v, &f)| f.then_some(v as u32))
            .collect();
        let offsets = vec![0u32; src.len() + 1];
        let block = Block::new(src.clone(), src.clone(), offsets, Vec::new());

        // A bundle poisoned with stale garbage of unrelated shapes, reused
        // across both the gather and the assembly.
        let mut bufs = BatchBuffers::new();
        bufs.put_pos(stale.clone());
        bufs.put_f32(stale.iter().map(|&x| x as f32 + 0.5).collect());
        bufs.put_f32(vec![9.25; 3]);

        let want = GatheredFeatures::gather_from(&host, &block, &cache);
        let got = GatheredFeatures::gather_from_pooled(&host, &block, &cache, &mut bufs);
        prop_assert_eq!(got.num_hits(), want.num_hits());
        prop_assert_eq!(got.num_misses(), want.num_misses());
        prop_assert_eq!(got.h2d_feature_bytes(), want.h2d_feature_bytes());

        let want_m = want.assemble(block.src(), &cache);
        let got_m = got.assemble_pooled(block.src(), &cache, &mut bufs);
        prop_assert_eq!(got_m.as_slice(), want_m.as_slice());
        prop_assert_eq!(got_m.shape(), want_m.shape());
        // Both position buffers came back; the all-miss fast path keeps the
        // miss matrix as the result, every other shape returns its f32 buf.
        prop_assert_eq!(bufs.pos_bufs.len(), 2);
        prop_assert!(!bufs.f32_bufs.is_empty());
    }
}
