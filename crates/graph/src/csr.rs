//! Immutable compressed-sparse-row graph storage.

/// Vertex identifier. `u32` keeps CSR buffers compact (the perf-book's
/// "smaller integers" advice); all replica graphs fit comfortably.
pub type VertexId = u32;

/// An immutable directed graph in CSR form.
///
/// `offsets[v]..offsets[v+1]` indexes into `targets`, listing the
/// **incoming** neighbors of `v` — the direction GNN aggregation pulls from
/// (Equation 1 of the paper aggregates over `N_in(v)`). Undirected inputs
/// are stored with both edge directions.
#[derive(Clone, Debug)]
pub struct Csr {
    offsets: Vec<u64>,
    targets: Vec<VertexId>,
}

impl Csr {
    /// Builds a CSR from per-vertex adjacency lists (used by tests and the
    /// builder; prefer [`crate::GraphBuilder`] for edge streams).
    pub fn from_adjacency(adj: Vec<Vec<VertexId>>) -> Self {
        let n = adj.len();
        let mut offsets = Vec::with_capacity(n + 1);
        offsets.push(0u64);
        let total: usize = adj.iter().map(Vec::len).sum();
        let mut targets = Vec::with_capacity(total);
        for list in adj {
            for t in &list {
                assert!((*t as usize) < n, "target {t} out of range (n={n})");
            }
            targets.extend_from_slice(&list);
            offsets.push(targets.len() as u64);
        }
        Self { offsets, targets }
    }

    /// Constructs from raw CSR buffers, validating invariants.
    pub fn from_raw(offsets: Vec<u64>, targets: Vec<VertexId>) -> Self {
        assert!(!offsets.is_empty(), "offsets must have at least one entry");
        assert_eq!(*offsets.first().unwrap(), 0);
        assert_eq!(*offsets.last().unwrap() as usize, targets.len());
        assert!(
            offsets.windows(2).all(|w| w[0] <= w[1]),
            "offsets must be non-decreasing"
        );
        let n = offsets.len() - 1;
        assert!(
            targets.iter().all(|&t| (t as usize) < n),
            "target out of range"
        );
        Self { offsets, targets }
    }

    /// Number of vertices.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of (directed) edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.targets.len()
    }

    /// In-degree of `v`.
    #[inline]
    pub fn degree(&self, v: VertexId) -> usize {
        let v = v as usize;
        (self.offsets[v + 1] - self.offsets[v]) as usize
    }

    /// Incoming neighbors of `v`.
    #[inline]
    pub fn neighbors(&self, v: VertexId) -> &[VertexId] {
        let v = v as usize;
        &self.targets[self.offsets[v] as usize..self.offsets[v + 1] as usize]
    }

    /// Average degree.
    pub fn avg_degree(&self) -> f64 {
        if self.num_vertices() == 0 {
            return 0.0;
        }
        self.num_edges() as f64 / self.num_vertices() as f64
    }

    /// Returns the graph with all edges reversed.
    pub fn reverse(&self) -> Csr {
        let n = self.num_vertices();
        let mut counts = vec![0u64; n + 1];
        for &t in &self.targets {
            counts[t as usize + 1] += 1;
        }
        for i in 0..n {
            counts[i + 1] += counts[i];
        }
        let offsets = counts.clone();
        let mut cursor = counts;
        let mut targets = vec![0 as VertexId; self.targets.len()];
        for v in 0..n {
            for &t in self.neighbors(v as VertexId) {
                let slot = cursor[t as usize];
                targets[slot as usize] = v as VertexId;
                cursor[t as usize] += 1;
            }
        }
        Csr { offsets, targets }
    }

    /// Bytes occupied by the topology buffers. This is what the simulator's
    /// memory ledger charges when a system stores topology on the GPU.
    pub fn topology_bytes(&self) -> u64 {
        (self.offsets.len() * std::mem::size_of::<u64>()
            + self.targets.len() * std::mem::size_of::<VertexId>()) as u64
    }

    /// Iterator over all `(src_of_aggregation, dst)` pairs, i.e. `(u, v)`
    /// where `u ∈ N_in(v)`.
    pub fn edges(&self) -> impl Iterator<Item = (VertexId, VertexId)> + '_ {
        (0..self.num_vertices()).flat_map(move |v| {
            self.neighbors(v as VertexId)
                .iter()
                .map(move |&u| (u, v as VertexId))
        })
    }

    /// Checks structural invariants; used by property tests.
    pub fn validate(&self) -> Result<(), String> {
        if self.offsets.is_empty() {
            return Err("empty offsets".into());
        }
        if self.offsets[0] != 0 {
            return Err("offsets[0] != 0".into());
        }
        if *self.offsets.last().unwrap() as usize != self.targets.len() {
            return Err("last offset != targets.len()".into());
        }
        if !self.offsets.windows(2).all(|w| w[0] <= w[1]) {
            return Err("offsets not monotone".into());
        }
        let n = self.num_vertices();
        if let Some(&t) = self.targets.iter().find(|&&t| t as usize >= n) {
            return Err(format!("target {t} out of range"));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> Csr {
        // 0 -> 1, 0 -> 2, 1 -> 3, 2 -> 3 stored as in-neighbors:
        Csr::from_adjacency(vec![vec![], vec![0], vec![0], vec![1, 2]])
    }

    #[test]
    fn counts_match_structure() {
        let g = diamond();
        assert_eq!(g.num_vertices(), 4);
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.degree(3), 2);
        assert_eq!(g.neighbors(3), &[1, 2]);
        assert_eq!(g.neighbors(0), &[] as &[VertexId]);
    }

    #[test]
    fn reverse_flips_every_edge() {
        let g = diamond();
        let r = g.reverse();
        assert_eq!(r.num_edges(), g.num_edges());
        assert_eq!(r.neighbors(0), &[1, 2]); // 1,2 aggregate from 0
        assert_eq!(r.neighbors(1), &[3]);
        let rr = r.reverse();
        for v in 0..g.num_vertices() {
            let mut a = g.neighbors(v as VertexId).to_vec();
            let mut b = rr.neighbors(v as VertexId).to_vec();
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b);
        }
    }

    #[test]
    fn edges_iterator_yields_all_pairs() {
        let g = diamond();
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(edges.len(), 4);
        assert!(edges.contains(&(0, 1)));
        assert!(edges.contains(&(2, 3)));
    }

    #[test]
    fn validate_accepts_good_graph() {
        assert!(diamond().validate().is_ok());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn from_adjacency_rejects_bad_target() {
        let _ = Csr::from_adjacency(vec![vec![5]]);
    }

    #[test]
    fn topology_bytes_counts_both_buffers() {
        let g = diamond();
        assert_eq!(g.topology_bytes(), (5 * 8 + 4 * 4) as u64);
    }

    #[test]
    fn empty_graph_is_valid() {
        let g = Csr::from_adjacency(vec![]);
        assert_eq!(g.num_vertices(), 0);
        assert_eq!(g.num_edges(), 0);
        assert!(g.validate().is_ok());
        assert_eq!(g.avg_degree(), 0.0);
    }
}
