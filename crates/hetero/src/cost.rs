//! Workload → (work, demand) conversion for the engine.
//!
//! A cost is expressed as the pair the engine wants: `work` in
//! resource-unit-seconds and `demand`, the most units the task can use
//! concurrently. CPU work is in core-seconds (resource capacity = cores);
//! GPU work is in device-seconds at full throughput (capacity = 1.0); link
//! work is in bytes (capacity = bytes/s).

use crate::device::HardwareSpec;

/// A task cost: total `work` and concurrent `demand`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Cost {
    /// Resource-unit-seconds.
    pub work: f64,
    /// Maximum concurrently usable units.
    pub demand: f64,
}

/// Converts workload statistics (edges sampled, bytes moved, FLOPs) into
/// engine costs for a given [`HardwareSpec`].
#[derive(Clone, Debug)]
pub struct CostModel {
    hw: HardwareSpec,
    /// Worker threads the sampling stage may use (DGL-style loader workers).
    pub sample_threads: f64,
    /// Worker threads the feature-collection stage may use.
    pub gather_threads: f64,
}

impl CostModel {
    /// Cost model with the defaults used across the experiments.
    pub fn new(hw: HardwareSpec) -> Self {
        let sample_threads = (hw.cpu.cores / 3.0).max(1.0);
        let gather_threads = (hw.cpu.cores / 3.0).max(1.0);
        Self {
            hw,
            sample_threads,
            gather_threads,
        }
    }

    /// The wrapped hardware.
    pub fn hardware(&self) -> &HardwareSpec {
        &self.hw
    }

    /// CPU neighbor sampling of `edges` sampled edges.
    pub fn cpu_sample(&self, edges: u64) -> Cost {
        let per_core = self.hw.cpu.sample_edges_per_core_sec;
        Cost {
            work: edges as f64 / per_core,
            demand: self.sample_threads,
        }
    }

    /// GPU neighbor sampling of `edges` sampled edges. Sampling kernels are
    /// memory-latency bound and cap at `sample_max_demand` of the device.
    pub fn gpu_sample(&self, edges: u64) -> Cost {
        let demand = self.hw.gpu.sample_max_demand;
        Cost {
            work: edges as f64 / self.hw.gpu.sample_edges_per_sec,
            demand,
        }
    }

    /// Host-side feature collection of `bytes` (random row gather into a
    /// contiguous staging buffer — the "FC" cost of Table 2).
    pub fn cpu_collect(&self, bytes: u64) -> Cost {
        let per_core = self.hw.cpu.gather_bytes_per_core_sec;
        Cost {
            work: bytes as f64 / per_core,
            demand: self.gather_threads,
        }
    }

    /// Host→device transfer of `bytes` over PCIe (the "FT" cost). The
    /// per-transfer latency is folded into work at full bandwidth.
    pub fn pcie_transfer(&self, bytes: u64) -> Cost {
        let bw = self.hw.pcie.bandwidth;
        Cost {
            work: bytes as f64 + self.hw.pcie.latency * bw,
            demand: bw,
        }
    }

    /// Zero-copy (UVA) access of `bytes` over PCIe: same volume, lower
    /// effective bandwidth because accesses are fine-grained (DGL-UVA).
    pub fn uva_transfer(&self, bytes: u64) -> Cost {
        let bw = self.hw.pcie.bandwidth;
        // Fine-grained access reaches ~60% of streaming bandwidth.
        Cost {
            work: bytes as f64 / 0.6 + self.hw.pcie.latency * bw,
            demand: bw,
        }
    }

    /// GPU training over `flops` with kernels launched over `rows` rows —
    /// demand follows the occupancy curve, so small batches both run longer
    /// and leave the device under-utilised (Fig 6a).
    pub fn gpu_train(&self, flops: u64, rows: u64) -> Cost {
        let demand = self.hw.gpu_efficiency(rows as f64);
        Cost {
            work: flops as f64 / self.hw.gpu.flops,
            demand,
        }
    }

    /// CPU dense compute of `flops` over `cores` cores (bottom-layer
    /// embedding computation in NeutronOrch).
    pub fn cpu_compute(&self, flops: u64, cores: f64) -> Cost {
        let cores = cores.min(self.hw.cpu.cores).max(1.0);
        Cost {
            work: flops as f64 / self.hw.cpu.flops_per_core,
            demand: cores,
        }
    }

    /// GPU↔GPU synchronisation of `bytes` (gradient all-reduce). Uses
    /// NVLink when present, PCIe otherwise.
    pub fn gpu_sync(&self, bytes: u64) -> Cost {
        match self.hw.nvlink {
            Some(link) => Cost {
                work: bytes as f64 + link.latency * link.bandwidth,
                demand: link.bandwidth,
            },
            None => self.pcie_transfer(bytes),
        }
    }

    /// Seconds a cost takes running alone on a resource with `capacity`.
    pub fn solo_seconds(cost: Cost, capacity: f64) -> f64 {
        cost.work / cost.demand.min(capacity)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::HardwareSpec;

    fn model() -> CostModel {
        CostModel::new(HardwareSpec::v100_server(1.0))
    }

    #[test]
    fn gpu_sampling_is_much_faster_than_cpu() {
        let m = model();
        let edges = 10_000_000u64;
        let cpu = CostModel::solo_seconds(m.cpu_sample(edges), m.hardware().cpu.cores);
        let gpu = CostModel::solo_seconds(m.gpu_sample(edges), 1.0);
        assert!(gpu < cpu, "gpu {gpu} vs cpu {cpu}");
    }

    #[test]
    fn transfer_cost_scales_linearly_plus_latency() {
        let m = model();
        let one = m.pcie_transfer(1_000_000);
        let ten = m.pcie_transfer(10_000_000);
        assert!(ten.work > 9.0 * one.work && ten.work < 10.0 * one.work);
    }

    #[test]
    fn uva_is_slower_per_byte_than_bulk_transfer() {
        let m = model();
        let bytes = 50_000_000u64;
        assert!(m.uva_transfer(bytes).work > m.pcie_transfer(bytes).work);
    }

    #[test]
    fn small_batches_train_slower_per_flop() {
        let m = model();
        let flops = 1_000_000_000u64;
        let small = CostModel::solo_seconds(m.gpu_train(flops, 128), 1.0);
        let large = CostModel::solo_seconds(m.gpu_train(flops, 10_000), 1.0);
        assert!(small > 2.0 * large, "small {small} vs large {large}");
    }

    #[test]
    fn cpu_compute_clamps_to_available_cores() {
        let m = model();
        let c = m.cpu_compute(1_000_000, 10_000.0);
        assert_eq!(c.demand, m.hardware().cpu.cores);
    }

    #[test]
    fn nvlink_sync_beats_pcie_sync() {
        let single = CostModel::new(HardwareSpec::v100_server(1.0));
        let multi = CostModel::new(HardwareSpec::dgx1_like(8, 1.0));
        let bytes = 100_000_000u64;
        let over_pcie =
            CostModel::solo_seconds(single.gpu_sync(bytes), single.hardware().pcie.bandwidth);
        let over_nvlink = CostModel::solo_seconds(
            multi.gpu_sync(bytes),
            multi.hardware().nvlink.unwrap().bandwidth,
        );
        assert!(over_nvlink < over_pcie);
    }
}
