//! Integration tests of the pipelined executor: determinism versus the
//! sequential trainer, determinism across thread counts, and the §4.2.2
//! staleness bound under real concurrency.

use neutronorch::core::pipeline::{PipelineConfig, PipelineExecutor};
use neutronorch::core::trainer::{ConvergenceTrainer, ReusePolicy, TrainerConfig};
use neutronorch::graph::DatasetSpec;
use neutronorch::nn::LayerKind;

fn trainer(policy: ReusePolicy) -> ConvergenceTrainer {
    let ds = DatasetSpec::tiny().build_full();
    let mut cfg = TrainerConfig::convergence_default(LayerKind::Gcn, policy);
    cfg.batch_size = 48;
    cfg.lr = 0.4;
    ConvergenceTrainer::new(ds, cfg)
}

fn executor(sampler_threads: usize, gather_threads: usize) -> PipelineExecutor {
    PipelineExecutor::new(PipelineConfig {
        sampler_threads,
        gather_threads,
        channel_depth: 3,
        h2d_gibps: 0.0,
    })
}

/// Under `ReusePolicy::Exact` the pipelined executor must reproduce the
/// sequential trainer's loss trajectory bit-for-bit: sampling is seeded per
/// `(seed, epoch, batch index)` and the train stage is in-order, so
/// concurrency may never change results.
#[test]
fn pipelined_exact_matches_sequential_loss_trajectory() {
    let mut seq = trainer(ReusePolicy::Exact);
    let mut pip = trainer(ReusePolicy::Exact);
    let exec = executor(3, 2);
    for epoch in 0..4 {
        let a = seq.train_epoch(epoch);
        let (b, report) = exec.run_epoch(&mut pip, epoch);
        assert_eq!(a.train_loss, b.train_loss, "epoch {epoch}: loss diverged");
        assert_eq!(
            a.test_accuracy, b.test_accuracy,
            "epoch {epoch}: accuracy diverged"
        );
        assert_eq!(a.max_staleness, 0);
        assert_eq!(b.max_staleness, 0);
        assert!(
            report.num_batches > 1,
            "tiny replica should have several batches"
        );
    }
}

/// The trajectory is also invariant to the *amount* of concurrency.
#[test]
fn pipelined_trajectory_is_deterministic_across_thread_counts() {
    let mut narrow = trainer(ReusePolicy::Exact);
    let mut wide = trainer(ReusePolicy::Exact);
    let one = executor(1, 1);
    let many = executor(4, 3);
    for epoch in 0..3 {
        let (a, _) = one.run_epoch(&mut narrow, epoch);
        let (b, _) = many.run_epoch(&mut wide, epoch);
        assert_eq!(
            a.train_loss, b.train_loss,
            "epoch {epoch}: thread count changed loss"
        );
        assert_eq!(a.test_accuracy, b.test_accuracy);
    }
}

/// Under `HotnessAware` the super-batch barrier still runs on the train
/// thread, so every observed version gap stays `< 2n` no matter how many
/// stage workers run concurrently; embeddings must actually be reused.
#[test]
fn pipelined_hotness_aware_observes_staleness_bound() {
    let n = 2usize;
    let mut t = trainer(ReusePolicy::HotnessAware {
        hot_ratio: 0.3,
        super_batch: n,
    });
    let exec = executor(3, 2);
    let mut max_staleness = 0;
    for epoch in 0..6 {
        let (obs, _) = exec.run_epoch(&mut t, epoch);
        max_staleness = max_staleness.max(obs.max_staleness);
        assert!(
            obs.max_staleness < 2 * n as u64,
            "epoch {epoch}: observed gap {} ≥ 2n = {}",
            obs.max_staleness,
            2 * n
        );
    }
    assert!(
        t.embedding_reuses() > 0,
        "hot embeddings must actually be reused"
    );
    assert!(
        max_staleness > 0,
        "bound test is vacuous if no gap was ever observed"
    );
}

/// The report must account every batch and every transferred byte, and the
/// stage-busy breakdown must be populated.
#[test]
fn pipeline_report_accounts_stages_and_bytes() {
    let mut t = trainer(ReusePolicy::Exact);
    let exec = executor(2, 1);
    let (_, report) = exec.run_epoch(&mut t, 0);
    let expected_batches = t.epoch_batches(0).len();
    assert_eq!(report.num_batches, expected_batches);
    assert!(report.sample_seconds > 0.0);
    assert!(report.gather_collect_seconds > 0.0);
    assert!(
        report.h2d_bytes > 0,
        "feature + block bytes must be accounted"
    );
    assert!(report.batches_per_second() > 0.0);
    assert!(report.train_occupancy() <= 1.0 + 1e-9);
    // Sequential baseline over the same work ships the same bytes.
    let mut s = trainer(ReusePolicy::Exact);
    let (_, seq) = exec.run_epoch_sequential(&mut s, 0);
    assert_eq!(seq.h2d_bytes, report.h2d_bytes);
}
