//! Seeded weight initializers.
//!
//! Everything stochastic in the workspace takes an explicit `u64` seed so
//! experiments are bit-for-bit reproducible.

use crate::matrix::Matrix;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Uniform init in `[lo, hi)`.
pub fn uniform(rows: usize, cols: usize, lo: f32, hi: f32, seed: u64) -> Matrix {
    assert!(lo < hi, "empty range");
    let mut rng = StdRng::seed_from_u64(seed);
    let data = (0..rows * cols).map(|_| rng.random_range(lo..hi)).collect();
    Matrix::from_vec(rows, cols, data)
}

/// Xavier/Glorot uniform init: `U(±sqrt(6/(fan_in+fan_out)))`.
///
/// Used for GCN and GraphSAGE weights, matching the reference
/// implementations the paper compares against.
pub fn xavier_uniform(fan_in: usize, fan_out: usize, seed: u64) -> Matrix {
    let bound = (6.0 / (fan_in + fan_out) as f32).sqrt();
    uniform(fan_in, fan_out, -bound, bound, seed)
}

/// Kaiming/He uniform init: `U(±sqrt(6/fan_in))`; used ahead of ReLU.
pub fn kaiming_uniform(fan_in: usize, fan_out: usize, seed: u64) -> Matrix {
    let bound = (6.0 / fan_in.max(1) as f32).sqrt();
    uniform(fan_in, fan_out, -bound, bound, seed)
}

/// Standard normal init scaled by `std`; used for GAT attention vectors.
pub fn normal(rows: usize, cols: usize, std: f32, seed: u64) -> Matrix {
    let mut rng = StdRng::seed_from_u64(seed);
    // Box-Muller transform; rand's distributions module is avoided to keep
    // the dependency surface minimal.
    let mut data = Vec::with_capacity(rows * cols);
    while data.len() < rows * cols {
        let u1: f32 = rng.random_range(f32::EPSILON..1.0);
        let u2: f32 = rng.random_range(0.0..1.0);
        let r = (-2.0f32 * u1.ln()).sqrt();
        let theta = 2.0 * std::f32::consts::PI * u2;
        data.push(r * theta.cos() * std);
        if data.len() < rows * cols {
            data.push(r * theta.sin() * std);
        }
    }
    Matrix::from_vec(rows, cols, data)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_respects_bounds_and_seed() {
        let a = uniform(10, 10, -0.5, 0.5, 42);
        assert!(a.as_slice().iter().all(|&v| (-0.5..0.5).contains(&v)));
        let b = uniform(10, 10, -0.5, 0.5, 42);
        assert_eq!(a, b, "same seed must reproduce identical matrices");
        let c = uniform(10, 10, -0.5, 0.5, 43);
        assert_ne!(a, c, "different seeds should differ");
    }

    #[test]
    fn xavier_bound_shrinks_with_width() {
        let narrow = xavier_uniform(4, 4, 1);
        let wide = xavier_uniform(1024, 1024, 1);
        assert!(narrow.max_abs() > wide.max_abs());
        let bound = (6.0f32 / 2048.0).sqrt();
        assert!(wide.max_abs() <= bound);
    }

    #[test]
    fn normal_has_plausible_moments() {
        let m = normal(200, 50, 1.0, 7);
        let n = m.len() as f32;
        let mean: f32 = m.as_slice().iter().sum::<f32>() / n;
        let var: f32 = m
            .as_slice()
            .iter()
            .map(|v| (v - mean) * (v - mean))
            .sum::<f32>()
            / n;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "var {var}");
    }
}
