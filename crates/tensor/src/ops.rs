//! Matrix multiplication variants and element-wise arithmetic.
//!
//! The three matmul flavours (`A·B`, `Aᵀ·B`, `A·Bᵀ`) cover every product
//! needed by the GNN forward/backward passes without materialising explicit
//! transposes. The inner loops live in [`crate::kernels`] as chunked,
//! autovectorization-friendly slice kernels (see that module for the
//! profile-guided design notes); this module owns shape checking, row
//! parallelism via [`crate::parallel::for_each_row_chunk`], and the
//! [`crate::timing`] hooks.

use crate::kernels;
use crate::matrix::Matrix;
use crate::parallel::for_each_row_chunk;
use crate::timing::{self, Kernel};

/// `C = A · B` where `A: m×k`, `B: k×n`.
///
/// Note the former `a_val == 0.0` skip branch is gone: microbenching showed
/// it losing on both dense feature rows and ReLU-sparse activations at GNN
/// hidden widths (see `crate::kernels` module docs and `BENCH_kernels.json`).
pub fn matmul(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(
        a.cols(),
        b.rows(),
        "matmul: inner dims {} vs {}",
        a.cols(),
        b.rows()
    );
    let t0 = timing::start();
    let (m, k) = a.shape();
    let n = b.cols();
    let mut c = Matrix::zeros(m, n);
    let a_data = a.as_slice();
    let b_data = b.as_slice();
    for_each_row_chunk(c.as_mut_slice(), n, m, |row0, rows| {
        kernels::matmul_rows(rows, row0, a_data, b_data, k, n);
    });
    timing::stop(Kernel::Matmul, t0);
    c
}

/// `C = Aᵀ · B` where `A: k×m`, `B: k×n` → `C: m×n`.
///
/// Used for weight gradients: `∇W = Hᵀ · δ`. Stays sequential over `k` —
/// `m`/`n` are hidden dims, too small for row parallelism — but the k loop
/// is unrolled by [`kernels::K_UNROLL`] so one pass over each `C` row fuses
/// four outer-product updates.
pub fn matmul_at_b(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(
        a.rows(),
        b.rows(),
        "matmul_at_b: A rows {} vs B rows {}",
        a.rows(),
        b.rows()
    );
    let t0 = timing::start();
    let (k, m) = a.shape();
    let n = b.cols();
    let mut c = Matrix::zeros(m, n);
    kernels::matmul_at_b_acc(c.as_mut_slice(), a.as_slice(), b.as_slice(), k, m, n);
    timing::stop(Kernel::MatmulAtB, t0);
    c
}

/// `C = A · Bᵀ` where `A: m×k`, `B: n×k` → `C: m×n`.
///
/// Used for input gradients: `∇H = δ · Wᵀ`. Each output element is a
/// multi-accumulator chunked [`kernels::dot`] — the single biggest kernel
/// win in the workspace (~3.4× over the latency-bound scalar loop).
pub fn matmul_a_bt(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(
        a.cols(),
        b.cols(),
        "matmul_a_bt: A cols {} vs B cols {}",
        a.cols(),
        b.cols()
    );
    let t0 = timing::start();
    let (m, k) = a.shape();
    let n = b.rows();
    let mut c = Matrix::zeros(m, n);
    let a_data = a.as_slice();
    let b_data = b.as_slice();
    for_each_row_chunk(c.as_mut_slice(), n, m, |row0, rows| {
        kernels::matmul_a_bt_rows(rows, row0, a_data, b_data, k, n);
    });
    timing::stop(Kernel::MatmulABt, t0);
    c
}

/// `out = a + b` (element-wise).
pub fn add(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(a.shape(), b.shape());
    let mut out = a.clone();
    add_assign(&mut out, b);
    out
}

/// `a += b` (element-wise).
pub fn add_assign(a: &mut Matrix, b: &Matrix) {
    assert_eq!(a.shape(), b.shape());
    for (x, y) in a.as_mut_slice().iter_mut().zip(b.as_slice()) {
        *x += y;
    }
}

/// `a += alpha * b` (axpy).
pub fn add_scaled_assign(a: &mut Matrix, alpha: f32, b: &Matrix) {
    assert_eq!(a.shape(), b.shape());
    for (x, y) in a.as_mut_slice().iter_mut().zip(b.as_slice()) {
        *x += alpha * y;
    }
}

/// `out = a - b` (element-wise).
pub fn sub(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(a.shape(), b.shape());
    let mut out = a.clone();
    for (x, y) in out.as_mut_slice().iter_mut().zip(b.as_slice()) {
        *x -= y;
    }
    out
}

/// `out = a ⊙ b` (Hadamard product).
pub fn hadamard(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(a.shape(), b.shape());
    let mut out = a.clone();
    for (x, y) in out.as_mut_slice().iter_mut().zip(b.as_slice()) {
        *x *= y;
    }
    out
}

/// `a *= alpha` (in place).
pub fn scale_assign(a: &mut Matrix, alpha: f32) {
    for x in a.as_mut_slice() {
        *x *= alpha;
    }
}

/// `out = alpha * a`.
pub fn scale(a: &Matrix, alpha: f32) -> Matrix {
    let mut out = a.clone();
    scale_assign(&mut out, alpha);
    out
}

/// Adds a 1×n bias row to every row of `a`.
pub fn add_bias_row(a: &mut Matrix, bias: &Matrix) {
    assert_eq!(bias.rows(), 1);
    assert_eq!(bias.cols(), a.cols());
    let b = bias.row(0).to_vec();
    for r in 0..a.rows() {
        for (x, y) in a.row_mut(r).iter_mut().zip(&b) {
            *x += y;
        }
    }
}

/// Sums the rows of `a` into a 1×n matrix (gradient of a broadcast bias).
pub fn sum_rows(a: &Matrix) -> Matrix {
    let mut out = Matrix::zeros(1, a.cols());
    for r in 0..a.rows() {
        let row = a.row(r);
        for (o, v) in out.row_mut(0).iter_mut().zip(row) {
            *o += v;
        }
    }
    out
}

/// Naive triple-loop matmul used as the reference in tests and benches.
pub fn matmul_naive(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(a.cols(), b.rows());
    let (m, k) = a.shape();
    let n = b.cols();
    let mut c = Matrix::zeros(m, n);
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0.0;
            for kk in 0..k {
                acc += a.get(i, kk) * b.get(kk, j);
            }
            c.set(i, j, acc);
        }
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init;

    fn random(rows: usize, cols: usize, seed: u64) -> Matrix {
        init::uniform(rows, cols, -1.0, 1.0, seed)
    }

    #[test]
    fn matmul_matches_naive() {
        let a = random(17, 9, 1);
        let b = random(9, 13, 2);
        assert!(matmul(&a, &b).approx_eq(&matmul_naive(&a, &b), crate::TEST_EPS));
    }

    #[test]
    fn matmul_identity_is_noop() {
        let a = random(6, 6, 3);
        assert!(matmul(&a, &Matrix::eye(6)).approx_eq(&a, crate::TEST_EPS));
        assert!(matmul(&Matrix::eye(6), &a).approx_eq(&a, crate::TEST_EPS));
    }

    #[test]
    fn matmul_at_b_equals_explicit_transpose() {
        let a = random(11, 5, 4);
        let b = random(11, 7, 5);
        let expect = matmul_naive(&a.transpose(), &b);
        assert!(matmul_at_b(&a, &b).approx_eq(&expect, crate::TEST_EPS));
    }

    #[test]
    fn matmul_a_bt_equals_explicit_transpose() {
        let a = random(8, 5, 6);
        let b = random(10, 5, 7);
        let expect = matmul_naive(&a, &b.transpose());
        assert!(matmul_a_bt(&a, &b).approx_eq(&expect, crate::TEST_EPS));
    }

    #[test]
    fn elementwise_ops_behave() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[10.0, 20.0], &[30.0, 40.0]]);
        assert_eq!(add(&a, &b).row(1), &[33.0, 44.0]);
        assert_eq!(sub(&b, &a).row(0), &[9.0, 18.0]);
        assert_eq!(hadamard(&a, &b).row(0), &[10.0, 40.0]);
        assert_eq!(scale(&a, 2.0).row(1), &[6.0, 8.0]);
    }

    #[test]
    fn axpy_accumulates() {
        let mut a = Matrix::zeros(1, 3);
        let b = Matrix::from_rows(&[&[1.0, 2.0, 3.0]]);
        add_scaled_assign(&mut a, 0.5, &b);
        add_scaled_assign(&mut a, 0.5, &b);
        assert!(a.approx_eq(&b, 1e-6));
    }

    #[test]
    fn bias_row_add_and_gradient() {
        let mut a = Matrix::zeros(3, 2);
        let bias = Matrix::from_rows(&[&[1.0, -1.0]]);
        add_bias_row(&mut a, &bias);
        assert_eq!(a.row(2), &[1.0, -1.0]);
        let g = sum_rows(&a);
        assert_eq!(g.row(0), &[3.0, -3.0]);
    }

    #[test]
    fn matmul_with_large_row_count_exercises_parallel_path() {
        let a = random(600, 16, 8);
        let b = random(16, 8, 9);
        assert!(matmul(&a, &b).approx_eq(&matmul_naive(&a, &b), crate::TEST_EPS));
    }
}
