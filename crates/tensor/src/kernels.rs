//! Explicit-width, autovectorization-friendly slice kernels, plus the
//! retained scalar references they are property-tested against.
//!
//! Every inner loop of the workspace used to be a straight scalar `f32`
//! walk; the `xtask profile --timing` breakdown showed the three matmul
//! flavours and the feature row gather dominating host compute, so this
//! module rewrites them as chunked kernels shaped for the compiler's
//! vectorizer (fixed-width lane arrays, no cross-lane dependencies, no
//! per-element branches). Design choices are profile-guided — measured on
//! the CI replica (1-core Xeon, SSE2 baseline codegen), recorded in
//! `BENCH_kernels.json` and re-checked by `xtask bench-diff`:
//!
//! - **Dot products** (`matmul_a_bt`): a single-accumulator reduction is a
//!   loop-carried dependency the vectorizer must preserve (float addition
//!   is not associative), so the scalar loop runs at 1 element/cycle. Eight
//!   independent lane accumulators break the chain — ~3.4x measured.
//! - **Axpy-style rows** (`matmul`, `matmul_at_b`): the inner loop already
//!   vectorizes (no reduction), so the win comes from unrolling the outer
//!   `k` loop by 4: one pass over the output row fuses four row updates,
//!   quartering the out-row load/store traffic — ~1.2-1.5x measured.
//! - **Row gather**: `Matrix::zeros` + per-row copy touches every output
//!   byte twice (zero fill, then copy). Appending into reserved capacity
//!   touches it once — ~1.4x measured at Reddit-replica shapes.
//! - **Scatter-add**: the element-wise `zip` add *already* vectorizes;
//!   a hand-chunked rewrite measured 0.3-1.1x (slower to equal), so the
//!   "chunked" path keeps the zip loop and only hoists the per-row slicing.
//! - **`a_val == 0.0` skip branches** (previously in `matmul` and
//!   `matmul_at_b`): measured a *loss* on both dense feature rows (extra
//!   compare per element) and ReLU-sparse activations (~50% zeros:
//!   392us dense-noskip vs 452us sparse-skip at 512x128x64 — branch
//!   mispredicts outweigh the skipped axpys at GNN hidden widths). Removed
//!   everywhere; see `BENCH_kernels.json` (`zero_skip_*` entries) for the
//!   numbers backing the decision.
//!
//! Precision: the k-unroll and the lane accumulators change summation
//! *order*, so matmul results may differ from the references by a few ULP
//! (bounded by the usual `O(k·eps)` dot-product error either way). Gather,
//! scatter-add and copy kernels reorder nothing and stay bit-exact.
//! Determinism is unaffected: for a given shape the order is fixed, so
//! sequential-vs-pipelined bit-identity holds — both executors share these
//! kernels.

/// Lane width of the dot-product accumulator block. Eight f32 lanes = two
/// SSE2 vectors (or one AVX vector), enough independent chains to hide FMA
/// latency on the baseline target.
pub const DOT_LANES: usize = 8;

/// Outer-loop unroll factor of the axpy-style matmul kernels.
pub const K_UNROLL: usize = 4;

/// Chunked dot product: `Σ a[i]·b[i]` with [`DOT_LANES`] independent
/// accumulators. Panics if lengths differ (debug); excess of `a` beyond
/// `b.len()` is ignored in release, matching `zip` semantics.
#[inline]
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    let whole = a.len() / DOT_LANES * DOT_LANES;
    let (a_head, a_tail) = a.split_at(whole);
    let (b_head, b_tail) = b.split_at(whole);
    let mut lanes = [0.0f32; DOT_LANES];
    for (ca, cb) in a_head
        .chunks_exact(DOT_LANES)
        .zip(b_head.chunks_exact(DOT_LANES))
    {
        for (lane, (&x, &y)) in lanes.iter_mut().zip(ca.iter().zip(cb)) {
            *lane += x * y;
        }
    }
    // Pairwise lane fold: fixed order, independent of input length.
    let mut acc = ((lanes[0] + lanes[4]) + (lanes[2] + lanes[6]))
        + ((lanes[1] + lanes[5]) + (lanes[3] + lanes[7]));
    for (&x, &y) in a_tail.iter().zip(b_tail) {
        acc += x * y;
    }
    acc
}

/// `out[i] += x[i]` — the element-wise accumulate shared by scatter-add and
/// the GNN aggregation paths. A plain zip: measured as fast as (dim 602) or
/// faster than (dim 64) hand-chunked variants, because the vectorizer
/// already handles non-reducing element-wise loops.
#[inline]
pub fn add_assign_slice(out: &mut [f32], x: &[f32]) {
    debug_assert_eq!(out.len(), x.len());
    for (o, &v) in out.iter_mut().zip(x) {
        *o += v;
    }
}

/// `out[i] += alpha * x[i]` (axpy over slices).
#[inline]
pub fn axpy(out: &mut [f32], alpha: f32, x: &[f32]) {
    debug_assert_eq!(out.len(), x.len());
    for (o, &v) in out.iter_mut().zip(x) {
        *o += alpha * v;
    }
}

/// Row gather into reserved capacity: appends `rows[i] = src[indices[i]]`
/// to `out` without zero-filling first. `src` is row-major with `dim`
/// columns; every index must be `< src.len() / dim`.
#[inline]
pub fn gather_rows_into(out: &mut Vec<f32>, src: &[f32], dim: usize, indices: &[usize]) {
    out.reserve(indices.len() * dim);
    for &i in indices {
        out.extend_from_slice(&src[i * dim..(i + 1) * dim]);
    }
}

/// [`gather_rows_into`] over `u32` vertex ids — the id width the sampling
/// layer produces, so callers no longer widen every index into a fresh
/// `Vec<usize>` before gathering.
#[inline]
pub fn gather_rows_u32_into(out: &mut Vec<f32>, src: &[f32], dim: usize, indices: &[u32]) {
    out.reserve(indices.len() * dim);
    for &i in indices {
        let i = i as usize;
        out.extend_from_slice(&src[i * dim..(i + 1) * dim]);
    }
}

/// One-hop indirect row gather: appends `rows[r] = src[ids[positions[r]]]`
/// to `out`. This fuses the `positions -> ids -> row` mapping the
/// cache-keyed gather used to materialise as a temporary index vector per
/// batch; bit-identical to gathering the collected indices.
#[inline]
pub fn gather_rows_mapped_into(
    out: &mut Vec<f32>,
    src: &[f32],
    dim: usize,
    ids: &[u32],
    positions: &[u32],
) {
    out.reserve(positions.len() * dim);
    for &p in positions {
        let i = ids[p as usize] as usize;
        out.extend_from_slice(&src[i * dim..(i + 1) * dim]);
    }
}

/// Scatter-add of `src`'s rows into rows `indices[i]` of `out` (row-major,
/// `dim` columns each). Duplicate destinations accumulate in `indices`
/// order, exactly like the scalar reference.
#[inline]
pub fn scatter_add_rows(out: &mut [f32], dim: usize, indices: &[usize], src: &[f32]) {
    debug_assert_eq!(src.len(), indices.len() * dim);
    if dim == 0 {
        return;
    }
    for (row, &d) in src.chunks_exact(dim).zip(indices) {
        add_assign_slice(&mut out[d * dim..(d + 1) * dim], row);
    }
}

/// `C[r0.., :] += A[r0.., :] · B` over the row range covered by `c_rows`
/// (a `rows x n` row-major chunk starting at absolute row `r0`). The
/// per-chunk body of [`crate::ops::matmul`]: k-unrolled axpy accumulation,
/// no zero-skip branch (see module docs).
pub fn matmul_rows(c_rows: &mut [f32], r0: usize, a: &[f32], b: &[f32], k: usize, n: usize) {
    if n == 0 {
        return;
    }
    let k_whole = k / K_UNROLL * K_UNROLL;
    for (local_r, out_row) in c_rows.chunks_exact_mut(n).enumerate() {
        let a_row = &a[(r0 + local_r) * k..(r0 + local_r + 1) * k];
        let mut kk = 0;
        while kk < k_whole {
            let (a0, a1, a2, a3) = (a_row[kk], a_row[kk + 1], a_row[kk + 2], a_row[kk + 3]);
            let (b0, rest) = b[kk * n..].split_at(n);
            let (b1, rest) = rest.split_at(n);
            let (b2, rest) = rest.split_at(n);
            let b3 = &rest[..n];
            for (j, o) in out_row.iter_mut().enumerate() {
                *o += (a0 * b0[j] + a1 * b1[j]) + (a2 * b2[j] + a3 * b3[j]);
            }
            kk += K_UNROLL;
        }
        while kk < k {
            axpy(out_row, a_row[kk], &b[kk * n..(kk + 1) * n]);
            kk += 1;
        }
    }
}

/// `C[r0.., :] = A[r0.., :] · Bᵀ` over the row range covered by `c_rows`,
/// where `B` is `n x k` row-major. The per-chunk body of
/// [`crate::ops::matmul_a_bt`]: one chunked [`dot`] per output element.
pub fn matmul_a_bt_rows(c_rows: &mut [f32], r0: usize, a: &[f32], b: &[f32], k: usize, n: usize) {
    if n == 0 {
        return;
    }
    for (local_r, out_row) in c_rows.chunks_exact_mut(n).enumerate() {
        let a_row = &a[(r0 + local_r) * k..(r0 + local_r + 1) * k];
        for (j, o) in out_row.iter_mut().enumerate() {
            *o = dot(a_row, &b[j * k..(j + 1) * k]);
        }
    }
}

/// `C += Aᵀ · B` where `A: k x m`, `B: k x n`, `C: m x n` (all row-major).
/// Processes [`K_UNROLL`] outer products per pass over `C`, fusing four
/// row updates into one load/store of each `C` row.
pub fn matmul_at_b_acc(c: &mut [f32], a: &[f32], b: &[f32], k: usize, m: usize, n: usize) {
    if m == 0 || n == 0 {
        return;
    }
    let k_whole = k / K_UNROLL * K_UNROLL;
    let mut kk = 0;
    while kk < k_whole {
        let (a0, a_rest) = a[kk * m..].split_at(m);
        let (a1, a_rest) = a_rest.split_at(m);
        let (a2, a_rest) = a_rest.split_at(m);
        let a3 = &a_rest[..m];
        let (b0, b_rest) = b[kk * n..].split_at(n);
        let (b1, b_rest) = b_rest.split_at(n);
        let (b2, b_rest) = b_rest.split_at(n);
        let b3 = &b_rest[..n];
        for (i, c_row) in c.chunks_exact_mut(n).enumerate() {
            let (v0, v1, v2, v3) = (a0[i], a1[i], a2[i], a3[i]);
            for (j, o) in c_row.iter_mut().enumerate() {
                *o += (v0 * b0[j] + v1 * b1[j]) + (v2 * b2[j] + v3 * b3[j]);
            }
        }
        kk += K_UNROLL;
    }
    while kk < k {
        let a_row = &a[kk * m..(kk + 1) * m];
        let b_row = &b[kk * n..(kk + 1) * n];
        for (i, c_row) in c.chunks_exact_mut(n).enumerate() {
            axpy(c_row, a_row[i], b_row);
        }
        kk += 1;
    }
}

/// The retained scalar reference kernels. These are the pre-optimisation
/// implementations, kept verbatim so the chunked kernels can be
/// property-tested (and benchmarked) against them forever. Do not "fix" or
/// speed these up: their value is being obviously correct and slow.
pub mod reference {
    /// Naive triple-loop `C = A·B` (`A: m x k`, `B: k x n`).
    pub fn matmul(a: &[f32], b: &[f32], m: usize, k: usize, n: usize) -> Vec<f32> {
        let mut c = vec![0.0f32; m * n];
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0.0f32;
                for kk in 0..k {
                    acc += a[i * k + kk] * b[kk * n + j];
                }
                c[i * n + j] = acc;
            }
        }
        c
    }

    /// Sequential outer-product `C = Aᵀ·B` (`A: k x m`, `B: k x n`) — the
    /// pre-optimisation `matmul_at_b` loop, minus the measured-off
    /// zero-skip branch.
    pub fn matmul_at_b(a: &[f32], b: &[f32], k: usize, m: usize, n: usize) -> Vec<f32> {
        let mut c = vec![0.0f32; m * n];
        for kk in 0..k {
            let a_row = &a[kk * m..(kk + 1) * m];
            let b_row = &b[kk * n..(kk + 1) * n];
            for (i, &av) in a_row.iter().enumerate() {
                for (cv, &bv) in c[i * n..(i + 1) * n].iter_mut().zip(b_row) {
                    *cv += av * bv;
                }
            }
        }
        c
    }

    /// Single-accumulator `C = A·Bᵀ` (`A: m x k`, `B: n x k`) — the
    /// latency-bound loop the chunked [`super::dot`] replaces.
    pub fn matmul_a_bt(a: &[f32], b: &[f32], m: usize, k: usize, n: usize) -> Vec<f32> {
        let mut c = vec![0.0f32; m * n];
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0.0f32;
                for (&x, &y) in a[i * k..(i + 1) * k].iter().zip(&b[j * k..(j + 1) * k]) {
                    acc += x * y;
                }
                c[i * n + j] = acc;
            }
        }
        c
    }

    /// Zero-fill-then-copy row gather.
    pub fn gather_rows(src: &[f32], dim: usize, indices: &[usize]) -> Vec<f32> {
        let mut out = vec![0.0f32; indices.len() * dim];
        for (r, &i) in indices.iter().enumerate() {
            out[r * dim..(r + 1) * dim].copy_from_slice(&src[i * dim..(i + 1) * dim]);
        }
        out
    }

    /// Per-element scatter-add.
    pub fn scatter_add_rows(out: &mut [f32], dim: usize, indices: &[usize], src: &[f32]) {
        for (r, &d) in indices.iter().enumerate() {
            for c in 0..dim {
                out[d * dim + c] += src[r * dim + c];
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seq(n: usize) -> Vec<f32> {
        (0..n).map(|i| (i as f32 * 0.37).sin()).collect()
    }

    #[test]
    fn dot_matches_reference_within_ulp_slack() {
        for len in [0, 1, 7, 8, 9, 16, 23, 64, 101] {
            let a = seq(len);
            let b: Vec<f32> = seq(len).iter().map(|v| v * 1.3 - 0.2).collect();
            let want: f32 = a.iter().zip(&b).map(|(x, y)| x * y).sum();
            let got = dot(&a, &b);
            assert!(
                (want - got).abs() <= 1e-5 * (1.0 + want.abs()),
                "len {len}: {want} vs {got}"
            );
        }
    }

    #[test]
    fn gather_is_bit_exact_and_skips_zero_fill() {
        let src = seq(7 * 3);
        let idx = [6usize, 0, 3, 3];
        let want = reference::gather_rows(&src, 3, &idx);
        let mut got = Vec::new();
        gather_rows_into(&mut got, &src, 3, &idx);
        assert_eq!(want, got);
    }

    #[test]
    fn u32_and_mapped_gathers_match_the_collected_index_path() {
        let src = seq(9 * 4);
        let ids: Vec<u32> = vec![8, 2, 5, 0, 5];
        let positions: Vec<u32> = vec![4, 0, 2];
        let widened: Vec<usize> = ids.iter().map(|&v| v as usize).collect();
        let want = reference::gather_rows(&src, 4, &widened);
        let mut got = Vec::new();
        gather_rows_u32_into(&mut got, &src, 4, &ids);
        assert_eq!(want, got);

        let collected: Vec<usize> = positions
            .iter()
            .map(|&p| ids[p as usize] as usize)
            .collect();
        let want = reference::gather_rows(&src, 4, &collected);
        let mut got = vec![7.0f32]; // mapped gather appends after existing content
        gather_rows_mapped_into(&mut got, &src, 4, &ids, &positions);
        assert_eq!(got[0], 7.0);
        assert_eq!(&got[1..], &want[..]);

        let mut empty = Vec::new();
        gather_rows_mapped_into(&mut empty, &src, 4, &ids, &[]);
        gather_rows_u32_into(&mut empty, &[], 0, &[0, 3]);
        assert!(empty.is_empty());
    }

    #[test]
    fn scatter_add_is_bit_exact_with_duplicates() {
        let src = seq(4 * 5);
        let idx = [2usize, 0, 2, 1];
        let mut want = seq(3 * 5);
        let mut got = want.clone();
        reference::scatter_add_rows(&mut want, 5, &idx, &src);
        scatter_add_rows(&mut got, 5, &idx, &src);
        assert_eq!(want, got);
    }

    #[test]
    fn zero_dim_rows_are_noops() {
        let mut out: Vec<f32> = Vec::new();
        scatter_add_rows(&mut out, 0, &[0, 1, 2], &[]);
        let mut gathered = Vec::new();
        gather_rows_into(&mut gathered, &[], 0, &[0, 5, 9]);
        assert!(out.is_empty() && gathered.is_empty());
    }

    #[test]
    fn matmul_rows_covers_unroll_boundaries() {
        for k in [1usize, 3, 4, 5, 8, 11] {
            let (m, n) = (3usize, 5usize);
            let a = seq(m * k);
            let b = seq(k * n);
            let want = reference::matmul(&a, &b, m, k, n);
            let mut got = vec![0.0f32; m * n];
            matmul_rows(&mut got, 0, &a, &b, k, n);
            for (w, g) in want.iter().zip(&got) {
                assert!((w - g).abs() <= 1e-5 * (1.0 + w.abs()), "k={k}");
            }
        }
    }

    #[test]
    fn at_b_acc_covers_unroll_boundaries() {
        for k in [1usize, 2, 4, 6, 8, 9] {
            let (m, n) = (4usize, 3usize);
            let a = seq(k * m);
            let b = seq(k * n);
            let want = reference::matmul_at_b(&a, &b, k, m, n);
            let mut got = vec![0.0f32; m * n];
            matmul_at_b_acc(&mut got, &a, &b, k, m, n);
            for (w, g) in want.iter().zip(&got) {
                assert!((w - g).abs() <= 1e-5 * (1.0 + w.abs()), "k={k}");
            }
        }
    }

    #[test]
    fn a_bt_rows_matches_reference() {
        let (m, k, n) = (3usize, 19usize, 4usize);
        let a = seq(m * k);
        let b = seq(n * k);
        let want = reference::matmul_a_bt(&a, &b, m, k, n);
        let mut got = vec![0.0f32; m * n];
        matmul_a_bt_rows(&mut got, 0, &a, &b, k, n);
        for (w, g) in want.iter().zip(&got) {
            assert!((w - g).abs() <= 1e-5 * (1.0 + w.abs()));
        }
    }
}
