//! Multi-epoch training through the persistent [`TrainingEngine`]: one
//! worker pool for the whole run, super-batch refreshes overlapped on a
//! dedicated worker, and the §4.1.3 hybrid split re-planned every epoch
//! from measured train-stage occupancy.
//!
//! ```text
//! cargo run --release --example engine_multi_epoch
//! ```
//!
//! Three executors run the *same* training trajectory (bit-identical loss,
//! asserted below):
//!
//! 1. `sequential` — the unpipelined baseline, every stage on one thread;
//! 2. `respawn` — `PipelineExecutor::run_epoch` per epoch, which spawns
//!    and joins the stage workers every call;
//! 3. `engine` — one `TrainingEngine` session: workers spawned once,
//!    parked on the generation-stamped epoch gate between epochs, refresh
//!    on its own worker, adaptive split on.
//!
//! Replica methodology: as in `pipeline_executor.rs`, the simulated PCIe
//! link is calibrated so transfer ≈ 50% of measured compute (the Fig 2
//! Case-1 regime); the identical stall applies to all three executors.
//! No timing assertions — the container is single-core and shared; the
//! numbers are recorded in `BENCH_engine.json` for trajectory tracking.
//!
//! Transfer-volume ablation (Fig 6c/Fig 13): the engine run gives the
//! hybrid planner a real GPU cache budget, so its `h2d_bytes_per_epoch`
//! drops below the cache-less respawn run's from epoch 1 on (epoch 0 runs
//! before the first plan and ships the full volume — byte accounting is
//! deterministic, so that equality is asserted, as is the saving).

use neutronorch::core::engine::{EngineConfig, TrainingEngine};
use neutronorch::core::pipeline::{PipelineConfig, PipelineExecutor};
use neutronorch::core::refresh::RefreshTask;
use neutronorch::core::replica::{ReplicatedConfig, ReplicatedEngine};
use neutronorch::core::trainer::{ConvergenceTrainer, ReusePolicy, TrainerConfig};
use neutronorch::graph::DatasetSpec;
use neutronorch::hetero::InterconnectSpec;
use neutronorch::nn::layers::Layer;
use neutronorch::nn::LayerKind;
use neutronorch::tensor::{alloc, timing};
use std::time::Instant;

/// PR 3's committed warm-epoch means, kept as the cross-PR reference point.
/// The CI box is one shared core with ~2x cross-run noise, so the speedup
/// this run records against them is indicative, not a gate — `xtask
/// bench-diff` gates same-run invariants only.
const PR3_ENGINE_WARM_MEAN_SECONDS: f64 = 0.1389;
const PR3_RESPAWN_WARM_MEAN_SECONDS: f64 = 0.1226;

const EPOCHS: usize = 8;
const SUPER_BATCH: usize = 2;
const SAMPLER_THREADS: usize = 2;
const GATHER_THREADS: usize = 1;
/// Engine-session checkpoint cadence: every other epoch, so the bench
/// measures the write cost (`checkpoint_*_per_epoch` series) on the same
/// run the determinism asserts cover.
const CHECKPOINT_EVERY: usize = 2;

fn trainer(spec: &DatasetSpec) -> ConvergenceTrainer {
    let config = TrainerConfig {
        kind: LayerKind::Gcn,
        layers: 2,
        batch_size: 256,
        lr: 0.2,
        seed: 0xe4e,
        policy: ReusePolicy::HotnessAware {
            hot_ratio: 0.2,
            super_batch: SUPER_BATCH,
        },
    };
    ConvergenceTrainer::new(spec.build_full(), config)
}

fn fmt_series(xs: &[f64]) -> String {
    let inner: Vec<String> = xs.iter().map(|x| format!("{x:.4}")).collect();
    format!("[{}]", inner.join(", "))
}

fn fmt_series_u64(xs: &[u64]) -> String {
    let inner: Vec<String> = xs.iter().map(|x| x.to_string()).collect();
    format!("[{}]", inner.join(", "))
}

fn main() {
    // Reddit-conv scaled 2x in vertices (4x in edges): big enough that
    // per-epoch times dominate timer noise, small enough for a CI smoke run.
    let mut spec = DatasetSpec::reddit_convergence();
    spec.vertices = 8_000;
    spec.edges = 640_000;
    println!(
        "building {} replica (|V|={}, {} feature dims, {} epochs)...",
        spec.name, spec.vertices, spec.feature_dim, EPOCHS
    );

    // --- Calibration: one pure-compute epoch (no transfer stall). -------
    let mut cal = trainer(&spec);
    let calibrate = PipelineExecutor::new(PipelineConfig {
        sampler_threads: 1,
        gather_threads: 1,
        channel_depth: 4,
        h2d_gibps: 0.0,
    });
    let (_, compute) = calibrate.run_epoch_sequential(&mut cal, 0);
    let h2d_gibps = compute.h2d_bytes as f64 / (0.5 * compute.epoch_seconds) / (1u64 << 30) as f64;
    println!(
        "calibration: compute epoch {:.2}s, {:.1} MiB h2d -> simulated link {:.3} GiB/s\n",
        compute.epoch_seconds,
        compute.h2d_bytes as f64 / (1u64 << 20) as f64,
        h2d_gibps
    );
    let pipeline = PipelineConfig {
        sampler_threads: SAMPLER_THREADS,
        gather_threads: GATHER_THREADS,
        channel_depth: 4,
        h2d_gibps,
    };

    // --- Heap-allocation telemetry. Counters only move when a counting
    // global allocator is installed (`--features count-allocs` — the CI
    // configuration); the JSON records which it was so all-zero series are
    // never mistaken for an allocation-free run.
    let alloc_counting = alloc::counting_installed();
    alloc::reset();
    alloc::set_enabled(true);

    // --- Mode 1: sequential reference (also the determinism oracle). Its
    // per-epoch staging allocations (sample+gather+transfer, allocating
    // code paths) are the "before" the pooled engine is compared against.
    let exec = PipelineExecutor::new(pipeline.clone());
    let mut seq_trainer = trainer(&spec);
    let mut seq_secs = Vec::with_capacity(EPOCHS);
    let mut seq_loss = Vec::with_capacity(EPOCHS);
    let mut seq_staging_allocs: Vec<u64> = Vec::with_capacity(EPOCHS);
    for epoch in 0..EPOCHS {
        let before = alloc::snapshot();
        let (obs, report) = exec.run_epoch_sequential(&mut seq_trainer, epoch);
        seq_staging_allocs.push(alloc::snapshot().since(&before).staging_allocs());
        seq_secs.push(report.epoch_seconds);
        seq_loss.push(obs.train_loss);
    }

    // --- Mode 2: compat path — respawn workers every epoch. This run has
    // no cache budget, so its per-epoch h2d_bytes are also the cache-less
    // transfer-volume baseline for the Fig 6c ablation.
    let mut respawn_trainer = trainer(&spec);
    let mut respawn_secs = Vec::with_capacity(EPOCHS);
    let mut nocache_h2d = Vec::with_capacity(EPOCHS);
    for (epoch, &want_loss) in seq_loss.iter().enumerate() {
        let (obs, report) = exec.run_epoch(&mut respawn_trainer, epoch);
        respawn_secs.push(report.epoch_seconds);
        nocache_h2d.push(report.h2d_bytes);
        assert_eq!(
            obs.train_loss, want_loss,
            "respawn executor diverged at epoch {epoch}"
        );
    }

    // --- Mode 3: persistent engine, adaptive split active with a real GPU
    // cache budget (EWMA-smoothed occupancy, hysteresis on the installed
    // split — EngineConfig defaults).
    let config = EngineConfig {
        pipeline,
        adaptive_split: true,
        gpu_free_bytes: 64 << 20,
        checkpoint_every: CHECKPOINT_EVERY,
        checkpoint_path: Some("target/bench_checkpoint.ck".into()),
        ..EngineConfig::default()
    };
    let (budget, alpha, hysteresis) = (
        config.gpu_free_bytes,
        config.occupancy_ewma_alpha,
        config.split_hysteresis,
    );
    let refresh_workers = config.effective_refresh_workers();
    let engine = TrainingEngine::new(config);
    let mut engine_trainer = trainer(&spec);
    // Per-kernel attribution for the engine run (the tensor timing hooks
    // are pure observers — the bit-identity asserts below still hold).
    timing::reset();
    timing::set_enabled(true);
    let session = engine.run_session(&mut engine_trainer, 0, EPOCHS);
    timing::set_enabled(false);
    alloc::set_enabled(false);
    let kernel_snapshot = timing::snapshot();
    println!(
        "engine session: {} workers spawned once ({:.4}s startup) for {} generations\n",
        session.workers_spawned, session.startup_seconds, session.generations
    );
    println!(
        "epoch  sequential  respawn   engine   occup  cpu_frac  cached  h2d_MiB (vs nocache)  loss"
    );
    for (e, run) in session.epochs.iter().enumerate() {
        assert_eq!(
            run.observation.train_loss, seq_loss[e],
            "engine diverged at epoch {e}"
        );
        assert!(
            run.observation.max_staleness < 2 * SUPER_BATCH as u64,
            "staleness bound violated"
        );
        assert!(
            run.report.h2d_bytes <= nocache_h2d[e],
            "epoch {e}: the cache may only remove transferred bytes"
        );
        println!(
            "{e:>5}  {:>9.2}s {:>7.2}s {:>7.2}s  {:>5.2}  {:>8.2}  {:>6}  {:>7.1} ({:>5.1})  {:.4}",
            seq_secs[e],
            respawn_secs[e],
            run.report.epoch_seconds,
            run.report.train_occupancy(),
            run.refresh_cpu_fraction,
            run.cache_vertices,
            run.report.h2d_bytes as f64 / (1u64 << 20) as f64,
            nocache_h2d[e] as f64 / (1u64 << 20) as f64,
            run.observation.train_loss,
        );
    }
    let engine_h2d = session.h2d_bytes_trajectory();
    // Byte accounting is deterministic (it depends only on the seeded
    // sampling and the cache contents), so these are hard assertions, not
    // timing-dependent expectations: epoch 0 runs before the first plan and
    // ships the full volume; once the plan installs, the cache must save
    // measurable bytes overall.
    assert_eq!(
        engine_h2d[0], nocache_h2d[0],
        "epoch 0 runs cold (no plan yet): volumes must match"
    );
    assert!(
        engine_h2d.iter().sum::<u64>() < nocache_h2d.iter().sum::<u64>(),
        "a nonzero cache budget must reduce total transferred bytes"
    );
    let engine_secs: Vec<f64> = session
        .epochs
        .iter()
        .map(|r| r.report.epoch_seconds)
        .collect();
    let traj = session.cpu_fraction_trajectory();
    let warm = |xs: &[f64]| xs[1..].iter().sum::<f64>() / (xs.len() - 1) as f64;
    println!(
        "\nepoch 1 (cold) vs mean of epochs 2..{EPOCHS} (warm): engine {:.2}s -> {:.2}s, respawn {:.2}s -> {:.2}s",
        engine_secs[0],
        warm(&engine_secs),
        respawn_secs[0],
        warm(&respawn_secs),
    );
    println!(
        "adaptive CPU-refresh share trajectory: {}",
        fmt_series(&traj)
    );
    let saved = nocache_h2d.iter().sum::<u64>() - engine_h2d.iter().sum::<u64>();
    println!(
        "GPU feature cache cut transfers by {:.1} MiB ({:.1}% of the cache-less volume)",
        saved as f64 / (1u64 << 20) as f64,
        100.0 * saved as f64 / nocache_h2d.iter().sum::<u64>() as f64,
    );
    println!(
        "loss trajectory identical across all three executors (asserted): {}",
        fmt_series(&seq_loss.iter().map(|&l| l as f64).collect::<Vec<_>>())
    );

    // --- Refresh sharding: serial vs sharded on the engine's own hot-set
    // share. Shards are contiguous sub-partitions of a partition-stable
    // task, so the rows must match bit-for-bit (asserted); the timing pair
    // records what sharding buys on this machine (min of 3 — on a
    // single-core runner the honest answer is ~1x).
    let hot_share = (spec.vertices as f64 * 0.2) as u32;
    let refresh_task = RefreshTask::new(
        engine_trainer.dataset_handle(),
        Layer::new(
            LayerKind::Gcn,
            spec.feature_dim,
            spec.hidden_dim,
            false,
            0xe4e,
        ),
        engine_trainer.sampler().clone(),
        (0..hot_share).collect(),
        engine_trainer.sampler().fanout().at(0),
        0,
        0x5b,
    );
    let time_min3 = |f: &dyn Fn() -> neutronorch::core::refresh::RefreshOutput| {
        let mut best = f64::INFINITY;
        let mut out = None;
        for _ in 0..3 {
            let t0 = Instant::now();
            let o = f();
            best = best.min(t0.elapsed().as_secs_f64());
            out = Some(o);
        }
        (best, out.unwrap())
    };
    let (serial_secs, serial_out) = time_min3(&|| refresh_task.run());
    let (sharded_secs, sharded_out) = time_min3(&|| refresh_task.run_sharded(refresh_workers));
    assert_eq!(
        serial_out.rows, sharded_out.rows,
        "sharded refresh must be bit-identical to serial"
    );
    let refresh_speedup = serial_secs / sharded_secs.max(1e-12);
    println!(
        "refresh sharding ({} vertices, {} workers): serial {:.4}s, sharded {:.4}s ({:.2}x)",
        hot_share, refresh_workers, serial_secs, sharded_secs, refresh_speedup
    );
    // --- Metadata-overhead telemetry: staging-stage heap allocations of
    // the allocating sequential baseline vs the pooled engine, per warm
    // epoch. With counting off (no `count-allocs` feature) both read 0 and
    // the JSON's `alloc_counting: false` says why.
    let engine_staging_allocs: Vec<u64> = session
        .epochs
        .iter()
        .map(|r| r.allocs.staging_allocs())
        .collect();
    let warm_u64 = |xs: &[u64]| xs[1..].iter().sum::<u64>() as f64 / (xs.len() - 1) as f64;
    if alloc_counting {
        println!("\nstaging-stage heap allocations per epoch (sample+gather+transfer):");
        println!("  sequential (allocating): {:?}", seq_staging_allocs);
        println!("  engine (pooled):         {:?}", engine_staging_allocs);
        println!(
            "  warm-epoch means: sequential {:.1}, engine {:.1} ({:.0}x fewer)",
            warm_u64(&seq_staging_allocs),
            warm_u64(&engine_staging_allocs),
            warm_u64(&seq_staging_allocs) / warm_u64(&engine_staging_allocs).max(1.0),
        );
        println!("  engine per-stage allocs/bytes, warm epochs:");
        for (si, name) in alloc::STAGES.iter().map(|s| s.name()).enumerate() {
            let a: u64 = session.epochs[1..]
                .iter()
                .map(|r| r.allocs.stats[si].allocs)
                .sum();
            let b: u64 = session.epochs[1..]
                .iter()
                .map(|r| r.allocs.stats[si].bytes)
                .sum();
            println!(
                "    {name:<10} {:>10.1} allocs/epoch  {:>12.0} B/epoch",
                a as f64 / (EPOCHS - 1) as f64,
                b as f64 / (EPOCHS - 1) as f64
            );
        }
    } else {
        println!(
            "\n(no counting allocator installed — rerun with --features count-allocs for alloc telemetry)"
        );
    }

    // --- Checkpoint overhead telemetry: the session wrote a checkpoint
    // after every CHECKPOINT_EVERY-th epoch; the write cost is measured
    // outside the epoch's timed window, so it's reported (and gated in
    // `xtask bench-diff`) as its own series.
    let ck_bytes: Vec<u64> = session.epochs.iter().map(|r| r.checkpoint_bytes).collect();
    let ck_secs: Vec<f64> = session
        .epochs
        .iter()
        .map(|r| r.checkpoint_seconds)
        .collect();
    let writes: Vec<f64> = ck_secs.iter().copied().filter(|&s| s > 0.0).collect();
    assert!(
        !writes.is_empty(),
        "the engine session must have written checkpoints"
    );
    let ck_mean = writes.iter().sum::<f64>() / writes.len() as f64;
    println!(
        "checkpoints: {} writes of {} B, mean {:.4}s each ({:.1}% of the warm-epoch mean)",
        writes.len(),
        ck_bytes.iter().copied().max().unwrap_or(0),
        ck_mean,
        100.0 * ck_mean / warm(&engine_secs),
    );

    println!(
        "warm epochs vs PR 3 baseline: engine {:.4}s vs {:.4}s ({:.2}x), respawn {:.4}s vs {:.4}s ({:.2}x)",
        warm(&engine_secs),
        PR3_ENGINE_WARM_MEAN_SECONDS,
        PR3_ENGINE_WARM_MEAN_SECONDS / warm(&engine_secs),
        warm(&respawn_secs),
        PR3_RESPAWN_WARM_MEAN_SECONDS,
        PR3_RESPAWN_WARM_MEAN_SECONDS / warm(&respawn_secs),
    );

    // --- Data-parallel replicas over the hash-partitioned graph. --------
    // R=1 must reproduce the sequential trajectory bit-for-bit (asserted:
    // one partition owns everything, gradient averaging degenerates to the
    // identity). R=2 runs twice — locality-aware and locality-blind
    // sampling — to measure what preferring partition-local neighbors
    // saves on the simulated inter-replica interconnect (ethernet-class,
    // priced separately from the PCIe H2D link above).
    alloc::set_enabled(true);
    let replicated = |replicas: usize, locality_aware: bool| {
        let engine = ReplicatedEngine::new(ReplicatedConfig {
            pipeline: PipelineConfig {
                sampler_threads: 1,
                gather_threads: 1,
                channel_depth: 4,
                h2d_gibps,
            },
            replicas,
            locality_aware,
            gpu_free_bytes: 64 << 20,
            interconnect: InterconnectSpec::ethernet_like(),
            ..ReplicatedConfig::default()
        });
        let mut t = trainer(&spec);
        engine.run_session(&mut t, 0, EPOCHS)
    };
    let r1 = replicated(1, true);
    for (e, run) in r1.epochs.iter().enumerate() {
        assert_eq!(
            run.observation.train_loss, seq_loss[e],
            "R=1 replicated engine diverged at epoch {e}"
        );
        assert_eq!(run.allreduce_bytes, 0, "R=1 never all-reduces");
        assert_eq!(
            run.remote_feature_bytes, 0,
            "one partition has no remote vertices"
        );
    }
    const REPLICAS: usize = 2;
    let r2 = replicated(REPLICAS, true);
    let r2_blind = replicated(REPLICAS, false);
    alloc::set_enabled(false);
    println!(
        "\nreplicated engine (R={REPLICAS}, ethernet-class interconnect, partition cut {:.2}, balance {:.2}):",
        r2.partition_cut_fraction, r2.partition_balance
    );
    println!("epoch  steps  allreduce_MiB  remote_MiB (blind)  interconnect_s  loss");
    for (e, run) in r2.epochs.iter().enumerate() {
        // Ring all-reduce wire volume is closed-form; assert it rather
        // than trusting the recorded counter.
        assert_eq!(
            run.allreduce_bytes,
            run.steps as u64 * 2 * (REPLICAS as u64 - 1) * r2.model_bytes,
            "epoch {e}: ring all-reduce byte accounting drifted"
        );
        println!(
            "{e:>5}  {:>5}  {:>13.2}  {:>10.2} ({:>5.2})  {:>14.4}  {:.4}",
            run.steps,
            run.allreduce_bytes as f64 / (1u64 << 20) as f64,
            run.remote_feature_bytes as f64 / (1u64 << 20) as f64,
            r2_blind.epochs[e].remote_feature_bytes as f64 / (1u64 << 20) as f64,
            run.interconnect_seconds,
            run.observation.train_loss,
        );
    }
    let remote_aware: u64 = r2.remote_bytes_trajectory().iter().sum();
    let remote_blind: u64 = r2_blind.remote_bytes_trajectory().iter().sum();
    // Sampling is seeded, so the pulled-row accounting is deterministic:
    // locality-aware sampling must save remote feature bytes outright.
    assert!(
        remote_aware < remote_blind,
        "locality-aware sampling must cut remote feature bytes ({remote_aware} vs {remote_blind})"
    );
    println!(
        "locality-aware sampling pulls {:.1} MiB of remote features vs {:.1} MiB blind ({:.1}% saved)",
        remote_aware as f64 / (1u64 << 20) as f64,
        remote_blind as f64 / (1u64 << 20) as f64,
        100.0 * (remote_blind - remote_aware) as f64 / remote_blind as f64,
    );
    let replicated_staging_allocs: Vec<u64> = r2
        .epochs
        .iter()
        .map(|r| r.allocs.staging_allocs())
        .collect();
    if alloc_counting {
        println!(
            "replicated staging allocs per epoch (R={REPLICAS}, pooled): {:?} (warm mean {:.1})",
            replicated_staging_allocs,
            warm_u64(&replicated_staging_allocs)
        );
    }

    // --- Record the baseline. -------------------------------------------
    let report_series = |f: &dyn Fn(&neutronorch::core::pipeline::PipelineReport) -> f64| {
        fmt_series(
            &session
                .epochs
                .iter()
                .map(|r| f(&r.report))
                .collect::<Vec<_>>(),
        )
    };
    let stage_seconds = format!(
        "{{\n    \"sample\": {},\n    \"gather\": {},\n    \"transfer\": {},\n    \"train\": {},\n    \"train_wait\": {},\n    \"refresh\": {}\n  }}",
        report_series(&|r| r.sample_seconds),
        report_series(&|r| r.gather_collect_seconds),
        report_series(&|r| r.transfer_seconds),
        report_series(&|r| r.train_seconds),
        report_series(&|r| r.train_wait_seconds),
        fmt_series(&session.epochs.iter().map(|r| r.refresh_seconds).collect::<Vec<_>>()),
    );
    let kernel_entries: Vec<String> = kernel_snapshot
        .iter()
        .map(|(name, stat)| format!("    \"{name}\": {:.4}", stat.seconds()))
        .collect();
    let kernel_seconds = format!("{{\n{}\n  }}", kernel_entries.join(",\n"));
    let refresh_sharded = format!(
        "{{\"vertices\": {hot_share}, \"workers\": {refresh_workers}, \"serial_seconds\": {serial_secs:.4}, \"sharded_seconds\": {sharded_secs:.4}, \"speedup\": {refresh_speedup:.2}}}",
    );
    let stage_alloc_series = |bytes: bool| {
        let rows: Vec<String> = alloc::STAGES
            .iter()
            .enumerate()
            .map(|(si, s)| {
                let series: Vec<u64> = session
                    .epochs
                    .iter()
                    .map(|r| {
                        let st = r.allocs.stats[si];
                        if bytes {
                            st.bytes
                        } else {
                            st.allocs
                        }
                    })
                    .collect();
                format!("    \"{}\": {}", s.name(), fmt_series_u64(&series))
            })
            .collect();
        format!("{{\n{}\n  }}", rows.join(",\n"))
    };
    let allocs_per_epoch = stage_alloc_series(false);
    let alloc_bytes_per_epoch = stage_alloc_series(true);
    let seq_staging_json = fmt_series_u64(&seq_staging_allocs);
    let eng_staging_json = fmt_series_u64(&engine_staging_allocs);
    let eng_warm_staging = format!("{:.1}", warm_u64(&engine_staging_allocs));
    // Replicated (R=2) series: steps, wire bytes, interconnect pricing and
    // the per-replica staging busy time (sample+gather+transfer seconds).
    let repl_steps_json =
        fmt_series_u64(&r2.epochs.iter().map(|r| r.steps as u64).collect::<Vec<_>>());
    let allreduce_json = fmt_series_u64(&r2.allreduce_bytes_trajectory());
    let remote_json = fmt_series_u64(&r2.remote_bytes_trajectory());
    let remote_blind_json = fmt_series_u64(&r2_blind.remote_bytes_trajectory());
    let interconnect_json = fmt_series(
        &r2.epochs
            .iter()
            .map(|r| r.interconnect_seconds)
            .collect::<Vec<_>>(),
    );
    let replica_epoch_json = {
        let rows: Vec<String> = (0..REPLICAS)
            .map(|rep| {
                let series: Vec<f64> = r2
                    .epochs
                    .iter()
                    .map(|run| {
                        let s = &run.per_replica[rep];
                        s.sample_seconds + s.gather_seconds + s.transfer_seconds
                    })
                    .collect();
                format!("    \"replica{rep}\": {}", fmt_series(&series))
            })
            .collect();
        format!("{{\n{}\n  }}", rows.join(",\n"))
    };
    let repl_staging_json = fmt_series_u64(&replicated_staging_allocs);
    let ck_bytes_json = fmt_series_u64(&ck_bytes);
    // Six decimals: a checkpoint write is sub-millisecond, and the gate in
    // xtask bench-diff cross-checks nonzero seconds against nonzero bytes.
    let ck_secs_json = format!(
        "[{}]",
        ck_secs
            .iter()
            .map(|x| format!("{x:.6}"))
            .collect::<Vec<_>>()
            .join(", ")
    );
    let json = format!(
        "{{\n  \"dataset\": \"{}\",\n  \"replica_vertices\": {},\n  \"epochs\": {},\n  \"super_batch\": {},\n  \"sampler_threads\": {},\n  \"gather_threads\": {},\n  \"h2d_gibps\": {:.4},\n  \"gpu_cache_budget_bytes\": {},\n  \"occupancy_ewma_alpha\": {},\n  \"split_hysteresis\": {},\n  \"sequential_epoch_seconds\": {},\n  \"respawn_epoch_seconds\": {},\n  \"engine_epoch_seconds\": {},\n  \"engine_epoch1_seconds\": {:.4},\n  \"engine_warm_mean_seconds\": {:.4},\n  \"respawn_warm_mean_seconds\": {:.4},\n  \"pr3_engine_warm_mean_seconds\": {PR3_ENGINE_WARM_MEAN_SECONDS},\n  \"pr3_respawn_warm_mean_seconds\": {PR3_RESPAWN_WARM_MEAN_SECONDS},\n  \"engine_warm_speedup_vs_pr3\": {:.2},\n  \"stage_seconds\": {stage_seconds},\n  \"kernel_seconds\": {kernel_seconds},\n  \"alloc_counting\": {alloc_counting},\n  \"allocs_per_epoch\": {allocs_per_epoch},\n  \"alloc_bytes_per_epoch\": {alloc_bytes_per_epoch},\n  \"sequential_staging_allocs_per_epoch\": {seq_staging_json},\n  \"engine_staging_allocs_per_epoch\": {eng_staging_json},\n  \"engine_warm_staging_allocs_per_epoch\": {eng_warm_staging},\n  \"checkpoint_every\": {CHECKPOINT_EVERY},\n  \"checkpoint_bytes_per_epoch\": {ck_bytes_json},\n  \"checkpoint_seconds_per_epoch\": {ck_secs_json},\n  \"replicas\": {REPLICAS},\n  \"model_bytes\": {},\n  \"partition_cut_fraction\": {:.4},\n  \"partition_balance\": {:.4},\n  \"replicated_r1_matches_sequential\": true,\n  \"replica_steps_per_epoch\": {repl_steps_json},\n  \"allreduce_bytes_per_epoch\": {allreduce_json},\n  \"remote_feature_bytes_per_epoch\": {remote_json},\n  \"remote_feature_bytes_per_epoch_blind\": {remote_blind_json},\n  \"interconnect_seconds_per_epoch\": {interconnect_json},\n  \"replica_epoch_seconds\": {replica_epoch_json},\n  \"replicated_staging_allocs_per_epoch\": {repl_staging_json},\n  \"refresh_sharded\": {refresh_sharded},\n  \"adaptive_cpu_fraction\": {},\n  \"smoothed_occupancy\": {},\n  \"cached_vertices_per_epoch\": {},\n  \"cache_hits_per_epoch\": {},\n  \"cache_misses_per_epoch\": {},\n  \"h2d_bytes_per_epoch\": {},\n  \"h2d_bytes_per_epoch_nocache\": {},\n  \"refresh_worker_seconds\": {},\n  \"train_occupancy\": {},\n  \"workers_spawned_once\": {},\n  \"engine_startup_seconds\": {:.4},\n  \"losses\": {}\n}}\n",
        spec.name,
        spec.vertices,
        EPOCHS,
        SUPER_BATCH,
        SAMPLER_THREADS,
        GATHER_THREADS,
        h2d_gibps,
        budget,
        alpha,
        hysteresis,
        fmt_series(&seq_secs),
        fmt_series(&respawn_secs),
        fmt_series(&engine_secs),
        engine_secs[0],
        warm(&engine_secs),
        warm(&respawn_secs),
        PR3_ENGINE_WARM_MEAN_SECONDS / warm(&engine_secs),
        r2.model_bytes,
        r2.partition_cut_fraction,
        r2.partition_balance,
        fmt_series(&traj),
        fmt_series(&session.epochs.iter().map(|r| r.smoothed_occupancy).collect::<Vec<_>>()),
        fmt_series_u64(&session.epochs.iter().map(|r| r.cache_vertices as u64).collect::<Vec<_>>()),
        fmt_series_u64(&session.epochs.iter().map(|r| r.report.cache_hits).collect::<Vec<_>>()),
        fmt_series_u64(&session.epochs.iter().map(|r| r.report.cache_misses).collect::<Vec<_>>()),
        fmt_series_u64(&engine_h2d),
        fmt_series_u64(&nocache_h2d),
        fmt_series(&session.epochs.iter().map(|r| r.refresh_seconds).collect::<Vec<_>>()),
        fmt_series(&session.epochs.iter().map(|r| r.report.train_occupancy()).collect::<Vec<_>>()),
        session.workers_spawned,
        session.startup_seconds,
        fmt_series(&seq_loss.iter().map(|&l| l as f64).collect::<Vec<_>>()),
    );
    std::fs::write("BENCH_engine.json", &json).expect("write BENCH_engine.json");
    println!("\nwrote BENCH_engine.json");
}
