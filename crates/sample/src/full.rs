//! Full-neighbor (unsampled) block construction.
//!
//! Inference and historical-embedding refreshes want exact aggregation over
//! *all* in-neighbors rather than a sampled subset; this builder produces
//! the same [`Block`] structure with every neighbor included (optionally
//! capped for pathological hubs).

use crate::block::Block;
use neutron_graph::{Csr, VertexId};
use std::collections::HashMap;

/// Builds multi-hop full-neighbor blocks, bottom-first (same contract as
/// [`crate::NeighborSampler::sample_batch`]). `cap` bounds per-vertex
/// neighbor lists (`usize::MAX` = exact); capped vertices take a
/// deterministic prefix, keeping inference reproducible.
pub fn full_blocks(g: &Csr, seeds: &[VertexId], layers: usize, cap: usize) -> Vec<Block> {
    assert!(layers >= 1);
    let mut blocks = Vec::with_capacity(layers);
    let mut frontier: Vec<VertexId> = seeds.to_vec();
    for _ in 0..layers {
        let block = full_one_hop(g, &frontier, cap);
        frontier = block.src().to_vec();
        blocks.push(block);
    }
    blocks.reverse();
    blocks
}

/// One full-neighbor hop.
pub fn full_one_hop(g: &Csr, frontier: &[VertexId], cap: usize) -> Block {
    let dst: Vec<VertexId> = frontier.to_vec();
    let mut src: Vec<VertexId> = dst.clone();
    let mut local: HashMap<VertexId, u32> = dst
        .iter()
        .enumerate()
        .map(|(i, &v)| (v, i as u32))
        .collect();
    let mut offsets = Vec::with_capacity(dst.len() + 1);
    offsets.push(0u32);
    let mut indices = Vec::new();
    for &v in &dst {
        let neigh = g.neighbors(v);
        let take = neigh.len().min(cap);
        for &u in &neigh[..take] {
            let next = src.len() as u32;
            let idx = *local.entry(u).or_insert_with(|| {
                src.push(u);
                next
            });
            indices.push(idx);
        }
        offsets.push(indices.len() as u32);
    }
    Block::new(dst, src, offsets, indices)
}

#[cfg(test)]
mod tests {
    use super::*;
    use neutron_graph::generate::erdos_renyi;

    #[test]
    fn uncapped_block_includes_every_neighbor() {
        let g = erdos_renyi(100, 1200, 1);
        let blocks = full_blocks(&g, &[0, 1, 2], 1, usize::MAX);
        let b = &blocks[0];
        for i in 0..b.num_dst() {
            assert_eq!(b.sampled_degree(i), g.degree(b.dst()[i]));
        }
        assert!(b.validate().is_ok());
    }

    #[test]
    fn cap_limits_hub_expansion_deterministically() {
        let g = erdos_renyi(200, 8000, 2);
        let a = full_blocks(&g, &[5], 2, 3);
        let b = full_blocks(&g, &[5], 2, 3);
        assert_eq!(
            a[0].src(),
            b[0].src(),
            "capped prefix must be deterministic"
        );
        for blocks in [&a, &b] {
            for block in blocks.iter() {
                for i in 0..block.num_dst() {
                    assert!(block.sampled_degree(i) <= 3);
                }
            }
        }
    }

    #[test]
    fn blocks_chain_like_sampled_ones() {
        let g = erdos_renyi(80, 600, 3);
        let blocks = full_blocks(&g, &[1, 2], 3, usize::MAX);
        assert_eq!(blocks.len(), 3);
        assert_eq!(blocks[2].dst(), &[1, 2]);
        assert_eq!(blocks[1].dst(), blocks[2].src());
        assert_eq!(blocks[0].dst(), blocks[1].src());
    }

    #[test]
    fn full_one_hop_matches_graph_exactly() {
        let g = Csr::from_adjacency(vec![vec![1, 2], vec![2], vec![]]);
        let b = full_one_hop(&g, &[0], usize::MAX);
        assert_eq!(b.num_dst(), 1);
        assert_eq!(b.num_src(), 3);
        assert_eq!(b.num_edges(), 2);
    }
}
