//! Multi-replica data-parallel training over a partitioned graph.
//!
//! [`ReplicatedEngine`] runs **R model replicas** of the staged
//! sample→gather→transfer→train pipeline, one per graph partition
//! ([`neutron_graph::partition::hash_partition`]). Each replica owns the
//! training vertices its partition assigns to it and prepares its own
//! batches on a dedicated worker thread with **per-replica** staging pools
//! and a **per-replica** [`FeatureCache`] snapshot of its hottest *owned*
//! vertices. The shared train stage consumes one staged batch from every
//! replica per step, computes per-replica gradients at the same parameter
//! version, tree-averages them ([`neutron_nn::tree_average`] — an
//! order-independent reduction), and applies one shared optimizer step
//! (`ConvergenceTrainer::train_steps_replicated`).
//!
//! Determinism contract:
//!
//! - **R=1 is bit-identical to the single-replica engine.** A 1-way
//!   partition owns every vertex, so replica 0's train list is
//!   `dataset.train` in its original order, the epoch shuffle and the
//!   per-batch [`batch_sample_seed`] stream are unchanged, the
//!   locality-biased sampler degenerates to the unbiased one (every
//!   neighbor is local), and the one-replica step path inside
//!   `train_steps_replicated` is literally `train_prepared` — no gradient
//!   clone, no averaging, no extra float ops.
//! - **Any R is deterministic.** The partition is a pure function of
//!   `(num_vertices, R)`, each replica's batch order is a pure function of
//!   `(seed, epoch)`, each replica's staging channel is single-producer
//!   in-order, and the train stage consumes replicas in fixed `0..R`
//!   order, so repeated runs reproduce losses *and* byte series exactly.
//!
//! Replicas also meter a simulated **interconnect** distinct from the
//! PCIe H2D path ([`InterconnectSpec`]): remote (non-owned) feature rows
//! pulled per batch and ring all-reduce gradient bytes per step become
//! first-class per-epoch series in the session report.

use std::cell::{Cell, RefCell};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use neutron_cache::FeatureCache;
use neutron_graph::partition::{hash_partition, Partition};
use neutron_graph::{Dataset, VertexId};
use neutron_hetero::InterconnectSpec;
use neutron_sample::{BatchIterator, BlockBuilder, EpochBatches, LocalityCounts};
use neutron_tensor::alloc::{self, AllocSnapshot, Stage};

use crate::checkpoint::{self, Checkpoint, CheckpointError};
use crate::engine::{
    panic_message, transfer_stage, Bounded, BusyNs, Defer, FailureCell, RecvTimeout, SessionError,
};
use crate::fault::{FailureAction, FailureEvent, FailurePolicy, FaultKind, FaultPlan};
use crate::gather::{GatheredFeatures, StagedBatch};
use crate::pipeline::{PipelineConfig, PipelineReport};
use crate::pool::BatchBuffers;
use crate::refresh::InlineRefresh;
use crate::trainer::{batch_sample_seed, ConvergenceTrainer, EpochObservation, PreparedBatch};

/// Configuration of a replicated session.
#[derive(Clone, Debug)]
pub struct ReplicatedConfig {
    /// Staging shape shared by every replica worker. Only `channel_depth`
    /// (per-replica staging depth) and `h2d_gibps` (simulated PCIe stall)
    /// are consulted: each replica runs one fused
    /// sample→gather→transfer worker, so the engine's separate
    /// sampler/gather thread counts do not apply.
    pub pipeline: PipelineConfig,
    /// Number of model replicas / graph partitions (R ≥ 1).
    pub replicas: usize,
    /// Prefer partition-local neighbors while sampling. The biased picker
    /// is bit-identical to the unbiased one when every neighbor is local,
    /// so this flag is inert at R=1; at R>1 it trades neighborhood
    /// diversity for fewer remote feature pulls. `false` is the
    /// locality-blind ablation.
    pub locality_aware: bool,
    /// Per-replica feature-cache budget in bytes (each replica snapshots
    /// its hottest *owned* vertices into its own cache).
    pub gpu_free_bytes: u64,
    /// Simulated replica-to-replica fabric used to price remote feature
    /// pulls and gradient all-reduces. Distinct from the PCIe H2D model.
    pub interconnect: InterconnectSpec,
    /// Per-replica recycled staging-buffer pool size; 0 = auto
    /// (`2 × channel_depth + 4`).
    pub pool_batches: usize,
    /// Write a checkpoint after every epoch whose number + 1 is a multiple
    /// of this (0 disables). Same absolute-epoch cadence as the
    /// single-replica engine, so restored sessions keep the schedule.
    pub checkpoint_every: usize,
    /// Checkpoint file location; required (together with a nonzero
    /// [`Self::checkpoint_every`]) for checkpoints to be written and for
    /// the [`FailurePolicy::Restore`] policy to have something to load.
    pub checkpoint_path: Option<PathBuf>,
    /// Deterministic fault schedule consulted by the replica workers.
    pub fault_plan: Option<Arc<FaultPlan>>,
    /// How long the supervisor waits on a replica's staging channel before
    /// declaring the replica stalled.
    pub stall_timeout: Duration,
    /// What the supervisor does when a replica dies or stalls mid-epoch.
    pub on_replica_failure: FailurePolicy,
}

impl Default for ReplicatedConfig {
    fn default() -> Self {
        Self {
            pipeline: PipelineConfig::default(),
            replicas: 1,
            locality_aware: true,
            gpu_free_bytes: 64 << 20,
            interconnect: InterconnectSpec::nvlink_like(),
            pool_batches: 0,
            checkpoint_every: 0,
            checkpoint_path: None,
            fault_plan: None,
            stall_timeout: Duration::from_secs(5),
            on_replica_failure: FailurePolicy::Fail,
        }
    }
}

impl ReplicatedConfig {
    /// Per-replica staging pool capacity: explicit, or enough for the
    /// channel plus in-flight and recycling slack.
    pub fn effective_pool_batches(&self) -> usize {
        match self.pool_batches {
            0 => 2 * self.pipeline.channel_depth + 4,
            n => n,
        }
    }
}

/// One epoch's measurements for a single replica.
#[derive(Clone, Copy, Debug, Default)]
pub struct ReplicaEpochStats {
    /// Busy seconds of this replica's sampling phase.
    pub sample_seconds: f64,
    /// Busy seconds of this replica's gather phase.
    pub gather_seconds: f64,
    /// Busy seconds of this replica's transfer phase (incl. simulated
    /// PCIe stall).
    pub transfer_seconds: f64,
    /// Host→device bytes this replica staged this epoch.
    pub h2d_bytes: u64,
    /// Feature bytes this replica pulled for source vertices its
    /// partition does not own — the interconnect (not PCIe) traffic.
    pub remote_feature_bytes: u64,
    /// Neighbor picks that landed on partition-local vertices.
    pub local_picks: u64,
    /// Neighbor picks that landed on remote vertices.
    pub remote_picks: u64,
    /// Batches this replica contributed to the epoch's steps.
    pub batches: usize,
    /// Tail batches dropped because another replica had fewer.
    pub dropped_batches: usize,
}

/// One epoch of a replicated session.
#[derive(Clone, Debug)]
pub struct ReplicatedEpochRun {
    /// Epoch index.
    pub epoch: usize,
    /// Loss / accuracy / staleness observation.
    pub observation: EpochObservation,
    /// Stage timing aggregated across replicas. `num_batches` counts
    /// optimizer *steps* (each consuming R replica batches), so the R=1
    /// series lines up with the single-replica engine's.
    pub report: PipelineReport,
    /// Per-replica breakdown, indexed by replica id.
    pub per_replica: Vec<ReplicaEpochStats>,
    /// Optimizer steps this epoch (min batch count across replicas).
    pub steps: usize,
    /// Total ring all-reduce wire bytes across all replicas this epoch:
    /// `steps × 2(R−1) × model_bytes`; zero at R=1.
    pub allreduce_bytes: u64,
    /// Remote feature bytes summed across replicas.
    pub remote_feature_bytes: u64,
    /// Simulated seconds the interconnect model prices this epoch's
    /// all-reduces and remote pulls at (closed-form, not slept).
    pub interconnect_seconds: f64,
    /// Allocation window covering the epoch's staging + training (eval
    /// excluded), attributed by stage.
    pub allocs: AllocSnapshot,
    /// Seconds spent in test-set evaluation (outside `report` timings).
    pub eval_seconds: f64,
    /// Bytes of the checkpoint written at this epoch's boundary (0 when
    /// none was due).
    pub checkpoint_bytes: u64,
    /// Wall-clock spent writing that checkpoint, outside the epoch's timed
    /// window.
    pub checkpoint_seconds: f64,
}

/// A replicated session: per-epoch runs plus session-constant facts.
#[derive(Clone, Debug)]
pub struct ReplicatedSessionReport {
    /// Per-epoch measurements, in epoch order.
    pub epochs: Vec<ReplicatedEpochRun>,
    /// Number of replicas the session ran.
    pub replicas: usize,
    /// Model parameter bytes (the all-reduce payload per step).
    pub model_bytes: u64,
    /// Replica worker threads spawned.
    pub workers_spawned: usize,
    /// Edge-cut fraction of the hash partition the session used.
    pub partition_cut_fraction: f64,
    /// Size balance (max/ideal) of the partition.
    pub partition_balance: f64,
}

impl ReplicatedSessionReport {
    /// Per-epoch mean train loss, in epoch order.
    pub fn loss_trajectory(&self) -> Vec<f32> {
        self.epochs
            .iter()
            .map(|e| e.observation.train_loss)
            .collect()
    }

    /// Per-epoch remote feature bytes, in epoch order.
    pub fn remote_bytes_trajectory(&self) -> Vec<u64> {
        self.epochs.iter().map(|e| e.remote_feature_bytes).collect()
    }

    /// Per-epoch all-reduce wire bytes, in epoch order.
    pub fn allreduce_bytes_trajectory(&self) -> Vec<u64> {
        self.epochs.iter().map(|e| e.allreduce_bytes).collect()
    }
}

/// One epoch's worth of work for a replica worker.
struct ReplicaJob {
    epoch: usize,
    /// Batches to stage this epoch (the global step count — the worker
    /// never produces tail batches other replicas cannot match).
    limit: usize,
    batches: Arc<EpochBatches>,
    cache: Arc<FeatureCache>,
}

/// Per-replica counters the worker publishes and the train thread reads
/// at epoch boundaries. Updates land before the batch they describe is
/// sent, so draining the staging channel synchronizes the reads.
#[derive(Default)]
struct ReplicaCounters {
    h2d_bytes: AtomicU64,
    remote_feature_bytes: AtomicU64,
    local_picks: AtomicU64,
    remote_picks: AtomicU64,
    sample_busy: BusyNs,
    gather_busy: BusyNs,
    transfer_busy: BusyNs,
}

/// Snapshot of the monotone per-replica counters, for per-epoch deltas.
#[derive(Clone, Copy, Default)]
struct CounterBaseline {
    h2d_bytes: u64,
    remote_feature_bytes: u64,
    local_picks: u64,
    remote_picks: u64,
    sample_seconds: f64,
    gather_seconds: f64,
    transfer_seconds: f64,
}

impl ReplicaCounters {
    fn baseline(&self) -> CounterBaseline {
        CounterBaseline {
            h2d_bytes: self.h2d_bytes.load(Ordering::Relaxed),
            remote_feature_bytes: self.remote_feature_bytes.load(Ordering::Relaxed),
            local_picks: self.local_picks.load(Ordering::Relaxed),
            remote_picks: self.remote_picks.load(Ordering::Relaxed),
            sample_seconds: self.sample_busy.seconds(),
            gather_seconds: self.gather_busy.seconds(),
            transfer_seconds: self.transfer_busy.seconds(),
        }
    }
}

/// Data-parallel driver over R partition-owning replicas.
pub struct ReplicatedEngine {
    config: ReplicatedConfig,
}

impl ReplicatedEngine {
    /// Builds a driver; panics on a zero-replica config.
    pub fn new(config: ReplicatedConfig) -> Self {
        assert!(config.replicas >= 1, "need at least one replica");
        assert!(
            config.pipeline.channel_depth >= 1,
            "staging needs a channel depth of at least 1"
        );
        Self { config }
    }

    /// The configuration the driver runs with.
    pub fn config(&self) -> &ReplicatedConfig {
        &self.config
    }

    /// Runs `num_epochs` epochs starting at `first_epoch`, mutating
    /// `trainer` exactly as `train_steps_replicated` dictates. Panics on a
    /// session failure; see [`Self::run_session_checked`] for the typed
    /// error surface.
    pub fn run_session(
        &self,
        trainer: &mut ConvergenceTrainer,
        first_epoch: usize,
        num_epochs: usize,
    ) -> ReplicatedSessionReport {
        self.run_session_checked(trainer, first_epoch, num_epochs)
            .unwrap_or_else(|e| panic!("replicated session failed: {e}"))
    }

    /// [`Self::run_session`] with the failure surface exposed: replica
    /// deaths, stalls, and checkpoint problems come back as
    /// [`SessionError`] instead of panics. The supervisor (this thread)
    /// detects a dead replica by its poisoned staging channel and a
    /// stalled one by [`ReplicatedConfig::stall_timeout`], then applies
    /// [`ReplicatedConfig::on_replica_failure`]:
    ///
    /// * `Fail` — tear down and return [`SessionError::ReplicaDied`].
    /// * `DropReplica` — finish the epoch with the survivors (the tree
    ///   average already rescales by group size) and redistribute the dead
    ///   replica's train vertices round-robin over the survivors at the
    ///   next epoch boundary.
    /// * `Restore` — drain the survivors, roll the trainer back to the
    ///   last checkpoint, respawn a replacement worker on fresh channels,
    ///   and resume from the checkpointed epoch.
    pub fn run_session_checked(
        &self,
        trainer: &mut ConvergenceTrainer,
        first_epoch: usize,
        num_epochs: usize,
    ) -> Result<ReplicatedSessionReport, SessionError> {
        let replicas = self.config.replicas;
        let dataset = trainer.dataset_handle();
        let partition = Arc::new(hash_partition(dataset.csr.num_vertices(), replicas));
        let partition_stats = partition.stats(&dataset.csr);
        let model_bytes = trainer.model_bytes();

        // Per-replica train lists preserve `dataset.train` order, so a
        // 1-way partition reproduces the single-replica batch stream
        // exactly.
        let config_seed = trainer.config().seed;
        let batch_size = trainer.config().batch_size;
        let replica_seeds: Vec<u64> = (0..replicas)
            .map(|r| config_seed ^ (r as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15))
            .collect();

        // Mutable ownership map over `dataset.train` positions: starts as
        // the hash partition, and DropReplica reassigns a dead replica's
        // slots to the survivors at an epoch boundary.
        let mut owner_of: Vec<usize> = dataset.train.iter().map(|&v| partition.owner(v)).collect();
        let build_iterators = |owner_of: &[usize]| -> Vec<BatchIterator> {
            (0..replicas)
                .map(|r| {
                    let owned: Vec<VertexId> = dataset
                        .train
                        .iter()
                        .copied()
                        .zip(owner_of.iter())
                        .filter(|&(_, &o)| o == r)
                        .map(|(v, _)| v)
                        .collect();
                    BatchIterator::new(owned, batch_size, config_seed)
                })
                .collect()
        };
        let mut iterators = build_iterators(&owner_of);

        let caches: Vec<Arc<FeatureCache>> = (0..replicas)
            .map(|r| Arc::new(self.replica_cache(trainer, &dataset, &partition, r)))
            .collect();

        let counters: Vec<Arc<ReplicaCounters>> = (0..replicas)
            .map(|_| Arc::new(ReplicaCounters::default()))
            .collect();
        let job_channels: RefCell<Vec<Arc<Bounded<ReplicaJob>>>> =
            RefCell::new((0..replicas).map(|_| Arc::new(Bounded::new(1))).collect());
        let staged_channels: RefCell<Vec<Arc<Bounded<StagedBatch>>>> = RefCell::new(
            (0..replicas)
                .map(|_| Arc::new(Bounded::new(self.config.pipeline.channel_depth)))
                .collect(),
        );
        let pools: Vec<Arc<Bounded<BatchBuffers>>> = (0..replicas)
            .map(|_| Arc::new(Bounded::new(self.config.effective_pool_batches())))
            .collect();

        let failures = FailureCell::default();
        let timeline: Mutex<Vec<FailureEvent>> = Mutex::new(Vec::new());
        let stall_release = AtomicBool::new(false);
        let fault_plan = self.config.fault_plan.clone();
        let sampler0 = trainer.sampler().clone();
        let policy = self.config.on_replica_failure;
        let stall_timeout = self.config.stall_timeout;
        let digest = checkpoint::config_digest(trainer.config(), replicas);
        let checkpoint_on =
            self.config.checkpoint_every > 0 && self.config.checkpoint_path.is_some();

        let mut epochs = Vec::with_capacity(num_epochs);
        let mut workers_spawned = 0usize;
        let caller_stage = alloc::set_stage(Stage::Train);

        let outcome: Result<(), SessionError> = std::thread::scope(|scope| {
            // Unblock every worker on unwind or normal exit: waking the
            // job channels ends their loops, waking the staging channels
            // unblocks any worker parked on a full channel, and the stall
            // release flag frees workers parked in an injected stall.
            let _teardown = Defer(|| {
                stall_release.store(true, Ordering::Release);
                for ch in job_channels.borrow().iter() {
                    ch.close();
                }
                for ch in staged_channels.borrow().iter() {
                    ch.close();
                }
                for pool in &pools {
                    pool.close();
                }
            });

            let spawn_worker =
                |r: usize, jobs: Arc<Bounded<ReplicaJob>>, staged_tx: Arc<Bounded<StagedBatch>>| {
                    let pool = Arc::clone(&pools[r]);
                    let counters = Arc::clone(&counters[r]);
                    let partition = Arc::clone(&partition);
                    let dataset = Arc::clone(&dataset);
                    let sampler = sampler0.clone();
                    let pipeline_cfg = self.config.pipeline.clone();
                    let locality_aware = self.config.locality_aware;
                    let replica_seed = replica_seeds[r];
                    let feature_row_bytes = dataset.spec.feature_row_bytes();
                    let fault_plan = fault_plan.clone();
                    let failures = &failures;
                    let timeline = &timeline;
                    let stall_release = &stall_release;
                    scope.spawn(move || {
                        // Poison both endpoints on every exit path so the
                        // supervisor sees a closed channel instead of
                        // blocking forever on a dead replica.
                        let _poison = Defer(|| {
                            staged_tx.close();
                            jobs.close();
                        });
                        let body = AssertUnwindSafe(|| {
                            let mut builder = BlockBuilder::default();
                            while let Some(job) = jobs.recv() {
                                for i in 0..job.limit {
                                    if let Some(plan) = fault_plan.as_deref() {
                                        if plan.take_crash(r, job.epoch, i) {
                                            timeline.lock().unwrap().push(FailureEvent {
                                                epoch: job.epoch,
                                                step: i,
                                                replica: r,
                                                detail: "injected crash: worker exiting cleanly"
                                                    .into(),
                                                action: FailureAction::Observed,
                                            });
                                            return;
                                        }
                                        match plan.take(r, job.epoch, i) {
                                            None => {}
                                            Some(FaultKind::Crash) => unreachable!(),
                                            Some(FaultKind::Panic) => {
                                                timeline.lock().unwrap().push(FailureEvent {
                                                    epoch: job.epoch,
                                                    step: i,
                                                    replica: r,
                                                    detail: "injected panic".into(),
                                                    action: FailureAction::Observed,
                                                });
                                                panic!(
                                                    "injected fault: replica {r} panicked at \
                                                     epoch {} step {i}",
                                                    job.epoch
                                                );
                                            }
                                            Some(FaultKind::Stall) => {
                                                timeline.lock().unwrap().push(FailureEvent {
                                                    epoch: job.epoch,
                                                    step: i,
                                                    replica: r,
                                                    detail: "injected stall".into(),
                                                    action: FailureAction::Observed,
                                                });
                                                while !stall_release.load(Ordering::Acquire) {
                                                    std::thread::sleep(Duration::from_millis(1));
                                                }
                                                return;
                                            }
                                            Some(FaultKind::Straggler) => {
                                                timeline.lock().unwrap().push(FailureEvent {
                                                    epoch: job.epoch,
                                                    step: i,
                                                    replica: r,
                                                    detail: "injected straggler delay".into(),
                                                    action: FailureAction::Observed,
                                                });
                                                std::thread::sleep(Duration::from_millis(25));
                                            }
                                        }
                                    }
                                    let t_sample = Instant::now();
                                    let stage_before = alloc::set_stage(Stage::Sample);
                                    let mut bufs = pool.try_recv().unwrap_or_default();
                                    bufs.donate_to(&mut builder);
                                    let seed = batch_sample_seed(replica_seed, job.epoch, i);
                                    let mut picks = LocalityCounts::default();
                                    let blocks = if locality_aware {
                                        sampler.sample_batch_pooled_biased(
                                            &dataset.csr,
                                            job.batches.batch(i),
                                            seed,
                                            &mut builder,
                                            &partition.assignment,
                                            r as u32,
                                            &mut picks,
                                        )
                                    } else {
                                        sampler.sample_batch_pooled(
                                            &dataset.csr,
                                            job.batches.batch(i),
                                            seed,
                                            &mut builder,
                                        )
                                    };
                                    let remote_rows = blocks[0]
                                        .src()
                                        .iter()
                                        .filter(|&&v| partition.assignment[v as usize] != r as u32)
                                        .count()
                                        as u64;
                                    counters.remote_feature_bytes.fetch_add(
                                        remote_rows * feature_row_bytes,
                                        Ordering::Relaxed,
                                    );
                                    counters
                                        .local_picks
                                        .fetch_add(picks.local_picks, Ordering::Relaxed);
                                    counters
                                        .remote_picks
                                        .fetch_add(picks.remote_picks, Ordering::Relaxed);
                                    counters.sample_busy.add(t_sample);

                                    let t_gather = Instant::now();
                                    alloc::set_stage(Stage::Gather);
                                    let features = GatheredFeatures::gather_pooled(
                                        &dataset, &blocks[0], &job.cache, &mut bufs,
                                    );
                                    counters.gather_busy.add(t_gather);

                                    let t_transfer = Instant::now();
                                    alloc::set_stage(Stage::Transfer);
                                    let staged = StagedBatch {
                                        index: i,
                                        blocks,
                                        features,
                                        bufs,
                                    };
                                    transfer_stage(&pipeline_cfg, &staged, &counters.h2d_bytes);
                                    counters.transfer_busy.add(t_transfer);
                                    alloc::set_stage(stage_before);
                                    if !staged_tx.send(staged) {
                                        return; // session tearing down
                                    }
                                }
                            }
                        });
                        if let Err(payload) = catch_unwind(body) {
                            failures.record("replica", panic_message(payload));
                        }
                    });
                };

            {
                let jobs = job_channels.borrow();
                let staged = staged_channels.borrow();
                for r in 0..replicas {
                    spawn_worker(r, Arc::clone(&jobs[r]), Arc::clone(&staged[r]));
                }
            }
            workers_spawned = replicas;

            // EpochBatches recycling with a two-epoch lag: by the time
            // epoch e+2 starts, the worker has received job e+1, which it
            // could only do after dropping job e's Arc.
            let mut spare: Vec<Option<Arc<EpochBatches>>> = vec![None; replicas];
            let mut prev: Vec<Option<Arc<EpochBatches>>> = vec![None; replicas];

            let alive = RefCell::new(vec![true; replicas]);
            let mut pending_redistribute = false;
            // Backstop against a restore loop on a persistently failing
            // setup; injected faults are one-shot, so this only trips on a
            // genuinely unrecoverable session.
            let mut restores_left = 4usize;

            let end_epoch = first_epoch + num_epochs;
            let mut epoch = first_epoch;
            while epoch < end_epoch {
                let alive_at_start = alive.borrow().clone();
                if pending_redistribute {
                    let survivors: Vec<usize> =
                        (0..replicas).filter(|&r| alive_at_start[r]).collect();
                    if survivors.is_empty() {
                        return Err(SessionError::NoSurvivors { epoch });
                    }
                    let mut rr = 0usize;
                    for slot in owner_of.iter_mut() {
                        if !alive_at_start[*slot] {
                            *slot = survivors[rr % survivors.len()];
                            rr += 1;
                        }
                    }
                    iterators = build_iterators(&owner_of);
                    pending_redistribute = false;
                }

                let epoch_wall = Instant::now();
                let alloc_before = alloc::snapshot();
                let baselines: Vec<CounterBaseline> =
                    counters.iter().map(|c| c.baseline()).collect();

                let mut lens = vec![0usize; replicas];
                let mut filled: Vec<Option<Arc<EpochBatches>>> = vec![None; replicas];
                for r in 0..replicas {
                    if !alive_at_start[r] {
                        spare[r] = None;
                        prev[r] = None;
                        continue;
                    }
                    let mut eb = spare[r]
                        .take()
                        .and_then(|a| Arc::try_unwrap(a).ok())
                        .unwrap_or_default();
                    iterators[r].fill_epoch_batches(epoch, &mut eb);
                    lens[r] = eb.len();
                    filled[r] = Some(Arc::new(eb));
                }
                let steps = (0..replicas)
                    .filter(|&r| alive_at_start[r])
                    .map(|r| lens[r])
                    .min()
                    .unwrap_or(0);
                for r in 0..replicas {
                    let Some(batches) = filled[r].as_ref() else {
                        continue;
                    };
                    // A worker that died after its last drain shows up as a
                    // closed channel here; the feed below detects it.
                    let _ = job_channels.borrow()[r].send(ReplicaJob {
                        epoch,
                        limit: steps,
                        batches: Arc::clone(batches),
                        cache: Arc::clone(&caches[r]),
                    });
                    spare[r] = prev[r].take();
                    prev[r] = Some(Arc::clone(batches));
                }
                drop(filled);

                let mut wait = Duration::ZERO;
                let mut cache_hits = 0u64;
                let mut cache_misses = 0u64;
                let epoch_error: RefCell<Option<SessionError>> = RefCell::new(None);
                let want_restore = Cell::new(false);
                let consumed: RefCell<Vec<usize>> = RefCell::new(vec![0usize; replicas]);
                let train_wall = Instant::now();
                let stats = {
                    let feed = (0..steps).map_while(|si| {
                        let mut step = Vec::with_capacity(replicas);
                        for (r, cache) in caches.iter().enumerate() {
                            if !alive.borrow()[r] {
                                continue;
                            }
                            let ch = Arc::clone(&staged_channels.borrow()[r]);
                            let blocked = Instant::now();
                            let got = ch.recv_timeout(stall_timeout);
                            wait += blocked.elapsed();
                            match got {
                                RecvTimeout::Item(staged) => {
                                    consumed.borrow_mut()[r] += 1;
                                    debug_assert_eq!(staged.index, si);
                                    cache_hits += staged.features.num_hits() as u64;
                                    cache_misses += staged.features.num_misses() as u64;
                                    step.push(staged.into_prepared(cache));
                                }
                                RecvTimeout::Closed | RecvTimeout::TimedOut => {
                                    alive.borrow_mut()[r] = false;
                                    let detail = if matches!(got, RecvTimeout::TimedOut) {
                                        format!(
                                            "replica {r} stalled: no staged batch within \
                                             {stall_timeout:?}"
                                        )
                                    } else if let Some(SessionError::WorkerPanicked {
                                        message,
                                        ..
                                    }) = failures.first()
                                    {
                                        format!("replica {r} worker panicked: {message}")
                                    } else {
                                        format!("replica {r} worker exited early")
                                    };
                                    let action = match policy {
                                        FailurePolicy::Fail => FailureAction::Failed,
                                        FailurePolicy::DropReplica => FailureAction::DroppedReplica,
                                        FailurePolicy::Restore => FailureAction::RestoredCheckpoint,
                                    };
                                    timeline.lock().unwrap().push(FailureEvent {
                                        epoch,
                                        step: si,
                                        replica: r,
                                        detail: detail.clone(),
                                        action,
                                    });
                                    match policy {
                                        FailurePolicy::Fail => {
                                            *epoch_error.borrow_mut() =
                                                Some(SessionError::ReplicaDied {
                                                    replica: r,
                                                    epoch,
                                                    step: si,
                                                    detail,
                                                });
                                        }
                                        FailurePolicy::DropReplica => {}
                                        FailurePolicy::Restore => want_restore.set(true),
                                    }
                                }
                            }
                        }
                        if epoch_error.borrow().is_some() || want_restore.get() {
                            return None;
                        }
                        if step.is_empty() {
                            *epoch_error.borrow_mut() = Some(SessionError::NoSurvivors { epoch });
                            return None;
                        }
                        Some(step)
                    });
                    let mut recycled = 0usize;
                    let recycle = |item: PreparedBatch| {
                        let r = recycled % replicas;
                        recycled += 1;
                        let PreparedBatch {
                            blocks,
                            features,
                            scrap: mut bufs,
                            ..
                        } = item;
                        bufs.put_f32(features.into_vec());
                        bufs.recycle_blocks(blocks);
                        let _ = pools[r].try_send(bufs);
                    };
                    let mut backend = InlineRefresh::default();
                    let stats = trainer.train_steps_replicated(feed, &mut backend, recycle);
                    trainer.settle_refresh(&mut backend);
                    stats
                };
                let train_wall = train_wall.elapsed().as_secs_f64();
                let epoch_seconds = epoch_wall.elapsed().as_secs_f64();
                let allocs = alloc::snapshot().since(&alloc_before);

                if let Some(err) = epoch_error.into_inner() {
                    return Err(err);
                }
                if want_restore.get() {
                    // Drain the survivors so their workers finish the
                    // aborted epoch and park on their job channels, then
                    // roll back and replace the casualties.
                    let alive_after = alive.borrow().clone();
                    for (r, &still_alive) in alive_after.iter().enumerate() {
                        let ch = Arc::clone(&staged_channels.borrow()[r]);
                        if !still_alive {
                            while ch.try_recv().is_some() {}
                            continue;
                        }
                        let mut got = consumed.borrow()[r];
                        while got < steps {
                            match ch.recv_timeout(stall_timeout) {
                                RecvTimeout::Item(_) => got += 1,
                                _ => break,
                            }
                        }
                    }
                    if restores_left == 0 {
                        return Err(SessionError::Checkpoint(CheckpointError::Io(
                            "restore budget exhausted: session keeps failing after rollback".into(),
                        )));
                    }
                    restores_left -= 1;
                    let Some(path) = self.config.checkpoint_path.as_ref() else {
                        return Err(SessionError::Checkpoint(CheckpointError::Io(
                            "FailurePolicy::Restore needs a configured checkpoint_path".into(),
                        )));
                    };
                    let ck = checkpoint::load(path, digest)?;
                    trainer
                        .restore_state(&ck.state)
                        .map_err(|m| SessionError::Checkpoint(CheckpointError::Corrupt(m)))?;
                    for (r, &still_alive) in alive_after.iter().enumerate() {
                        if still_alive {
                            continue;
                        }
                        let jobs = Arc::new(Bounded::new(1));
                        let staged = Arc::new(Bounded::new(self.config.pipeline.channel_depth));
                        job_channels.borrow_mut()[r] = Arc::clone(&jobs);
                        staged_channels.borrow_mut()[r] = Arc::clone(&staged);
                        spawn_worker(r, jobs, staged);
                        workers_spawned += 1;
                        alive.borrow_mut()[r] = true;
                    }
                    let resume = (ck.next_epoch as usize).max(first_epoch);
                    epochs.truncate(resume - first_epoch);
                    epoch = resume;
                    for r in 0..replicas {
                        spare[r] = None;
                        prev[r] = None;
                    }
                    continue;
                }
                let newly_dead = {
                    let alive_now = alive.borrow();
                    (0..replicas).any(|r| alive_at_start[r] && !alive_now[r])
                };
                if newly_dead {
                    pending_redistribute = true;
                }

                let per_replica: Vec<ReplicaEpochStats> = (0..replicas)
                    .map(|r| {
                        let now = counters[r].baseline();
                        let base = baselines[r];
                        ReplicaEpochStats {
                            sample_seconds: now.sample_seconds - base.sample_seconds,
                            gather_seconds: now.gather_seconds - base.gather_seconds,
                            transfer_seconds: now.transfer_seconds - base.transfer_seconds,
                            h2d_bytes: now.h2d_bytes - base.h2d_bytes,
                            remote_feature_bytes: now.remote_feature_bytes
                                - base.remote_feature_bytes,
                            local_picks: now.local_picks - base.local_picks,
                            remote_picks: now.remote_picks - base.remote_picks,
                            batches: steps,
                            dropped_batches: lens[r].saturating_sub(steps),
                        }
                    })
                    .collect();

                let remote_feature_bytes: u64 =
                    per_replica.iter().map(|s| s.remote_feature_bytes).sum();
                let h2d_bytes: u64 = per_replica.iter().map(|s| s.h2d_bytes).sum();
                let allreduce_bytes = if replicas > 1 {
                    steps as u64 * 2 * (replicas as u64 - 1) * model_bytes
                } else {
                    0
                };
                let link = &self.config.interconnect;
                let mut interconnect_seconds =
                    steps as f64 * link.allreduce_seconds(model_bytes, replicas);
                for s in &per_replica {
                    if s.remote_feature_bytes > 0 {
                        // One remote pull message per step per replica.
                        interconnect_seconds += steps as f64 * link.latency
                            + s.remote_feature_bytes as f64 / link.bandwidth;
                    }
                }

                let report = PipelineReport {
                    epoch_seconds,
                    num_batches: steps,
                    sample_seconds: per_replica.iter().map(|s| s.sample_seconds).sum(),
                    gather_collect_seconds: per_replica.iter().map(|s| s.gather_seconds).sum(),
                    transfer_seconds: per_replica.iter().map(|s| s.transfer_seconds).sum(),
                    train_seconds: (train_wall - wait.as_secs_f64()).max(0.0),
                    train_wait_seconds: wait.as_secs_f64(),
                    h2d_bytes,
                    reorder_peak: 0,
                    cache_hits,
                    cache_misses,
                    failures: std::mem::take(&mut *timeline.lock().unwrap()),
                };

                let pre_eval_stage = alloc::set_stage(Stage::Other);
                let eval_wall = Instant::now();
                let observation = trainer.observe_epoch(stats);
                let eval_seconds = eval_wall.elapsed().as_secs_f64();
                alloc::set_stage(pre_eval_stage);

                epochs.push(ReplicatedEpochRun {
                    epoch,
                    observation,
                    report,
                    per_replica,
                    steps,
                    allreduce_bytes,
                    remote_feature_bytes,
                    interconnect_seconds,
                    allocs,
                    eval_seconds,
                    checkpoint_bytes: 0,
                    checkpoint_seconds: 0.0,
                });

                // Checkpoint cadence keys on the absolute epoch number so a
                // restored session writes at the same boundaries as the
                // uninterrupted run. The write lands after the epoch's
                // timings are recorded, so it never skews them.
                if checkpoint_on && (epoch + 1).is_multiple_of(self.config.checkpoint_every) {
                    let t0 = Instant::now();
                    let mut ck_backend = InlineRefresh::default();
                    let state = trainer.capture_state(&mut ck_backend);
                    let ck = Checkpoint {
                        next_epoch: epoch as u64 + 1,
                        replicas: replicas as u64,
                        rng_seeds: replica_seeds.clone(),
                        state,
                    };
                    let path = self.config.checkpoint_path.as_ref().unwrap();
                    let bytes = checkpoint::save(path, digest, &ck)?;
                    let run = epochs.last_mut().unwrap();
                    run.checkpoint_bytes = bytes;
                    run.checkpoint_seconds = t0.elapsed().as_secs_f64();
                }

                epoch += 1;
            }
            Ok(())
        });
        alloc::set_stage(caller_stage);
        outcome?;

        Ok(ReplicatedSessionReport {
            epochs,
            replicas,
            model_bytes,
            workers_spawned,
            partition_cut_fraction: partition_stats.cut_fraction(),
            partition_balance: partition_stats.balance(),
        })
    }

    /// Builds replica `r`'s feature cache: its hottest *owned* vertices,
    /// capped by the per-replica byte budget. Empty when the trainer's
    /// policy has no hotness ranking.
    fn replica_cache(
        &self,
        trainer: &ConvergenceTrainer,
        dataset: &Dataset,
        partition: &Partition,
        r: usize,
    ) -> FeatureCache {
        let Some(hot) = trainer.hot_set() else {
            return FeatureCache::empty();
        };
        let row_bytes = dataset.spec.feature_row_bytes().max(1);
        let budget_rows = (self.config.gpu_free_bytes / row_bytes) as usize;
        let owned: Vec<VertexId> = hot
            .vertices()
            .iter()
            .copied()
            .filter(|&v| partition.owner(v) == r)
            .take(budget_rows)
            .collect();
        FeatureCache::for_vertices(
            &owned,
            dataset.csr.num_vertices(),
            dataset.features().as_slice(),
            dataset.spec.feature_dim,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trainer::{ReusePolicy, TrainerConfig};
    use neutron_graph::DatasetSpec;
    use neutron_nn::LayerKind;

    fn trainer(policy: ReusePolicy) -> ConvergenceTrainer {
        let ds = DatasetSpec::tiny().build_full();
        let mut cfg = TrainerConfig::convergence_default(LayerKind::Gcn, policy);
        cfg.batch_size = 64;
        cfg.lr = 0.5;
        ConvergenceTrainer::new(ds, cfg)
    }

    fn policy() -> ReusePolicy {
        ReusePolicy::HotnessAware {
            hot_ratio: 0.3,
            super_batch: 2,
        }
    }

    #[test]
    fn r1_session_matches_sequential_epochs_exactly() {
        let mut seq = trainer(policy());
        let mut expected = Vec::new();
        for epoch in 0..3 {
            expected.push(seq.train_epoch(epoch));
        }

        let mut replicated = trainer(policy());
        let engine = ReplicatedEngine::new(ReplicatedConfig::default());
        let report = engine.run_session(&mut replicated, 0, 3);

        assert_eq!(report.replicas, 1);
        assert_eq!(report.epochs.len(), 3);
        for (run, want) in report.epochs.iter().zip(&expected) {
            assert_eq!(run.observation.train_loss, want.train_loss);
            assert_eq!(run.observation.test_accuracy, want.test_accuracy);
            assert_eq!(run.allreduce_bytes, 0, "R=1 exchanges no gradients");
            assert_eq!(run.remote_feature_bytes, 0, "1-way partition owns all");
            assert_eq!(run.per_replica.len(), 1);
            assert_eq!(run.per_replica[0].remote_picks, 0);
        }
    }

    #[test]
    fn r1_identity_holds_across_depths_pools_and_locality() {
        let mut seq = trainer(policy());
        let want = seq.train_epoch(0).train_loss;
        for (depth, pool, locality) in [(1, 0, true), (4, 3, false), (2, 8, true)] {
            let mut t = trainer(policy());
            let mut cfg = ReplicatedConfig::default();
            cfg.pipeline.channel_depth = depth;
            cfg.pool_batches = pool;
            cfg.locality_aware = locality;
            let report = ReplicatedEngine::new(cfg).run_session(&mut t, 0, 1);
            assert_eq!(
                report.epochs[0].observation.train_loss, want,
                "depth={depth} pool={pool} locality={locality}"
            );
        }
    }

    #[test]
    fn multi_replica_runs_are_deterministic_and_meter_the_interconnect() {
        let run = |replicas: usize| {
            let mut t = trainer(policy());
            let cfg = ReplicatedConfig {
                replicas,
                ..ReplicatedConfig::default()
            };
            ReplicatedEngine::new(cfg).run_session(&mut t, 0, 3)
        };
        for replicas in [2usize, 4] {
            let a = run(replicas);
            let b = run(replicas);
            assert_eq!(a.loss_trajectory(), b.loss_trajectory());
            assert_eq!(a.remote_bytes_trajectory(), b.remote_bytes_trajectory());
            assert_eq!(
                a.allreduce_bytes_trajectory(),
                b.allreduce_bytes_trajectory()
            );
            for run in &a.epochs {
                assert_eq!(
                    run.allreduce_bytes,
                    run.steps as u64 * 2 * (replicas as u64 - 1) * a.model_bytes
                );
                assert!(run.interconnect_seconds > 0.0);
                assert_eq!(run.per_replica.len(), replicas);
            }
        }
    }

    #[test]
    fn locality_aware_sampling_cuts_remote_feature_bytes() {
        let run = |locality: bool| {
            let mut t = trainer(policy());
            let cfg = ReplicatedConfig {
                replicas: 2,
                locality_aware: locality,
                ..ReplicatedConfig::default()
            };
            ReplicatedEngine::new(cfg).run_session(&mut t, 0, 2)
        };
        let aware = run(true);
        let blind = run(false);
        let aware_bytes: u64 = aware.remote_bytes_trajectory().iter().sum();
        let blind_bytes: u64 = blind.remote_bytes_trajectory().iter().sum();
        assert!(
            aware_bytes < blind_bytes,
            "locality-aware sampling must pull fewer remote rows: {aware_bytes} vs {blind_bytes}"
        );
        let picks: u64 = aware.epochs[0]
            .per_replica
            .iter()
            .map(|s| s.remote_picks + s.local_picks)
            .sum();
        assert!(picks > 0, "biased sampler reports pick counts");
    }
}
