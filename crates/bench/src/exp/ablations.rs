//! Extension ablations beyond the paper's figures: the super-batch size
//! (`n`) staleness/performance tradeoff and the hot-vertex-ratio sweep.
//!
//! §4.2.2 fixes the staleness bound at `2n`; §5.5 says datasets support hot
//! ratios of 10–30%. These sweeps measure both knobs end-to-end: simulated
//! epoch time (replica scale) *and* real training accuracy/staleness.

use crate::util::{fmt_secs, render_table};
use crate::Setup;
use neutron_core::profile::{WorkloadConfig, WorkloadProfile};
use neutron_core::runner::run_convergence;
use neutron_core::trainer::ReusePolicy;
use neutron_core::{NeutronOrch, Orchestrator};
use neutron_graph::DatasetSpec;
use neutron_hetero::HardwareSpec;
use neutron_nn::LayerKind;

/// One super-batch-size point.
#[derive(Clone, Debug)]
pub struct SuperBatchPoint {
    pub n: usize,
    /// Simulated epoch seconds on the Reddit replica.
    pub epoch_seconds: f64,
    /// Final test accuracy on the convergence replica.
    pub accuracy: f64,
    /// Largest observed embedding version gap (must stay `< 2n`).
    pub max_staleness: u64,
}

/// Sweeps the super-batch size.
pub fn superbatch_data(setup: Setup) -> Vec<SuperBatchPoint> {
    let hw = HardwareSpec::v100_server(1.0);
    let spec = setup.dataset("Reddit");
    let epochs = match setup {
        Setup::Paper => 10,
        Setup::Smoke => 3,
    };
    [1usize, 2, 4, 8, 16]
        .into_iter()
        .map(|n| {
            let mut cfg = WorkloadConfig::paper_default(LayerKind::Gcn);
            cfg.super_batch = n;
            cfg.profiled_batches = setup.profiled_batches();
            let profile = WorkloadProfile::build(&spec, &cfg);
            let epoch_seconds = NeutronOrch::new()
                .simulate_epoch(&profile, &hw)
                .expect("fits")
                .epoch_seconds;
            let curve = run_convergence(
                &DatasetSpec::reddit_convergence(),
                LayerKind::Gcn,
                ReusePolicy::HotnessAware {
                    hot_ratio: 0.2,
                    super_batch: n,
                },
                epochs,
            );
            SuperBatchPoint {
                n,
                epoch_seconds,
                accuracy: curve.best_accuracy(),
                max_staleness: curve.max_staleness(),
            }
        })
        .collect()
}

/// One hot-ratio point.
#[derive(Clone, Debug)]
pub struct HotRatioPoint {
    pub hot_ratio: f64,
    /// Paper-scale access coverage of the hot set.
    pub coverage: f64,
    /// Simulated epoch seconds.
    pub epoch_seconds: f64,
    /// CPU busy fraction.
    pub cpu_util: f64,
}

/// Sweeps the hot-vertex ratio.
pub fn hotratio_data(setup: Setup) -> Vec<HotRatioPoint> {
    let hw = HardwareSpec::v100_server(1.0);
    let spec = setup.dataset("Orkut");
    [0.0f64, 0.05, 0.10, 0.15, 0.20, 0.30]
        .into_iter()
        .map(|hot_ratio| {
            let mut cfg = WorkloadConfig::paper_default(LayerKind::Gcn);
            cfg.hot_ratio = hot_ratio;
            cfg.profiled_batches = setup.profiled_batches();
            let profile = WorkloadProfile::build(&spec, &cfg);
            let r = NeutronOrch::new()
                .simulate_epoch(&profile, &hw)
                .expect("fits");
            HotRatioPoint {
                hot_ratio,
                coverage: profile.paper_coverage(hot_ratio),
                epoch_seconds: r.epoch_seconds,
                cpu_util: r.cpu_util,
            }
        })
        .collect()
}

/// Renders the super-batch sweep.
pub fn run_superbatch(setup: Setup) -> String {
    let rows: Vec<Vec<String>> = superbatch_data(setup)
        .into_iter()
        .map(|p| {
            vec![
                p.n.to_string(),
                fmt_secs(p.epoch_seconds),
                format!("{:.3}", p.accuracy),
                format!("{} (< {})", p.max_staleness, 2 * p.n),
            ]
        })
        .collect();
    render_table(
        "Ablation: super-batch size n — runtime vs staleness vs accuracy (Reddit / GCN)",
        &["n", "epoch (s)", "best acc", "max gap (bound 2n)"],
        &rows,
    )
}

/// Renders the hot-ratio sweep.
pub fn run_hotratio(setup: Setup) -> String {
    let rows: Vec<Vec<String>> = hotratio_data(setup)
        .into_iter()
        .map(|p| {
            vec![
                format!("{:.2}", p.hot_ratio),
                format!("{:.0}%", p.coverage * 100.0),
                fmt_secs(p.epoch_seconds),
                format!("{:.0}%", p.cpu_util * 100.0),
            ]
        })
        .collect();
    render_table(
        "Ablation: hot-vertex ratio — coverage vs runtime vs CPU load (Orkut / GCN)",
        &["hot ratio", "coverage", "epoch (s)", "CPU util"],
        &rows,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn staleness_bound_holds_for_every_superbatch_size() {
        for p in superbatch_data(Setup::Smoke) {
            assert!(
                p.max_staleness < 2 * p.n as u64,
                "n={}: gap {} ≥ 2n",
                p.n,
                p.max_staleness
            );
            assert!(p.accuracy > 0.3, "n={}: accuracy collapsed", p.n);
        }
    }

    #[test]
    fn coverage_grows_with_hot_ratio() {
        let pts = hotratio_data(Setup::Smoke);
        assert!(pts.windows(2).all(|w| w[1].coverage >= w[0].coverage));
        assert_eq!(pts[0].coverage, 0.0);
        // More CPU offloading ⇒ more CPU utilization (weakly).
        assert!(pts.last().unwrap().cpu_util >= pts[0].cpu_util * 0.9);
    }
}
