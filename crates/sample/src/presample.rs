//! GNNLab-style pre-sampling hotness estimation (§4.1.2).
//!
//! "We employ the pre-sampling method of GNNLab to sample multi-hop
//! neighbors multiple times for each training vertex and record the accessed
//! frequencies (i.e., hotness) of the vertices."

use crate::batch::BatchIterator;
use crate::hotness::HotnessRanking;
use crate::neighbor::NeighborSampler;
use neutron_graph::Csr;

/// Runs a few simulated sampling epochs and records how often each vertex
/// appears as a **bottom-layer input** (a raw-feature read — the access that
/// caching or CPU offloading can save).
pub struct PreSampler {
    /// Number of simulated epochs; GNNLab uses a small constant.
    pub epochs: usize,
}

impl Default for PreSampler {
    fn default() -> Self {
        Self { epochs: 2 }
    }
}

impl PreSampler {
    /// Creates a pre-sampler running `epochs` simulated epochs.
    pub fn new(epochs: usize) -> Self {
        assert!(epochs >= 1);
        Self { epochs }
    }

    /// Estimates per-vertex hotness for the given sampling configuration.
    pub fn estimate(
        &self,
        g: &Csr,
        sampler: &NeighborSampler,
        batches: &BatchIterator,
        seed: u64,
    ) -> HotnessRanking {
        let mut counts = vec![0u32; g.num_vertices()];
        for epoch in 0..self.epochs {
            for (bi, batch) in batches.epoch_batches(epoch).iter().enumerate() {
                let blocks = sampler.sample_batch(g, batch, seed ^ ((epoch * 131 + bi) as u64));
                for &v in blocks[0].src() {
                    counts[v as usize] += 1;
                }
            }
        }
        HotnessRanking::from_counts(counts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fanout::Fanout;
    use neutron_graph::generate::{rmat, RmatParams};

    #[test]
    fn hubs_are_hotter_than_leaves() {
        let g = rmat(800, 12_000, RmatParams::graph500(), 1);
        let sampler = NeighborSampler::new(Fanout::new(vec![5, 5]));
        let batches = BatchIterator::new((0..400).collect(), 64, 2);
        let ranking = PreSampler::new(2).estimate(&g, &sampler, &batches, 3);
        // The hottest decile should absorb a disproportionate share of
        // accesses on a skewed graph.
        let top = ranking.order()[..80]
            .iter()
            .map(|&v| ranking.count(v) as u64)
            .sum::<u64>();
        let total: u64 = (0..800).map(|v| ranking.count(v) as u64).sum();
        // Uniform access would give the decile 10%; skew should at least
        // double that.
        assert!(
            top as f64 > 0.20 * total as f64,
            "top decile {top} of {total}"
        );
    }

    #[test]
    fn counts_are_deterministic() {
        let g = rmat(200, 2_000, RmatParams::graph500(), 4);
        let sampler = NeighborSampler::new(Fanout::new(vec![3]));
        let batches = BatchIterator::new((0..100).collect(), 32, 5);
        let a = PreSampler::new(1).estimate(&g, &sampler, &batches, 6);
        let b = PreSampler::new(1).estimate(&g, &sampler, &batches, 6);
        assert_eq!(a.order(), b.order());
    }

    #[test]
    fn training_vertices_always_accessed() {
        // Every training vertex appears in its own bottom-layer src set, so
        // its count is at least epochs.
        let g = rmat(100, 600, RmatParams::mild(), 7);
        let sampler = NeighborSampler::new(Fanout::new(vec![2, 2]));
        let batches = BatchIterator::new((0..50).collect(), 25, 8);
        let r = PreSampler::new(3).estimate(&g, &sampler, &batches, 9);
        for v in 0..50 {
            assert!(r.count(v) >= 3, "train vertex {v} count {}", r.count(v));
        }
    }
}
