//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no crates.io access, so this vendored crate
//! implements exactly the subset of the `rand` API the workspace uses:
//! [`rngs::StdRng`], [`SeedableRng::seed_from_u64`] and
//! [`RngExt::random_range`] / [`RngExt::random_bool`].
//!
//! The generator is xoshiro256** seeded through SplitMix64 — fully
//! deterministic for a given seed, which the workspace relies on for
//! reproducible sampling, shuffling and weight init.

pub mod rngs;

/// Core uniform-bits source.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

/// Deterministic construction from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Convenience sampling methods, blanket-implemented for every [`RngCore`].
pub trait RngExt: RngCore + Sized {
    /// Uniform sample from `range` (half-open or inclusive integer ranges,
    /// half-open float ranges). Panics on an empty range.
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability {p} out of [0, 1]");
        unit_f64(self.next_u64()) < p
    }
}

impl<T: RngCore> RngExt for T {}

/// A range that knows how to sample its element type `T` uniformly. The
/// generic parameter (rather than an associated type) lets the expected
/// output type drive literal inference, as in real `rand`.
pub trait SampleRange<T> {
    /// Draws one uniform sample using `rng`.
    fn sample_from<G: RngCore>(self, rng: &mut G) -> T;
}

/// Maps 64 random bits to `[0, 1)` with 53-bit precision.
#[inline]
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Maps 64 random bits to `[0, 1)` with 24-bit precision.
#[inline]
fn unit_f32(bits: u64) -> f32 {
    (bits >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
}

macro_rules! impl_int_sample_range {
    ($($t:ty),* $(,)?) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<G: RngCore>(self, rng: &mut G) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end as u128 - self.start as u128) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }

        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<G: RngCore>(self, rng: &mut G) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample from empty range");
                let span = (hi as u128 - lo as u128) + 1;
                if span > u64::MAX as u128 {
                    // Full 64-bit domain: every draw is in range.
                    return rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % span as u64) as $t
            }
        }
    )*};
}

impl_int_sample_range!(u8, u16, u32, u64, usize);

macro_rules! impl_float_sample_range {
    ($($t:ty => $unit:ident),* $(,)?) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<G: RngCore>(self, rng: &mut G) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let v = self.start + (self.end - self.start) * $unit(rng.next_u64());
                // Guard the half-open contract against rounding at the top.
                if v < self.end { v } else { self.start }
            }
        }
    )*};
}

impl_float_sample_range!(f32 => unit_f32, f64 => unit_f64);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn int_ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..2000 {
            let v = rng.random_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = rng.random_range(0u32..=5);
            assert!(w <= 5);
            let x = rng.random_range(10u64..11);
            assert_eq!(x, 10);
        }
    }

    #[test]
    fn float_ranges_stay_half_open() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..2000 {
            let v: f64 = rng.random_range(-2.0..3.0);
            assert!((-2.0..3.0).contains(&v));
            let w: f32 = rng.random_range(f32::EPSILON..1.0);
            assert!((f32::EPSILON..1.0).contains(&w));
        }
    }

    #[test]
    fn int_range_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut counts = [0usize; 8];
        for _ in 0..8000 {
            counts[rng.random_range(0usize..8)] += 1;
        }
        for &c in &counts {
            assert!(
                (700..1300).contains(&c),
                "bucket count {c} far from uniform"
            );
        }
    }

    #[test]
    fn bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(13);
        let hits = (0..10_000).filter(|_| rng.random_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "{hits} hits for p=0.25");
        assert!((0..100).all(|_| !rng.random_bool(0.0)));
        assert!((0..100).all(|_| rng.random_bool(1.0)));
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = StdRng::seed_from_u64(0);
        let _ = rng.random_range(5usize..5);
    }
}
