//! Fault-injection drills: every injected fault class — worker panic,
//! clean crash, stall, straggler — must end in either a typed error or a
//! policy-driven recovery, never a hang, and the benign classes must not
//! perturb the training trajectory by a single bit. All faults are
//! deterministic (seeded coordinates, no wall-clock dependence), so every
//! drill is reproducible.

use neutronorch::core::checkpoint;
use neutronorch::core::engine::{EngineConfig, SessionError, TrainingEngine};
use neutronorch::core::fault::{FailureAction, FailurePolicy, FaultPlan};
use neutronorch::core::pipeline::PipelineConfig;
use neutronorch::core::replica::{ReplicatedConfig, ReplicatedEngine};
use neutronorch::core::trainer::{ConvergenceTrainer, ReusePolicy, TrainerConfig};
use neutronorch::graph::DatasetSpec;
use neutronorch::nn::LayerKind;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

fn trainer() -> ConvergenceTrainer {
    let ds = DatasetSpec::tiny().build_full();
    let mut cfg = TrainerConfig::convergence_default(
        LayerKind::Gcn,
        ReusePolicy::HotnessAware {
            hot_ratio: 0.25,
            super_batch: 2,
        },
    );
    cfg.batch_size = 48;
    cfg.lr = 0.4;
    ConvergenceTrainer::new(ds, cfg)
}

/// Fault coordinates name a *worker index*; with several samplers racing
/// on the shared claim counter, which worker claims a given step is
/// timing-dependent, so exact-coordinate faults (panic / stall /
/// straggler) only fire deterministically with one sampler worker. The
/// crash fault is pre-claim (fires on any step the worker reaches), so it
/// tolerates — and needs — a racing survivor.
fn engine(sampler_threads: usize, faults: &str) -> TrainingEngine {
    TrainingEngine::new(EngineConfig {
        pipeline: PipelineConfig {
            sampler_threads,
            gather_threads: 1,
            channel_depth: 3,
            h2d_gibps: 0.0,
        },
        gpu_free_bytes: 64 << 20,
        fault_plan: plan(faults),
        stall_timeout: Duration::from_millis(300),
        ..EngineConfig::default()
    })
}

fn replicated(replicas: usize, faults: &str, policy: FailurePolicy) -> ReplicatedEngine {
    ReplicatedEngine::new(ReplicatedConfig {
        replicas,
        fault_plan: plan(faults),
        stall_timeout: Duration::from_millis(300),
        on_replica_failure: policy,
        ..ReplicatedConfig::default()
    })
}

fn plan(faults: &str) -> Option<Arc<FaultPlan>> {
    let plan = FaultPlan::parse(faults).expect("test fault spec");
    (!plan.is_empty()).then(|| Arc::new(plan))
}

fn losses_of(runs: &[f32]) -> Vec<u32> {
    runs.iter().map(|l| l.to_bits()).collect()
}

fn engine_losses(session: &neutronorch::core::engine::SessionReport) -> Vec<u32> {
    losses_of(
        &session
            .epochs
            .iter()
            .map(|r| r.observation.train_loss)
            .collect::<Vec<_>>(),
    )
}

fn replicated_losses(session: &neutronorch::core::replica::ReplicatedSessionReport) -> Vec<u32> {
    losses_of(
        &session
            .epochs
            .iter()
            .map(|r| r.observation.train_loss)
            .collect::<Vec<_>>(),
    )
}

fn ck_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("nock-fault-{}-{tag}.ck", std::process::id()))
}

// ---------------------------------------------------------------------------
// Single-replica engine.
// ---------------------------------------------------------------------------

/// An injected sampler panic fails the session with a typed error naming
/// the stage and carrying the panic payload — the hang-on-panic fix: the
/// poisoned channels unblock every stage, so this returns instead of
/// deadlocking on `recv`.
#[test]
fn engine_worker_panic_is_a_typed_error_not_a_hang() {
    let mut t = trainer();
    let err = engine(1, "panic@r0e1s2")
        .run_session_checked(&mut t, 0, 3)
        .expect_err("panic must fail the session");
    match err {
        SessionError::WorkerPanicked { stage, message } => {
            assert_eq!(stage, "sample");
            assert!(
                message.contains("injected fault"),
                "payload should survive: {message}"
            );
        }
        other => panic!("expected WorkerPanicked, got {other:?}"),
    }
}

/// A sampler that crashes (clean pre-claim exit) is absorbed: the shared
/// claim counter lets the surviving sampler steal its batches, the session
/// completes bit-identically to the fault-free run, and the crash is
/// recorded in the failure timeline.
#[test]
fn engine_sampler_crash_is_absorbed_bit_identically() {
    let mut clean = trainer();
    let reference = engine(2, "").run_session(&mut clean, 0, 3);

    let mut t = trainer();
    let session = engine(2, "crash@r1e1s0")
        .run_session_checked(&mut t, 0, 3)
        .expect("crash must be absorbed");
    assert_eq!(engine_losses(&session), engine_losses(&reference));
    let events: Vec<_> = session
        .epochs
        .iter()
        .flat_map(|r| r.report.failures.iter())
        .collect();
    assert_eq!(events.len(), 1);
    assert_eq!(events[0].replica, 1);
    assert_eq!(events[0].epoch, 1);
    assert_eq!(events[0].action, FailureAction::Observed);
    assert!(events[0].detail.contains("crash"));
}

/// A stalled sampler (alive but never producing) trips the stall timeout
/// with a typed error instead of blocking the train stage forever.
#[test]
fn engine_stall_is_detected_within_the_timeout() {
    let mut t = trainer();
    let err = engine(1, "stall@r0e0s1")
        .run_session_checked(&mut t, 0, 2)
        .expect_err("stall must fail the session");
    match err {
        SessionError::Stalled { epoch, timeout, .. } => {
            assert_eq!(epoch, 0);
            assert_eq!(timeout, Duration::from_millis(300));
        }
        other => panic!("expected Stalled, got {other:?}"),
    }
}

/// A straggler (transient delay) recovers on its own: the session
/// completes bit-identically, with the slowdown visible only in the
/// failure timeline.
#[test]
fn engine_straggler_completes_bit_identically() {
    let mut clean = trainer();
    let reference = engine(1, "").run_session(&mut clean, 0, 3);

    let mut t = trainer();
    let session = engine(1, "straggler@r0e1s0")
        .run_session_checked(&mut t, 0, 3)
        .expect("straggler must complete");
    assert_eq!(engine_losses(&session), engine_losses(&reference));
    let events: Vec<_> = session
        .epochs
        .iter()
        .flat_map(|r| r.report.failures.iter())
        .collect();
    assert_eq!(events.len(), 1);
    assert_eq!(events[0].action, FailureAction::Observed);
    assert!(events[0].detail.contains("straggler"));
}

// ---------------------------------------------------------------------------
// Replicated engine: supervisor + degradation policies.
// ---------------------------------------------------------------------------

/// Under the default `Fail` policy, a panicking replica worker surfaces as
/// a typed `ReplicaDied` error carrying the panic message — detection is
/// count-deterministic, so the reported replica is always the injected one.
#[test]
fn replicated_panic_under_fail_policy_is_a_typed_error() {
    let mut t = trainer();
    let err = replicated(2, "panic@r1e0s1", FailurePolicy::Fail)
        .run_session_checked(&mut t, 0, 2)
        .expect_err("panic must fail the session");
    match err {
        SessionError::ReplicaDied {
            replica,
            epoch,
            detail,
            ..
        } => {
            assert_eq!(replica, 1);
            assert_eq!(epoch, 0);
            assert!(detail.contains("injected fault"), "detail: {detail}");
        }
        other => panic!("expected ReplicaDied, got {other:?}"),
    }
}

/// A stalled replica is detected by the supervisor's channel timeout and,
/// under `Fail`, reported as a typed error naming the replica.
#[test]
fn replicated_stall_under_fail_policy_is_a_typed_error() {
    let mut t = trainer();
    let err = replicated(2, "stall@r0e0s0", FailurePolicy::Fail)
        .run_session_checked(&mut t, 0, 2)
        .expect_err("stall must fail the session");
    match err {
        SessionError::ReplicaDied {
            replica, detail, ..
        } => {
            assert_eq!(replica, 0);
            assert!(detail.contains("stalled"), "detail: {detail}");
        }
        other => panic!("expected ReplicaDied, got {other:?}"),
    }
}

/// Under `DropReplica`, the session sheds the dead replica and finishes
/// with the survivors: every scheduled epoch completes, the drop is in the
/// failure timeline, and the degraded trajectory is deterministic — two
/// identical drills produce bit-identical losses.
#[test]
fn replicated_crash_with_drop_policy_degrades_and_completes() {
    let run = || {
        let mut t = trainer();
        let session = replicated(2, "crash@r1e1s0", FailurePolicy::DropReplica)
            .run_session_checked(&mut t, 0, 3)
            .expect("drop policy must complete");
        assert_eq!(session.epochs.len(), 3);
        let drops: Vec<_> = session
            .epochs
            .iter()
            .flat_map(|r| r.report.failures.iter())
            .filter(|e| e.action == FailureAction::DroppedReplica)
            .cloned()
            .collect();
        assert_eq!(drops.len(), 1, "exactly one replica is dropped");
        assert_eq!(drops[0].replica, 1);
        replicated_losses(&session)
    };
    assert_eq!(run(), run(), "degraded trajectory must be deterministic");
}

/// Under `Restore`, a mid-epoch replica death rolls the session back to
/// the last checkpoint and re-runs it with a replacement worker. The fault
/// is one-shot, so the re-run epoch is clean — and because the checkpoint
/// restore is bit-exact, the final losses equal the fault-free run's.
#[test]
fn replicated_panic_with_restore_policy_matches_the_fault_free_run() {
    let mut clean = trainer();
    let reference = ReplicatedEngine::new(ReplicatedConfig {
        replicas: 2,
        ..ReplicatedConfig::default()
    })
    .run_session(&mut clean, 0, 4);

    let path = ck_path("restore");
    let mut t = trainer();
    let session = ReplicatedEngine::new(ReplicatedConfig {
        replicas: 2,
        fault_plan: plan("panic@r1e2s1"),
        stall_timeout: Duration::from_millis(300),
        on_replica_failure: FailurePolicy::Restore,
        checkpoint_every: 1,
        checkpoint_path: Some(path.clone()),
        ..ReplicatedConfig::default()
    })
    .run_session_checked(&mut t, 0, 4)
    .expect("restore policy must recover");
    std::fs::remove_file(&path).ok();

    assert_eq!(session.epochs.len(), 4);
    assert_eq!(replicated_losses(&session), replicated_losses(&reference));
    let restores: Vec<_> = session
        .epochs
        .iter()
        .flat_map(|r| r.report.failures.iter())
        .filter(|e| e.action == FailureAction::RestoredCheckpoint)
        .collect();
    assert_eq!(restores.len(), 1, "exactly one rollback");
    assert_eq!(restores[0].epoch, 2);
}

/// `Restore` without a checkpoint on disk (death before the first
/// boundary) degrades to a typed checkpoint error, not a hang or a panic.
#[test]
fn restore_policy_without_a_checkpoint_is_a_typed_error() {
    let path = ck_path("no-checkpoint");
    std::fs::remove_file(&path).ok();
    let mut t = trainer();
    let err = ReplicatedEngine::new(ReplicatedConfig {
        replicas: 2,
        fault_plan: plan("panic@r1e0s0"),
        stall_timeout: Duration::from_millis(300),
        on_replica_failure: FailurePolicy::Restore,
        checkpoint_every: 1,
        checkpoint_path: Some(path),
        ..ReplicatedConfig::default()
    })
    .run_session_checked(&mut t, 0, 2)
    .expect_err("no checkpoint to restore from");
    assert!(
        matches!(err, SessionError::Checkpoint(_)),
        "expected Checkpoint error, got {err:?}"
    );
}

/// A replicated straggler completes bit-identically to the fault-free run
/// (the supervisor just waits out the delay) and is visible in the
/// timeline.
#[test]
fn replicated_straggler_completes_bit_identically() {
    let mut clean = trainer();
    let reference = replicated(2, "", FailurePolicy::Fail).run_session(&mut clean, 0, 3);

    let mut t = trainer();
    let session = replicated(2, "straggler@r1e1s0", FailurePolicy::Fail)
        .run_session_checked(&mut t, 0, 3)
        .expect("straggler must complete");
    assert_eq!(replicated_losses(&session), replicated_losses(&reference));
    let events: Vec<_> = session
        .epochs
        .iter()
        .flat_map(|r| r.report.failures.iter())
        .collect();
    assert_eq!(events.len(), 1);
    assert_eq!(events[0].action, FailureAction::Observed);
}

/// Restored sessions keep working after the rollback: the post-restore
/// epochs continue writing checkpoints on schedule, so a later failure
/// could restore again. (Guards the respawn path: replacement workers and
/// fresh channels must leave the session fully functional.)
#[test]
fn session_remains_functional_after_a_restore() {
    let path = ck_path("post-restore");
    let mut t = trainer();
    let digest = checkpoint::config_digest(t.config(), 2);
    let session = ReplicatedEngine::new(ReplicatedConfig {
        replicas: 2,
        fault_plan: plan("panic@r0e1s0"),
        stall_timeout: Duration::from_millis(300),
        on_replica_failure: FailurePolicy::Restore,
        checkpoint_every: 1,
        checkpoint_path: Some(path.clone()),
        ..ReplicatedConfig::default()
    })
    .run_session_checked(&mut t, 0, 3)
    .expect("restore policy must recover");
    assert_eq!(session.epochs.len(), 3);
    // More workers than the initial pair were spawned: the replacement.
    assert!(session.workers_spawned > 2, "replacement worker spawned");
    // The final checkpoint on disk is the last epoch's boundary.
    let ck = checkpoint::load(&path, digest).expect("final checkpoint");
    assert_eq!(ck.next_epoch, 3);
    std::fs::remove_file(&path).ok();
}
