//! The tensor timing hooks (`neutron_tensor::timing`) against a real
//! sequential epoch: when enabled they attribute a meaningful share of the
//! epoch to named kernels without ever over-counting it, and when disabled
//! they record nothing.
//!
//! The hooks are process-global atomics, so everything lives in one `#[test]`
//! in its own integration-test binary — a second concurrent test in the same
//! process would pollute the counters.

use neutronorch::core::pipeline::{PipelineConfig, PipelineExecutor};
use neutronorch::core::trainer::{ConvergenceTrainer, ReusePolicy, TrainerConfig};
use neutronorch::graph::DatasetSpec;
use neutronorch::nn::LayerKind;
use neutronorch::tensor::timing::{self, Kernel};
use std::time::Instant;

fn trainer() -> ConvergenceTrainer {
    let ds = DatasetSpec::tiny().build_full();
    let mut cfg = TrainerConfig::convergence_default(
        LayerKind::Gcn,
        ReusePolicy::HotnessAware {
            hot_ratio: 0.3,
            super_batch: 2,
        },
    );
    cfg.batch_size = 48;
    ConvergenceTrainer::new(ds, cfg)
}

#[test]
fn hooks_attribute_kernel_time_within_the_epoch_and_are_free_when_off() {
    let exec = PipelineExecutor::new(PipelineConfig::default());

    // Disabled (the default): an epoch leaves the counters untouched.
    timing::reset();
    let mut t = trainer();
    let (_, disabled_report) = exec.run_epoch_sequential(&mut t, 0);
    let snap = timing::snapshot();
    assert_eq!(
        snap.total_seconds(),
        0.0,
        "disabled hooks must record nothing"
    );
    assert!(snap.iter().all(|(_, stat)| stat.calls == 0));

    // Enabled: rerun the same epoch on a fresh trainer. The sequential
    // executor drives every stage from the calling thread, so the hooked
    // wall-time segments are disjoint — their sum can never exceed the
    // epoch wall-clock (small tolerance for clock granularity), and the
    // trajectory itself must not notice the instrumentation.
    timing::reset();
    timing::set_enabled(true);
    let mut t = trainer();
    let t0 = Instant::now();
    let (obs, _) = exec.run_epoch_sequential(&mut t, 0);
    let wall = t0.elapsed().as_secs_f64();
    timing::set_enabled(false);
    let snap = timing::snapshot();

    let mut t_ref = trainer();
    let (obs_ref, _) = exec.run_epoch_sequential(&mut t_ref, 0);
    assert_eq!(
        obs.train_loss, obs_ref.train_loss,
        "enabling the hooks changed the trajectory"
    );

    for kernel in [
        Kernel::Matmul,
        Kernel::MatmulAtB,
        Kernel::MatmulABt,
        Kernel::Gather,
        Kernel::Aggregate,
    ] {
        let stat = snap.get(kernel);
        assert!(
            stat.calls > 0,
            "a GCN epoch must exercise the {} kernel",
            kernel.name()
        );
    }
    let total = snap.total_seconds();
    assert!(total > 0.0, "enabled hooks recorded no time");
    assert!(
        total <= wall * 1.05 + 1e-3,
        "kernel seconds {total} exceed the epoch wall-clock {wall}"
    );

    // The pipeline's own stage breakdown obeys the same accounting: on the
    // sequential path every stage runs inline on one thread, so
    // sample + gather + transfer + train sums to the epoch wall exactly
    // (train is defined as the wall minus the staged prefix), and the
    // train stage's "starved" time is exactly that staged prefix.
    let r = &disabled_report;
    let staged = r.sample_seconds + r.gather_collect_seconds + r.transfer_seconds;
    assert_eq!(r.train_wait_seconds, staged);
    let stage_sum = staged + r.train_seconds;
    assert!(
        (stage_sum - r.epoch_seconds).abs() <= 1e-9_f64.max(r.epoch_seconds * 1e-9),
        "sequential stage sum {stage_sum} != epoch wall {}",
        r.epoch_seconds
    );
}
