//! Property tests of the orchestrators' shared workload arithmetic
//! ([`neutronorch::core::orchestrator::Lens`]): degenerate shapes — single
//! layer, batch size 1, empty hot set — must never panic and must keep the
//! basic conservation invariants.

use neutronorch::core::orchestrator::Lens;
use neutronorch::core::profile::{WorkloadConfig, WorkloadProfile};
use neutronorch::graph::DatasetSpec;
use neutronorch::nn::LayerKind;
use proptest::prelude::*;

proptest! {
    // Each case builds a replica profile (graph generation + pre-sampling),
    // so keep the case count moderate.
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// `train_flops_layer_split` and `paper_layer_sizes` over the whole
    /// degenerate-config lattice: `layers == 1`, `batch_size == 1`, and
    /// `hot_ratio == 0` (empty hot set) included.
    #[test]
    fn lens_arithmetic_survives_degenerate_shapes(
        layers in 1usize..4,
        batch_size in 1usize..40,
        hot_mode in 0u8..3,
        seeds in 1usize..2048,
    ) {
        let mut cfg = WorkloadConfig::paper_default(LayerKind::Gcn);
        cfg.layers = layers;
        cfg.batch_size = batch_size;
        cfg.hot_ratio = match hot_mode {
            0 => 0.0, // empty hot set
            1 => 0.15,
            _ => 1.0, // everything hot
        };
        cfg.profiled_batches = 2;
        let profile = WorkloadProfile::build(&DatasetSpec::tiny(), &cfg);
        let lens = Lens::new(&profile);
        for i in 0..profile.per_batch.len() {
            let total = lens.train_flops(i);
            let (bottom_cold, upper) = lens.train_flops_layer_split(i);
            prop_assert!(
                bottom_cold + upper <= total,
                "batch {i}: split {bottom_cold}+{upper} exceeds total {total}"
            );
            if layers == 1 {
                prop_assert_eq!(upper, 0, "single-layer model has no upper layers");
            } else {
                prop_assert!(upper > 0, "multi-layer model must have upper-layer work");
            }
            if hot_mode == 0 {
                // Empty hot set: nothing is offloaded, so the cold bottom
                // covers the full bottom layer.
                prop_assert!(bottom_cold > 0);
            }
            prop_assert!(lens.activation_bytes(i) > 0);
            prop_assert!(lens.bottom_feature_bytes(i) > 0);
        }
        let sizes = lens.paper_layer_sizes(seeds);
        prop_assert_eq!(sizes.len(), layers, "one (dst, src) pair per layer");
        for (l, &(dst, src)) in sizes.iter().enumerate() {
            prop_assert!(dst.is_finite() && src.is_finite(), "layer {l} sizes not finite");
            prop_assert!(dst >= 1.0, "layer {l} dst {dst} collapsed");
            prop_assert!(src > 0.0, "layer {l} src {src} collapsed");
        }
        // Top layer dst is the seed count itself.
        prop_assert!((sizes[layers - 1].0 - seeds as f64).abs() < 1e-9);
        prop_assert!(lens.paper_batch_bytes(seeds) > 0);
        prop_assert!(lens.param_bytes() > 0);
        let (ratio, hit) = lens.cache_plan(1 << 20, false);
        prop_assert!((0.0..=1.0).contains(&ratio));
        prop_assert!((0.0..=1.0 + 1e-9).contains(&hit));
    }

    /// The batch-size-1 corner specifically: every per-batch quantity stays
    /// well-formed when each batch holds a single training vertex.
    #[test]
    fn single_vertex_batches_never_panic(layers in 1usize..4, seed_pick in 0u64..64) {
        let mut cfg = WorkloadConfig::paper_default(LayerKind::Sage);
        cfg.layers = layers;
        cfg.batch_size = 1;
        cfg.profiled_batches = 3;
        cfg.seed ^= seed_pick;
        let profile = WorkloadProfile::build(&DatasetSpec::tiny(), &cfg);
        let lens = Lens::new(&profile);
        prop_assert!(profile.num_batches >= 1);
        for i in 0..profile.per_batch.len() {
            let (bottom_cold, upper) = lens.train_flops_layer_split(i);
            prop_assert!(bottom_cold + upper <= lens.train_flops(i));
        }
        let sizes = lens.paper_layer_sizes(1);
        prop_assert_eq!(sizes.len(), layers);
        prop_assert!((sizes[layers - 1].0 - 1.0).abs() < 1e-9);
    }
}
