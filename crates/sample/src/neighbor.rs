//! Uniform neighbor sampling (the paper's Algorithm 1, lines 3–7).

use crate::block::Block;
use crate::fanout::Fanout;
use neutron_graph::{Csr, VertexId};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::collections::HashMap;

/// Uniform fanout neighbor sampler.
///
/// For each destination vertex, samples `min(fanout, degree)` distinct
/// in-neighbors without replacement. Deterministic given the seed passed to
/// [`NeighborSampler::sample_batch`].
#[derive(Clone, Debug)]
pub struct NeighborSampler {
    fanout: Fanout,
}

impl NeighborSampler {
    /// Creates a sampler with the given per-layer fanout.
    pub fn new(fanout: Fanout) -> Self {
        Self { fanout }
    }

    /// The sampler's fanout.
    pub fn fanout(&self) -> &Fanout {
        &self.fanout
    }

    /// Samples the multi-hop blocks for one batch of `seeds`.
    ///
    /// Returns blocks **bottom-first**: `blocks[0]` reads raw features,
    /// `blocks.last()` produces the seed embeddings. The reverse traversal
    /// (top → bottom) follows Algorithm 1's `for l = L to 1`.
    pub fn sample_batch(&self, g: &Csr, seeds: &[VertexId], seed: u64) -> Vec<Block> {
        let mut rng = StdRng::seed_from_u64(seed);
        let layers = self.fanout.layers();
        let mut blocks = Vec::with_capacity(layers);
        let mut frontier: Vec<VertexId> = seeds.to_vec();
        for l in (0..layers).rev() {
            let block = self.sample_one_hop(g, &frontier, self.fanout.at(l), &mut rng);
            frontier = block.src().to_vec();
            blocks.push(block);
        }
        blocks.reverse();
        blocks
    }

    /// Samples a single hop: one [`Block`] whose dst are `frontier`.
    pub fn sample_one_hop(
        &self,
        g: &Csr,
        frontier: &[VertexId],
        fanout: usize,
        rng: &mut StdRng,
    ) -> Block {
        let dst: Vec<VertexId> = frontier.to_vec();
        let mut src: Vec<VertexId> = dst.clone();
        let mut local: HashMap<VertexId, u32> = dst
            .iter()
            .enumerate()
            .map(|(i, &v)| (v, i as u32))
            .collect();
        let mut offsets = Vec::with_capacity(dst.len() + 1);
        offsets.push(0u32);
        let mut indices = Vec::with_capacity(dst.len() * fanout);
        let mut scratch: Vec<VertexId> = Vec::with_capacity(fanout);
        for &v in &dst {
            scratch.clear();
            sample_distinct_neighbors(g, v, fanout, rng, &mut scratch);
            for &u in &scratch {
                let next = src.len() as u32;
                let idx = *local.entry(u).or_insert_with(|| {
                    src.push(u);
                    next
                });
                indices.push(idx);
            }
            offsets.push(indices.len() as u32);
        }
        Block::new(dst, src, offsets, indices)
    }
}

/// Samples up to `fanout` distinct in-neighbors of `v` into `out`.
///
/// Degree ≤ fanout takes the whole neighborhood (DGL semantics); otherwise a
/// partial Fisher–Yates over neighbor positions picks `fanout` distinct ones.
fn sample_distinct_neighbors(
    g: &Csr,
    v: VertexId,
    fanout: usize,
    rng: &mut StdRng,
    out: &mut Vec<VertexId>,
) {
    let neigh = g.neighbors(v);
    if neigh.len() <= fanout {
        out.extend_from_slice(neigh);
        return;
    }
    // Floyd's algorithm: k distinct indices from [0, n).
    let n = neigh.len();
    let k = fanout;
    let mut chosen: Vec<usize> = Vec::with_capacity(k);
    for j in (n - k)..n {
        let t = rng.random_range(0..=j);
        if chosen.contains(&t) {
            chosen.push(j);
        } else {
            chosen.push(t);
        }
    }
    out.extend(chosen.into_iter().map(|i| neigh[i]));
}

#[cfg(test)]
mod tests {
    use super::*;
    use neutron_graph::generate::erdos_renyi;

    fn line_graph(n: usize) -> Csr {
        // v aggregates from v-1.
        let adj = (0..n)
            .map(|v| {
                if v == 0 {
                    vec![]
                } else {
                    vec![(v - 1) as VertexId]
                }
            })
            .collect();
        Csr::from_adjacency(adj)
    }

    #[test]
    fn blocks_are_bottom_first_and_chain() {
        let g = erdos_renyi(200, 3000, 1);
        let s = NeighborSampler::new(Fanout::new(vec![4, 3, 2]));
        let blocks = s.sample_batch(&g, &[0, 1, 2, 3], 9);
        assert_eq!(blocks.len(), 3);
        // Top block's dst are the seeds.
        assert_eq!(blocks[2].dst(), &[0, 1, 2, 3]);
        // Each block's dst equals the next-upper block's src.
        assert_eq!(blocks[1].dst(), blocks[2].src());
        assert_eq!(blocks[0].dst(), blocks[1].src());
        for b in &blocks {
            assert!(b.validate().is_ok());
        }
    }

    #[test]
    fn fanout_bounds_sampled_degree() {
        let g = erdos_renyi(300, 9000, 2);
        let s = NeighborSampler::new(Fanout::new(vec![5]));
        let blocks = s.sample_batch(&g, &(0..50).collect::<Vec<_>>(), 3);
        let b = &blocks[0];
        for i in 0..b.num_dst() {
            let deg = g.degree(b.dst()[i]);
            assert!(b.sampled_degree(i) <= 5);
            assert_eq!(b.sampled_degree(i), deg.min(5));
        }
    }

    #[test]
    fn sampled_neighbors_are_distinct_and_real() {
        let g = erdos_renyi(100, 3000, 3);
        let s = NeighborSampler::new(Fanout::new(vec![8]));
        let blocks = s.sample_batch(&g, &(0..30).collect::<Vec<_>>(), 4);
        let b = &blocks[0];
        for i in 0..b.num_dst() {
            let v = b.dst()[i];
            let mut seen = std::collections::HashSet::new();
            for &li in b.neighbors_local(i) {
                let u = b.src()[li as usize];
                assert!(seen.insert(u), "duplicate neighbor {u} for {v}");
                assert!(
                    g.neighbors(v).contains(&u),
                    "{u} not a real neighbor of {v}"
                );
            }
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let g = erdos_renyi(150, 4000, 5);
        let s = NeighborSampler::new(Fanout::new(vec![4, 4]));
        let a = s.sample_batch(&g, &[7, 8, 9], 42);
        let b = s.sample_batch(&g, &[7, 8, 9], 42);
        assert_eq!(a[0].src(), b[0].src());
        assert_eq!(a[1].num_edges(), b[1].num_edges());
        let c = s.sample_batch(&g, &[7, 8, 9], 43);
        // Different seed should (overwhelmingly) differ somewhere.
        assert!(a[0].src() != c[0].src() || a[0].num_edges() != c[0].num_edges());
    }

    #[test]
    fn line_graph_expansion_adds_one_vertex_per_hop() {
        let g = line_graph(10);
        let s = NeighborSampler::new(Fanout::new(vec![1, 1]));
        let blocks = s.sample_batch(&g, &[5], 0);
        assert_eq!(blocks[1].src(), &[5, 4]);
        assert_eq!(blocks[0].src(), &[5, 4, 3]);
    }

    #[test]
    fn isolated_seed_produces_self_only_block() {
        let g = Csr::from_adjacency(vec![vec![], vec![]]);
        let s = NeighborSampler::new(Fanout::new(vec![3]));
        let blocks = s.sample_batch(&g, &[0], 1);
        assert_eq!(blocks[0].num_src(), 1);
        assert_eq!(blocks[0].num_edges(), 0);
    }
}
