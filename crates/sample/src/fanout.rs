//! Fanout specification.

/// Per-layer neighbor sampling fanout, **bottom layer first** — `[25, 10,
/// 5]` is the paper's default (§5.1): 25 neighbors at the bottom (feature)
/// layer, 5 at the layer touching the training vertices.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Fanout(Vec<usize>);

impl Fanout {
    /// Builds a fanout from bottom-first counts. Must be non-empty.
    pub fn new(bottom_first: Vec<usize>) -> Self {
        assert!(!bottom_first.is_empty(), "fanout needs at least one layer");
        assert!(
            bottom_first.iter().all(|&f| f > 0),
            "fanouts must be positive"
        );
        Self(bottom_first)
    }

    /// The paper's default `[25, 10, 5]` for 3-layer models, extended with
    /// 5s beyond three layers ("sampling fan-out beyond 3 layers will be set
    /// to 5", §5.1).
    pub fn paper_default(layers: usize) -> Self {
        assert!(layers >= 1);
        // Base pattern [25, 10, 5] bottom-first; deeper models keep 5s on
        // the extra bottom hops, shallower ones trim from the top side.
        let mut v = vec![5usize; layers];
        if layers >= 3 {
            v[layers - 3] = 25;
            v[layers - 2] = 10;
        } else if layers == 2 {
            v[0] = 10;
        }
        Self(v)
    }

    /// Number of model layers.
    pub fn layers(&self) -> usize {
        self.0.len()
    }

    /// Fanout of layer `l` (0 = bottom).
    pub fn at(&self, l: usize) -> usize {
        self.0[l]
    }

    /// Bottom-first slice.
    pub fn as_slice(&self) -> &[usize] {
        &self.0
    }

    /// Upper bound on the number of source vertices per seed after full
    /// expansion (product of (fanout+1) per layer) — used for capacity
    /// pre-allocation, not correctness.
    pub fn expansion_bound(&self) -> usize {
        self.0.iter().map(|f| f + 1).product()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_three_layers() {
        assert_eq!(Fanout::paper_default(3).as_slice(), &[25, 10, 5]);
    }

    #[test]
    fn paper_default_extends_deeper_models_with_fives() {
        assert_eq!(Fanout::paper_default(4).as_slice(), &[5, 25, 10, 5]);
        assert_eq!(Fanout::paper_default(5).as_slice(), &[5, 5, 25, 10, 5]);
    }

    #[test]
    fn paper_default_shallow_models() {
        assert_eq!(Fanout::paper_default(1).as_slice(), &[5]);
        assert_eq!(Fanout::paper_default(2).as_slice(), &[10, 5]);
    }

    #[test]
    fn expansion_bound_multiplies() {
        let f = Fanout::new(vec![2, 3]);
        assert_eq!(f.expansion_bound(), 12);
    }

    #[test]
    #[should_panic(expected = "at least one layer")]
    fn rejects_empty() {
        let _ = Fanout::new(vec![]);
    }
}
