//! Offline stand-in for the `criterion` benchmark harness.
//!
//! Implements the subset the workspace's benches use: [`Criterion`],
//! [`Criterion::bench_function`], [`Criterion::benchmark_group`] (with
//! `sample_size` / `warm_up_time` / `measurement_time` / `finish`), and the
//! [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Timing methodology is deliberately simple — one warm-up call followed by
//! a fixed small number of timed iterations, reporting the minimum —
//! because without crates.io access there is no statistics machinery to
//! lean on. Min-of-N is the robust choice on a noisy shared machine: every
//! source of interference (scheduler preemption, frequency shifts, cache
//! pollution from neighbours) only ever *adds* time, so the minimum is the
//! best available estimate of the code's intrinsic cost. The numbers are
//! indicative, not publication-grade.
//!
//! When the `CRITERION_JSON` environment variable names a file, each
//! benchmark also appends one JSON line
//! (`{"id":"...","min_ns":...,"mean_ns":...,"iters":N}`) so harnesses like
//! `xtask bench-diff` can consume results without scraping stdout.

use std::time::{Duration, Instant};

/// Timed iterations per benchmark (after one warm-up call).
const TIMED_ITERS: u32 = 7;

/// Benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Runs `f` with a [`Bencher`] and prints the minimum iteration time.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            min: Duration::ZERO,
            mean: Duration::ZERO,
        };
        f(&mut b);
        println!("bench {id:<44} {:>12.3?} (min of {TIMED_ITERS})", b.min);
        if let Ok(path) = std::env::var("CRITERION_JSON") {
            if !path.is_empty() {
                let line = format!(
                    "{{\"id\":{},\"min_ns\":{},\"mean_ns\":{},\"iters\":{}}}\n",
                    json_string(id),
                    b.min.as_nanos(),
                    b.mean.as_nanos(),
                    TIMED_ITERS
                );
                use std::io::Write;
                if let Ok(mut f) = std::fs::OpenOptions::new()
                    .create(true)
                    .append(true)
                    .open(&path)
                {
                    let _ = f.write_all(line.as_bytes());
                }
            }
        }
        self
    }

    /// Opens a named benchmark group; configuration methods are accepted
    /// and ignored.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            c: self,
            name: name.to_string(),
        }
    }
}

/// Minimal JSON string escaping for benchmark ids.
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Per-benchmark iteration driver.
pub struct Bencher {
    min: Duration,
    mean: Duration,
}

impl Bencher {
    /// Times `f` over a warm-up call plus [`TIMED_ITERS`] individually
    /// measured calls, keeping both the minimum and the mean.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        std::hint::black_box(f());
        let mut min = Duration::MAX;
        let mut total = Duration::ZERO;
        for _ in 0..TIMED_ITERS {
            let start = Instant::now();
            std::hint::black_box(f());
            let dt = start.elapsed();
            total += dt;
            min = min.min(dt);
        }
        self.min = min;
        self.mean = total / TIMED_ITERS;
    }
}

/// A named group of benchmarks.
pub struct BenchmarkGroup<'a> {
    c: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; sampling effort is fixed here.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility.
    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Accepted for API compatibility.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Runs a benchmark within the group.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id);
        self.c.bench_function(&full, f);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Declares a group function running the listed benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_and_group_chains() {
        let mut c = Criterion::default();
        let mut runs = 0u32;
        c.bench_function("smoke", |b| {
            b.iter(|| {
                runs += 1;
                runs
            })
        });
        assert_eq!(runs, 1 + TIMED_ITERS);
        let mut group = c.benchmark_group("g");
        group.sample_size(10).warm_up_time(Duration::from_millis(1));
        group.bench_function("inner", |b| b.iter(|| 1 + 1));
        group.finish();
    }
}
