//! Evaluation metrics.

use neutron_tensor::softmax::row_argmax;
use neutron_tensor::Matrix;

/// Fraction of rows whose argmax matches the label.
pub fn accuracy(logits: &Matrix, labels: &[usize]) -> f64 {
    assert_eq!(logits.rows(), labels.len());
    if labels.is_empty() {
        return 0.0;
    }
    let preds = row_argmax(logits);
    let correct = preds.iter().zip(labels).filter(|(p, l)| p == l).count();
    correct as f64 / labels.len() as f64
}

/// Micro-averaged F1 == accuracy for single-label classification; kept as a
/// named alias because the GNN literature reports "micro-F1".
pub fn micro_f1(logits: &Matrix, labels: &[usize]) -> f64 {
    accuracy(logits, labels)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_predictions_score_one() {
        let logits = Matrix::from_rows(&[&[9.0, 0.0], &[0.0, 9.0]]);
        assert_eq!(accuracy(&logits, &[0, 1]), 1.0);
    }

    #[test]
    fn all_wrong_scores_zero() {
        let logits = Matrix::from_rows(&[&[9.0, 0.0], &[0.0, 9.0]]);
        assert_eq!(accuracy(&logits, &[1, 0]), 0.0);
    }

    #[test]
    fn partial_credit() {
        let logits = Matrix::from_rows(&[&[9.0, 0.0], &[0.0, 9.0]]);
        assert_eq!(accuracy(&logits, &[0, 0]), 0.5);
        assert_eq!(micro_f1(&logits, &[0, 0]), 0.5);
    }

    #[test]
    fn empty_batch_is_zero() {
        let logits = Matrix::zeros(0, 3);
        assert_eq!(accuracy(&logits, &[]), 0.0);
    }
}
