//! Fig 16 — epoch-to-accuracy convergence: exact training vs GAS-style
//! unbounded reuse vs NeutronOrch's bounded staleness, with GCN and GAT on
//! the Reddit and Products convergence replicas.
//!
//! Unlike every other experiment, this one is *numeric*: embeddings are
//! really reused, gradients really cut, accuracy really measured.

use crate::util::render_table;
use crate::Setup;
use neutron_core::runner::{fig16_policies, run_convergence, ConvergenceCurve};
use neutron_graph::DatasetSpec;
use neutron_nn::LayerKind;

/// One convergence panel (one subplot of Fig 16).
#[derive(Clone, Debug)]
pub struct Fig16Panel {
    pub title: String,
    pub curves: Vec<ConvergenceCurve>,
}

/// Computes all four panels.
pub fn data(setup: Setup) -> Vec<Fig16Panel> {
    let epochs = setup.convergence_epochs();
    let super_batch = 4;
    let cells: Vec<(LayerKind, DatasetSpec)> = vec![
        (LayerKind::Gcn, DatasetSpec::reddit_convergence()),
        (LayerKind::Gcn, DatasetSpec::products_convergence()),
        (LayerKind::Gat, DatasetSpec::reddit_convergence()),
        (LayerKind::Gat, DatasetSpec::products_convergence()),
    ];
    cells
        .into_iter()
        .map(|(kind, spec)| {
            let curves = fig16_policies(super_batch)
                .into_iter()
                .map(|policy| run_convergence(&spec, kind, policy, epochs))
                .collect();
            Fig16Panel {
                title: format!("{}-{}", kind.name(), spec.name),
                curves,
            }
        })
        .collect()
}

/// Renders Fig 16 as per-panel accuracy tables.
pub fn run(setup: Setup) -> String {
    let mut out = String::new();
    for panel in data(setup) {
        let epochs = panel.curves[0].epochs.len();
        let marks: Vec<usize> = if epochs <= 5 {
            (0..epochs).collect()
        } else {
            vec![0, epochs / 4, epochs / 2, 3 * epochs / 4, epochs - 1]
        };
        let headers: Vec<String> = std::iter::once("policy".to_string())
            .chain(marks.iter().map(|e| format!("ep{e}")))
            .chain(["best".to_string(), "max-stale".to_string()])
            .collect();
        let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
        let rows: Vec<Vec<String>> = panel
            .curves
            .iter()
            .map(|c| {
                std::iter::once(c.label.to_string())
                    .chain(
                        marks
                            .iter()
                            .map(|&e| format!("{:.3}", c.epochs[e].test_accuracy)),
                    )
                    .chain([
                        format!("{:.3}", c.best_accuracy()),
                        c.max_staleness().to_string(),
                    ])
                    .collect()
            })
            .collect();
        out.push_str(&render_table(
            &format!("Fig 16: epoch-to-accuracy, {}", panel.title),
            &header_refs,
            &rows,
        ));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use neutron_core::runner;
    use neutron_core::trainer::ReusePolicy;

    /// A smaller single-panel variant so the test stays fast.
    #[test]
    fn neutronorch_tracks_exact_and_respects_bound() {
        let spec = DatasetSpec::reddit_convergence();
        let epochs = 8;
        let exact = runner::run_convergence(&spec, LayerKind::Gcn, ReusePolicy::Exact, epochs);
        let ours = runner::run_convergence(
            &spec,
            LayerKind::Gcn,
            ReusePolicy::HotnessAware {
                hot_ratio: 0.2,
                super_batch: 4,
            },
            epochs,
        );
        assert!(
            exact.best_accuracy() > 0.55,
            "exact must learn: {}",
            exact.best_accuracy()
        );
        // Paper: accuracy loss no more than 1%; allow replica slack.
        assert!(
            ours.best_accuracy() > exact.best_accuracy() - 0.05,
            "ours {} vs exact {}",
            ours.best_accuracy(),
            exact.best_accuracy()
        );
        assert!(
            ours.max_staleness() < 8,
            "bound 2n-1 = 7 violated: {}",
            ours.max_staleness()
        );
    }
}
