//! GPU feature-cache bookkeeping (hit/miss accounting under a byte budget).

use crate::policy::CacheRanking;
use neutron_graph::VertexId;

/// A static GPU feature cache: the top-ranked vertices that fit in the byte
/// budget. Tracks hit/miss counts for transfer-volume accounting (Fig 6c,
/// Fig 13).
#[derive(Clone, Debug)]
pub struct FeatureCache {
    cached: Vec<bool>,
    num_cached: usize,
    row_bytes: u64,
    hits: u64,
    misses: u64,
}

impl FeatureCache {
    /// Fills the cache from `ranking` until `budget_bytes` is exhausted.
    pub fn fill(
        ranking: &CacheRanking,
        num_vertices: usize,
        row_bytes: u64,
        budget_bytes: u64,
    ) -> Self {
        let capacity = budget_bytes.checked_div(row_bytes).unwrap_or(0) as usize;
        let mut cached = vec![false; num_vertices];
        let mut num_cached = 0;
        for &v in ranking.top(capacity) {
            if !cached[v as usize] {
                cached[v as usize] = true;
                num_cached += 1;
            }
        }
        Self {
            cached,
            num_cached,
            row_bytes,
            hits: 0,
            misses: 0,
        }
    }

    /// Number of cached vertices.
    pub fn len(&self) -> usize {
        self.num_cached
    }

    /// True when nothing fits.
    pub fn is_empty(&self) -> bool {
        self.num_cached == 0
    }

    /// Cached fraction of all vertices (the paper's "cache ratio").
    pub fn cache_ratio(&self) -> f64 {
        if self.cached.is_empty() {
            0.0
        } else {
            self.num_cached as f64 / self.cached.len() as f64
        }
    }

    /// Bytes the cache occupies on the device.
    pub fn bytes(&self) -> u64 {
        self.num_cached as u64 * self.row_bytes
    }

    /// Records an access; returns true on hit.
    pub fn access(&mut self, v: VertexId) -> bool {
        if self.cached[v as usize] {
            self.hits += 1;
            true
        } else {
            self.misses += 1;
            false
        }
    }

    /// Records a batch of accesses, returning the number of misses.
    pub fn access_all(&mut self, vs: &[VertexId]) -> u64 {
        let mut miss = 0;
        for &v in vs {
            if !self.access(v) {
                miss += 1;
            }
        }
        miss
    }

    /// Hit rate over all recorded accesses.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// (hits, misses) counters.
    pub fn counters(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{CachePolicy, PreSamplePolicy};
    use neutron_sample::HotnessRanking;

    fn ranking() -> CacheRanking {
        // hotness: v1 > v2 > v0 > v3
        let h = HotnessRanking::from_counts(vec![2, 9, 5, 0]);
        // Leak-free: build via policy to keep types simple.
        let r = PreSamplePolicy::new(&h).rank();
        r
    }

    #[test]
    fn budget_limits_cached_vertices() {
        let r = ranking();
        let cache = FeatureCache::fill(&r, 4, 100, 250);
        assert_eq!(cache.len(), 2, "250 B / 100 B rows = 2 slots");
        assert_eq!(cache.bytes(), 200);
        assert!((cache.cache_ratio() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn hottest_vertices_occupy_the_slots() {
        let r = ranking();
        let mut cache = FeatureCache::fill(&r, 4, 100, 250);
        assert!(cache.access(1));
        assert!(cache.access(2));
        assert!(!cache.access(0));
        assert!(!cache.access(3));
        assert_eq!(cache.counters(), (2, 2));
        assert!((cache.hit_rate() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn zero_budget_caches_nothing() {
        let r = ranking();
        let mut cache = FeatureCache::fill(&r, 4, 100, 0);
        assert!(cache.is_empty());
        assert_eq!(cache.access_all(&[0, 1, 2, 3]), 4);
    }

    #[test]
    fn oversized_budget_caches_everything() {
        let r = ranking();
        let cache = FeatureCache::fill(&r, 4, 100, 10_000);
        assert_eq!(cache.len(), 4);
        assert!((cache.cache_ratio() - 1.0).abs() < 1e-9);
    }
}
