//! GNNAutoScale-like orchestrator: historical embeddings for **all**
//! vertices, unbounded staleness within an epoch.
//!
//! GAS trains each layer over the batch's *full 1-hop* neighborhood (no
//! recursive sampling) and substitutes historical embeddings for
//! out-of-batch neighbors, pushing refreshed embeddings back to host memory
//! every batch. That buys small sampled subgraphs at the price of heavy
//! host↔device embedding traffic (§5.2 comparison 5) and a host-side store
//! of every layer's embeddings for every vertex.

use super::{mean_util, single_gpu_parts};
use crate::orchestrator::{Lens, Orchestrator};
use crate::profile::WorkloadProfile;
use crate::report::EpochReport;
use neutron_hetero::{CostModel, HardwareSpec, MemLedger, OomError, TaskKind};
use neutron_nn::flops;

/// GNNAutoScale-like baseline (single GPU only, as in the paper).
#[derive(Clone, Debug)]
pub struct GasLike;

impl Orchestrator for GasLike {
    fn name(&self) -> String {
        "GAS".into()
    }

    fn simulate_epoch(
        &self,
        profile: &WorkloadProfile,
        hw: &HardwareSpec,
    ) -> Result<EpochReport, OomError> {
        let lens = Lens::new(profile);
        let cm = CostModel::new(hw.clone());
        let layers = profile.config.layers;
        let hidden_row = profile.spec.hidden_row_bytes();
        // Host holds the feature matrix plus staging buffers (paper scale).
        let mut host = MemLedger::new(hw.cpu.mem_bytes);
        host.alloc("features", lens.paper_feature_bytes())?;
        // GAS pins the historical embeddings of *every* vertex at *every*
        // layer in GPU memory for fast pull/push — its scalability wall
        // (§5.2 comparison 5): this is what OOMs on wide, large graphs.
        let mut mem = MemLedger::new(hw.gpu.mem_bytes);
        mem.alloc("params", lens.param_bytes())?;
        mem.alloc(
            "historical-embeddings",
            profile.spec.paper_vertices * hidden_row * layers as u64,
        )?;
        mem.alloc(
            "batch",
            2 * lens.paper_one_hop_bytes(profile.config.batch_size),
        )?;

        let mut parts = single_gpu_parts(hw);
        let mut h2d_bytes = 0u64;
        for i in 0..profile.num_batches {
            let oh = profile.one_hop_stats(i);
            let seeds = profile.seeds(i) as u64;
            // Gather: features of the 1-hop set + stale embeddings of
            // out-of-batch neighbors for every layer.
            let pull_bytes = oh.src as u64 * profile.spec.feature_row_bytes()
                + (oh.src as u64).saturating_sub(seeds) * hidden_row * (layers as u64 - 1).max(1);
            let fc = parts.sched.task(
                parts.cpu,
                TaskKind::GatherCollect,
                cm.cpu_collect(pull_bytes),
                "cpu:gather",
                &[],
            );
            let ft = parts.sched.task(
                parts.h2d,
                TaskKind::Transfer,
                cm.pcie_transfer(pull_bytes),
                "pcie:h2d",
                &[fc],
            );
            h2d_bytes += pull_bytes;
            // Train: every layer works on the 1-hop set (no expansion).
            let train_flops: u64 = lens
                .dims
                .iter()
                .map(|&(di, dn)| {
                    flops::layer_train_flops(
                        profile.config.kind,
                        seeds,
                        oh.src as u64,
                        oh.edges as u64,
                        di as u64,
                        dn as u64,
                    )
                })
                .sum();
            let t = parts.sched.task(
                parts.gpu,
                TaskKind::Train,
                cm.gpu_train(train_flops, seeds),
                "gpu:train",
                &[ft],
            );
            // Push refreshed embeddings back to the host store (D2H).
            let push_bytes = seeds * hidden_row * layers as u64;
            parts.sched.task(
                parts.d2h,
                TaskKind::Transfer,
                cm.pcie_transfer(push_bytes),
                "pcie:d2h",
                &[t],
            );
        }
        let run = parts.sched.run();
        Ok(EpochReport::from_run(
            self.name(),
            &run,
            mean_util(&run, "cpu"),
            mean_util(&run, "gpu"),
            h2d_bytes,
            mem.used(),
            profile.num_batches,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baselines::Case1Dgl;
    use crate::profile::WorkloadConfig;
    use neutron_graph::DatasetSpec;
    use neutron_nn::LayerKind;

    fn fixture() -> (WorkloadProfile, HardwareSpec) {
        let mut cfg = WorkloadConfig::paper_default(LayerKind::Gcn);
        cfg.batch_size = 64;
        cfg.layers = 2;
        cfg.profiled_batches = 2;
        let spec = DatasetSpec::tiny();
        let profile = WorkloadProfile::build(&spec, &cfg);
        let hw = HardwareSpec::v100_server(1.0);
        (profile, hw)
    }

    #[test]
    fn gas_runs_and_moves_embeddings_both_ways() {
        let (profile, hw) = fixture();
        let r = GasLike.simulate_epoch(&profile, &hw).unwrap();
        assert!(r.epoch_seconds > 0.0);
        assert!(r.transfer_seconds > 0.0, "GAS is transfer-heavy");
    }

    #[test]
    fn gas_avoids_multi_hop_sampling_entirely() {
        let (profile, hw) = fixture();
        let r = GasLike.simulate_epoch(&profile, &hw).unwrap();
        assert_eq!(
            r.sample_seconds, 0.0,
            "GAS trains on 1-hop sets, no sampler"
        );
    }

    #[test]
    fn gas_transfers_more_than_dgl_per_epoch_on_dense_replicas() {
        // The paper attributes GAS's losses to frequent CPU-GPU embedding
        // traffic; on the homophilous tiny replica the 1-hop pull + per-layer
        // histories outweigh DGL's sampled-feature transfers.
        let (profile, hw) = fixture();
        let gas = GasLike.simulate_epoch(&profile, &hw).unwrap();
        let dgl = Case1Dgl { pipelined: true }
            .simulate_epoch(&profile, &hw)
            .unwrap();
        assert!(
            gas.h2d_bytes > dgl.h2d_bytes / 2,
            "GAS h2d {} should be at least comparable to DGL {}",
            gas.h2d_bytes,
            dgl.h2d_bytes
        );
    }
}
