//! The cache-keyed gather stage: partitioning each batch's deduped source
//! vertices into GPU-cache hits and host misses, so the hybrid planner's
//! decisions (§4.1.3) actually change measured transfer volume (Fig 6c,
//! Fig 13) instead of only moving refresh compute between devices.
//!
//! The flow per batch:
//!
//! ```text
//! blocks[0].src() --probe cache--> hits   (rows already device-resident)
//!                                  misses (host gather -> H2D transfer)
//! transfer charges *miss* bytes only; after the transfer the train stage
//! assembles the full feature matrix device-side from both halves.
//! ```
//!
//! Bit-identity: assembly reproduces, float for float, the matrix a full
//! host gather would have produced (cache rows are verbatim copies of the
//! host rows), so training results are independent of the cache budget —
//! only the byte accounting changes.

use crate::trainer::PreparedBatch;
use neutron_cache::FeatureCache;
use neutron_graph::{Dataset, VertexId};
use neutron_sample::Block;
use neutron_tensor::Matrix;

/// One batch's gathered features, split by cache residency. `miss` holds
/// the host-gathered rows (the only feature bytes the transfer stage must
/// ship); `hit_pos`/`miss_pos` are local positions into the batch's source
/// list, together covering every source vertex exactly once.
pub struct GatheredFeatures {
    miss: Matrix,
    miss_pos: Vec<u32>,
    hit_pos: Vec<u32>,
}

impl GatheredFeatures {
    /// Probes `cache` for every source vertex of `bottom` (already deduped
    /// at sampling time — no second dedup pass) and host-gathers only the
    /// misses.
    pub fn gather(dataset: &Dataset, bottom: &Block, cache: &FeatureCache) -> Self {
        Self::gather_from(dataset.features(), bottom, cache)
    }

    /// [`Self::gather`] against an explicit host feature matrix.
    pub fn gather_from(features: &Matrix, bottom: &Block, cache: &FeatureCache) -> Self {
        let (hit_pos, miss_pos) = bottom.partition_src(|v| cache.contains(v));
        let src = bottom.src();
        let idx: Vec<usize> = miss_pos.iter().map(|&p| src[p as usize] as usize).collect();
        let miss = features.gather_rows(&idx);
        Self {
            miss,
            miss_pos,
            hit_pos,
        }
    }

    /// Wraps an already-complete host gather: every row is a miss, in
    /// source order — the representation any cache-less path produces.
    pub fn dense(miss: Matrix) -> Self {
        let miss_pos = (0..miss.rows() as u32).collect();
        Self {
            miss,
            miss_pos,
            hit_pos: Vec::new(),
        }
    }

    /// Source vertices served from the GPU-resident cache.
    pub fn num_hits(&self) -> usize {
        self.hit_pos.len()
    }

    /// Source vertices gathered on the host (and transferred).
    pub fn num_misses(&self) -> usize {
        self.miss_pos.len()
    }

    /// Feature bytes the transfer stage must ship: the miss rows only.
    pub fn h2d_feature_bytes(&self) -> u64 {
        (self.miss.rows() * self.miss.cols() * std::mem::size_of::<f32>()) as u64
    }

    /// Device-side assembly after the transfer: interleaves the shipped
    /// miss rows with the cache-resident hit rows back into source order,
    /// bit-identical to a full host gather of `src`.
    ///
    /// `hit_pos` and `miss_pos` come from [`Block::partition_src`], so both
    /// are sorted and together cover every position exactly once; a merge
    /// walk appends each output row straight into reserved capacity, never
    /// zero-filling a byte it is about to overwrite (the same measured win
    /// as the chunked row-gather kernel).
    pub fn assemble(self, src: &[VertexId], cache: &FeatureCache) -> Matrix {
        if self.hit_pos.is_empty() {
            // All-miss fast path (empty cache): the miss matrix already is
            // the full gather, in source order.
            debug_assert_eq!(self.miss_pos.len(), src.len());
            return self.miss;
        }
        let t0 = neutron_tensor::timing::start();
        let dim = self.miss.cols();
        let mut data = Vec::with_capacity(src.len() * dim);
        let mut mi = 0;
        for (p, &vertex) in src.iter().enumerate() {
            if self.miss_pos.get(mi) == Some(&(p as u32)) {
                data.extend_from_slice(self.miss.row(mi));
                mi += 1;
            } else {
                data.extend_from_slice(cache.row(vertex));
            }
        }
        let out = Matrix::from_vec(src.len(), dim, data);
        neutron_tensor::timing::stop(neutron_tensor::timing::Kernel::Gather, t0);
        out
    }
}

/// A batch between the gather and train stages: sampled blocks plus the
/// split gather. This is what flows through the engine's channels — the
/// dense feature matrix only exists after [`StagedBatch::into_prepared`]
/// runs device-side, so cache hits never touch a channel or the simulated
/// PCIe link.
pub struct StagedBatch {
    /// Position of this batch within its epoch (train order).
    pub index: usize,
    /// Bottom-first sampled block stack.
    pub blocks: Vec<Block>,
    /// The split gather of `blocks[0].src()`.
    pub features: GatheredFeatures,
}

impl StagedBatch {
    /// Samples-free construction: gathers `blocks[0]`'s features against
    /// `cache` and stages the batch.
    pub fn stage(
        dataset: &Dataset,
        index: usize,
        blocks: Vec<Block>,
        cache: &FeatureCache,
    ) -> Self {
        let features = GatheredFeatures::gather(dataset, &blocks[0], cache);
        Self {
            index,
            blocks,
            features,
        }
    }

    /// Bytes this batch ships to the training device: host-gathered (miss)
    /// feature rows plus the sampled block structure (~8 bytes per edge).
    /// Cache hits cost nothing — that is the point.
    pub fn h2d_bytes(&self) -> u64 {
        let structure: u64 = self.blocks.iter().map(|b| b.num_edges() as u64 * 8).sum();
        self.features.h2d_feature_bytes() + structure
    }

    /// Device-side assembly into the dense [`PreparedBatch`] the trainer
    /// consumes.
    pub fn into_prepared(self, cache: &FeatureCache) -> PreparedBatch {
        let src = self.blocks[0].src();
        let features = self.features.assemble(src, cache);
        PreparedBatch {
            index: self.index,
            blocks: self.blocks,
            features,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn features(n: usize, dim: usize) -> Matrix {
        let mut m = Matrix::zeros(n, dim);
        for v in 0..n {
            let row: Vec<f32> = (0..dim).map(|c| (v * 31 + c) as f32).collect();
            m.copy_row_from(v, &row);
        }
        m
    }

    fn block(src: Vec<VertexId>) -> Block {
        let offsets = vec![0u32; src.len() + 1];
        Block::new(src.clone(), src, offsets, Vec::new())
    }

    #[test]
    fn empty_cache_reproduces_the_full_gather_with_full_bytes() {
        let host = features(10, 3);
        let b = block(vec![7, 2, 9]);
        let cache = FeatureCache::empty();
        let gf = GatheredFeatures::gather_from(&host, &b, &cache);
        assert_eq!(gf.num_hits(), 0);
        assert_eq!(gf.num_misses(), 3);
        assert_eq!(gf.h2d_feature_bytes(), 3 * 3 * 4);
        let full = host.gather_rows(&[7, 2, 9]);
        let assembled = gf.assemble(b.src(), &cache);
        assert_eq!(assembled.as_slice(), full.as_slice());
    }

    #[test]
    fn cache_hits_cut_bytes_but_not_the_assembled_matrix() {
        let host = features(10, 3);
        let b = block(vec![7, 2, 9, 4]);
        let cache = FeatureCache::for_vertices(&[2, 4, 5], 10, host.as_slice(), 3);
        let gf = GatheredFeatures::gather_from(&host, &b, &cache);
        assert_eq!(gf.num_hits(), 2); // 2 and 4
        assert_eq!(gf.num_misses(), 2); // 7 and 9
        assert_eq!(gf.h2d_feature_bytes(), 2 * 3 * 4);
        let full = host.gather_rows(&[7, 2, 9, 4]);
        let assembled = gf.assemble(b.src(), &cache);
        assert_eq!(assembled.as_slice(), full.as_slice());
    }

    #[test]
    fn fully_cached_batch_ships_zero_feature_bytes() {
        let host = features(6, 2);
        let b = block(vec![1, 3, 5]);
        let cache = FeatureCache::for_vertices(&[0, 1, 2, 3, 4, 5], 6, host.as_slice(), 2);
        let gf = GatheredFeatures::gather_from(&host, &b, &cache);
        assert_eq!(gf.num_misses(), 0);
        assert_eq!(gf.h2d_feature_bytes(), 0);
        let full = host.gather_rows(&[1, 3, 5]);
        assert_eq!(gf.assemble(b.src(), &cache).as_slice(), full.as_slice());
    }

    #[test]
    fn staged_batch_charges_structure_bytes_on_top_of_misses() {
        let host = features(8, 2);
        // One real edge: dst 1 aggregates from src position 1 (vertex 6).
        let b = Block::new(vec![1], vec![1, 6], vec![0, 1], vec![1]);
        let cache = FeatureCache::for_vertices(&[6], 8, host.as_slice(), 2);
        let features = GatheredFeatures::gather_from(&host, &b, &cache);
        let staged = StagedBatch {
            index: 0,
            blocks: vec![b],
            features,
        };
        // miss = vertex 1 only (6 is cached): 1 row * 2 dims * 4 B + 8 B edge.
        assert_eq!(staged.h2d_bytes(), 8 + 8);
        let prepared = staged.into_prepared(&cache);
        assert_eq!(
            prepared.features.as_slice(),
            host.gather_rows(&[1, 6]).as_slice()
        );
        assert_eq!(prepared.index, 0);
    }
}
