//! Cache vertex rankings.

use neutron_graph::{degree, Csr, VertexId};
use neutron_sample::HotnessRanking;

/// Which vertices deserve cache slots, best first.
#[derive(Clone, Debug)]
pub struct CacheRanking {
    order: Vec<VertexId>,
    label: &'static str,
}

impl CacheRanking {
    /// Ranked vertices, best candidate first.
    pub fn order(&self) -> &[VertexId] {
        &self.order
    }

    /// Policy label for reports ("Degree" / "PreSample").
    pub fn label(&self) -> &'static str {
        self.label
    }

    /// Top `k` candidates.
    pub fn top(&self, k: usize) -> &[VertexId] {
        &self.order[..k.min(self.order.len())]
    }
}

/// A cache policy produces a [`CacheRanking`].
pub trait CachePolicy {
    /// Ranks all vertices, best cache candidate first.
    fn rank(&self) -> CacheRanking;
}

/// PaGraph's static degree-based policy: high out-degree vertices are the
/// most likely to be sampled as neighbors.
pub struct DegreePolicy<'a> {
    graph: &'a Csr,
}

impl<'a> DegreePolicy<'a> {
    /// Ranks by degree in `graph`.
    pub fn new(graph: &'a Csr) -> Self {
        Self { graph }
    }
}

impl CachePolicy for DegreePolicy<'_> {
    fn rank(&self) -> CacheRanking {
        CacheRanking {
            order: degree::vertices_by_degree_desc(self.graph),
            label: "Degree",
        }
    }
}

/// GNNLab's pre-sampling policy: rank by measured access frequency.
pub struct PreSamplePolicy<'a> {
    hotness: &'a HotnessRanking,
}

impl<'a> PreSamplePolicy<'a> {
    /// Ranks by a pre-computed hotness estimate.
    pub fn new(hotness: &'a HotnessRanking) -> Self {
        Self { hotness }
    }
}

impl CachePolicy for PreSamplePolicy<'_> {
    fn rank(&self) -> CacheRanking {
        CacheRanking {
            order: self.hotness.order().to_vec(),
            label: "PreSample",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use neutron_graph::generate::{rmat, RmatParams};

    #[test]
    fn degree_policy_ranks_hubs_first() {
        let g = rmat(300, 4000, RmatParams::graph500(), 1);
        let ranking = DegreePolicy::new(&g).rank();
        assert_eq!(ranking.label(), "Degree");
        let order = ranking.order();
        assert!(g.degree(order[0]) >= g.degree(order[299]));
        assert_eq!(ranking.top(5).len(), 5);
    }

    #[test]
    fn presample_policy_follows_hotness() {
        let h = HotnessRanking::from_counts(vec![1, 5, 3]);
        let ranking = PreSamplePolicy::new(&h).rank();
        assert_eq!(ranking.order(), &[1, 2, 0]);
        assert_eq!(ranking.label(), "PreSample");
    }

    #[test]
    fn top_clamps_to_population() {
        let h = HotnessRanking::from_counts(vec![1, 2]);
        let ranking = PreSamplePolicy::new(&h).rank();
        assert_eq!(ranking.top(10).len(), 2);
    }
}
