//! Micro-benchmarks of the substrate kernels: matmul, sampling, the DES
//! engine and GNN layer passes.

use criterion::{criterion_group, criterion_main, Criterion};
use neutron_graph::generate::{rmat, RmatParams};
use neutron_hetero::{Engine, TaskKind};
use neutron_nn::layers::{Layer, LayerKind};
use neutron_sample::{Fanout, NeighborSampler};
use neutron_tensor::{init, ops};
use std::hint::black_box;

fn matmul(c: &mut Criterion) {
    let a = init::uniform(512, 128, -1.0, 1.0, 1);
    let b = init::uniform(128, 64, -1.0, 1.0, 2);
    c.bench_function("tensor/matmul 512x128x64", |bench| {
        bench.iter(|| black_box(ops::matmul(&a, &b)));
    });
}

fn sampling(c: &mut Criterion) {
    let g = rmat(20_000, 300_000, RmatParams::graph500(), 3);
    let sampler = NeighborSampler::new(Fanout::paper_default(3));
    let seeds: Vec<u32> = (0..256).collect();
    c.bench_function("sample/3-hop 256 seeds", |bench| {
        let mut i = 0u64;
        bench.iter(|| {
            i += 1;
            black_box(sampler.sample_batch(&g, &seeds, i))
        });
    });
}

fn des_engine(c: &mut Criterion) {
    c.bench_function("hetero/DES 400-task pipeline", |bench| {
        bench.iter(|| {
            let mut e = Engine::new();
            let cpu = e.add_resource("cpu", 8.0);
            let gpu = e.add_resource("gpu", 1.0);
            let mut prev = None;
            for _ in 0..100 {
                let s = e.add_task(cpu, TaskKind::Sample, 1.0, 4.0, &[]);
                let f = e.add_task(cpu, TaskKind::GatherCollect, 0.5, 4.0, &[s]);
                let deps: Vec<_> = prev.into_iter().chain([f]).collect();
                let t = e.add_task(gpu, TaskKind::Train, 0.8, 0.8, &deps);
                let _ = e.add_task(gpu, TaskKind::Other, 0.1, 0.2, &[t]);
                prev = Some(t);
            }
            black_box(e.run().makespan)
        });
    });
}

fn gnn_layers(c: &mut Criterion) {
    let g = rmat(5_000, 80_000, RmatParams::graph500(), 5);
    let sampler = NeighborSampler::new(Fanout::new(vec![10]));
    let blocks = sampler.sample_batch(&g, &(0..128).collect::<Vec<_>>(), 7);
    let block = &blocks[0];
    let input = init::uniform(block.num_src(), 64, -1.0, 1.0, 8);
    for kind in [LayerKind::Gcn, LayerKind::Sage, LayerKind::Gat] {
        let layer = Layer::new(kind, 64, 32, false, 9);
        c.bench_function(&format!("nn/{kind:?} forward 128-dst block"), |bench| {
            bench.iter(|| black_box(layer.forward(block, &input)));
        });
    }
}

criterion_group!(kernels, matmul, sampling, des_engine, gnn_layers);
criterion_main!(kernels);
