//! FLOP estimates for GNN layers — the workload quantities the hardware
//! simulator converts into compute time.
//!
//! Counts are multiply-add = 2 FLOPs, matching how GPU vendor sheets quote
//! peak throughput. The backward pass of a dense layer costs roughly twice
//! its forward (one matmul for `∇W`, one for `∇input`).

use crate::layers::LayerKind;

/// FLOPs of one layer's **forward** pass.
pub fn layer_forward_flops(
    kind: LayerKind,
    num_dst: u64,
    num_src: u64,
    num_edges: u64,
    in_dim: u64,
    out_dim: u64,
) -> u64 {
    match kind {
        // aggregate: one add per edge per channel (+self); transform:
        // dst × in × out MACs.
        LayerKind::Gcn => 2 * (num_edges + num_dst) * in_dim + 2 * num_dst * in_dim * out_dim,
        // two dense transforms + neighbor mean.
        LayerKind::Sage => 2 * num_edges * in_dim + 4 * num_dst * in_dim * out_dim,
        // projection for all src, per-edge score (2·out MACs) + softmax +
        // weighted sum (out MACs per edge incl self).
        LayerKind::Gat => 2 * num_src * in_dim * out_dim + (num_edges + num_dst) * (6 * out_dim),
    }
}

/// FLOPs of one layer's **backward** pass (≈ 2× forward for the dense parts,
/// plus the scatter of aggregation gradients).
pub fn layer_backward_flops(
    kind: LayerKind,
    num_dst: u64,
    num_src: u64,
    num_edges: u64,
    in_dim: u64,
    out_dim: u64,
) -> u64 {
    2 * layer_forward_flops(kind, num_dst, num_src, num_edges, in_dim, out_dim)
}

/// Forward + backward FLOPs of one layer.
pub fn layer_train_flops(
    kind: LayerKind,
    num_dst: u64,
    num_src: u64,
    num_edges: u64,
    in_dim: u64,
    out_dim: u64,
) -> u64 {
    layer_forward_flops(kind, num_dst, num_src, num_edges, in_dim, out_dim)
        + layer_backward_flops(kind, num_dst, num_src, num_edges, in_dim, out_dim)
}

/// Activation-memory bytes a layer holds during training: inputs, outputs
/// and pre-activations in f32, roughly tripled for gradient buffers. This is
/// what fills GPU memory in Cases 2–4 (Fig 6b).
pub fn layer_activation_bytes(num_dst: u64, num_src: u64, in_dim: u64, out_dim: u64) -> u64 {
    let fwd = num_src * in_dim * 4 + 2 * num_dst * out_dim * 4;
    3 * fwd
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gcn_flops_scale_with_edges_and_dims() {
        let base = layer_forward_flops(LayerKind::Gcn, 100, 400, 1000, 32, 16);
        let more_edges = layer_forward_flops(LayerKind::Gcn, 100, 400, 2000, 32, 16);
        let wider = layer_forward_flops(LayerKind::Gcn, 100, 400, 1000, 64, 16);
        assert!(more_edges > base);
        assert!(wider > base);
    }

    #[test]
    fn sage_costs_more_than_gcn_per_dst() {
        // Two weight matrices vs one.
        let gcn = layer_forward_flops(LayerKind::Gcn, 100, 100, 0, 32, 32);
        let sage = layer_forward_flops(LayerKind::Sage, 100, 100, 0, 32, 32);
        assert!(sage > gcn);
    }

    #[test]
    fn gat_pays_for_src_projection() {
        let few_src = layer_forward_flops(LayerKind::Gat, 10, 20, 50, 32, 32);
        let many_src = layer_forward_flops(LayerKind::Gat, 10, 200, 50, 32, 32);
        assert!(many_src > few_src);
    }

    #[test]
    fn train_is_forward_plus_backward() {
        let f = layer_forward_flops(LayerKind::Gcn, 10, 40, 100, 8, 4);
        let b = layer_backward_flops(LayerKind::Gcn, 10, 40, 100, 8, 4);
        assert_eq!(layer_train_flops(LayerKind::Gcn, 10, 40, 100, 8, 4), f + b);
        assert_eq!(b, 2 * f);
    }

    #[test]
    fn activation_bytes_positive_and_monotone() {
        let a = layer_activation_bytes(100, 500, 64, 32);
        let b = layer_activation_bytes(200, 1000, 64, 32);
        assert!(b > a);
        assert!(a > 0);
    }
}
