//! Scaled replicas of the paper's evaluation datasets (Table 4).
//!
//! Every spec records both the *paper* statistics and the *replica*
//! statistics plus the scale factor between them. The hardware simulator
//! divides device memory capacities by the same factor so that
//! capacity-driven effects (cache ratio, OOM) reproduce at replica scale.

use crate::csr::Csr;
use crate::features;
use crate::generate::{barabasi_albert, planted_partition, rmat, RmatParams};
use neutron_tensor::Matrix;

/// Topology family used to synthesise a replica.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Topology {
    /// R-MAT with the given quadrant parameters (social / web graphs).
    Rmat(RmatParams),
    /// Barabási–Albert with `edges_per_vertex` (citation graphs).
    PreferentialAttachment { edges_per_vertex: usize },
    /// Planted partition with `intra_prob` homophily (convergence runs).
    Community { intra_prob: f64 },
}

/// Specification of one evaluation dataset.
#[derive(Clone, Debug)]
pub struct DatasetSpec {
    /// Dataset name as used in the paper ("Reddit", "Papers100M", …).
    pub name: &'static str,
    /// Paper-reported vertex count (Table 4).
    pub paper_vertices: u64,
    /// Paper-reported edge count (Table 4).
    pub paper_edges: u64,
    /// Input feature dimension ("ftr. dim").
    pub feature_dim: usize,
    /// Number of label classes ("#L").
    pub num_classes: usize,
    /// Hidden layer dimension ("hid. dim").
    pub hidden_dim: usize,
    /// Replica vertex count.
    pub vertices: usize,
    /// Target replica directed edge count (generators approximate it).
    pub edges: usize,
    /// Linear scale factor between paper and replica (`paper_vertices /
    /// vertices`); the simulator divides memory capacities by this.
    pub scale: f64,
    /// Replica topology family.
    pub topology: Topology,
    /// Generation seed.
    pub seed: u64,
    /// Centroid strength of class-correlated features relative to unit
    /// noise (community datasets only). Convergence replicas use a weak
    /// signal so accuracy is *earned* over epochs rather than trivial.
    pub feature_signal: f32,
}

/// A materialised dataset: topology, labels, splits and (optionally)
/// features.
pub struct Dataset {
    /// The spec this dataset was built from.
    pub spec: DatasetSpec,
    /// In-neighbor CSR topology.
    pub csr: Csr,
    /// Per-vertex class labels.
    pub labels: Vec<usize>,
    /// Training vertex ids (65%).
    pub train: Vec<u32>,
    /// Test vertex ids (10%).
    pub test: Vec<u32>,
    /// Validation vertex ids (25%).
    pub val: Vec<u32>,
    /// Vertex features; `None` for perf-only builds where only byte counts
    /// matter (avoids multi-hundred-MB buffers for wide replicas).
    pub features: Option<Matrix>,
}

impl DatasetSpec {
    #[allow(clippy::too_many_arguments)] // internal registry constructor
    fn replica(
        name: &'static str,
        paper_vertices: u64,
        paper_edges: u64,
        feature_dim: usize,
        num_classes: usize,
        hidden_dim: usize,
        vertices: usize,
        topology: Topology,
        seed: u64,
    ) -> Self {
        let scale = paper_vertices as f64 / vertices as f64;
        let edges = (paper_edges as f64 / scale) as usize;
        Self {
            name,
            paper_vertices,
            paper_edges,
            feature_dim,
            num_classes,
            hidden_dim,
            vertices,
            edges,
            scale,
            topology,
            seed,
            feature_signal: 2.0,
        }
    }

    /// Reddit social network (Table 4 row 1) at 1/16 scale. Very dense
    /// (avg degree ≈ 492), which is why its bottom sampled layer saturates.
    pub fn reddit_scaled() -> Self {
        Self::replica(
            "Reddit",
            232_960,
            114_610_000,
            602,
            41,
            256,
            14_560,
            Topology::Rmat(RmatParams::graph500()),
            0x01,
        )
    }

    /// LiveJournal communication network at 1/64 scale.
    pub fn lj_large_scaled() -> Self {
        Self::replica(
            "Lj-large",
            10_690_000,
            224_610_000,
            400,
            60,
            256,
            167_031,
            Topology::Rmat(RmatParams::graph500()),
            0x17,
        )
    }

    /// Orkut social network at 1/32 scale.
    pub fn orkut_scaled() -> Self {
        Self::replica(
            "Orkut",
            3_100_000,
            117_000_000,
            600,
            20,
            160,
            96_875,
            Topology::Rmat(RmatParams::graph500()),
            0x02,
        )
    }

    /// English Wikipedia wikilink graph at 1/96 scale.
    pub fn wikipedia_scaled() -> Self {
        Self::replica(
            "Wikipedia",
            13_600_000,
            437_200_000,
            600,
            16,
            128,
            141_667,
            Topology::Rmat(RmatParams::graph500()),
            0x03,
        )
    }

    /// Amazon Products co-purchase network (ogbn-products) at 1/16 scale.
    pub fn products_scaled() -> Self {
        Self::replica(
            "Products",
            2_400_000,
            61_900_000,
            100,
            47,
            64,
            150_000,
            Topology::Rmat(RmatParams::mild()),
            0x04,
        )
    }

    /// Papers100M citation graph (ogbn-papers100M) at 1/512 scale.
    pub fn papers100m_scaled() -> Self {
        Self::replica(
            "Papers100M",
            111_000_000,
            1_600_000_000,
            128,
            172,
            64,
            216_797,
            Topology::PreferentialAttachment {
                edges_per_vertex: 7,
            },
            0x05,
        )
    }

    /// All six performance-evaluation replicas, in the paper's Table 4 order.
    pub fn all_scaled() -> Vec<Self> {
        vec![
            Self::reddit_scaled(),
            Self::lj_large_scaled(),
            Self::orkut_scaled(),
            Self::wikipedia_scaled(),
            Self::products_scaled(),
            Self::papers100m_scaled(),
        ]
    }

    /// Small homophilous replica of Reddit used by the convergence
    /// experiments (Fig 16): labels are learnable, features materialised.
    pub fn reddit_convergence() -> Self {
        let mut s = Self::replica(
            "Reddit-conv",
            232_960,
            114_610_000,
            64,
            8,
            32,
            4_000,
            Topology::Community { intra_prob: 0.55 },
            0x06,
        );
        s.edges = 160_000;
        s.num_classes = 8;
        // Weak feature signal: a fresh model starts near chance and needs
        // both epochs and neighbor aggregation to climb (Fig 16 regime).
        s.feature_signal = 0.25;
        s
    }

    /// Small homophilous replica of Products for convergence runs.
    pub fn products_convergence() -> Self {
        let mut s = Self::replica(
            "Products-conv",
            2_400_000,
            61_900_000,
            64,
            10,
            32,
            5_000,
            Topology::Community { intra_prob: 0.5 },
            0x07,
        );
        s.edges = 120_000;
        s.num_classes = 10;
        s.feature_signal = 0.25;
        s
    }

    /// Tiny spec for unit tests and doc examples.
    pub fn tiny() -> Self {
        let mut s = Self::replica(
            "Tiny",
            1_000,
            8_000,
            16,
            4,
            8,
            300,
            Topology::Community { intra_prob: 0.8 },
            0x08,
        );
        s.edges = 2_400;
        s.num_classes = 4;
        s
    }

    /// Builds topology, labels and splits but not features (perf mode).
    pub fn build_topology(&self) -> Dataset {
        self.build_inner(false)
    }

    /// Builds everything including materialised features (training mode).
    pub fn build_full(&self) -> Dataset {
        self.build_inner(true)
    }

    fn build_inner(&self, with_features: bool) -> Dataset {
        let (csr, labels) = match self.topology {
            Topology::Rmat(params) => {
                let csr = rmat(self.vertices, self.edges, params, self.seed);
                let labels =
                    features::random_labels(self.vertices, self.num_classes, self.seed ^ 1);
                (csr, labels)
            }
            Topology::PreferentialAttachment { edges_per_vertex } => {
                let csr = barabasi_albert(self.vertices, edges_per_vertex, self.seed);
                let labels =
                    features::random_labels(self.vertices, self.num_classes, self.seed ^ 1);
                (csr, labels)
            }
            Topology::Community { intra_prob } => {
                let pp = planted_partition(
                    self.vertices,
                    self.edges,
                    self.num_classes,
                    intra_prob,
                    self.seed,
                );
                (pp.csr, pp.labels)
            }
        };
        let (train, test, val) = features::split_65_10_25(self.vertices, self.seed ^ 2);
        let feats = if with_features {
            Some(match self.topology {
                Topology::Community { .. } => features::class_features(
                    &labels,
                    self.num_classes,
                    self.feature_dim,
                    self.feature_signal,
                    self.seed ^ 3,
                ),
                _ => features::random_features(self.vertices, self.feature_dim, self.seed ^ 3),
            })
        } else {
            None
        };
        Dataset {
            spec: self.clone(),
            csr,
            labels,
            train,
            test,
            val,
            features: feats,
        }
    }

    /// Bytes of one vertex's feature row (f32).
    pub fn feature_row_bytes(&self) -> u64 {
        (self.feature_dim * std::mem::size_of::<f32>()) as u64
    }

    /// Bytes of one vertex's hidden embedding row (f32). Embeddings are what
    /// NeutronOrch transfers instead of raw features (§4.1.1, Fig 7).
    pub fn hidden_row_bytes(&self) -> u64 {
        (self.hidden_dim * std::mem::size_of::<f32>()) as u64
    }

    /// Total feature bytes of the full (replica) graph in host memory.
    pub fn total_feature_bytes(&self) -> u64 {
        self.vertices as u64 * self.feature_row_bytes()
    }
}

impl Dataset {
    /// Borrow features, panicking with a clear message in perf-only builds.
    pub fn features(&self) -> &Matrix {
        self.features
            .as_ref()
            .expect("dataset built with build_topology(); call build_full() for features")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_matches_table4_paper_stats() {
        let all = DatasetSpec::all_scaled();
        assert_eq!(all.len(), 6);
        let reddit = &all[0];
        assert_eq!(reddit.feature_dim, 602);
        assert_eq!(reddit.num_classes, 41);
        assert_eq!(reddit.hidden_dim, 256);
        let papers = &all[5];
        assert_eq!(papers.paper_vertices, 111_000_000);
        assert_eq!(papers.hidden_dim, 64);
    }

    #[test]
    fn scale_is_consistent_with_replica_size() {
        for spec in DatasetSpec::all_scaled() {
            let implied = spec.paper_vertices as f64 / spec.vertices as f64;
            assert!(
                (implied - spec.scale).abs() / spec.scale < 1e-9,
                "{}",
                spec.name
            );
            assert!(spec.scale >= 1.0);
        }
    }

    #[test]
    fn tiny_builds_quickly_with_features() {
        let d = DatasetSpec::tiny().build_full();
        assert_eq!(d.csr.num_vertices(), 300);
        assert_eq!(d.features().rows(), 300);
        assert_eq!(d.features().cols(), 16);
        assert_eq!(d.train.len(), 195);
        assert!(d.csr.validate().is_ok());
    }

    #[test]
    fn topology_only_build_omits_features() {
        let d = DatasetSpec::tiny().build_topology();
        assert!(d.features.is_none());
        assert_eq!(d.labels.len(), 300);
    }

    #[test]
    fn replica_avg_degree_tracks_paper() {
        // Papers100M paper avg degree ≈ 14.4; the BA replica should land in
        // the same regime (factor < 2 off).
        let spec = DatasetSpec::papers100m_scaled();
        let mut small = spec.clone();
        small.vertices = 20_000;
        small.edges = (spec.edges as f64 * 20_000.0 / spec.vertices as f64) as usize;
        let d = small.build_topology();
        let paper_avg = spec.paper_edges as f64 / spec.paper_vertices as f64;
        let got = d.csr.avg_degree();
        assert!(
            got > paper_avg / 2.0 && got < paper_avg * 2.0,
            "avg degree {got} vs paper {paper_avg}"
        );
    }

    #[test]
    fn byte_helpers() {
        let s = DatasetSpec::reddit_scaled();
        assert_eq!(s.feature_row_bytes(), 602 * 4);
        assert_eq!(s.hidden_row_bytes(), 256 * 4);
        assert_eq!(s.total_feature_bytes(), 14_560 * 602 * 4);
    }
}
