//! Criterion benches: one per table/figure, at smoke scale.
//!
//! These double as regression tests for the experiment pipelines: every
//! bench runs the same code as `exp -- <id>` on miniature replicas.

use criterion::{criterion_group, criterion_main, Criterion};
use neutron_bench::{exp, Setup};
use std::hint::black_box;

fn bench_experiment(c: &mut Criterion, id: &'static str) {
    let mut group = c.benchmark_group("paper-experiments");
    // The heavier experiments take seconds per iteration at smoke scale;
    // keep criterion at its minimum sampling effort.
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_millis(500));
    group.bench_function(id, |b| {
        b.iter(|| black_box(exp::run(id, Setup::Smoke).expect("known experiment")));
    });
    group.finish();
}

fn fig02(c: &mut Criterion) {
    bench_experiment(c, "fig2");
}
fn table2(c: &mut Criterion) {
    bench_experiment(c, "table2");
}
fn table3(c: &mut Criterion) {
    bench_experiment(c, "table3");
}
fn fig06(c: &mut Criterion) {
    bench_experiment(c, "fig6");
}
fn fig07(c: &mut Criterion) {
    bench_experiment(c, "fig7");
}
fn fig10(c: &mut Criterion) {
    bench_experiment(c, "fig10");
}
fn fig11(c: &mut Criterion) {
    bench_experiment(c, "fig11");
}
fn fig12(c: &mut Criterion) {
    bench_experiment(c, "fig12");
}
fn fig13(c: &mut Criterion) {
    bench_experiment(c, "fig13");
}
fn fig14(c: &mut Criterion) {
    bench_experiment(c, "fig14");
}
fn fig15(c: &mut Criterion) {
    bench_experiment(c, "fig15");
}
fn table5(c: &mut Criterion) {
    bench_experiment(c, "table5");
}
fn table6(c: &mut Criterion) {
    bench_experiment(c, "table6");
}
fn fig16(c: &mut Criterion) {
    bench_experiment(c, "fig16");
}

criterion_group!(
    experiments,
    fig02,
    table2,
    table3,
    fig06,
    fig07,
    fig10,
    fig11,
    fig12,
    fig13,
    fig14,
    fig15,
    table5,
    table6,
    fig16
);
criterion_main!(experiments);
