//! Vertex partitioning for multi-GPU training (Fig 11 / DSP-style).

use crate::csr::{Csr, VertexId};

/// Assignment of each vertex to a partition in `[0, parts)`.
#[derive(Clone, Debug)]
pub struct Partition {
    pub parts: usize,
    pub assignment: Vec<u32>,
}

impl Partition {
    /// Vertices owned by `part`.
    pub fn members(&self, part: usize) -> Vec<VertexId> {
        self.assignment
            .iter()
            .enumerate()
            .filter_map(|(v, &p)| (p as usize == part).then_some(v as VertexId))
            .collect()
    }

    /// Sizes of all partitions.
    pub fn sizes(&self) -> Vec<usize> {
        let mut sizes = vec![0usize; self.parts];
        for &p in &self.assignment {
            sizes[p as usize] += 1;
        }
        sizes
    }

    /// Fraction of edges crossing partitions — the multi-GPU communication
    /// driver in DSP-style cooperative sampling.
    pub fn edge_cut_fraction(&self, g: &Csr) -> f64 {
        let mut cut = 0usize;
        let mut total = 0usize;
        for (u, v) in g.edges() {
            total += 1;
            if self.assignment[u as usize] != self.assignment[v as usize] {
                cut += 1;
            }
        }
        if total == 0 {
            0.0
        } else {
            cut as f64 / total as f64
        }
    }
}

/// Hash (round-robin) partitioning — what DGL/DSP default to for feature
/// sharding across GPUs.
pub fn hash_partition(num_vertices: usize, parts: usize) -> Partition {
    assert!(parts >= 1);
    Partition {
        parts,
        assignment: (0..num_vertices).map(|v| (v % parts) as u32).collect(),
    }
}

/// Contiguous range partitioning — what chunked feature stores use.
pub fn range_partition(num_vertices: usize, parts: usize) -> Partition {
    assert!(parts >= 1);
    let chunk = num_vertices.div_ceil(parts);
    Partition {
        parts,
        assignment: (0..num_vertices)
            .map(|v| (v / chunk.max(1)).min(parts - 1) as u32)
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::erdos_renyi;

    #[test]
    fn hash_partition_is_balanced() {
        let p = hash_partition(103, 4);
        let sizes = p.sizes();
        assert_eq!(sizes.iter().sum::<usize>(), 103);
        assert!(sizes.iter().max().unwrap() - sizes.iter().min().unwrap() <= 1);
    }

    #[test]
    fn range_partition_is_contiguous() {
        let p = range_partition(100, 4);
        assert_eq!(p.assignment[0], 0);
        assert_eq!(p.assignment[99], 3);
        assert_eq!(p.sizes(), vec![25, 25, 25, 25]);
    }

    #[test]
    fn members_round_trip() {
        let p = hash_partition(10, 3);
        let m0 = p.members(0);
        assert!(m0.iter().all(|&v| v % 3 == 0));
    }

    #[test]
    fn edge_cut_reasonable_for_random_graph() {
        let g = erdos_renyi(400, 4000, 1);
        let p = hash_partition(400, 4);
        let cut = p.edge_cut_fraction(&g);
        // Random graph + hash partition: expected cut = 1 - 1/parts = 0.75.
        assert!((cut - 0.75).abs() < 0.1, "cut {cut}");
    }

    #[test]
    fn single_partition_has_no_cut() {
        let g = erdos_renyi(50, 400, 2);
        let p = range_partition(50, 1);
        assert_eq!(p.edge_cut_fraction(&g), 0.0);
    }
}
