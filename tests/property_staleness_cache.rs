//! Property tests of the bounded-staleness machinery and cache policies —
//! the correctness core of NeutronOrch's §4.2.2 guarantee.

use neutronorch::cache::policy::{CachePolicy, PreSamplePolicy};
use neutronorch::cache::{EmbeddingStore, FeatureCache, HybridPolicy};
use neutronorch::core::gather::{GatheredFeatures, StagedBatch};
use neutronorch::sample::{Block, HotnessRanking};
use neutronorch::tensor::Matrix;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Under any put/get sequence, a bounded store never serves an
    /// embedding older than the bound, and the observed max gap is within
    /// it.
    #[test]
    fn bounded_store_never_exceeds_bound(
        bound in 1u64..10,
        ops in proptest::collection::vec((0u32..8, 0u64..40, any::<bool>()), 1..60),
    ) {
        let mut store = EmbeddingStore::new(2, Some(bound));
        let mut clock = 0u64;
        for (v, advance, is_put) in ops {
            clock += advance % 5;
            if is_put {
                store.put(v, vec![0.5, -0.5], clock);
            } else {
                match store.get(v, clock) {
                    Ok(Some((_, gap))) => prop_assert!(gap <= bound),
                    Ok(None) => {}
                    Err(e) => prop_assert!(e.now - e.version > bound),
                }
            }
        }
        prop_assert!(store.max_observed_gap() <= bound);
    }

    /// Super-batch eviction means nothing older than the previous
    /// super-batch survives — the paper's "only accessible within the
    /// current super-batch" rule.
    #[test]
    fn eviction_enforces_two_superbatch_window(
        n in 1u64..6,
        super_batches in 2u64..8,
    ) {
        let mut store = EmbeddingStore::new(1, None);
        for sb in 0..super_batches {
            let version = sb * n;
            store.put(sb as u32, vec![0.0], version);
            // Entering super-batch sb: retire anything older than sb-1.
            let cutoff = (sb.saturating_sub(1)) * n;
            store.evict_older_than(cutoff);
            // Every surviving read at the end of this super-batch has gap
            // < 2n.
            let now = (sb + 1) * n - 1;
            for v in 0..=sb {
                if let Some((_, gap)) = store.get(v as u32, now).unwrap() {
                    prop_assert!(gap < 2 * n, "gap {gap} ≥ 2n={}", 2 * n);
                }
            }
        }
    }

    /// A feature cache never exceeds its byte budget and its hit counting
    /// is consistent.
    #[test]
    fn cache_respects_budget(
        counts in proptest::collection::vec(0u32..100, 4..64),
        row_bytes in 1u64..64,
        budget in 0u64..2048,
    ) {
        let n = counts.len();
        let ranking = HotnessRanking::from_counts(counts);
        let policy = PreSamplePolicy::new(&ranking);
        let mut cache = FeatureCache::fill(&policy.rank(), n, row_bytes, budget);
        prop_assert!(cache.bytes() <= budget);
        let accesses: Vec<u32> = (0..n as u32).collect();
        let misses = cache.access_all(&accesses);
        let (hits, miss2) = cache.counters();
        prop_assert_eq!(misses, miss2);
        prop_assert_eq!(hits + misses, n as u64);
        prop_assert_eq!(hits as usize, cache.len());
    }

    /// The hybrid split always partitions the hot set exactly and its GPU
    /// byte accounting matches the split.
    #[test]
    fn hybrid_split_partitions_exactly(
        n in 4usize..128,
        ratio in 0.0f64..1.0,
        idle in 0.0f64..1.0,
        free in 0u64..1_000_000,
    ) {
        let counts: Vec<u32> = (0..n as u32).rev().collect();
        let hot = HotnessRanking::from_counts(counts).hot_set(ratio);
        let policy = HybridPolicy { feature_row_bytes: 16, embedding_row_bytes: 4 };
        let plan = policy.plan(&hot, idle, free);
        prop_assert_eq!(plan.cpu_compute.len() + plan.gpu_cache.len(), hot.len());
        // No overlap.
        for v in &plan.gpu_cache {
            prop_assert!(!plan.cpu_compute.contains(v));
        }
        prop_assert_eq!(
            plan.gpu_bytes,
            plan.gpu_cache.len() as u64 * 16 + plan.cpu_compute.len() as u64 * 4
        );
        // Memory cap honoured, in *net* bytes: each cached vertex costs its
        // 16 B feature row minus the 4 B embedding staging slot it frees.
        prop_assert!(plan.gpu_cache.len() as u64 * 12 <= free + 12);
    }

    /// The cache-keyed gather accounts for every vertex exactly: for any
    /// cached subset and any batch, `hits + misses` equals the batch's
    /// deduped source count, the charged feature bytes equal
    /// `misses * feature_row_bytes` exactly, and device-side assembly is
    /// bit-identical to a full host gather.
    #[test]
    fn cache_keyed_gather_accounts_every_vertex_exactly(
        dim in 1usize..8,
        cached_flags in proptest::collection::vec(any::<bool>(), 8..48),
        batch_flags in proptest::collection::vec(any::<bool>(), 8..48),
    ) {
        let n = cached_flags.len().max(batch_flags.len());
        let mut host = Matrix::zeros(n, dim);
        for v in 0..n {
            let row: Vec<f32> = (0..dim).map(|c| (v * 131 + c) as f32).collect();
            host.copy_row_from(v, &row);
        }
        let cached: Vec<u32> = cached_flags
            .iter()
            .enumerate()
            .filter_map(|(v, &f)| f.then_some(v as u32))
            .collect();
        let cache = FeatureCache::for_vertices(&cached, n, host.as_slice(), dim);
        // A batch whose deduped source set is any subset of the vertices
        // (self-edges only — partitioning doesn't look at edges).
        let src: Vec<u32> = batch_flags
            .iter()
            .enumerate()
            .filter_map(|(v, &f)| f.then_some(v as u32))
            .collect();
        let offsets = vec![0u32; src.len() + 1];
        let block = Block::new(src.clone(), src.clone(), offsets, Vec::new());

        let gf = GatheredFeatures::gather_from(&host, &block, &cache);
        prop_assert_eq!(gf.num_hits() + gf.num_misses(), src.len());
        prop_assert_eq!(
            gf.num_hits(),
            src.iter().filter(|&&v| cache.contains(v)).count()
        );
        let row_bytes = (dim * 4) as u64;
        prop_assert_eq!(gf.h2d_feature_bytes(), gf.num_misses() as u64 * row_bytes);
        let staged = StagedBatch {
            index: 0,
            blocks: vec![block],
            features: gf,
            bufs: neutronorch::core::pool::BatchBuffers::new(),
        };
        // No sampled edges, so staged bytes are exactly the miss features.
        let misses = staged.features.num_misses() as u64;
        prop_assert_eq!(staged.h2d_bytes(), misses * row_bytes);
        let full = host.gather_rows(&src.iter().map(|&v| v as usize).collect::<Vec<_>>());
        let assembled = staged.into_prepared(&cache).features;
        prop_assert_eq!(assembled.as_slice(), full.as_slice());
    }
}
