//! Property tests of the tensor kernels and the GNN layers' gradients.

use neutronorch::nn::gradcheck;
use neutronorch::nn::LayerKind;
use neutronorch::sample::Block;
use neutronorch::tensor::{init, ops, softmax, Matrix};
use proptest::prelude::*;

fn dims() -> impl Strategy<Value = (usize, usize, usize)> {
    (1usize..12, 1usize..12, 1usize..12)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn matmul_matches_naive_reference((m, k, n) in dims(), seed in any::<u64>()) {
        let a = init::uniform(m, k, -2.0, 2.0, seed);
        let b = init::uniform(k, n, -2.0, 2.0, seed ^ 1);
        let fast = ops::matmul(&a, &b);
        let slow = ops::matmul_naive(&a, &b);
        prop_assert!(fast.approx_eq(&slow, 1e-3));
    }

    #[test]
    fn transpose_variants_agree((m, k, n) in dims(), seed in any::<u64>()) {
        let a = init::uniform(k, m, -1.0, 1.0, seed);
        let b = init::uniform(k, n, -1.0, 1.0, seed ^ 2);
        let via_t = ops::matmul(&a.transpose(), &b);
        prop_assert!(ops::matmul_at_b(&a, &b).approx_eq(&via_t, 1e-3));
        let c = init::uniform(m, k, -1.0, 1.0, seed ^ 3);
        let d = init::uniform(n, k, -1.0, 1.0, seed ^ 4);
        let via_t2 = ops::matmul(&c, &d.transpose());
        prop_assert!(ops::matmul_a_bt(&c, &d).approx_eq(&via_t2, 1e-3));
    }

    #[test]
    fn matmul_distributes_over_addition((m, k, n) in dims(), seed in any::<u64>()) {
        let a = init::uniform(m, k, -1.0, 1.0, seed);
        let b1 = init::uniform(k, n, -1.0, 1.0, seed ^ 5);
        let b2 = init::uniform(k, n, -1.0, 1.0, seed ^ 6);
        let lhs = ops::matmul(&a, &ops::add(&b1, &b2));
        let rhs = ops::add(&ops::matmul(&a, &b1), &ops::matmul(&a, &b2));
        prop_assert!(lhs.approx_eq(&rhs, 1e-3));
    }

    #[test]
    fn softmax_rows_are_distributions(rows in 1usize..8, cols in 1usize..16, seed in any::<u64>()) {
        let z = init::uniform(rows, cols, -30.0, 30.0, seed);
        let p = softmax::row_softmax(&z);
        prop_assert!(p.all_finite());
        for r in 0..rows {
            let sum: f32 = p.row(r).iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-4, "row {r} sums to {sum}");
            prop_assert!(p.row(r).iter().all(|&v| (0.0..=1.0).contains(&v)));
        }
    }

    #[test]
    fn gather_then_scatter_add_is_identity_on_disjoint_rows(
        n in 2usize..16,
        cols in 1usize..6,
        seed in any::<u64>(),
    ) {
        let m = init::uniform(n, cols, -1.0, 1.0, seed);
        let idx: Vec<usize> = (0..n).collect();
        let g = m.gather_rows(&idx);
        let mut out = Matrix::zeros(n, cols);
        out.scatter_add_rows(&idx, &g);
        prop_assert!(out.approx_eq(&m, 1e-6));
    }
}

/// Gradient checks on randomly shaped blocks — the strongest correctness
/// statement in the workspace: analytic backward == finite differences for
/// all three architectures.
#[test]
fn all_layer_gradients_match_finite_differences_on_random_blocks() {
    let mut failures = Vec::new();
    for seed in 0..3u64 {
        // Random small block: 3 dst, up to 6 src.
        let dst = vec![0, 1, 2];
        let src = vec![0, 1, 2, 3, 4, 5];
        let offsets = vec![0u32, 2, 3, 5];
        let indices = vec![3, 4, 5, 3, 4];
        let block = Block::new(dst, src, offsets, indices);
        let input = init::uniform(6, 5, -1.0, 1.0, 100 + seed);
        let labels = [0usize, 1, 2];
        for kind in LayerKind::ALL {
            let (p_err, i_err) = gradcheck::check_layer(kind, &block, &input, &labels, seed);
            if p_err > 2e-2 || i_err > 2e-2 {
                failures.push(format!("{kind:?} seed {seed}: param {p_err} input {i_err}"));
            }
        }
    }
    assert!(failures.is_empty(), "gradient mismatches: {failures:?}");
}
