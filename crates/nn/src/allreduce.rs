//! Deterministic gradient all-reduce for data-parallel model replicas.
//!
//! Data-parallel training (DistDGL/DSP-style, see PAPERS.md) averages the
//! per-replica gradients at every batch boundary before the shared
//! optimizer step. Floating-point addition is not associative, so a naive
//! "sum in arrival order" reduction makes the trajectory depend on thread
//! scheduling. This module fixes the reduction *shape* instead: a
//! slot-indexed pairwise tree keyed by replica index, so the result is a
//! pure function of `(gradients, replica index)` — independent of which
//! replica finished first — and collapses to a no-op at R=1.
//!
//! Two exactness properties the engine's bit-identity gates rely on:
//! - **R=1 is the identity.** The tree performs zero arithmetic and the
//!   1/R scale is skipped, so single-replica training is bit-identical to
//!   the non-replicated trainer by construction.
//! - **R identical replicas average to the replica.** At power-of-two R
//!   with equal inputs every tree level computes `x + x = 2x` (exact in
//!   IEEE-754 barring overflow) and the final scale divides by `2^k`
//!   (exact), so the average reproduces the input bit-for-bit.

use neutron_tensor::Matrix;

/// One replica's gradients: one matrix per parameter, in the model's
/// canonical parameter order.
pub type GradSet = Vec<Matrix>;

/// Averages `groups[r][p]` over replicas `r` into a single gradient set,
/// using a slot-indexed pairwise tree reduction (stride doubling:
/// `groups[i] += groups[i + gap]` for `gap = 1, 2, 4, ...`). The reduction
/// order is fixed by replica *index*, never by arrival order. Consumes the
/// groups and returns the averaged set in slot 0's buffers (no extra
/// allocation beyond the vec shuffle).
///
/// Panics if `groups` is empty or the per-replica sets disagree in shape.
pub fn tree_average(mut groups: Vec<GradSet>) -> GradSet {
    let replicas = groups.len();
    assert!(replicas > 0, "tree_average needs at least one replica");
    if replicas == 1 {
        return groups.pop().unwrap();
    }
    let mut gap = 1;
    while gap < replicas {
        let mut i = 0;
        while i + gap < replicas {
            // Split off the right operand so both slots can be borrowed.
            let (left, right) = groups.split_at_mut(i + gap);
            add_assign_set(&mut left[i], &right[0]);
            i += 2 * gap;
        }
        gap *= 2;
    }
    let mut out = groups.swap_remove(0);
    let inv = 1.0 / replicas as f32;
    for m in &mut out {
        for v in m.as_mut_slice() {
            *v *= inv;
        }
    }
    out
}

fn add_assign_set(dst: &mut GradSet, src: &GradSet) {
    assert_eq!(dst.len(), src.len(), "replica gradient sets disagree");
    for (d, s) in dst.iter_mut().zip(src) {
        assert_eq!(d.shape(), s.shape(), "replica gradient shapes disagree");
        for (a, b) in d.as_mut_slice().iter_mut().zip(s.as_slice()) {
            *a += *b;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grads(vals: &[f32]) -> GradSet {
        vec![Matrix::from_vec(1, vals.len(), vals.to_vec())]
    }

    #[test]
    fn single_replica_is_the_identity() {
        let g = grads(&[0.1, -2.5, 3.0]);
        let expect = g.clone();
        let out = tree_average(vec![g]);
        assert_eq!(out[0].as_slice(), expect[0].as_slice());
    }

    #[test]
    fn identical_replicas_average_to_the_replica_bit_exactly() {
        let base = grads(&[0.1, -2.5, 3.0e-7, 1234.5]);
        for r in [2usize, 4, 8] {
            let out = tree_average(vec![base.clone(); r]);
            assert_eq!(
                out[0].as_slice(),
                base[0].as_slice(),
                "power-of-two averaging of equal inputs must be exact (R={r})"
            );
        }
    }

    #[test]
    fn reduction_is_a_function_of_slot_not_arrival() {
        // Same multisets placed in the same slots must reduce identically
        // however the caller happened to *collect* them; distinct slot
        // orders are allowed to differ in ULPs but must stay deterministic.
        let sets: Vec<GradSet> = (0..3)
            .map(|r| grads(&[0.1 * (r as f32 + 1.0), -1.0 / (r as f32 + 3.0)]))
            .collect();
        let a = tree_average(sets.clone());
        let b = tree_average(sets);
        assert_eq!(a[0].as_slice(), b[0].as_slice());
    }

    #[test]
    fn zero_row_and_multi_param_shapes_survive() {
        let set = vec![Matrix::zeros(0, 4), Matrix::full(2, 2, 1.5)];
        let out = tree_average(vec![set.clone(), set.clone()]);
        assert_eq!(out[0].shape(), (0, 4));
        assert_eq!(out[1].as_slice(), [1.5; 4]);
    }

    #[test]
    #[should_panic]
    fn empty_group_list_is_rejected() {
        let _ = tree_average(Vec::new());
    }

    #[test]
    #[should_panic]
    fn shape_mismatch_is_rejected() {
        let _ = tree_average(vec![grads(&[1.0]), grads(&[1.0, 2.0])]);
    }
}
