//! Dense `f32` matrix kernels for the NeutronOrch reproduction.
//!
//! The GNN training engine ([`neutron-nn`]) is built entirely on this crate;
//! no external tensor library is used. The design favours predictable,
//! allocation-conscious kernels over generality: everything is a row-major
//! 2-D `f32` [`Matrix`], which is exactly the shape of vertex feature /
//! embedding batches in sample-based GNN training.
//!
//! Modules:
//! - [`matrix`] — the `Matrix` type and constructors,
//! - [`ops`] — matmul variants and element-wise arithmetic,
//! - [`kernels`] — chunked, autovectorization-friendly slice kernels and
//!   their retained scalar references (profile-guided; see module docs),
//! - [`timing`] — per-kernel wall-time hooks behind an atomic gate,
//!   surfaced by `xtask profile --timing`,
//! - [`alloc`] — per-stage heap-allocation counters and the optional
//!   counting global allocator (`count-allocs` feature), surfaced by
//!   `xtask profile --timing --allocs` and the engine bench,
//! - [`activation`] — ReLU / LeakyReLU / ELU / sigmoid / tanh with gradients,
//! - [`softmax`] — row softmax and softmax-cross-entropy with gradients,
//! - [`init`] — seeded Xavier / Kaiming initializers,
//! - [`reduce`] — row/column reductions and argmax,
//! - [`parallel`] — scoped-thread row partitioning used by the matmul kernels.

pub mod activation;
pub mod alloc;
pub mod init;
pub mod kernels;
pub mod matrix;
pub mod ops;
pub mod parallel;
pub mod reduce;
pub mod softmax;
pub mod timing;

pub use activation::Activation;
pub use matrix::Matrix;

/// Numeric tolerance used across the workspace when comparing kernel outputs
/// against naive reference implementations.
pub const TEST_EPS: f32 = 1e-4;
