//! Batch loss: softmax cross-entropy over seed vertices.

use neutron_tensor::softmax::{softmax_cross_entropy, softmax_cross_entropy_grad};
use neutron_tensor::Matrix;

/// Loss value plus gradient w.r.t. the logits.
pub struct LossResult {
    /// Mean cross-entropy over the batch.
    pub loss: f32,
    /// `∂L/∂logits`, same shape as the logits.
    pub d_logits: Matrix,
}

/// Computes mean softmax cross-entropy of `logits` against `labels`
/// (Algorithm 1, line 13) and its gradient.
pub fn cross_entropy(logits: &Matrix, labels: &[usize]) -> LossResult {
    let sce = softmax_cross_entropy(logits, labels);
    let d_logits = softmax_cross_entropy_grad(&sce.probs, labels);
    LossResult {
        loss: sce.loss,
        d_logits,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loss_decreases_along_negative_gradient() {
        let logits = Matrix::from_rows(&[&[0.1, 0.2, -0.1], &[0.0, 0.5, 0.5]]);
        let labels = [0usize, 2];
        let r = cross_entropy(&logits, &labels);
        // One explicit gradient step on the logits should reduce the loss.
        let mut stepped = logits.clone();
        neutron_tensor::ops::add_scaled_assign(&mut stepped, -1.0, &r.d_logits);
        let r2 = cross_entropy(&stepped, &labels);
        assert!(r2.loss < r.loss, "{} !< {}", r2.loss, r.loss);
    }

    #[test]
    fn gradient_shape_matches_logits() {
        let logits = Matrix::zeros(3, 7);
        let r = cross_entropy(&logits, &[0, 1, 2]);
        assert_eq!(r.d_logits.shape(), (3, 7));
        assert!((r.loss - (7.0f32).ln()).abs() < 1e-5);
    }
}
