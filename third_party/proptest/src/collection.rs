//! Collection strategies.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::RngExt;
use std::ops::Range;

/// Strategy producing `Vec`s with length drawn from `size` and elements
/// from `element`.
pub struct VecStrategy<S> {
    element: S,
    size: Range<usize>,
}

/// `vec(element, len_range)` — mirrors `proptest::collection::vec`.
pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
    assert!(size.start < size.end, "empty length range");
    VecStrategy { element, size }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let len = rng.random_range(self.size.clone());
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::case_rng;

    #[test]
    fn length_respects_range() {
        let strat = vec(0u32..5, 2..7);
        let mut rng = case_rng(file!(), line!(), 0);
        for _ in 0..200 {
            let v = strat.generate(&mut rng);
            assert!((2..7).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 5));
        }
    }
}
