//! Synthetic graph generators.
//!
//! Each generator is deterministic given its seed. They are used by
//! [`crate::dataset::DatasetSpec`] to synthesise scaled replicas of the
//! paper's evaluation graphs:
//!
//! - [`rmat`] — recursive-matrix generator; heavy-tailed degree skew matching
//!   social networks (Reddit, Orkut, LiveJournal) and web graphs,
//! - [`ba`] — Barabási–Albert preferential attachment; power-law citation
//!   structure (Papers100M),
//! - [`er`] — Erdős–Rényi baseline used in tests,
//! - [`community`] — planted-partition (SBM) graphs with ground-truth labels
//!   used by the convergence experiments (Fig 16), where accuracy must be
//!   *learnable*.

pub mod ba;
pub mod community;
pub mod er;
pub mod rmat;

pub use ba::barabasi_albert;
pub use community::{planted_partition, PlantedPartition};
pub use er::erdos_renyi;
pub use rmat::{rmat, RmatParams};
