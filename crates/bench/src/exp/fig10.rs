//! Fig 10 — overall single-GPU training performance: six systems × six
//! datasets × three models.

use crate::util::{fmt_secs, render_table};
use crate::Setup;
use neutron_core::baselines::{Case1Dgl, Case2DglUva, Case3PaGraph, Case4GnnLab, GasLike};
use neutron_core::{NeutronOrch, Orchestrator};
use neutron_hetero::HardwareSpec;
use neutron_nn::LayerKind;

/// One cell of Fig 10: per-epoch seconds or the failure marker.
pub type Cell = Result<f64, &'static str>;

/// One (model, dataset) row across all systems.
#[derive(Clone, Debug)]
pub struct Fig10Row {
    pub model: LayerKind,
    pub dataset: &'static str,
    /// `(system name, cell)` in display order.
    pub cells: Vec<(String, Cell)>,
}

fn systems_for(kind: LayerKind) -> Vec<(String, Option<Box<dyn Orchestrator>>)> {
    // Feature-support matrix from §5.2: GNNLab/PaGraph lack GAT, GAS lacks
    // GraphSAGE.
    let mut v: Vec<(String, Option<Box<dyn Orchestrator>>)> = Vec::new();
    v.push(("DGL".into(), Some(Box::new(Case1Dgl { pipelined: true }))));
    v.push((
        "PaGraph".into(),
        if kind == LayerKind::Gat {
            None
        } else {
            Some(Box::new(Case3PaGraph))
        },
    ));
    v.push((
        "GNNLab".into(),
        if kind == LayerKind::Gat {
            None
        } else {
            Some(Box::new(Case4GnnLab))
        },
    ));
    v.push((
        "DGL-UVA".into(),
        Some(Box::new(Case2DglUva { pipelined: true })),
    ));
    v.push((
        "GAS".into(),
        if kind == LayerKind::Sage {
            None
        } else {
            Some(Box::new(GasLike))
        },
    ));
    v.push(("NeutronOrch".into(), Some(Box::new(NeutronOrch::new()))));
    v
}

/// Computes the full Fig 10 grid.
pub fn data(setup: Setup) -> Vec<Fig10Row> {
    let hw = HardwareSpec::v100_server(1.0);
    let mut rows = Vec::new();
    for kind in LayerKind::ALL {
        for spec in setup.datasets() {
            let profile = crate::build_profile(setup, &spec, kind, 3, 1024);
            let cells = systems_for(kind)
                .into_iter()
                .map(|(name, sys)| {
                    let cell = match sys {
                        None => Err("n/a"),
                        Some(s) => match s.simulate_epoch(&profile, &hw) {
                            Ok(r) => Ok(r.epoch_seconds),
                            Err(_) => Err("OOM"),
                        },
                    };
                    (name, cell)
                })
                .collect();
            rows.push(Fig10Row {
                model: kind,
                dataset: spec.name,
                cells,
            });
        }
    }
    rows
}

/// Renders Fig 10 as one table per model.
pub fn run(setup: Setup) -> String {
    let rows = data(setup);
    let mut out = String::new();
    for kind in LayerKind::ALL {
        let model_rows: Vec<&Fig10Row> = rows.iter().filter(|r| r.model == kind).collect();
        let headers: Vec<String> = std::iter::once("Dataset".to_string())
            .chain(model_rows[0].cells.iter().map(|(n, _)| n.clone()))
            .collect();
        let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
        let table_rows: Vec<Vec<String>> = model_rows
            .iter()
            .map(|r| {
                std::iter::once(r.dataset.to_string())
                    .chain(r.cells.iter().map(|(_, c)| match c {
                        Ok(s) => fmt_secs(*s),
                        Err(m) => (*m).to_string(),
                    }))
                    .collect()
            })
            .collect();
        out.push_str(&render_table(
            &format!(
                "Fig 10: per-epoch runtime, {} (bs=1024, replica scale)",
                kind.name()
            ),
            &header_refs,
            &table_rows,
        ));
        out.push('\n');
    }
    out
}

/// Max speedup of NeutronOrch over a named system across the grid — the
/// paper's headline "up to N×" numbers.
pub fn max_speedup_over(rows: &[Fig10Row], system: &str) -> f64 {
    let mut best: f64 = 0.0;
    for row in rows {
        let ours = row.cells.iter().find(|(n, _)| n == "NeutronOrch");
        let other = row.cells.iter().find(|(n, _)| n == system);
        if let (Some((_, Ok(a))), Some((_, Ok(b)))) = (ours, other) {
            best = best.max(b / a);
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn neutronorch_wins_every_comparable_cell() {
        let rows = data(Setup::Smoke);
        assert_eq!(rows.len(), 18);
        let mut compared = 0;
        let mut won = 0;
        for row in &rows {
            let ours = match &row.cells.last().unwrap().1 {
                Ok(s) => *s,
                Err(_) => continue,
            };
            for (name, cell) in &row.cells[..row.cells.len() - 1] {
                if let Ok(other) = cell {
                    compared += 1;
                    if ours <= *other * 1.10 {
                        won += 1;
                    }
                    let _ = name;
                }
            }
        }
        assert!(compared > 20);
        // Smoke replicas saturate and flatten access skew; the paper-scale
        // run (`exp -- fig10`) wins every comparable cell (EXPERIMENTS.md).
        assert!(
            won as f64 >= compared as f64 * 0.6,
            "NeutronOrch should win (or tie) most cells: {won}/{compared}"
        );
    }

    #[test]
    fn speedups_over_dgl_are_large() {
        let rows = data(Setup::Smoke);
        let s = max_speedup_over(&rows, "DGL");
        // Paper-scale runs reach 11x (paper: up to 11.51x); smoke replicas
        // compress the gap.
        assert!(s > 1.3, "expected a clear win over DGL; got {s:.2}x");
    }
}
