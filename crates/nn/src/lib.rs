//! GNN training engine: GCN, GraphSAGE and GAT over sampled blocks, with
//! hand-derived backward passes.
//!
//! The paper evaluates three models (§5.1): GCN [21], GraphSAGE [12] and GAT
//! [37]. Each is implemented as a [`layers::Layer`] operating on a
//! [`neutron_sample::Block`]; a [`model::GnnModel`] stacks them. Forward
//! passes return a [`model::ForwardPass`] holding every intermediate needed
//! for the manual backward pass — which is also what lets the NeutronOrch
//! trainer splice historical embeddings into the bottom layer and cut
//! gradient flow through them (§4.1.2).
//!
//! All gradients are validated against central finite differences in
//! [`gradcheck`]-based tests.

pub mod allreduce;
pub mod flops;
pub mod gradcheck;
pub mod layers;
pub mod loss;
pub mod metrics;
pub mod model;
pub mod optim;
pub mod param;

pub use allreduce::{tree_average, GradSet};
pub use layers::{Layer, LayerCtx, LayerKind};
pub use model::{ForwardPass, GnnModel, ModelConfig};
pub use param::Param;
