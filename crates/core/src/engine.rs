//! The persistent multi-epoch training engine.
//!
//! PR 1's [`crate::pipeline::PipelineExecutor`] proved the stage-overlap
//! claim but paid thread spawn/teardown on every `run_epoch` call and ran
//! the super-batch hot-embedding refresh inline on the train thread. This
//! module keeps the same stage graph alive for a whole *session*:
//!
//! ```text
//!              ┌───────────── generation-stamped epoch gate ─────────────┐
//!              ▼                                                         │
//! [sample xN] --ch--> [gather xM] --ch--> [transfer] --ch--> [train]  (epoch
//!   persistent          persistent          persistent        caller   loop)
//!      ▲                                                         │
//!      └─────────── spent-buffer return channel (pool) ◄─────────┘
//!
//! [refresh worker] <--task-- train thread at super-batch boundaries
//!                  --rows--> published at the *next* boundary (double buffer)
//! ```
//!
//! - **Persistent pool** — sampler/gather/transfer/refresh workers are
//!   spawned exactly once per [`TrainingEngine::run_session`]. Between
//!   epochs the samplers park on the [`EpochGate`], a generation-stamped
//!   barrier: the train thread publishes the next epoch's batch list under
//!   a new generation and the workers wake, claim batch indices from the
//!   job's shared counter, and go back to waiting when the counter runs
//!   dry. Gather/transfer workers park implicitly on their empty input
//!   channels. Multi-epoch runs pay thread startup once, not per epoch.
//! - **Allocation-free steady state** — after each batch trains, its spent
//!   buffers ([`BatchBuffers`]) flow back to the sampler pool through a
//!   bounded return channel and are refilled in place; the epoch-batch
//!   list, the train-side reorder window and every per-batch vector reuse
//!   session-lifetime capacity. Warm epochs allocate (near) nothing on the
//!   sample/gather/transfer hot path — measured per stage by
//!   [`neutron_tensor::alloc`] and regression-gated by
//!   `cargo xtask bench-diff`.
//! - **Pipelined refresh (Fig 8)** — at each super-batch boundary the
//!   trainer snapshots its bottom-layer parameters into a
//!   [`RefreshTask`] and hands the CPU share to the dedicated refresh
//!   worker; the rows are collected and published one boundary later
//!   (see [`crate::trainer::ConvergenceTrainer::train_batches_with`]), so
//!   the refresh overlaps training and historical reads keep the `< 2n`
//!   version-gap bound.
//! - **Occupancy-driven hybrid split (§4.1.3/§4.3)** — after every epoch
//!   the engine feeds the measured
//!   [`PipelineReport::train_occupancy`] into
//!   [`HybridPolicy::plan_from_occupancy`] and installs the planned CPU
//!   fraction for the next epoch's refreshes: a starved train stage pulls
//!   hot vertices onto the training device's cache, a saturated one pushes
//!   them back to the CPU. The split moves *work between devices*, never
//!   numbers: refresh tasks are partition-stable pure functions of their
//!   parameter snapshot, so the loss trajectory is bit-identical to the
//!   sequential trainer at every thread count and every split.

use crate::checkpoint::{self, Checkpoint, CheckpointError};
use crate::fault::{FailureAction, FailureEvent, FaultKind, FaultPlan};
use crate::gather::{GatheredFeatures, StagedBatch};
use crate::pipeline::{PipelineConfig, PipelineReport};
use crate::pool::BatchBuffers;
use crate::refresh::{CpuPart, RefreshBackend, RefreshOutput, RefreshTask};
use crate::trainer::{batch_sample_seed, ConvergenceTrainer, EpochObservation};
use neutron_cache::{FeatureCache, HybridPolicy};
use neutron_sample::{Block, BlockBuilder, EpochBatches, SamplerScratch};
use neutron_tensor::alloc::{self, AllocSnapshot, Stage};
use std::collections::VecDeque;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

// ---------------------------------------------------------------------------
// Concurrency primitives shared with the pipeline module.
// ---------------------------------------------------------------------------

/// A bounded MPMC channel built on `Mutex` + `Condvar` — the workspace
/// avoids external concurrency crates, and `std::sync::mpsc` receivers
/// cannot be shared by a pool of gather workers.
pub(crate) struct Bounded<T> {
    state: Mutex<ChannelState<T>>,
    capacity: usize,
    not_full: Condvar,
    not_empty: Condvar,
}

struct ChannelState<T> {
    queue: VecDeque<T>,
    closed: bool,
}

impl<T> Bounded<T> {
    pub(crate) fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "channel capacity must be positive");
        Self {
            state: Mutex::new(ChannelState {
                queue: VecDeque::new(),
                closed: false,
            }),
            capacity,
            not_full: Condvar::new(),
            not_empty: Condvar::new(),
        }
    }

    /// Blocks while full. Returns `false` (dropping `item`) if the channel
    /// was closed.
    pub(crate) fn send(&self, item: T) -> bool {
        self.send_or_return(item).is_none()
    }

    /// Blocks while full. On a closed channel the item is handed back so
    /// the caller can fall back to computing locally.
    pub(crate) fn send_or_return(&self, item: T) -> Option<T> {
        let mut st = self.state.lock().unwrap();
        while st.queue.len() >= self.capacity && !st.closed {
            st = self.not_full.wait(st).unwrap();
        }
        if st.closed {
            return Some(item);
        }
        st.queue.push_back(item);
        self.not_empty.notify_one();
        None
    }

    /// Blocks while empty. Returns `None` once the channel is closed *and*
    /// drained.
    pub(crate) fn recv(&self) -> Option<T> {
        let mut st = self.state.lock().unwrap();
        loop {
            if let Some(item) = st.queue.pop_front() {
                self.not_full.notify_one();
                return Some(item);
            }
            if st.closed {
                return None;
            }
            st = self.not_empty.wait(st).unwrap();
        }
    }

    /// Non-blocking **LIFO** receive: `None` when the queue is momentarily
    /// empty (or closed) — the pool path's "no spare bundle, allocate
    /// fresh". Popping the most recently returned item keeps a buffer pool
    /// cycling its hottest bundles — the ones whose capacities have already
    /// grown to the working set — so steady state arrives after a handful
    /// of batches instead of after every pooled bundle has individually
    /// served the largest batch.
    pub(crate) fn try_recv(&self) -> Option<T> {
        let mut st = self.state.lock().unwrap();
        let item = st.queue.pop_back();
        if item.is_some() {
            self.not_full.notify_one();
        }
        item
    }

    /// Non-blocking send: hands `item` back when the channel is full or
    /// closed, so a bounded pool can simply drop surplus bundles instead
    /// of stalling the train stage on its own recycling.
    pub(crate) fn try_send(&self, item: T) -> Option<T> {
        let mut st = self.state.lock().unwrap();
        if st.closed || st.queue.len() >= self.capacity {
            return Some(item);
        }
        st.queue.push_back(item);
        self.not_empty.notify_one();
        None
    }

    /// Like [`Self::recv`], but gives up after `timeout` of continuous
    /// emptiness — the supervisor's only way to tell a *stalled* producer
    /// (alive but not progressing) from a merely slow one. A closed+drained
    /// channel still reports [`RecvTimeout::Closed`] immediately.
    pub(crate) fn recv_timeout(&self, timeout: Duration) -> RecvTimeout<T> {
        let deadline = Instant::now() + timeout;
        let mut st = self.state.lock().unwrap();
        loop {
            if let Some(item) = st.queue.pop_front() {
                self.not_full.notify_one();
                return RecvTimeout::Item(item);
            }
            if st.closed {
                return RecvTimeout::Closed;
            }
            let now = Instant::now();
            if now >= deadline {
                return RecvTimeout::TimedOut;
            }
            let (guard, _) = self.not_empty.wait_timeout(st, deadline - now).unwrap();
            st = guard;
        }
    }

    /// Marks the channel closed; receivers drain the queue then see `None`.
    pub(crate) fn close(&self) {
        self.state.lock().unwrap().closed = true;
        self.not_full.notify_all();
        self.not_empty.notify_all();
    }
}

/// Outcome of [`Bounded::recv_timeout`].
pub(crate) enum RecvTimeout<T> {
    /// An item arrived within the timeout.
    Item(T),
    /// The channel is closed and drained — the producer exited.
    Closed,
    /// Nothing arrived for the whole timeout — the producer may be stalled.
    TimedOut,
}

/// Accumulates busy nanoseconds across worker threads.
#[derive(Default)]
pub(crate) struct BusyNs(AtomicU64);

impl BusyNs {
    pub(crate) fn add(&self, since: Instant) {
        self.0
            .fetch_add(since.elapsed().as_nanos() as u64, Ordering::Relaxed);
    }

    pub(crate) fn seconds(&self) -> f64 {
        self.0.load(Ordering::Relaxed) as f64 * 1e-9
    }
}

/// Runs a closure on drop — used so that channel close / gate shutdown
/// happens even when a stage panics, turning a bug-induced panic into a
/// propagated failure instead of a deadlock (workers blocked forever on a
/// channel nobody will close).
pub(crate) struct Defer<F: FnMut()>(pub(crate) F);

impl<F: FnMut()> Drop for Defer<F> {
    fn drop(&mut self) {
        (self.0)();
    }
}

/// Why a training session failed. Every variant is a *detected* failure:
/// the session's supervisor turned a worker panic, a stall or a bad
/// checkpoint into this typed error instead of hanging a `recv` forever.
#[derive(Clone, Debug)]
pub enum SessionError {
    /// A stage worker panicked; the batch it held is lost and the pipeline
    /// was poisoned so every other stage unblocked.
    WorkerPanicked {
        /// Stage the panicking worker belonged to.
        stage: &'static str,
        /// The panic payload (stringified).
        message: String,
    },
    /// The pipeline stopped making progress: nothing reached the train
    /// stage for the configured stall timeout while work remained.
    Stalled {
        /// Epoch being trained when progress stopped.
        epoch: usize,
        /// First batch index that never arrived.
        step: usize,
        /// The timeout that expired.
        timeout: Duration,
    },
    /// A replica's worker died (panicked or exited early) mid-epoch and the
    /// failure policy was [`crate::fault::FailurePolicy::Fail`].
    ReplicaDied {
        /// The replica that died.
        replica: usize,
        /// Epoch at detection.
        epoch: usize,
        /// Step (batch index) at detection.
        step: usize,
        /// What was detected.
        detail: String,
    },
    /// Every replica died; no degradation policy can continue.
    NoSurvivors {
        /// Epoch at which the last replica was lost.
        epoch: usize,
    },
    /// An epoch ended with fewer batches trained than scheduled and no
    /// panic to blame — e.g. every worker of a stage exited cleanly.
    EpochIncomplete {
        /// The epoch that came up short.
        epoch: usize,
        /// Batches actually trained.
        trained: usize,
        /// Batches scheduled.
        total: usize,
    },
    /// Writing or reading a checkpoint failed.
    Checkpoint(CheckpointError),
}

impl fmt::Display for SessionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SessionError::WorkerPanicked { stage, message } => {
                write!(f, "{stage} worker panicked: {message}")
            }
            SessionError::Stalled {
                epoch,
                step,
                timeout,
            } => write!(
                f,
                "pipeline stalled in epoch {epoch}: batch {step} never arrived within {timeout:?}"
            ),
            SessionError::ReplicaDied {
                replica,
                epoch,
                step,
                detail,
            } => write!(
                f,
                "replica {replica} died in epoch {epoch} at step {step}: {detail}"
            ),
            SessionError::NoSurvivors { epoch } => {
                write!(f, "all replicas lost by epoch {epoch}")
            }
            SessionError::EpochIncomplete {
                epoch,
                trained,
                total,
            } => write!(
                f,
                "epoch {epoch} incomplete: trained {trained} of {total} batches"
            ),
            SessionError::Checkpoint(e) => write!(f, "checkpoint failure: {e}"),
        }
    }
}

impl std::error::Error for SessionError {}

impl From<CheckpointError> for SessionError {
    fn from(e: CheckpointError) -> Self {
        SessionError::Checkpoint(e)
    }
}

/// Shared scratch where panicking workers deposit their stage name and
/// panic payload before poisoning the pipeline; the supervisor turns the
/// first entry into [`SessionError::WorkerPanicked`].
#[derive(Default)]
pub(crate) struct FailureCell(Mutex<Vec<(&'static str, String)>>);

impl FailureCell {
    pub(crate) fn record(&self, stage: &'static str, message: String) {
        self.0.lock().unwrap().push((stage, message));
    }

    pub(crate) fn first(&self) -> Option<SessionError> {
        self.0
            .lock()
            .unwrap()
            .first()
            .map(|(stage, message)| SessionError::WorkerPanicked {
                stage,
                message: message.clone(),
            })
    }
}

/// Stringifies a panic payload (the `&str`/`String` cases panics actually
/// carry; anything else gets a placeholder).
pub(crate) fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// The transfer stage for one batch: account host→device bytes and, when a
/// simulated link is configured, stall for the PCIe time. Shared by the
/// engine's transfer worker and the sequential baseline so their per-batch
/// costing can never drift apart. Charges only the batch's *miss* bytes —
/// cache-resident features never cross the link.
pub(crate) fn transfer_stage(cfg: &PipelineConfig, batch: &StagedBatch, h2d_bytes: &AtomicU64) {
    let bytes = batch.h2d_bytes();
    h2d_bytes.fetch_add(bytes, Ordering::Relaxed);
    if cfg.h2d_gibps > 0.0 {
        let secs = bytes as f64 / (cfg.h2d_gibps * (1u64 << 30) as f64);
        std::thread::sleep(Duration::from_secs_f64(secs));
    }
}

// ---------------------------------------------------------------------------
// The generation-stamped epoch gate.
// ---------------------------------------------------------------------------

/// One epoch's worth of work, published to the persistent sampler pool.
#[derive(Clone)]
struct EpochJob {
    /// Gate generation this job was published under (stricly increasing).
    generation: u64,
    /// Epoch number (seeds batch sampling).
    epoch: usize,
    /// The epoch's shuffled batches, in train order. The `Arc` is recycled
    /// across epochs (see `run_session`): one flat id buffer serves the
    /// whole session instead of a fresh `Vec<Vec<_>>` per epoch.
    batches: Arc<EpochBatches>,
    /// Shared claim counter: samplers `fetch_add` to pick the next batch.
    next: Arc<AtomicUsize>,
    /// The GPU feature cache in effect for this epoch. Published with the
    /// job (not read from shared engine state) so every worker probes the
    /// exact same snapshot: rebuilds between epochs can never race a
    /// straggling gather, because an epoch's channels fully drain before
    /// the next generation opens.
    cache: Arc<FeatureCache>,
}

/// The barrier persistent workers park on between epochs. The train thread
/// opens a new generation with the next epoch's job; workers wake, drain
/// the job, and wait for a generation newer than the last one they served.
struct EpochGate {
    state: Mutex<GateState>,
    opened: Condvar,
}

struct GateState {
    generation: u64,
    job: Option<EpochJob>,
    shutdown: bool,
}

impl EpochGate {
    fn new() -> Self {
        Self {
            state: Mutex::new(GateState {
                generation: 0,
                job: None,
                shutdown: false,
            }),
            opened: Condvar::new(),
        }
    }

    /// Publishes `job` under a new generation, waking every parked worker.
    fn open(&self, job: EpochJob) {
        let mut st = self.state.lock().unwrap();
        debug_assert!(job.generation > st.generation, "generations must advance");
        st.generation = job.generation;
        st.job = Some(job);
        self.opened.notify_all();
    }

    /// Parks until a generation newer than `seen` is open (returning its
    /// job) or the gate shuts down (returning `None`).
    fn wait_past(&self, seen: u64) -> Option<EpochJob> {
        let mut st = self.state.lock().unwrap();
        loop {
            if st.shutdown {
                return None;
            }
            if st.generation > seen {
                return st.job.clone();
            }
            st = self.opened.wait(st).unwrap();
        }
    }

    /// Ends the session: every parked worker wakes and exits.
    fn shutdown(&self) {
        self.state.lock().unwrap().shutdown = true;
        self.opened.notify_all();
    }
}

/// One sampled batch in flight between the sampler pool and the gather
/// workers, carrying the recycled buffer bundle whose block capacity it was
/// (partly) built from — the gather stage draws its own buffers from the
/// same bundle, and the whole thing rides to the train stage and back to
/// the pool.
struct SampledItem {
    index: usize,
    blocks: Vec<Block>,
    cache: Arc<FeatureCache>,
    bufs: BatchBuffers,
}

/// Train-stage input adaptor for one epoch: receives possibly out-of-order
/// prepared batches and yields exactly `remaining` of them in epoch order,
/// tracking starvation time and the reorder window. Bounded by count (not
/// channel close) because the channels outlive the epoch. The reorder
/// window itself is caller-owned and reused across epochs — a ring of
/// slots indexed by distance from the next in-order batch, replacing the
/// node-per-batch `BTreeMap` the hot path used to allocate into.
struct EpochReorder<'a> {
    source: &'a Bounded<StagedBatch>,
    window: &'a mut VecDeque<Option<StagedBatch>>,
    next_index: usize,
    remaining: usize,
    live: usize,
    wait: Duration,
    peak: usize,
    /// How long the train stage waits on an empty channel before declaring
    /// the pipeline stalled.
    stall_timeout: Duration,
    /// Latched when a wait timed out: the feed ends and the supervisor
    /// raises [`SessionError::Stalled`] instead of blocking forever on a
    /// worker that will never produce.
    stalled: bool,
}

impl<'a> EpochReorder<'a> {
    fn new(
        source: &'a Bounded<StagedBatch>,
        total: usize,
        window: &'a mut VecDeque<Option<StagedBatch>>,
        stall_timeout: Duration,
    ) -> Self {
        window.clear(); // keeps capacity: steady-state epochs never regrow it
        Self {
            source,
            window,
            next_index: 0,
            remaining: total,
            live: 0,
            wait: Duration::ZERO,
            peak: 0,
            stall_timeout,
            stalled: false,
        }
    }
}

impl Iterator for EpochReorder<'_> {
    type Item = StagedBatch;

    fn next(&mut self) -> Option<StagedBatch> {
        if self.remaining == 0 || self.stalled {
            return None;
        }
        loop {
            if matches!(self.window.front(), Some(Some(_))) {
                let item = self.window.pop_front().flatten().unwrap();
                self.next_index += 1;
                self.remaining -= 1;
                self.live -= 1;
                return Some(item);
            }
            let t0 = Instant::now();
            let received = self.source.recv_timeout(self.stall_timeout);
            self.wait += t0.elapsed();
            match received {
                RecvTimeout::Item(item) => {
                    let offset = item.index - self.next_index;
                    while self.window.len() <= offset {
                        self.window.push_back(None);
                    }
                    self.window[offset] = Some(item);
                    self.live += 1;
                    self.peak = self.peak.max(self.live);
                }
                RecvTimeout::Closed => return None,
                RecvTimeout::TimedOut => {
                    self.stalled = true;
                    return None;
                }
            }
        }
    }
}

/// Refresh backend bridging the trainer's super-batch boundaries to the
/// session's dedicated refresh worker.
struct WorkerRefresh<'a> {
    tasks: &'a Bounded<RefreshTask>,
    outputs: &'a Bounded<RefreshOutput>,
    /// Cumulative time the train thread spent blocked in [`Self::collect`]
    /// waiting for the refresh worker. This is train-stage *starvation*
    /// (the training device idling on CPU work), and must be attributed to
    /// wait — not compute — or the measured occupancy would read ~1.0
    /// exactly when the refresh worker is the bottleneck, inverting the
    /// §4.1.3 feedback (the planner would keep hot vertices on the
    /// overloaded CPU instead of offloading them to the idle trainer).
    wait: Duration,
    /// Set when [`Self::collect`] found the output channel closed with a
    /// collect outstanding — the refresh worker died mid-task. The session
    /// supervisor checks this after the epoch and fails the session (the
    /// substituted empty output keeps the trainer unwedged until then).
    failed: bool,
}

impl RefreshBackend for WorkerRefresh<'_> {
    fn submit(&mut self, task: RefreshTask) -> CpuPart {
        match self.tasks.send_or_return(task) {
            None => CpuPart::Submitted,
            // Channel closed (teardown/panic path): compute locally so the
            // trainer's refresh schedule stays intact.
            Some(task) => CpuPart::Ready(task.run()),
        }
    }

    fn collect(&mut self) -> RefreshOutput {
        let t0 = Instant::now();
        let out = self.outputs.recv();
        self.wait += t0.elapsed();
        match out {
            Some(out) => out,
            // The refresh worker died between accepting the task and
            // producing rows (panic path: its channels are poisoned). Do
            // NOT panic here — that used to deadlock the other stages.
            // Hand back an empty output so the train thread stays live and
            // flag the failure for the supervisor to turn into a typed
            // session error at the epoch boundary.
            None => {
                self.failed = true;
                RefreshOutput::empty(0)
            }
        }
    }
}

// ---------------------------------------------------------------------------
// The engine.
// ---------------------------------------------------------------------------

/// Engine configuration: the stage-graph shape plus the adaptive-split loop.
#[derive(Clone, Debug)]
pub struct EngineConfig {
    /// Stage thread counts, channel depth and simulated link (shared with
    /// the single-epoch executor).
    pub pipeline: PipelineConfig,
    /// Re-plan the hybrid hot-set split from measured train occupancy
    /// between epochs (§4.1.3 closed at runtime). When `false` the split
    /// stays wherever
    /// [`ConvergenceTrainer::set_refresh_cpu_fraction`] put it.
    pub adaptive_split: bool,
    /// Device memory the hybrid planner may spend on cached hot features.
    pub gpu_free_bytes: u64,
    /// EWMA weight of the newest occupancy measurement in the adaptive
    /// feedback signal: `s ← α·measured + (1−α)·s_prev`. `1.0` disables
    /// smoothing (raw per-epoch occupancy, the pre-v2 behaviour); smaller
    /// values damp per-epoch timer noise before it reaches the planner.
    pub occupancy_ewma_alpha: f64,
    /// Dead band of the split controller: a newly planned CPU fraction only
    /// replaces the installed one — and rebuilds the GPU feature cache —
    /// when it differs from it by more than this. Suppresses the ±0.1
    /// plan churn visible in `BENCH_engine.json` trajectories. The first
    /// plan of a session always installs (there is nothing to churn yet, and
    /// the cache must get populated).
    pub split_hysteresis: f64,
    /// Threads the refresh worker spreads each task's vertex list over
    /// (via [`RefreshTask::run_sharded`] — partition-stable, so any value
    /// is bit-identical). `0` means auto: one shard per available core.
    /// `1` keeps the pre-sharding serial behaviour.
    pub refresh_workers: usize,
    /// Capacity of the train→sample buffer return channel: how many spent
    /// [`BatchBuffers`] bundles the session keeps circulating. `0` means
    /// auto — enough to hold every bundle that can be in flight at once
    /// (three staging channels plus one per stage worker and reorder
    /// slack), so the end-of-epoch drain never overflows the pool and
    /// drops a grown bundle's capacity. Any value (even `1`) is
    /// bit-identical: a drained pool just means the sampler allocates
    /// fresh, exactly like the cold-start path.
    pub pool_batches: usize,
    /// Write a checkpoint after every epoch whose (absolute) number + 1 is
    /// a multiple of this. `0` disables checkpointing. The cadence keys on
    /// the absolute epoch, so a restored session checkpoints at the same
    /// boundaries the uninterrupted run would have.
    pub checkpoint_every: usize,
    /// Where the checkpoint file lives (atomically replaced at each write).
    /// Checkpointing needs both this and a nonzero
    /// [`Self::checkpoint_every`].
    pub checkpoint_path: Option<PathBuf>,
    /// Deterministic fault schedule consulted by the stage workers — test
    /// and drill harness, `None` in production runs.
    pub fault_plan: Option<Arc<FaultPlan>>,
    /// How long the train stage tolerates an empty staging channel (with
    /// work outstanding) before declaring the pipeline stalled.
    pub stall_timeout: Duration,
}

impl EngineConfig {
    /// Resolves [`Self::refresh_workers`]'s auto (`0`) setting.
    pub fn effective_refresh_workers(&self) -> usize {
        match self.refresh_workers {
            0 => std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
                .min(8),
            n => n,
        }
    }

    /// Resolves [`Self::pool_batches`]'s auto (`0`) setting. The auto size
    /// must cover the session's maximum in-flight bundle count — if the
    /// pool can overflow during the end-of-epoch drain, `try_send` drops a
    /// warmed-up bundle and the next epoch re-grows a fresh one from zero,
    /// leaving steady-state allocation churn that never converges.
    pub fn effective_pool_batches(&self) -> usize {
        match self.pool_batches {
            0 => {
                3 * self.pipeline.channel_depth
                    + self.pipeline.sampler_threads
                    + self.pipeline.gather_threads
                    + 10
            }
            n => n,
        }
    }
}

impl Default for EngineConfig {
    fn default() -> Self {
        Self {
            pipeline: PipelineConfig::default(),
            adaptive_split: true,
            gpu_free_bytes: 64 << 20,
            occupancy_ewma_alpha: 0.4,
            split_hysteresis: 0.05,
            refresh_workers: 0,
            pool_batches: 0,
            checkpoint_every: 0,
            checkpoint_path: None,
            fault_plan: None,
            stall_timeout: Duration::from_secs(5),
        }
    }
}

/// One epoch of a session: observation, stage report and the refresh split
/// that was in effect.
#[derive(Clone, Debug)]
pub struct EpochRun {
    /// Epoch number.
    pub epoch: usize,
    /// Loss/accuracy/staleness of the epoch.
    pub observation: EpochObservation,
    /// Measured per-stage breakdown.
    pub report: PipelineReport,
    /// CPU share of the hot-set refresh during this epoch (1.0 = all
    /// refreshes on the CPU worker).
    pub refresh_cpu_fraction: f64,
    /// Busy seconds the background refresh worker spent *during this
    /// epoch's wall-clock window*. A refresh submitted at an epoch's last
    /// super-batch boundary mostly executes early in the next epoch, so its
    /// time is credited where it physically ran — per-epoch values describe
    /// worker load over time, not per-epoch task provenance.
    pub refresh_seconds: f64,
    /// Seconds spent in test-set evaluation after the epoch — inference,
    /// kept out of `report.epoch_seconds` so throughput numbers measure
    /// training only.
    pub eval_seconds: f64,
    /// Vertices resident in the GPU feature cache *during* this epoch (the
    /// snapshot the gather workers probed; rebuilds planned at the end of
    /// the epoch take effect in the next one).
    pub cache_vertices: usize,
    /// EWMA-smoothed train occupancy after folding in this epoch's
    /// measurement — the signal the planner actually sees. Equals the raw
    /// measurement when the adaptive split is off.
    pub smoothed_occupancy: f64,
    /// Heap allocations attributed per stage during this epoch's training
    /// window (gate open → last batch trained; evaluation excluded). All
    /// zero unless a [`neutron_tensor::alloc::CountingAllocator`] is
    /// installed and enabled — see `BENCH_engine.json`'s `allocs_per_epoch`.
    pub allocs: AllocSnapshot,
    /// Bytes of the checkpoint written at this epoch's boundary (0 when no
    /// checkpoint was due).
    pub checkpoint_bytes: u64,
    /// Wall-clock spent capturing + writing that checkpoint — measured
    /// outside `report.epoch_seconds`, so checkpoint cadence never skews
    /// the throughput trajectory (it is gated separately by
    /// `cargo xtask bench-diff`).
    pub checkpoint_seconds: f64,
}

/// What a whole session produced.
#[derive(Debug)]
pub struct SessionReport {
    /// Per-epoch results, in order.
    pub epochs: Vec<EpochRun>,
    /// Worker threads spawned — once per session, independent of epoch
    /// count (samplers + gatherers + transfer + refresh).
    pub workers_spawned: usize,
    /// Gate generations opened (== epochs run).
    pub generations: u64,
    /// Wall-clock from session start to all workers spawned — the one-time
    /// cost the persistent pool amortises over every epoch (the respawn
    /// path pays it per epoch).
    pub startup_seconds: f64,
}

impl SessionReport {
    /// The adaptive split's trajectory: CPU refresh share per epoch.
    pub fn cpu_fraction_trajectory(&self) -> Vec<f64> {
        self.epochs.iter().map(|e| e.refresh_cpu_fraction).collect()
    }

    /// Host→device bytes shipped per epoch — the trajectory that drops as
    /// the planner shifts hot vertices into the GPU feature cache.
    pub fn h2d_bytes_trajectory(&self) -> Vec<u64> {
        self.epochs.iter().map(|e| e.report.h2d_bytes).collect()
    }

    /// Summed wall-clock of all epochs.
    pub fn total_seconds(&self) -> f64 {
        self.epochs.iter().map(|e| e.report.epoch_seconds).sum()
    }
}

/// The persistent multi-epoch training engine (see module docs).
pub struct TrainingEngine {
    config: EngineConfig,
}

impl TrainingEngine {
    /// Builds an engine; thread counts must be positive.
    pub fn new(config: EngineConfig) -> Self {
        assert!(
            config.pipeline.sampler_threads > 0,
            "need at least one sampler thread"
        );
        assert!(
            config.pipeline.gather_threads > 0,
            "need at least one gather thread"
        );
        Self { config }
    }

    /// The engine's configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// Runs `num_epochs` epochs starting at `first_epoch` over one
    /// persistent worker pool. Numerically identical to calling
    /// `trainer.train_epoch(e)` (or the sequential executor) for the same
    /// epochs, at any thread count and any hybrid split — concurrency and
    /// the adaptive planner change wall-clock and placement, never results.
    ///
    /// Panics on session failure; use [`Self::run_session_checked`] to get
    /// the typed error instead.
    pub fn run_session(
        &self,
        trainer: &mut ConvergenceTrainer,
        first_epoch: usize,
        num_epochs: usize,
    ) -> SessionReport {
        self.run_session_checked(trainer, first_epoch, num_epochs)
            .unwrap_or_else(|e| panic!("training session failed: {e}"))
    }

    /// [`Self::run_session`] with failures surfaced as [`SessionError`]
    /// instead of panics: a panicking stage worker poisons the pipeline
    /// (closing every staging channel so no stage can block forever on a
    /// peer that died) and the session returns
    /// [`SessionError::WorkerPanicked`] carrying the worker's stage and
    /// panic payload; a producer that stops producing without exiting trips
    /// the [`EngineConfig::stall_timeout`] and returns
    /// [`SessionError::Stalled`].
    pub fn run_session_checked(
        &self,
        trainer: &mut ConvergenceTrainer,
        first_epoch: usize,
        num_epochs: usize,
    ) -> Result<SessionReport, SessionError> {
        let pcfg = &self.config.pipeline;
        let dataset = trainer.dataset_handle();
        let sampler = trainer.sampler().clone();
        let config_seed = trainer.config().seed;
        let policy = HybridPolicy {
            feature_row_bytes: dataset.spec.feature_row_bytes(),
            embedding_row_bytes: dataset.spec.hidden_row_bytes(),
        };

        let gate = EpochGate::new();
        let sampled: Bounded<SampledItem> = Bounded::new(pcfg.channel_depth);
        let prepared: Bounded<StagedBatch> = Bounded::new(pcfg.channel_depth);
        let ready: Bounded<StagedBatch> = Bounded::new(pcfg.channel_depth);
        // The return path: spent per-batch buffer bundles flow train→sample
        // against the forward channels, making steady-state epochs (near)
        // allocation-free. Both ends are non-blocking (`try_*`): an empty
        // pool allocates fresh, a full pool drops the surplus bundle.
        let pool: Bounded<BatchBuffers> = Bounded::new(self.config.effective_pool_batches());
        let tasks: Bounded<RefreshTask> = Bounded::new(1);
        let outputs: Bounded<RefreshOutput> = Bounded::new(1);
        let live_samplers = AtomicUsize::new(pcfg.sampler_threads);
        let live_gatherers = AtomicUsize::new(pcfg.gather_threads);
        let sample_busy = BusyNs::default();
        let gather_busy = BusyNs::default();
        let transfer_busy = BusyNs::default();
        let refresh_busy = BusyNs::default();
        let h2d_bytes = AtomicU64::new(0);
        // samplers + gatherers + transfer + refresh, spawned exactly once.
        let workers_spawned = pcfg.sampler_threads + pcfg.gather_threads + 2;

        // Fault-tolerance plumbing: where panicking workers report in, the
        // failure/recovery timeline surfaced per epoch, the flag that frees
        // an (injected) stalled worker at teardown so the scope can join
        // it, and the deterministic fault schedule the workers consult.
        let failures = FailureCell::default();
        let timeline: Mutex<Vec<FailureEvent>> = Mutex::new(Vec::new());
        let stall_release = AtomicBool::new(false);
        let fault_plan = self.config.fault_plan.as_deref();
        let checkpoint_on =
            self.config.checkpoint_every > 0 && self.config.checkpoint_path.is_some();
        let digest = checkpoint::config_digest(trainer.config(), 1);

        // A panicking stage worker cannot just die: its peers may be
        // blocked in `send` on a full channel only the dead worker
        // would have drained (the liveness Defers handle *clean* exits,
        // not a consumer that vanishes with its input open). Poisoning
        // closes every staging channel so all stages unblock, then the
        // supervisor reports the recorded panic as a typed error.
        let poison = |stage: &'static str, payload: Box<dyn std::any::Any + Send>| {
            failures.record(stage, panic_message(payload));
            gate.shutdown();
            sampled.close();
            prepared.close();
            ready.close();
            tasks.close();
            outputs.close();
        };

        let mut runs: Vec<EpochRun> = Vec::with_capacity(num_epochs);
        let mut startup_seconds = 0.0;
        let session_start = Instant::now();
        let outcome: Result<(), SessionError> = std::thread::scope(|scope| {
            // If the train stage (this thread) panics or errors, unblock
            // every worker so `thread::scope` can join them and propagate
            // the failure instead of deadlocking.
            let _teardown = Defer(|| {
                stall_release.store(true, Ordering::Release);
                gate.shutdown();
                sampled.close();
                prepared.close();
                ready.close();
                pool.close();
                tasks.close();
                outputs.close();
            });
            // Shadow the shared state as references so the `move` worker
            // closures (which must own their loop index) capture borrows,
            // not the values.
            let (gate, sampled, prepared, ready, pool, tasks, outputs) =
                (&gate, &sampled, &prepared, &ready, &pool, &tasks, &outputs);
            let (live_samplers, live_gatherers) = (&live_samplers, &live_gatherers);
            let (sample_busy, gather_busy, transfer_busy, refresh_busy) =
                (&sample_busy, &gather_busy, &transfer_busy, &refresh_busy);
            let (h2d_bytes, dataset, sampler) = (&h2d_bytes, &dataset, &sampler);
            let (timeline, stall_release) = (&timeline, &stall_release);
            for w in 0..pcfg.sampler_threads {
                let poison = &poison;
                scope.spawn(move || {
                    // When the last sampler exits (shutdown), close the
                    // sampled channel so gather workers drain and exit too.
                    let _liveness = Defer(|| {
                        if live_samplers.fetch_sub(1, Ordering::AcqRel) == 1 {
                            sampled.close();
                        }
                    });
                    alloc::set_stage(Stage::Sample);
                    let body = AssertUnwindSafe(|| {
                        let mut builder = BlockBuilder::new();
                        let mut seen = 0u64;
                        while let Some(job) = gate.wait_past(seen) {
                            seen = job.generation;
                            let total = job.batches.len();
                            loop {
                                // Injected crash: a clean exit *before*
                                // claiming a batch — the shared claim
                                // counter lets the surviving samplers steal
                                // every remaining batch, so the session
                                // completes bit-identically.
                                if let Some(plan) = fault_plan {
                                    let reached = job.next.load(Ordering::Relaxed);
                                    if plan.take_crash(w, job.epoch, reached) {
                                        timeline.lock().unwrap().push(FailureEvent {
                                            epoch: job.epoch,
                                            step: reached,
                                            replica: w,
                                            detail: "injected sampler crash (clean exit); peers steal its work".into(),
                                            action: FailureAction::Observed,
                                        });
                                        return;
                                    }
                                }
                                let i = job.next.fetch_add(1, Ordering::Relaxed);
                                if i >= total {
                                    break;
                                }
                                if let Some(kind) = fault_plan.and_then(|p| p.take(w, job.epoch, i))
                                {
                                    match kind {
                                        FaultKind::Crash => unreachable!("crash is pre-claim"),
                                        FaultKind::Panic => {
                                            timeline.lock().unwrap().push(FailureEvent {
                                                epoch: job.epoch,
                                                step: i,
                                                replica: w,
                                                detail: "injected sampler panic".into(),
                                                action: FailureAction::Failed,
                                            });
                                            panic!(
                                                "injected fault: sampler {w} panicked at epoch {} step {i}",
                                                job.epoch
                                            );
                                        }
                                        FaultKind::Stall => {
                                            // Alive but never producing
                                            // again: batch `i` is claimed
                                            // and will never arrive, which
                                            // is exactly what the stall
                                            // timeout must detect. Exits
                                            // only at teardown so the
                                            // scope can join.
                                            timeline.lock().unwrap().push(FailureEvent {
                                                epoch: job.epoch,
                                                step: i,
                                                replica: w,
                                                detail: "injected sampler stall".into(),
                                                action: FailureAction::Observed,
                                            });
                                            while !stall_release.load(Ordering::Acquire) {
                                                std::thread::sleep(Duration::from_millis(1));
                                            }
                                            return;
                                        }
                                        FaultKind::Straggler => {
                                            // Transient slowdown; recovers
                                            // and processes the batch, so
                                            // results are bit-identical.
                                            timeline.lock().unwrap().push(FailureEvent {
                                                epoch: job.epoch,
                                                step: i,
                                                replica: w,
                                                detail: "injected straggler delay (25ms)".into(),
                                                action: FailureAction::Observed,
                                            });
                                            std::thread::sleep(Duration::from_millis(25));
                                        }
                                    }
                                }
                                let t0 = Instant::now();
                                // Feed the builder a recycled bundle's block
                                // capacity (if one is back from the train
                                // stage), then sample into it. Identical RNG
                                // stream and results either way.
                                let mut bufs = pool.try_recv().unwrap_or_default();
                                bufs.donate_to(&mut builder);
                                let blocks = sampler.sample_batch_pooled(
                                    &dataset.csr,
                                    job.batches.batch(i),
                                    batch_sample_seed(config_seed, job.epoch, i),
                                    &mut builder,
                                );
                                sample_busy.add(t0);
                                let item = SampledItem {
                                    index: i,
                                    blocks,
                                    cache: Arc::clone(&job.cache),
                                    bufs,
                                };
                                if !sampled.send(item) {
                                    return;
                                }
                            }
                        }
                    });
                    if let Err(payload) = catch_unwind(body) {
                        poison("sample", payload);
                    }
                });
            }
            for _ in 0..pcfg.gather_threads {
                let poison = &poison;
                scope.spawn(move || {
                    let _liveness = Defer(|| {
                        if live_gatherers.fetch_sub(1, Ordering::AcqRel) == 1 {
                            prepared.close();
                        }
                    });
                    alloc::set_stage(Stage::Gather);
                    let body = AssertUnwindSafe(|| {
                        while let Some(item) = sampled.recv() {
                            let SampledItem {
                                index,
                                blocks,
                                cache,
                                mut bufs,
                            } = item;
                            let t0 = Instant::now();
                            // Cache-keyed gather: probe the epoch's cache
                            // snapshot and host-gather only the misses,
                            // drawing position/miss buffers from the
                            // recycled bundle.
                            let features = GatheredFeatures::gather_pooled(
                                dataset, &blocks[0], &cache, &mut bufs,
                            );
                            gather_busy.add(t0);
                            if !prepared.send(StagedBatch {
                                index,
                                blocks,
                                features,
                                bufs,
                            }) {
                                break;
                            }
                        }
                    });
                    if let Err(payload) = catch_unwind(body) {
                        poison("gather", payload);
                    }
                });
            }
            {
                let poison = &poison;
                scope.spawn(move || {
                    let _liveness = Defer(|| ready.close());
                    alloc::set_stage(Stage::Transfer);
                    let body = AssertUnwindSafe(|| {
                        while let Some(batch) = prepared.recv() {
                            let t0 = Instant::now();
                            transfer_stage(pcfg, &batch, h2d_bytes);
                            transfer_busy.add(t0);
                            if !ready.send(batch) {
                                break;
                            }
                        }
                    });
                    if let Err(payload) = catch_unwind(body) {
                        poison("transfer", payload);
                    }
                });
            }
            {
                let poison = &poison;
                scope.spawn(move || {
                    let _liveness = Defer(|| outputs.close());
                    alloc::set_stage(Stage::Refresh);
                    let body = AssertUnwindSafe(|| {
                        let shard_workers = self.config.effective_refresh_workers();
                        let mut scratch = SamplerScratch::new();
                        while let Some(task) = tasks.recv() {
                            let t0 = Instant::now();
                            // Sharding is placement-only: run_sharded
                            // concatenates partition-stable shards in
                            // order, so the rows are the serial rows bit
                            // for bit at any worker count.
                            let out = if shard_workers > 1 {
                                task.run_sharded(shard_workers)
                            } else {
                                task.run_with_scratch(&mut scratch)
                            };
                            refresh_busy.add(t0);
                            if !outputs.send(out) {
                                break;
                            }
                        }
                    });
                    if let Err(payload) = catch_unwind(body) {
                        poison("refresh", payload);
                    }
                });
            }

            startup_seconds = session_start.elapsed().as_secs_f64();
            let mut backend = WorkerRefresh {
                tasks,
                outputs,
                wait: Duration::ZERO,
                failed: false,
            };
            // Adaptive-split v2 controller state: the GPU feature cache in
            // effect (empty until the first plan installs), the EWMA of the
            // measured occupancy, and whether any plan has installed yet
            // (the first one always does; hysteresis only damps changes
            // *between* plans).
            let mut epoch_cache: Arc<FeatureCache> = Arc::new(FeatureCache::empty());
            let mut smoothed_occupancy: Option<f64> = None;
            let mut split_installed = false;
            // Session-lifetime hot-path state: the train thread's stage tag,
            // the reused reorder window, and the recycled epoch-batch Arcs.
            // `prev`/`spare` lag the recycling by one epoch because the gate
            // holds the current job (and its Arc) until the next `open`;
            // the epoch-before-last is guaranteed unreferenced by then.
            let caller_stage = alloc::set_stage(Stage::Train);
            // Restore the caller's alloc stage on every exit path — the
            // typed-error returns below bail out mid-loop.
            let _restore_stage = Defer(move || {
                alloc::set_stage(caller_stage);
            });
            let mut reorder_window: VecDeque<Option<StagedBatch>> = VecDeque::new();
            let mut spare_batches: Option<Arc<EpochBatches>> = None;
            let mut prev_batches: Option<Arc<EpochBatches>> = None;
            for e in 0..num_epochs {
                let epoch = first_epoch + e;
                let mut epoch_ids = spare_batches
                    .take()
                    .and_then(|arc| Arc::try_unwrap(arc).ok())
                    .unwrap_or_default();
                trainer.fill_epoch_batches(epoch, &mut epoch_ids);
                let batches = Arc::new(epoch_ids);
                let total = batches.len();
                let before = (
                    sample_busy.seconds(),
                    gather_busy.seconds(),
                    transfer_busy.seconds(),
                    refresh_busy.seconds(),
                    h2d_bytes.load(Ordering::Relaxed),
                );
                let refresh_cpu_fraction = trainer.refresh_cpu_fraction();
                let collect_wait_before = backend.wait;
                let alloc_before = alloc::snapshot();

                let wall = Instant::now();
                gate.open(EpochJob {
                    generation: e as u64 + 1,
                    epoch,
                    batches: Arc::clone(&batches),
                    next: Arc::new(AtomicUsize::new(0)),
                    cache: Arc::clone(&epoch_cache),
                });
                // Train stage on the calling thread: in-order, owns the
                // model; super-batch refreshes flow through the worker.
                // Device-side feature assembly (cache rows + shipped miss
                // rows) happens here, after the transfer stage — hits never
                // cross the simulated link.
                let mut reorder =
                    EpochReorder::new(ready, total, &mut reorder_window, self.config.stall_timeout);
                let mut cache_hits = 0u64;
                let mut cache_misses = 0u64;
                let stats = {
                    let assembly_cache = Arc::clone(&epoch_cache);
                    let feed = (&mut reorder).map(|staged| {
                        cache_hits += staged.features.num_hits() as u64;
                        cache_misses += staged.features.num_misses() as u64;
                        staged.into_prepared(&assembly_cache)
                    });
                    // After each batch trains, dismantle it into its buffer
                    // bundle and push that down the return channel. Purely
                    // a capacity transfer — the batch's numbers are already
                    // folded into the model, so recycling cannot perturb
                    // results at any pool size.
                    trainer.train_batches_recycling(feed, &mut backend, |mut item| {
                        let mut bufs = std::mem::take(&mut item.scrap);
                        bufs.put_f32(std::mem::take(&mut item.features).into_vec());
                        bufs.recycle_blocks(std::mem::take(&mut item.blocks));
                        let _ = pool.try_send(bufs);
                    })
                };
                let epoch_seconds = wall.elapsed().as_secs_f64();
                // Leftover-batch guard: train_batches_with consumes every
                // batch today, but the channels persist across epochs and
                // indices restart at 0 each epoch — if it ever gains an
                // early-exit path, undelivered batches must not leak into
                // the next epoch's reorderer (they would alias its indices
                // and be trained on silently). Drain them here.
                while reorder.next().is_some() {}
                // Close the per-epoch allocation window before evaluation:
                // eval is inference, and its allocations are tagged `Other`
                // so they can never masquerade as hot-path staging churn.
                let allocs = alloc::snapshot().since(&alloc_before);
                // Supervision: turn whatever kept the epoch from completing
                // into a typed error *now*, instead of evaluating (and
                // reporting) a half-trained epoch. Order matters — a panic
                // poisons channels and therefore also looks like an early
                // close, so check the panic record first.
                if let Some(err) = failures.first() {
                    return Err(err);
                }
                if backend.failed {
                    return Err(SessionError::WorkerPanicked {
                        stage: "refresh",
                        message: "refresh worker died with a collect outstanding".into(),
                    });
                }
                if reorder.stalled {
                    let step = reorder.next_index;
                    timeline.lock().unwrap().push(FailureEvent {
                        epoch,
                        step,
                        replica: 0,
                        detail: format!(
                            "pipeline stalled: batch {step} never arrived within {:?}",
                            self.config.stall_timeout
                        ),
                        action: FailureAction::Failed,
                    });
                    return Err(SessionError::Stalled {
                        epoch,
                        step,
                        timeout: self.config.stall_timeout,
                    });
                }
                if reorder.remaining > 0 {
                    return Err(SessionError::EpochIncomplete {
                        epoch,
                        trained: total - reorder.remaining,
                        total,
                    });
                }

                let t_eval = Instant::now();
                let pre_eval_stage = alloc::set_stage(Stage::Other);
                let observation = trainer.observe_epoch(stats);
                alloc::set_stage(pre_eval_stage);
                let eval_seconds = t_eval.elapsed().as_secs_f64();
                // Starvation = blocked on upstream batches + blocked on the
                // refresh worker at super-batch boundaries (see
                // `WorkerRefresh::wait`).
                let train_wait =
                    (reorder.wait + (backend.wait - collect_wait_before)).as_secs_f64();
                let report = PipelineReport {
                    epoch_seconds,
                    num_batches: total,
                    sample_seconds: sample_busy.seconds() - before.0,
                    gather_collect_seconds: gather_busy.seconds() - before.1,
                    transfer_seconds: transfer_busy.seconds() - before.2,
                    train_seconds: (epoch_seconds - train_wait).max(0.0),
                    train_wait_seconds: train_wait,
                    h2d_bytes: h2d_bytes.load(Ordering::Relaxed) - before.4,
                    reorder_peak: reorder.peak,
                    cache_hits,
                    cache_misses,
                    failures: std::mem::take(&mut *timeline.lock().unwrap()),
                };
                // §4.1.3/§4.3 feedback, v2: smooth the measured occupancy
                // with an EWMA, plan from the smoothed signal, and only
                // install (and rebuild the feature cache) when the planned
                // split leaves the hysteresis band around the installed one
                // — timer noise must not churn the cache. Placement and
                // caching only: the refresh rows and the assembled feature
                // matrices are split-invariant, so results never change.
                let cache_vertices = epoch_cache.len();
                let measured = report.train_occupancy();
                let mut smoothed_this = measured;
                if self.config.adaptive_split {
                    if let Some(hot) = trainer.hot_set() {
                        let alpha = self.config.occupancy_ewma_alpha;
                        smoothed_this = match smoothed_occupancy {
                            None => measured,
                            Some(prev) => alpha * measured + (1.0 - alpha) * prev,
                        };
                        smoothed_occupancy = Some(smoothed_this);
                        let plan = policy.plan_from_occupancy(
                            hot,
                            smoothed_this,
                            self.config.gpu_free_bytes,
                        );
                        let planned = plan.cpu_fraction();
                        let installed = trainer.refresh_cpu_fraction();
                        if !split_installed
                            || (planned - installed).abs() > self.config.split_hysteresis
                        {
                            split_installed = true;
                            trainer.set_refresh_cpu_fraction(planned);
                            epoch_cache = Arc::new(if plan.gpu_cache.is_empty() {
                                FeatureCache::empty()
                            } else {
                                FeatureCache::for_vertices(
                                    &plan.gpu_cache,
                                    dataset.csr.num_vertices(),
                                    dataset.features().as_slice(),
                                    dataset.spec.feature_dim,
                                )
                            });
                        }
                    }
                }
                runs.push(EpochRun {
                    epoch,
                    observation,
                    report,
                    refresh_cpu_fraction,
                    refresh_seconds: refresh_busy.seconds() - before.3,
                    eval_seconds,
                    cache_vertices,
                    smoothed_occupancy: smoothed_this,
                    allocs,
                    checkpoint_bytes: 0,
                    checkpoint_seconds: 0.0,
                });
                // Checkpoint at the epoch boundary, after the epoch's
                // wall-clock window closed — checkpoint cost is measured
                // and gated separately, never folded into epoch_seconds.
                // `capture_state` settles the in-flight refresh first
                // (numerically identical), so the file is a complete,
                // self-contained resume point.
                if checkpoint_on && (epoch + 1).is_multiple_of(self.config.checkpoint_every) {
                    let t0 = Instant::now();
                    let state = trainer.capture_state(&mut backend);
                    let ck = Checkpoint {
                        next_epoch: epoch as u64 + 1,
                        replicas: 1,
                        rng_seeds: vec![config_seed],
                        state,
                    };
                    let path = self.config.checkpoint_path.as_ref().unwrap();
                    let bytes = checkpoint::save(path, digest, &ck)?;
                    let run = runs.last_mut().unwrap();
                    run.checkpoint_bytes = bytes;
                    run.checkpoint_seconds = t0.elapsed().as_secs_f64();
                }
                spare_batches = prev_batches.take();
                prev_batches = Some(batches);
            }
            // Resolve any refresh still on the worker so the trainer can
            // outlive this session (the rows publish at a later boundary).
            trainer.settle_refresh(&mut backend);
            if let Some(err) = failures.first() {
                return Err(err);
            }
            Ok(())
        });
        outcome?;

        Ok(SessionReport {
            epochs: runs,
            workers_spawned,
            generations: num_epochs as u64,
            startup_seconds,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trainer::{ReusePolicy, TrainerConfig};
    use neutron_graph::DatasetSpec;
    use neutron_nn::LayerKind;
    use neutron_tensor::Matrix;

    fn trainer(policy: ReusePolicy) -> ConvergenceTrainer {
        let ds = DatasetSpec::tiny().build_full();
        let mut cfg = TrainerConfig::convergence_default(LayerKind::Gcn, policy);
        cfg.batch_size = 64;
        cfg.lr = 0.5;
        ConvergenceTrainer::new(ds, cfg)
    }

    #[test]
    fn bounded_channel_blocks_at_capacity_and_drains_after_close() {
        let ch: Arc<Bounded<u32>> = Arc::new(Bounded::new(2));
        let producer = {
            let ch = Arc::clone(&ch);
            std::thread::spawn(move || {
                for i in 0..10 {
                    assert!(ch.send(i));
                }
                ch.close();
            })
        };
        let mut got = Vec::new();
        while let Some(v) = ch.recv() {
            got.push(v);
        }
        producer.join().unwrap();
        assert_eq!(got, (0..10).collect::<Vec<_>>());
        // After close, sends hand the item back and recv keeps seeing None.
        assert!(!ch.send(99));
        assert_eq!(ch.send_or_return(7), Some(7));
        assert!(ch.recv().is_none());
    }

    #[test]
    fn try_ops_never_block_and_bounce_at_capacity_or_close() {
        let ch: Bounded<u32> = Bounded::new(2);
        assert_eq!(ch.try_recv(), None, "empty channel yields nothing");
        assert_eq!(ch.try_send(1), None);
        assert_eq!(ch.try_send(2), None);
        assert_eq!(ch.try_send(3), Some(3), "full channel bounces the item");
        assert_eq!(ch.try_recv(), Some(2), "try_recv is LIFO: hottest first");
        assert_eq!(ch.try_send(3), None, "recv made room");
        ch.close();
        assert_eq!(ch.try_send(4), Some(4), "closed channel bounces");
        // A closed channel still drains — the pool's teardown path.
        assert_eq!(ch.try_recv(), Some(3));
        assert_eq!(ch.try_recv(), Some(1));
        assert_eq!(ch.try_recv(), None);
    }

    #[test]
    fn epoch_reorder_restores_order_and_stops_at_count() {
        let ch: Bounded<StagedBatch> = Bounded::new(8);
        for index in [2usize, 0, 1, 3] {
            ch.send(StagedBatch {
                index,
                blocks: Vec::new(),
                features: GatheredFeatures::dense(Matrix::zeros(1, 1)),
                bufs: BatchBuffers::new(),
            });
        }
        // Note: not closed — the channel outlives epochs in a session.
        let mut window = VecDeque::new();
        let mut reorder = EpochReorder::new(&ch, 4, &mut window, Duration::from_secs(5));
        let order: Vec<usize> = (&mut reorder).map(|b| b.index).collect();
        let peak = reorder.peak;
        assert_eq!(order, vec![0, 1, 2, 3]);
        assert_eq!(peak, 2, "2 was buffered while 0 then 1 arrived");
        assert!(window.is_empty(), "reused window drains with the epoch");
    }

    #[test]
    fn gate_wakes_workers_per_generation_and_shuts_down() {
        let gate = Arc::new(EpochGate::new());
        let seen = Arc::new(Mutex::new(Vec::new()));
        let worker = {
            let gate = Arc::clone(&gate);
            let seen = Arc::clone(&seen);
            std::thread::spawn(move || {
                let mut last = 0u64;
                while let Some(job) = gate.wait_past(last) {
                    last = job.generation;
                    seen.lock().unwrap().push(job.epoch);
                }
            })
        };
        for (generation, epoch) in [(1u64, 5usize), (2, 6), (3, 7)] {
            gate.open(EpochJob {
                generation,
                epoch,
                batches: Arc::new(EpochBatches::default()),
                next: Arc::new(AtomicUsize::new(0)),
                cache: Arc::new(FeatureCache::empty()),
            });
            // Wait until the worker consumed this generation before the next.
            while seen.lock().unwrap().len() < generation as usize {
                std::thread::yield_now();
            }
        }
        gate.shutdown();
        worker.join().unwrap();
        assert_eq!(*seen.lock().unwrap(), vec![5, 6, 7]);
    }

    #[test]
    fn session_matches_repeated_sequential_epochs_exactly() {
        let mut seq = trainer(ReusePolicy::Exact);
        let mut eng = trainer(ReusePolicy::Exact);
        let engine = TrainingEngine::new(EngineConfig {
            pipeline: PipelineConfig {
                sampler_threads: 3,
                gather_threads: 2,
                channel_depth: 2,
                h2d_gibps: 0.0,
            },
            ..EngineConfig::default()
        });
        let session = engine.run_session(&mut eng, 0, 3);
        assert_eq!(session.epochs.len(), 3);
        assert_eq!(session.workers_spawned, 3 + 2 + 1 + 1);
        for run in &session.epochs {
            let a = seq.train_epoch(run.epoch);
            assert_eq!(a.train_loss, run.observation.train_loss);
            assert_eq!(a.test_accuracy, run.observation.test_accuracy);
        }
    }

    #[test]
    fn session_keeps_staleness_bound_with_background_refresh() {
        let n = 2;
        let mut t = trainer(ReusePolicy::HotnessAware {
            hot_ratio: 0.3,
            super_batch: n,
        });
        let engine = TrainingEngine::new(EngineConfig::default());
        let session = engine.run_session(&mut t, 0, 4);
        for run in &session.epochs {
            assert!(
                run.observation.max_staleness < 2 * n as u64,
                "epoch {}: gap {} ≥ 2n",
                run.epoch,
                run.observation.max_staleness
            );
        }
        assert!(t.embedding_reuses() > 0);
        // The refresh worker actually carried refresh work.
        assert!(
            session
                .epochs
                .iter()
                .map(|e| e.refresh_seconds)
                .sum::<f64>()
                > 0.0
        );
    }

    #[test]
    fn adaptive_split_replans_between_epochs() {
        let mut t = trainer(ReusePolicy::HotnessAware {
            hot_ratio: 0.3,
            super_batch: 2,
        });
        let engine = TrainingEngine::new(EngineConfig::default());
        let session = engine.run_session(&mut t, 0, 3);
        let traj = session.cpu_fraction_trajectory();
        // Epoch 0 always starts all-CPU; later epochs follow the measured
        // plan (whatever it is, it must be a valid fraction).
        assert_eq!(traj[0], 1.0);
        assert!(traj.iter().all(|f| (0.0..=1.0).contains(f)));
    }
}
