//! Barabási–Albert preferential attachment generator.

use crate::builder::GraphBuilder;
use crate::csr::{Csr, VertexId};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Generates a Barabási–Albert graph: each new vertex attaches to
/// `edges_per_vertex` existing vertices chosen proportionally to degree.
///
/// Produces the power-law in-degree tail of citation networks; used for the
/// Papers100M replica.
pub fn barabasi_albert(num_vertices: usize, edges_per_vertex: usize, seed: u64) -> Csr {
    assert!(
        num_vertices > edges_per_vertex,
        "graph too small for attachment count"
    );
    assert!(edges_per_vertex >= 1);
    let mut rng = StdRng::seed_from_u64(seed);
    let m = edges_per_vertex;
    let mut builder = GraphBuilder::new(num_vertices).symmetric(true);
    // `endpoints` holds every edge endpoint seen so far; sampling uniformly
    // from it is sampling proportionally to degree.
    let mut endpoints: Vec<VertexId> = Vec::with_capacity(2 * num_vertices * m);
    // Seed clique over the first m+1 vertices.
    for i in 0..=m {
        for j in 0..i {
            builder.add_edge(i as VertexId, j as VertexId);
            endpoints.push(i as VertexId);
            endpoints.push(j as VertexId);
        }
    }
    for v in (m + 1)..num_vertices {
        let mut chosen = Vec::with_capacity(m);
        while chosen.len() < m {
            let t = endpoints[rng.random_range(0..endpoints.len())];
            if t != v as VertexId && !chosen.contains(&t) {
                chosen.push(t);
            }
        }
        for &t in &chosen {
            builder.add_edge(v as VertexId, t);
            endpoints.push(v as VertexId);
            endpoints.push(t);
        }
    }
    builder.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edge_count_matches_formula() {
        let g = barabasi_albert(200, 3, 1);
        // Seed clique: C(4,2)=6 undirected; then 196 vertices * 3 edges.
        let undirected = 6 + 196 * 3;
        assert_eq!(g.num_edges(), 2 * undirected);
        assert!(g.validate().is_ok());
    }

    #[test]
    fn every_vertex_is_connected() {
        let g = barabasi_albert(100, 2, 2);
        for v in 0..100 {
            assert!(g.degree(v) >= 2, "vertex {v} under-connected");
        }
    }

    #[test]
    fn degree_distribution_is_heavy_tailed() {
        let g = barabasi_albert(3000, 2, 3);
        let max_deg = (0..3000).map(|v| g.degree(v)).max().unwrap();
        let avg = g.avg_degree();
        assert!(
            max_deg as f64 > 8.0 * avg,
            "expected hub vertices: max {max_deg} vs avg {avg:.1}"
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let a = barabasi_albert(150, 2, 9);
        let b = barabasi_albert(150, 2, 9);
        for v in 0..150 {
            assert_eq!(a.neighbors(v), b.neighbors(v));
        }
    }
}
