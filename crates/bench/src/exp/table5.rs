//! Table 5 — per-epoch runtime vs model depth (3/4/5-layer GCN on Products
//! and Wikipedia).

use crate::util::{fmt_secs, render_table};
use crate::Setup;
use neutron_core::baselines::{Case1Dgl, Case2DglUva, Case3PaGraph, Case4GnnLab, GasLike};
use neutron_core::{NeutronOrch, Orchestrator};
use neutron_hetero::HardwareSpec;
use neutron_nn::LayerKind;

/// One `(dataset, depth)` column of Table 5 across systems.
#[derive(Clone, Debug)]
pub struct Table5Col {
    pub dataset: &'static str,
    pub depth: usize,
    /// `(system, seconds or failure)` in paper row order.
    pub cells: Vec<(&'static str, Result<f64, &'static str>)>,
}

fn systems() -> Vec<(&'static str, Box<dyn Orchestrator>)> {
    vec![
        ("DGL", Box::new(Case1Dgl { pipelined: true })),
        ("PaGraph", Box::new(Case3PaGraph)),
        ("DGL-UVA", Box::new(Case2DglUva { pipelined: true })),
        ("GNNLab", Box::new(Case4GnnLab)),
        ("GAS", Box::new(GasLike)),
        ("NeutronOrch", Box::new(NeutronOrch::new())),
    ]
}

/// Computes Table 5.
pub fn data(setup: Setup) -> Vec<Table5Col> {
    let hw = HardwareSpec::v100_server(1.0);
    let depths = [3usize, 4, 5];
    let mut cols = Vec::new();
    for name in ["Products", "Wikipedia"] {
        let spec = setup.dataset(name);
        for &depth in &depths {
            let profile = crate::build_profile(setup, &spec, LayerKind::Gcn, depth, 1024);
            let cells = systems()
                .into_iter()
                .map(|(label, sys)| {
                    let cell = match sys.simulate_epoch(&profile, &hw) {
                        Ok(r) => Ok(r.epoch_seconds),
                        Err(_) => Err("OOM"),
                    };
                    (label, cell)
                })
                .collect();
            cols.push(Table5Col {
                dataset: spec.name,
                depth,
                cells,
            });
        }
    }
    cols
}

/// Renders Table 5.
pub fn run(setup: Setup) -> String {
    let cols = data(setup);
    let headers: Vec<String> = std::iter::once("System".to_string())
        .chain(cols.iter().map(|c| format!("{} {}L", c.dataset, c.depth)))
        .collect();
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let systems: Vec<&'static str> = cols[0].cells.iter().map(|(n, _)| *n).collect();
    let rows: Vec<Vec<String>> = systems
        .iter()
        .enumerate()
        .map(|(si, name)| {
            std::iter::once(name.to_string())
                .chain(cols.iter().map(|c| match &c.cells[si].1 {
                    Ok(s) => fmt_secs(*s),
                    Err(m) => (*m).to_string(),
                }))
                .collect()
        })
        .collect();
    render_table(
        "Table 5: per-epoch runtime vs model depth (GCN, replica scale)",
        &header_refs,
        &rows,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deeper_models_cost_more_and_neutronorch_keeps_winning() {
        let cols = data(Setup::Smoke);
        // Runtime grows with depth for every system that survives.
        for name in ["Products", "Wikipedia"] {
            let per_depth: Vec<&Table5Col> = cols.iter().filter(|c| c.dataset == name).collect();
            let ours: Vec<f64> = per_depth
                .iter()
                .filter_map(|c| c.cells.last().unwrap().1.ok())
                .collect();
            assert!(
                ours.windows(2).all(|w| w[1] >= w[0] * 0.8),
                "{name}: {ours:?}"
            );
            // NeutronOrch survives all depths.
            assert_eq!(ours.len(), 3, "{name}: NeutronOrch must not OOM");
        }
        // NeutronOrch beats DGL at every depth where DGL survives.
        for c in &cols {
            let dgl = c.cells[0].1;
            let ours = c.cells.last().unwrap().1;
            if let (Ok(d), Ok(o)) = (dgl, ours) {
                assert!(o < d, "{} {}L: {o} !< {d}", c.dataset, c.depth);
            }
        }
    }
}
