//! Property tests of the data-parallel building blocks: partitioning
//! (every vertex lands in exactly one partition, cut statistics are
//! symmetric and deterministic) and gradient tree-averaging (R identical
//! replicas are bit-identical to one, the reduction is invariant to
//! arrival order whenever the arithmetic is exact, degenerate shapes —
//! 0-row gradients, single-parameter models — survive).

use neutronorch::graph::generate::erdos_renyi;
use neutronorch::graph::partition::hash_partition;
use neutronorch::nn::tree_average;
use neutronorch::tensor::Matrix;
use proptest::prelude::*;

/// Gradient sets whose entries are small integers: sums of up to eight of
/// them are exact in f32, so reduction-order invariance must be *bitwise*.
fn integer_gradset(params: usize, rows: usize, cols: usize) -> impl Strategy<Value = Vec<Matrix>> {
    let cells = rows * cols;
    let one = proptest::collection::vec(0u32..17, cells..cells + 1).prop_map(move |v| {
        Matrix::from_vec(rows, cols, v.into_iter().map(|x| x as f32 - 8.0).collect())
    });
    proptest::collection::vec(one, params..params + 1)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every vertex is owned by exactly one partition: owners are in
    /// range, the size histogram sums to the vertex count, and `members`
    /// lists are disjoint and complete.
    #[test]
    fn every_vertex_lands_in_exactly_one_partition(
        num_vertices in 1usize..600,
        parts in 1usize..7,
    ) {
        let p = hash_partition(num_vertices, parts);
        prop_assert_eq!(p.assignment.len(), num_vertices);
        let sizes = p.sizes();
        prop_assert_eq!(sizes.iter().sum::<usize>(), num_vertices);
        let mut seen = vec![0u32; num_vertices];
        for part in 0..parts {
            for v in p.members(part) {
                prop_assert_eq!(p.owner(v), part);
                seen[v as usize] += 1;
            }
        }
        prop_assert!(seen.iter().all(|&c| c == 1), "membership must be a partition");
    }

    /// Cut statistics: the cut matrix is symmetric, its upper triangle
    /// sums to the cut-edge count, the cut fraction agrees with the
    /// legacy `edge_cut_fraction`, and recomputing is deterministic.
    #[test]
    fn cut_statistics_are_symmetric_and_deterministic(
        num_vertices in 2usize..300,
        edge_factor in 1usize..8,
        parts in 1usize..5,
        seed in 0u64..64,
    ) {
        let g = erdos_renyi(num_vertices, num_vertices * edge_factor, seed);
        let p = hash_partition(num_vertices, parts);
        let stats = p.stats(&g);
        prop_assert_eq!(stats.parts, parts);
        let mut upper = 0u64;
        for a in 0..parts {
            for b in 0..parts {
                prop_assert_eq!(
                    stats.cut_between(a, b),
                    stats.cut_between(b, a),
                    "cut matrix must be symmetric at ({}, {})", a, b
                );
                if a < b {
                    upper += stats.cut_between(a, b);
                }
            }
            prop_assert_eq!(stats.cut_between(a, a), 0, "diagonal is not a cut");
        }
        prop_assert_eq!(upper, stats.cut_edges);
        prop_assert!((stats.cut_fraction() - p.edge_cut_fraction(&g)).abs() < 1e-12);
        prop_assert!(stats.balance() >= 1.0 - 1e-12);
        let again = p.stats(&g);
        prop_assert_eq!(stats, again);
    }

    /// Averaging R identical replicas is bit-identical to the single
    /// replica for any power-of-two R: the stride-doubling tree sums
    /// exact doublings (x + x = 2x) and divides by an exactly
    /// representable 1/R.
    #[test]
    fn identical_replicas_average_to_the_single_replica(
        grads in integer_gradset(2, 3, 4),
        log_r in 0u32..4,
    ) {
        let replicas = 1usize << log_r;
        let groups: Vec<_> = (0..replicas).map(|_| grads.clone()).collect();
        let averaged = tree_average(groups);
        prop_assert_eq!(averaged.len(), grads.len());
        for (got, want) in averaged.iter().zip(&grads) {
            prop_assert_eq!(got.as_slice(), want.as_slice());
        }
    }

    /// With exactly-summable values the reduction is invariant to the
    /// order replicas arrive in: any rotation of the replica list yields
    /// the bitwise-same average. (The engine additionally pins arrival
    /// order, so this property is belt *and* suspenders.)
    #[test]
    fn arrival_order_cannot_change_an_exact_average(
        grads in proptest::collection::vec(integer_gradset(1, 2, 3), 2..6),
        rotate in 0usize..6,
    ) {
        let baseline = tree_average(grads.clone());
        let mut rotated = grads.clone();
        rotated.rotate_left(rotate % grads.len());
        let shuffled = tree_average(rotated);
        for (a, b) in baseline.iter().zip(&shuffled) {
            prop_assert_eq!(a.as_slice(), b.as_slice());
        }
    }

    /// Degenerate shapes survive: gradients with zero rows and
    /// single-parameter models reduce without panicking and keep their
    /// shapes.
    #[test]
    fn degenerate_gradient_shapes_reduce_cleanly(
        replicas in 1usize..6,
        cols in 1usize..5,
    ) {
        let zero_rows = vec![Matrix::zeros(0, cols)];
        let averaged = tree_average(vec![zero_rows.clone(); replicas]);
        prop_assert_eq!(averaged.len(), 1);
        prop_assert_eq!(averaged[0].shape(), (0, cols));

        let single_param = vec![Matrix::from_vec(1, 1, vec![2.0])];
        let averaged = tree_average(vec![single_param; replicas]);
        prop_assert_eq!(averaged[0].as_slice(), &[2.0][..]);
    }
}
