//! Deterministic fault injection for session robustness tests.
//!
//! A [`FaultPlan`] is a fixed list of faults, each pinned to an exact
//! `(replica, epoch, step)` coordinate in the session's deterministic
//! schedule — nothing here depends on wall-clock time, so a plan fires the
//! same way on every run at every thread count. Workers consult the plan
//! at the moment they claim a unit of work; each fault fires **once**
//! (atomic one-shot arming) so a session that restores from a checkpoint
//! and replays an epoch does not re-crash on the replayed step.
//!
//! The four fault classes and what they model:
//!
//! * [`FaultKind::Crash`] — a clean worker death *before* claiming work
//!   (process OOM-killed between batches). The worker exits its loop;
//!   channel liveness teardown runs normally.
//! * [`FaultKind::Panic`] — a worker panicking *mid-batch* (assertion
//!   failure, poisoned arithmetic). The batch is lost; the session must
//!   surface the payload, not hang.
//! * [`FaultKind::Stall`] — a worker that stops making progress but never
//!   exits (deadlocked peer, stuck I/O). Only detectable by timeout.
//! * [`FaultKind::Straggler`] — a transient slowdown (thermal throttle,
//!   noisy neighbor). The worker recovers; the session must complete with
//!   bit-identical results and record the event, not kill the replica.

use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};

/// What the injected fault does to the afflicted worker.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// Clean worker exit before claiming the step's work.
    Crash,
    /// Panic after claiming the step's work.
    Panic,
    /// Stop forever without exiting (detected by stall timeout).
    Stall,
    /// Delay briefly, then continue normally.
    Straggler,
}

impl FaultKind {
    fn name(self) -> &'static str {
        match self {
            FaultKind::Crash => "crash",
            FaultKind::Panic => "panic",
            FaultKind::Stall => "stall",
            FaultKind::Straggler => "straggler",
        }
    }
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One scheduled fault: `kind` fires when `replica` reaches `step` of
/// `epoch`. For the single-engine pipeline, `replica` selects the worker
/// index within the faulted stage and `step` is the claimed batch index.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FaultSpec {
    /// Replica (or worker) index the fault targets.
    pub replica: usize,
    /// Epoch at which the fault fires.
    pub epoch: usize,
    /// Step (batch index within the epoch) at which the fault fires.
    pub step: usize,
    /// What happens.
    pub kind: FaultKind,
}

impl fmt::Display for FaultSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}@r{}e{}s{}",
            self.kind, self.replica, self.epoch, self.step
        )
    }
}

#[derive(Debug)]
struct Armed {
    spec: FaultSpec,
    armed: AtomicBool,
}

/// A deterministic, seedless fault schedule shared by every worker in a
/// session. Cheap to consult on the hot path: a short linear scan over
/// immutable specs with one relaxed atomic swap on the (rare) hit.
#[derive(Debug, Default)]
pub struct FaultPlan {
    faults: Vec<Armed>,
}

impl FaultPlan {
    /// A plan from explicit specs.
    pub fn new(specs: impl IntoIterator<Item = FaultSpec>) -> Self {
        Self {
            faults: specs
                .into_iter()
                .map(|spec| Armed {
                    spec,
                    armed: AtomicBool::new(true),
                })
                .collect(),
        }
    }

    /// Parses a comma-separated spec list, e.g.
    /// `"crash@r1e2s3,stall@r0e1s0"`. Grammar per item:
    /// `<crash|panic|stall|straggler>@r<replica>e<epoch>s<step>`.
    pub fn parse(text: &str) -> Result<Self, String> {
        let mut specs = Vec::new();
        for item in text.split(',').map(str::trim).filter(|s| !s.is_empty()) {
            let (kind, coord) = item
                .split_once('@')
                .ok_or_else(|| format!("fault `{item}`: expected `<kind>@r<R>e<E>s<S>`"))?;
            let kind = match kind {
                "crash" => FaultKind::Crash,
                "panic" => FaultKind::Panic,
                "stall" => FaultKind::Stall,
                "straggler" => FaultKind::Straggler,
                other => return Err(format!("unknown fault kind `{other}`")),
            };
            let rest = coord
                .strip_prefix('r')
                .ok_or_else(|| format!("fault `{item}`: coordinate must start with `r`"))?;
            let (replica, rest) = rest
                .split_once('e')
                .ok_or_else(|| format!("fault `{item}`: missing `e<epoch>`"))?;
            let (epoch, step) = rest
                .split_once('s')
                .ok_or_else(|| format!("fault `{item}`: missing `s<step>`"))?;
            let parse = |label: &str, s: &str| -> Result<usize, String> {
                s.parse()
                    .map_err(|_| format!("fault `{item}`: bad {label} `{s}`"))
            };
            specs.push(FaultSpec {
                replica: parse("replica", replica)?,
                epoch: parse("epoch", epoch)?,
                step: parse("step", step)?,
                kind,
            });
        }
        Ok(Self::new(specs))
    }

    /// True when the plan holds no faults.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// The scheduled specs (armed or already fired), for reporting.
    pub fn specs(&self) -> impl Iterator<Item = FaultSpec> + '_ {
        self.faults.iter().map(|a| a.spec)
    }

    /// Consumes a [`FaultKind::Crash`] scheduled for `replica` in `epoch`
    /// once the worker *observes* the claim counter at or past the
    /// scheduled step. Crashes are checked before claiming work (a clean
    /// death loses no batch, peers steal the rest), and the observed
    /// counter may skip past the exact scheduled value under contention —
    /// hence reached-or-passed instead of the exact match [`Self::take`]
    /// uses.
    pub fn take_crash(&self, replica: usize, epoch: usize, reached_step: usize) -> bool {
        for armed in &self.faults {
            let s = &armed.spec;
            if s.kind == FaultKind::Crash
                && s.replica == replica
                && s.epoch == epoch
                && reached_step >= s.step
                && armed.armed.swap(false, Ordering::Relaxed)
            {
                return true;
            }
        }
        false
    }

    /// Consumes and returns the fault scheduled at exactly
    /// `(replica, epoch, step)` if one is still armed. One-shot: a second
    /// call for the same coordinate returns `None`, so checkpoint-restored
    /// epochs do not re-fire already-delivered faults. Crash faults are
    /// excluded — they are delivered pre-claim through [`Self::take_crash`]
    /// only (the two lookups race against a shared claim counter; letting
    /// both see a crash could deliver it post-claim and silently lose the
    /// claimed batch).
    pub fn take(&self, replica: usize, epoch: usize, step: usize) -> Option<FaultKind> {
        for armed in &self.faults {
            let s = &armed.spec;
            if s.kind != FaultKind::Crash
                && s.replica == replica
                && s.epoch == epoch
                && s.step == step
                && armed.armed.swap(false, Ordering::Relaxed)
            {
                return Some(s.kind);
            }
        }
        None
    }
}

/// What the supervisor did about a detected failure.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FailureAction {
    /// The session was failed with a typed error.
    Failed,
    /// The replica was dropped; the session continued with the survivors.
    DroppedReplica,
    /// The session rolled back to the last checkpoint.
    RestoredCheckpoint,
    /// Transient event (straggler) — recorded, no intervention needed.
    Observed,
}

impl fmt::Display for FailureAction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            FailureAction::Failed => "failed",
            FailureAction::DroppedReplica => "dropped-replica",
            FailureAction::RestoredCheckpoint => "restored-checkpoint",
            FailureAction::Observed => "observed",
        })
    }
}

/// One entry in a session's failure/recovery timeline, surfaced through
/// [`crate::pipeline::PipelineReport`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FailureEvent {
    /// Epoch in which the failure was detected.
    pub epoch: usize,
    /// Step (batch index) at which detection happened.
    pub step: usize,
    /// The replica (or worker index) that failed.
    pub replica: usize,
    /// Human-readable description of what was detected.
    pub detail: String,
    /// The supervisor's response.
    pub action: FailureAction,
}

impl fmt::Display for FailureEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "epoch {} step {} replica {}: {} -> {}",
            self.epoch, self.step, self.replica, self.detail, self.action
        )
    }
}

/// Replica-failure policy for multi-replica sessions.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum FailurePolicy {
    /// Fail the session with a typed error (default — surprises surface).
    #[default]
    Fail,
    /// Continue with the surviving replicas; the dead replica's partition
    /// is redistributed at the next epoch boundary.
    DropReplica,
    /// Roll back to the most recent checkpoint and resume with a
    /// replacement worker.
    Restore,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_roundtrips_the_display_form() {
        let plan = FaultPlan::parse("crash@r1e2s3, stall@r0e1s0,straggler@r2e0s5").unwrap();
        let specs: Vec<_> = plan.specs().collect();
        assert_eq!(specs.len(), 3);
        assert_eq!(specs[0].to_string(), "crash@r1e2s3");
        assert_eq!(specs[1].kind, FaultKind::Stall);
        assert_eq!(
            specs[2],
            FaultSpec {
                replica: 2,
                epoch: 0,
                step: 5,
                kind: FaultKind::Straggler
            }
        );
        let reparsed = FaultPlan::parse(
            &specs
                .iter()
                .map(|s| s.to_string())
                .collect::<Vec<_>>()
                .join(","),
        )
        .unwrap();
        assert_eq!(reparsed.specs().collect::<Vec<_>>(), specs);
    }

    #[test]
    fn parse_rejects_malformed_specs() {
        for bad in [
            "boom@r0e0s0",
            "crash@e0s0",
            "crash@r0e0",
            "crash-r0e0s0",
            "crash@rXe0s0",
        ] {
            assert!(FaultPlan::parse(bad).is_err(), "`{bad}` should not parse");
        }
        assert!(FaultPlan::parse("").unwrap().is_empty());
    }

    #[test]
    fn take_is_one_shot_and_coordinate_exact() {
        let plan = FaultPlan::parse("panic@r1e2s3").unwrap();
        assert_eq!(plan.take(1, 2, 2), None);
        assert_eq!(plan.take(0, 2, 3), None);
        assert_eq!(plan.take(1, 2, 3), Some(FaultKind::Panic));
        assert_eq!(plan.take(1, 2, 3), None, "a fault fires exactly once");
    }
}
