//! Uniform neighbor sampling (the paper's Algorithm 1, lines 3–7).

use crate::block::{Block, BlockParts};
use crate::fanout::Fanout;
use neutron_graph::{Csr, VertexId};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Reusable vertex→local-index scratch for block construction.
///
/// Deduplicating a hop's source set used to go through a per-call `HashMap`;
/// profiling flagged it as the sampling hot path (hashing dominates on dense
/// frontiers). The scratch replaces it with two dense arrays indexed by
/// vertex id plus a **generation stamp**: an entry is valid only when its
/// stamp equals the current generation, so "clearing" the structure between
/// hops is a single counter increment, not an `O(|V|)` wipe.
#[derive(Clone, Debug, Default)]
pub struct SamplerScratch {
    /// `stamp[v] == generation` means `local[v]` is valid for this hop.
    stamp: Vec<u32>,
    /// Local (block-level) index of vertex `v` in the current hop's src set.
    local: Vec<u32>,
    generation: u32,
}

impl SamplerScratch {
    /// An empty scratch; buffers grow lazily to the graph's vertex count.
    pub fn new() -> Self {
        Self::default()
    }

    /// Starts a new hop over a graph of `n` vertices: bumps the generation
    /// and grows the buffers if this graph is larger than any seen before.
    fn begin(&mut self, n: usize) {
        if self.stamp.len() < n {
            self.stamp.resize(n, 0);
            self.local.resize(n, 0);
        }
        self.generation = self.generation.wrapping_add(1);
        if self.generation == 0 {
            // Stamp wrap-around: old entries could alias generation 0, so
            // pay one full wipe every 2^32 hops.
            self.stamp.fill(0);
            self.generation = 1;
        }
    }

    /// Registers destination `v` at local index `i`. Overwrites any earlier
    /// registration (duplicate dst entries resolve to the last occurrence,
    /// matching the historical `HashMap::from_iter` behaviour).
    #[inline]
    fn seed_dst(&mut self, v: VertexId, i: u32) {
        let slot = v as usize;
        self.stamp[slot] = self.generation;
        self.local[slot] = i;
    }

    /// Interns neighbor `v`: returns its local index, assigning the next one
    /// (and recording `v` in `src`) on first sight within the current hop.
    #[inline]
    fn intern(&mut self, v: VertexId, src: &mut Vec<VertexId>) -> u32 {
        let slot = v as usize;
        if self.stamp[slot] == self.generation {
            self.local[slot]
        } else {
            let idx = src.len() as u32;
            src.push(v);
            self.stamp[slot] = self.generation;
            self.local[slot] = idx;
            idx
        }
    }
}

/// Everything a long-lived sampler worker reuses across batches: the
/// [`SamplerScratch`] dedup arrays plus recycled [`Block`] component buffers
/// and the per-hop working vectors. With a warm builder (and donated parts
/// from a buffer pool), [`NeighborSampler::sample_batch_pooled`] constructs
/// its blocks without touching the allocator.
#[derive(Debug, Default)]
pub struct BlockBuilder {
    scratch: SamplerScratch,
    spare_parts: Vec<BlockParts>,
    spare_stacks: Vec<Vec<Block>>,
    picks: Vec<VertexId>,
    frontier: Vec<VertexId>,
    chosen: Vec<usize>,
    locals: Vec<VertexId>,
    remotes: Vec<VertexId>,
}

impl BlockBuilder {
    /// An empty builder; every buffer grows lazily.
    pub fn new() -> Self {
        Self::default()
    }

    /// Donates a recycled block's spent buffers for a future hop.
    pub fn donate_parts(&mut self, parts: BlockParts) {
        self.spare_parts.push(parts);
    }

    /// Donates a recycled (emptied) block stack for a future batch.
    pub fn donate_stack(&mut self, mut stack: Vec<Block>) {
        stack.clear();
        self.spare_stacks.push(stack);
    }

    fn take_parts(&mut self) -> BlockParts {
        self.spare_parts.pop().unwrap_or_default()
    }

    fn take_stack(&mut self, layers: usize) -> Vec<Block> {
        let mut stack = self.spare_stacks.pop().unwrap_or_default();
        stack.reserve(layers);
        stack
    }
}

/// Uniform fanout neighbor sampler.
///
/// For each destination vertex, samples `min(fanout, degree)` distinct
/// in-neighbors without replacement. Deterministic given the seed passed to
/// [`NeighborSampler::sample_batch`].
#[derive(Clone, Debug)]
pub struct NeighborSampler {
    fanout: Fanout,
}

impl NeighborSampler {
    /// Creates a sampler with the given per-layer fanout.
    pub fn new(fanout: Fanout) -> Self {
        Self { fanout }
    }

    /// The sampler's fanout.
    pub fn fanout(&self) -> &Fanout {
        &self.fanout
    }

    /// Samples the multi-hop blocks for one batch of `seeds`.
    ///
    /// Returns blocks **bottom-first**: `blocks[0]` reads raw features,
    /// `blocks.last()` produces the seed embeddings. The reverse traversal
    /// (top → bottom) follows Algorithm 1's `for l = L to 1`.
    pub fn sample_batch(&self, g: &Csr, seeds: &[VertexId], seed: u64) -> Vec<Block> {
        let mut scratch = SamplerScratch::new();
        self.sample_batch_with_scratch(g, seeds, seed, &mut scratch)
    }

    /// [`Self::sample_batch`] with a caller-owned [`SamplerScratch`], so
    /// long-lived sampler workers amortise the dedup buffers across every
    /// batch they ever sample instead of reallocating per call.
    pub fn sample_batch_with_scratch(
        &self,
        g: &Csr,
        seeds: &[VertexId],
        seed: u64,
        scratch: &mut SamplerScratch,
    ) -> Vec<Block> {
        let mut rng = StdRng::seed_from_u64(seed);
        let layers = self.fanout.layers();
        let mut blocks = Vec::with_capacity(layers);
        let mut frontier: Vec<VertexId> = seeds.to_vec();
        for l in (0..layers).rev() {
            let block = self.sample_one_hop_with_scratch(
                g,
                &frontier,
                self.fanout.at(l),
                &mut rng,
                scratch,
            );
            frontier = block.src().to_vec();
            blocks.push(block);
        }
        blocks.reverse();
        blocks
    }

    /// [`Self::sample_batch_with_scratch`] over a [`BlockBuilder`]: block
    /// buffers come from the builder's recycled spares instead of fresh
    /// allocations, and the per-hop frontier/picks vectors are reused. The
    /// rng is constructed and consumed in exactly the same order as the
    /// allocating path, and every buffer is cleared before refilling, so
    /// the produced blocks are identical — the pooling proptests pin this.
    pub fn sample_batch_pooled(
        &self,
        g: &Csr,
        seeds: &[VertexId],
        seed: u64,
        builder: &mut BlockBuilder,
    ) -> Vec<Block> {
        let mut rng = StdRng::seed_from_u64(seed);
        let layers = self.fanout.layers();
        let mut blocks = builder.take_stack(layers);
        let mut frontier = std::mem::take(&mut builder.frontier);
        frontier.clear();
        frontier.extend_from_slice(seeds);
        for l in (0..layers).rev() {
            let fanout = self.fanout.at(l);
            let parts = builder.take_parts();
            let BlockBuilder {
                ref mut scratch,
                ref mut picks,
                ref mut chosen,
                ..
            } = *builder;
            let block = one_hop_dedup_into(g, &frontier, fanout, scratch, picks, parts, {
                |g, v, picks| sample_distinct_neighbors(g, v, fanout, &mut rng, picks, chosen)
            });
            frontier.clear();
            frontier.extend_from_slice(block.src());
            blocks.push(block);
        }
        blocks.reverse();
        builder.frontier = frontier;
        blocks
    }

    /// [`Self::sample_batch_pooled`] with **partition-locality bias**
    /// (DistDGL-style): each vertex's draw first splits its neighborhood
    /// into partition-local and remote vertices (order-preserved), then
    /// fills the fanout from local neighbors before touching remote ones.
    /// `owner[v]` is the partition assignment and `part` this replica's
    /// partition; `counts` accumulates how many picks were local vs
    /// remote.
    ///
    /// Two properties the replicated engine's gates rely on:
    /// - **Single partition ⇒ bit-identical to the unbiased path.** When
    ///   every neighbor is local the split is a no-op and the Floyd draw
    ///   consumes the rng exactly like [`Self::sample_batch_pooled`], so
    ///   at R=1 locality bias cannot change a block.
    /// - **Deterministic.** Draws depend only on `(seed, owner, part)` —
    ///   never on timing — so fixed partitions give fixed blocks.
    #[allow(clippy::too_many_arguments)] // mirrors sample_batch_pooled + the three locality operands
    pub fn sample_batch_pooled_biased(
        &self,
        g: &Csr,
        seeds: &[VertexId],
        seed: u64,
        builder: &mut BlockBuilder,
        owner: &[u32],
        part: u32,
        counts: &mut LocalityCounts,
    ) -> Vec<Block> {
        let mut rng = StdRng::seed_from_u64(seed);
        let layers = self.fanout.layers();
        let mut blocks = builder.take_stack(layers);
        let mut frontier = std::mem::take(&mut builder.frontier);
        frontier.clear();
        frontier.extend_from_slice(seeds);
        for l in (0..layers).rev() {
            let fanout = self.fanout.at(l);
            let parts = builder.take_parts();
            let BlockBuilder {
                ref mut scratch,
                ref mut picks,
                ref mut chosen,
                ref mut locals,
                ref mut remotes,
                ..
            } = *builder;
            let block = one_hop_dedup_into(g, &frontier, fanout, scratch, picks, parts, {
                |g: &Csr, v: VertexId, picks: &mut Vec<VertexId>| {
                    sample_biased_neighbors(
                        g, v, fanout, &mut rng, picks, chosen, locals, remotes, owner, part, counts,
                    )
                }
            });
            frontier.clear();
            frontier.extend_from_slice(block.src());
            blocks.push(block);
        }
        blocks.reverse();
        builder.frontier = frontier;
        blocks
    }

    /// Samples a single hop: one [`Block`] whose dst are `frontier`.
    pub fn sample_one_hop(
        &self,
        g: &Csr,
        frontier: &[VertexId],
        fanout: usize,
        rng: &mut StdRng,
    ) -> Block {
        let mut scratch = SamplerScratch::new();
        self.sample_one_hop_with_scratch(g, frontier, fanout, rng, &mut scratch)
    }

    /// [`Self::sample_one_hop`] against a reusable scratch. Produces blocks
    /// identical to the historical `HashMap`-deduplicated path: local
    /// indices are assigned in first-seen order and the rng is consumed in
    /// exactly the same sequence.
    pub fn sample_one_hop_with_scratch(
        &self,
        g: &Csr,
        frontier: &[VertexId],
        fanout: usize,
        rng: &mut StdRng,
        scratch: &mut SamplerScratch,
    ) -> Block {
        let mut chosen = Vec::with_capacity(fanout);
        one_hop_dedup(g, frontier, fanout, scratch, |g, v, picks| {
            sample_distinct_neighbors(g, v, fanout, rng, picks, &mut chosen)
        })
    }

    /// One-hop block whose neighbor draws are seeded **per vertex** by
    /// `(seed, v)` rather than by one shared rng stream: any subset of
    /// `frontier` samples exactly the same neighbors for its members as the
    /// full set would. This partition stability is what lets the hybrid
    /// hot-embedding refresh split its worklist between devices (§4.1.3)
    /// without the split ever changing a sampled neighborhood.
    pub fn sample_one_hop_stable(
        &self,
        g: &Csr,
        frontier: &[VertexId],
        fanout: usize,
        seed: u64,
    ) -> Block {
        let mut scratch = SamplerScratch::new();
        self.sample_one_hop_stable_with_scratch(g, frontier, fanout, seed, &mut scratch)
    }

    /// [`Self::sample_one_hop_stable`] against a caller-owned scratch, so
    /// repeat refreshers (the engine's refresh worker, the trainer's
    /// boundary share) skip the `O(|V|)` buffer (re)initialisation per call.
    pub fn sample_one_hop_stable_with_scratch(
        &self,
        g: &Csr,
        frontier: &[VertexId],
        fanout: usize,
        seed: u64,
        scratch: &mut SamplerScratch,
    ) -> Block {
        let mut chosen = Vec::with_capacity(fanout);
        one_hop_dedup(g, frontier, fanout, scratch, |g, v, picks| {
            let mut rng = StdRng::seed_from_u64(per_vertex_seed(seed, v));
            sample_distinct_neighbors(g, v, fanout, &mut rng, picks, &mut chosen)
        })
    }
}

/// The shared one-hop block builder: dst prefix, scratch-based dedup and
/// offset/index assembly, with the neighbor draws supplied by `pick` (a
/// shared-rng stream for batch sampling, per-vertex seeded rngs for the
/// partition-stable refresh path). Keeping one body guarantees the two
/// sampling modes can never drift in their interning semantics.
fn one_hop_dedup<F>(
    g: &Csr,
    frontier: &[VertexId],
    fanout: usize,
    scratch: &mut SamplerScratch,
    pick: F,
) -> Block
where
    F: FnMut(&Csr, VertexId, &mut Vec<VertexId>),
{
    let mut picks: Vec<VertexId> = Vec::with_capacity(fanout);
    one_hop_dedup_into(
        g,
        frontier,
        fanout,
        scratch,
        &mut picks,
        BlockParts::default(),
        pick,
    )
}

/// [`one_hop_dedup`] refilling recycled buffers: `parts` supplies the spent
/// dst/src/offsets/indices capacity and `picks` the per-vertex draw buffer.
/// Every buffer is cleared before use, so the constructed block is
/// value-identical to the allocating path for the same `pick` stream.
#[allow(clippy::too_many_arguments)]
fn one_hop_dedup_into<F>(
    g: &Csr,
    frontier: &[VertexId],
    fanout: usize,
    scratch: &mut SamplerScratch,
    picks: &mut Vec<VertexId>,
    parts: BlockParts,
    mut pick: F,
) -> Block
where
    F: FnMut(&Csr, VertexId, &mut Vec<VertexId>),
{
    let BlockParts {
        mut dst,
        mut src,
        mut offsets,
        mut indices,
    } = parts;
    dst.clear();
    dst.extend_from_slice(frontier);
    src.clear();
    src.extend_from_slice(frontier);
    src.reserve(dst.len() * fanout);
    scratch.begin(g.num_vertices());
    for (i, &v) in dst.iter().enumerate() {
        scratch.seed_dst(v, i as u32);
    }
    offsets.clear();
    offsets.reserve(dst.len() + 1);
    offsets.push(0u32);
    indices.clear();
    indices.reserve(dst.len() * fanout);
    for &v in &dst {
        picks.clear();
        pick(g, v, picks);
        for &u in picks.iter() {
            indices.push(scratch.intern(u, &mut src));
        }
        offsets.push(indices.len() as u32);
    }
    Block::new(dst, src, offsets, indices)
}

/// Decorrelates the shared refresh seed across vertices (splitmix64 finalizer
/// over `seed + v`), so adjacent vertex ids do not draw correlated streams.
fn per_vertex_seed(seed: u64, v: VertexId) -> u64 {
    let mut z = seed.wrapping_add(0x9e37_79b9_7f4a_7c15u64.wrapping_mul(v as u64 + 1));
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Samples up to `fanout` distinct in-neighbors of `v` into `out`.
///
/// Degree ≤ fanout takes the whole neighborhood (DGL semantics); otherwise a
/// partial Fisher–Yates over neighbor positions picks `fanout` distinct ones.
fn sample_distinct_neighbors(
    g: &Csr,
    v: VertexId,
    fanout: usize,
    rng: &mut StdRng,
    out: &mut Vec<VertexId>,
    chosen: &mut Vec<usize>,
) {
    floyd_pick(g.neighbors(v), fanout, rng, out, chosen);
}

/// Picks `min(k, pool.len())` distinct entries of `pool` into `out`: the
/// whole pool when it fits, otherwise Floyd's algorithm over positions.
/// `chosen` is a caller-owned scratch so the over-fanout case stays
/// allocation-free per vertex; reusing it cannot change a draw — the rng
/// stream and the membership test are identical to a fresh buffer.
fn floyd_pick(
    pool: &[VertexId],
    k: usize,
    rng: &mut StdRng,
    out: &mut Vec<VertexId>,
    chosen: &mut Vec<usize>,
) {
    if pool.len() <= k {
        out.extend_from_slice(pool);
        return;
    }
    let n = pool.len();
    chosen.clear();
    chosen.reserve(k);
    for j in (n - k)..n {
        let t = rng.random_range(0..=j);
        if chosen.contains(&t) {
            chosen.push(j);
        } else {
            chosen.push(t);
        }
    }
    out.extend(chosen.drain(..).map(|i| pool[i]));
}

/// How many neighbor picks a biased sampling run satisfied from the
/// replica's own partition vs a remote one. Remote picks are the traffic
/// the interconnect model prices.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LocalityCounts {
    /// Picks owned by the sampling replica's partition.
    pub local_picks: u64,
    /// Picks that would require a remote feature/embedding pull.
    pub remote_picks: u64,
}

/// The locality-biased per-vertex draw: split `v`'s neighborhood into
/// partition-local and remote (order-preserved), fill the fanout from
/// locals first, and only then draw the remainder from remotes. With a
/// single partition the split is empty and the draw degenerates to
/// [`sample_distinct_neighbors`]'s exact rng stream.
#[allow(clippy::too_many_arguments)]
fn sample_biased_neighbors(
    g: &Csr,
    v: VertexId,
    fanout: usize,
    rng: &mut StdRng,
    out: &mut Vec<VertexId>,
    chosen: &mut Vec<usize>,
    locals: &mut Vec<VertexId>,
    remotes: &mut Vec<VertexId>,
    owner: &[u32],
    part: u32,
    counts: &mut LocalityCounts,
) {
    let neigh = g.neighbors(v);
    if neigh.len() <= fanout {
        // Fanout not binding: take everything, like the unbiased path.
        out.extend_from_slice(neigh);
        for &u in neigh {
            if owner[u as usize] == part {
                counts.local_picks += 1;
            } else {
                counts.remote_picks += 1;
            }
        }
        return;
    }
    locals.clear();
    remotes.clear();
    for &u in neigh {
        if owner[u as usize] == part {
            locals.push(u);
        } else {
            remotes.push(u);
        }
    }
    if locals.len() > fanout {
        // Enough local supply: the whole draw stays on-partition. With
        // zero remotes this consumes the rng exactly like the unbiased
        // Floyd over the full (identical) neighborhood.
        floyd_pick(locals, fanout, rng, out, chosen);
        counts.local_picks += fanout as u64;
    } else {
        // Take every local neighbor, then top up from remotes. The pool
        // is strictly larger than the fanout here, so the remote pool is
        // strictly larger than the remainder and Floyd always applies.
        out.extend_from_slice(locals);
        counts.local_picks += locals.len() as u64;
        let rem = fanout - locals.len();
        if rem > 0 {
            floyd_pick(remotes, rem, rng, out, chosen);
            counts.remote_picks += rem as u64;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use neutron_graph::generate::erdos_renyi;

    fn line_graph(n: usize) -> Csr {
        // v aggregates from v-1.
        let adj = (0..n)
            .map(|v| {
                if v == 0 {
                    vec![]
                } else {
                    vec![(v - 1) as VertexId]
                }
            })
            .collect();
        Csr::from_adjacency(adj)
    }

    #[test]
    fn blocks_are_bottom_first_and_chain() {
        let g = erdos_renyi(200, 3000, 1);
        let s = NeighborSampler::new(Fanout::new(vec![4, 3, 2]));
        let blocks = s.sample_batch(&g, &[0, 1, 2, 3], 9);
        assert_eq!(blocks.len(), 3);
        // Top block's dst are the seeds.
        assert_eq!(blocks[2].dst(), &[0, 1, 2, 3]);
        // Each block's dst equals the next-upper block's src.
        assert_eq!(blocks[1].dst(), blocks[2].src());
        assert_eq!(blocks[0].dst(), blocks[1].src());
        for b in &blocks {
            assert!(b.validate().is_ok());
        }
    }

    #[test]
    fn fanout_bounds_sampled_degree() {
        let g = erdos_renyi(300, 9000, 2);
        let s = NeighborSampler::new(Fanout::new(vec![5]));
        let blocks = s.sample_batch(&g, &(0..50).collect::<Vec<_>>(), 3);
        let b = &blocks[0];
        for i in 0..b.num_dst() {
            let deg = g.degree(b.dst()[i]);
            assert!(b.sampled_degree(i) <= 5);
            assert_eq!(b.sampled_degree(i), deg.min(5));
        }
    }

    #[test]
    fn sampled_neighbors_are_distinct_and_real() {
        let g = erdos_renyi(100, 3000, 3);
        let s = NeighborSampler::new(Fanout::new(vec![8]));
        let blocks = s.sample_batch(&g, &(0..30).collect::<Vec<_>>(), 4);
        let b = &blocks[0];
        for i in 0..b.num_dst() {
            let v = b.dst()[i];
            let mut seen = std::collections::HashSet::new();
            for &li in b.neighbors_local(i) {
                let u = b.src()[li as usize];
                assert!(seen.insert(u), "duplicate neighbor {u} for {v}");
                assert!(
                    g.neighbors(v).contains(&u),
                    "{u} not a real neighbor of {v}"
                );
            }
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let g = erdos_renyi(150, 4000, 5);
        let s = NeighborSampler::new(Fanout::new(vec![4, 4]));
        let a = s.sample_batch(&g, &[7, 8, 9], 42);
        let b = s.sample_batch(&g, &[7, 8, 9], 42);
        assert_eq!(a[0].src(), b[0].src());
        assert_eq!(a[1].num_edges(), b[1].num_edges());
        let c = s.sample_batch(&g, &[7, 8, 9], 43);
        // Different seed should (overwhelmingly) differ somewhere.
        assert!(a[0].src() != c[0].src() || a[0].num_edges() != c[0].num_edges());
    }

    #[test]
    fn line_graph_expansion_adds_one_vertex_per_hop() {
        let g = line_graph(10);
        let s = NeighborSampler::new(Fanout::new(vec![1, 1]));
        let blocks = s.sample_batch(&g, &[5], 0);
        assert_eq!(blocks[1].src(), &[5, 4]);
        assert_eq!(blocks[0].src(), &[5, 4, 3]);
    }

    #[test]
    fn isolated_seed_produces_self_only_block() {
        let g = Csr::from_adjacency(vec![vec![], vec![]]);
        let s = NeighborSampler::new(Fanout::new(vec![3]));
        let blocks = s.sample_batch(&g, &[0], 1);
        assert_eq!(blocks[0].num_src(), 1);
        assert_eq!(blocks[0].num_edges(), 0);
    }

    #[test]
    fn reused_scratch_matches_fresh_scratch_across_calls() {
        let g = erdos_renyi(200, 5000, 7);
        let s = NeighborSampler::new(Fanout::new(vec![4, 3]));
        let mut scratch = SamplerScratch::new();
        for seed in 0..20u64 {
            let seeds: Vec<VertexId> = (0..10).map(|i| (seed as u32 * 7 + i) % 200).collect();
            let fresh = s.sample_batch(&g, &seeds, seed);
            let reused = s.sample_batch_with_scratch(&g, &seeds, seed, &mut scratch);
            assert_eq!(fresh.len(), reused.len());
            for (a, b) in fresh.iter().zip(&reused) {
                assert_eq!(a.dst(), b.dst(), "seed {seed}");
                assert_eq!(a.src(), b.src(), "seed {seed}");
                assert_eq!(a.num_edges(), b.num_edges(), "seed {seed}");
            }
        }
    }

    #[test]
    fn pooled_sampling_matches_fresh_path_with_recycled_buffers() {
        let g = erdos_renyi(200, 5000, 7);
        let s = NeighborSampler::new(Fanout::new(vec![4, 3]));
        let mut builder = BlockBuilder::new();
        for seed in 0..20u64 {
            let seeds: Vec<VertexId> = (0..10).map(|i| (seed as u32 * 11 + i) % 200).collect();
            let fresh = s.sample_batch(&g, &seeds, seed);
            let pooled = s.sample_batch_pooled(&g, &seeds, seed, &mut builder);
            assert_eq!(fresh.len(), pooled.len());
            for (a, b) in fresh.iter().zip(&pooled) {
                assert_eq!(a.dst(), b.dst(), "seed {seed}");
                assert_eq!(a.src(), b.src(), "seed {seed}");
                assert_eq!(a.num_edges(), b.num_edges(), "seed {seed}");
                for i in 0..a.num_dst() {
                    assert_eq!(a.neighbors_local(i), b.neighbors_local(i), "seed {seed}");
                }
                assert!(b.validate().is_ok());
            }
            // Recycle everything, dirty, back into the builder — the next
            // iteration must still match the allocating path exactly.
            let mut stack = pooled;
            for block in stack.drain(..) {
                builder.donate_parts(block.into_parts());
            }
            builder.donate_stack(stack);
        }
    }

    #[test]
    fn stable_sampling_is_partition_invariant() {
        let g = erdos_renyi(150, 6000, 11);
        let s = NeighborSampler::new(Fanout::new(vec![4]));
        let frontier: Vec<VertexId> = (0..60).collect();
        let full = s.sample_one_hop_stable(&g, &frontier, 4, 99);
        // Any split point: each vertex's sampled neighbor list (as actual
        // vertex ids, in draw order) is identical to the full-set run.
        for split in [0usize, 17, 30, 60] {
            for part in [&frontier[..split], &frontier[split..]] {
                if part.is_empty() {
                    continue;
                }
                let sub = s.sample_one_hop_stable(&g, part, 4, 99);
                for (i, &v) in part.iter().enumerate() {
                    let j = frontier.iter().position(|&x| x == v).unwrap();
                    let expect: Vec<VertexId> = full
                        .neighbors_local(j)
                        .iter()
                        .map(|&li| full.src()[li as usize])
                        .collect();
                    let got: Vec<VertexId> = sub
                        .neighbors_local(i)
                        .iter()
                        .map(|&li| sub.src()[li as usize])
                        .collect();
                    assert_eq!(got, expect, "vertex {v} split {split}");
                }
            }
        }
    }

    #[test]
    fn single_partition_biased_sampling_is_bit_identical_to_unbiased() {
        let g = erdos_renyi(200, 5000, 7);
        let s = NeighborSampler::new(Fanout::new(vec![4, 3]));
        let owner = vec![0u32; 200];
        let mut builder = BlockBuilder::new();
        let mut counts = LocalityCounts::default();
        for seed in 0..10u64 {
            let seeds: Vec<VertexId> = (0..10).map(|i| (seed as u32 * 13 + i) % 200).collect();
            let plain = s.sample_batch(&g, &seeds, seed);
            let biased = s.sample_batch_pooled_biased(
                &g,
                &seeds,
                seed,
                &mut builder,
                &owner,
                0,
                &mut counts,
            );
            assert_eq!(plain.len(), biased.len());
            for (a, b) in plain.iter().zip(&biased) {
                assert_eq!(a.dst(), b.dst(), "seed {seed}");
                assert_eq!(a.src(), b.src(), "seed {seed}");
                assert_eq!(a.num_edges(), b.num_edges(), "seed {seed}");
                for i in 0..a.num_dst() {
                    assert_eq!(a.neighbors_local(i), b.neighbors_local(i), "seed {seed}");
                }
            }
            let mut stack = biased;
            for block in stack.drain(..) {
                builder.donate_parts(block.into_parts());
            }
            builder.donate_stack(stack);
        }
        assert_eq!(counts.remote_picks, 0, "one partition has no remote picks");
        assert!(counts.local_picks > 0);
    }

    #[test]
    fn biased_sampling_prefers_local_neighbors_and_counts_remote_pulls() {
        // Sparse enough (mean degree ~8, so ~4 local under a 2-way cut)
        // that the fanout regularly outruns the local supply.
        let g = erdos_renyi(300, 2400, 9);
        let s = NeighborSampler::new(Fanout::new(vec![5]));
        let owner: Vec<u32> = (0..300u32).map(|v| v % 2).collect();
        let mut builder = BlockBuilder::new();
        let mut biased_counts = LocalityCounts::default();
        let seeds: Vec<VertexId> = (0..40).map(|i| i * 2).collect(); // part 0
        let blocks = s.sample_batch_pooled_biased(
            &g,
            &seeds,
            3,
            &mut builder,
            &owner,
            0,
            &mut biased_counts,
        );
        let b = &blocks[0];
        // Picks are still real, distinct neighbors bounded by fanout.
        for i in 0..b.num_dst() {
            let v = b.dst()[i];
            let mut seen = std::collections::HashSet::new();
            assert!(b.sampled_degree(i) <= 5.max(g.degree(v)));
            let mut local = 0usize;
            for &li in b.neighbors_local(i) {
                let u = b.src()[li as usize];
                assert!(seen.insert(u), "duplicate neighbor {u} for {v}");
                assert!(g.neighbors(v).contains(&u));
                if owner[u as usize] == 0 {
                    local += 1;
                }
            }
            // Local preference: remote picks appear only once the local
            // supply is exhausted below the fanout.
            let local_supply = g
                .neighbors(v)
                .iter()
                .filter(|&&u| owner[u as usize] == 0)
                .count();
            if g.degree(v) > 5 && local_supply >= 5 {
                assert_eq!(local, b.sampled_degree(i), "vertex {v} pulled remote");
            }
        }
        assert!(
            biased_counts.remote_picks > 0,
            "a 2-way hash cut has remote picks"
        );

        // The ablation: a locality-blind run (every vertex pretends to be
        // local) must pull strictly more remote vertices by owner-count.
        let mut blind_builder = BlockBuilder::new();
        let blind = s.sample_batch_pooled(&g, &seeds, 3, &mut blind_builder);
        let remote_rows = |blocks: &[Block]| {
            blocks[0]
                .src()
                .iter()
                .filter(|&&u| owner[u as usize] != 0)
                .count()
        };
        assert!(
            remote_rows(&blocks) < remote_rows(&blind),
            "biased {} vs blind {}",
            remote_rows(&blocks),
            remote_rows(&blind)
        );

        // Determinism: same seed, same partition, same blocks and counts.
        let mut c2 = LocalityCounts::default();
        let again = s.sample_batch_pooled_biased(&g, &seeds, 3, &mut builder, &owner, 0, &mut c2);
        assert_eq!(blocks[0].src(), again[0].src());
        assert_eq!(c2, biased_counts);
    }

    #[test]
    fn stable_sampling_differs_by_seed_but_not_frontier_order() {
        let g = erdos_renyi(100, 4000, 13);
        let s = NeighborSampler::new(Fanout::new(vec![3]));
        let a = s.sample_one_hop_stable(&g, &[5, 6, 7], 3, 1);
        let b = s.sample_one_hop_stable(&g, &[7, 6, 5], 3, 1);
        for (i, &v) in [5u32, 6, 7].iter().enumerate() {
            let j = 2 - i;
            let na: Vec<VertexId> = a
                .neighbors_local(i)
                .iter()
                .map(|&l| a.src()[l as usize])
                .collect();
            let nb: Vec<VertexId> = b
                .neighbors_local(j)
                .iter()
                .map(|&l| b.src()[l as usize])
                .collect();
            assert_eq!(na, nb, "vertex {v}");
        }
        let c = s.sample_one_hop_stable(&g, &[5, 6, 7], 3, 2);
        let same = (0..3).all(|i| {
            let na: Vec<VertexId> = a
                .neighbors_local(i)
                .iter()
                .map(|&l| a.src()[l as usize])
                .collect();
            let nc: Vec<VertexId> = c
                .neighbors_local(i)
                .iter()
                .map(|&l| c.src()[l as usize])
                .collect();
            na == nc
        });
        assert!(!same, "different seeds should draw different neighborhoods");
    }
}
