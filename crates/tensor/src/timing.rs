//! Lightweight per-kernel wall-time accounting for `xtask profile --timing`.
//!
//! Disabled by default: each instrumented op does one relaxed atomic load
//! and skips the clock entirely, so the hooks cost nothing in normal runs
//! (verified by the kernel microbench, which runs with timing off). When
//! enabled, each top-level kernel call adds its elapsed nanoseconds and a
//! call count to a global table that [`snapshot`] reads out.
//!
//! Hooks sit at the *public op* level (`ops::matmul`, `Matrix::gather_rows`,
//! aggregation entry points in `neutron-nn`), never inside per-chunk
//! worker closures — parallel chunks of one matmul would otherwise
//! double-count the same wall interval once per thread.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Instant;

/// The instrumented kernel families, in display order.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Kernel {
    /// `ops::matmul` (`A·B`) — forward projections.
    Matmul,
    /// `ops::matmul_at_b` (`Aᵀ·B`) — weight gradients.
    MatmulAtB,
    /// `ops::matmul_a_bt` (`A·Bᵀ`) — input gradients.
    MatmulABt,
    /// `Matrix::gather_rows` + `FeatureCache` row copies.
    Gather,
    /// `Matrix::scatter_add_rows` — backward aggregation.
    ScatterAdd,
    /// GNN neighbor aggregation (GCN/SAGE mean-combine loops).
    Aggregate,
}

/// All kernels, in the order [`snapshot`] reports them.
pub const KERNELS: [Kernel; 6] = [
    Kernel::Matmul,
    Kernel::MatmulAtB,
    Kernel::MatmulABt,
    Kernel::Gather,
    Kernel::ScatterAdd,
    Kernel::Aggregate,
];

impl Kernel {
    /// Stable lowercase identifier used in timing tables and bench JSON.
    pub fn name(self) -> &'static str {
        match self {
            Kernel::Matmul => "matmul",
            Kernel::MatmulAtB => "matmul_at_b",
            Kernel::MatmulABt => "matmul_a_bt",
            Kernel::Gather => "gather",
            Kernel::ScatterAdd => "scatter_add",
            Kernel::Aggregate => "aggregate",
        }
    }
}

const N: usize = KERNELS.len();

static ENABLED: AtomicBool = AtomicBool::new(false);
#[allow(clippy::declare_interior_mutable_const)]
const ZERO: AtomicU64 = AtomicU64::new(0);
static NANOS: [AtomicU64; N] = [ZERO; N];
static CALLS: [AtomicU64; N] = [ZERO; N];

/// Turns the hooks on or off. Counters are *not* cleared; call [`reset`].
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Whether timing collection is currently on.
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Zeroes every counter (leaves the enabled flag alone).
pub fn reset() {
    for i in 0..N {
        NANOS[i].store(0, Ordering::Relaxed);
        CALLS[i].store(0, Ordering::Relaxed);
    }
}

/// Starts a timed region: returns a clock only when hooks are enabled, so
/// the disabled path never touches `Instant`.
#[inline]
pub fn start() -> Option<Instant> {
    if enabled() {
        Some(Instant::now())
    } else {
        None
    }
}

/// Closes a region opened by [`start`], attributing it to `kernel`.
#[inline]
pub fn stop(kernel: Kernel, started: Option<Instant>) {
    if let Some(t0) = started {
        record(kernel, t0.elapsed().as_nanos() as u64);
    }
}

/// Adds raw nanoseconds + one call to a kernel's counters.
#[inline]
pub fn record(kernel: Kernel, nanos: u64) {
    let i = kernel as usize;
    NANOS[i].fetch_add(nanos, Ordering::Relaxed);
    CALLS[i].fetch_add(1, Ordering::Relaxed);
}

/// Point-in-time totals for one kernel.
#[derive(Clone, Copy, Debug, Default)]
pub struct KernelStat {
    pub nanos: u64,
    pub calls: u64,
}

impl KernelStat {
    pub fn seconds(&self) -> f64 {
        self.nanos as f64 / 1e9
    }
}

/// Totals for every kernel since the last [`reset`].
#[derive(Clone, Copy, Debug, Default)]
pub struct Snapshot {
    pub stats: [KernelStat; N],
}

impl Snapshot {
    pub fn get(&self, kernel: Kernel) -> KernelStat {
        self.stats[kernel as usize]
    }

    /// Sum of all attributed kernel seconds. Kernels can run concurrently
    /// on different threads, so this may legitimately exceed wall-clock in
    /// pipelined runs; in a sequential run it is a lower bound on it.
    pub fn total_seconds(&self) -> f64 {
        self.stats.iter().map(KernelStat::seconds).sum()
    }

    /// `(name, stat)` pairs in canonical order.
    pub fn iter(&self) -> impl Iterator<Item = (&'static str, KernelStat)> + '_ {
        KERNELS.iter().map(move |&k| (k.name(), self.get(k)))
    }
}

/// Reads all counters.
pub fn snapshot() -> Snapshot {
    let mut s = Snapshot::default();
    for i in 0..N {
        s.stats[i] = KernelStat {
            nanos: NANOS[i].load(Ordering::Relaxed),
            calls: CALLS[i].load(Ordering::Relaxed),
        };
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    // One test fn only: the counters are process-global, and the test
    // harness runs test fns concurrently.
    #[test]
    fn hooks_accumulate_only_when_enabled() {
        reset();
        set_enabled(false);
        let t = start();
        assert!(t.is_none());
        stop(Kernel::Matmul, t);
        assert_eq!(snapshot().get(Kernel::Matmul).calls, 0);

        set_enabled(true);
        let t = start();
        assert!(t.is_some());
        stop(Kernel::Matmul, t);
        record(Kernel::Gather, 1_500_000_000);
        let s = snapshot();
        assert_eq!(s.get(Kernel::Matmul).calls, 1);
        assert_eq!(s.get(Kernel::Gather).calls, 1);
        assert!((s.get(Kernel::Gather).seconds() - 1.5).abs() < 1e-9);
        assert!(s.total_seconds() >= 1.5);
        assert_eq!(
            s.iter().map(|(n, _)| n).collect::<Vec<_>>(),
            [
                "matmul",
                "matmul_at_b",
                "matmul_a_bt",
                "gather",
                "scatter_add",
                "aggregate"
            ]
        );

        set_enabled(false);
        reset();
        assert_eq!(snapshot().total_seconds(), 0.0);
    }
}
