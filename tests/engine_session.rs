//! Integration tests of the persistent multi-epoch engine: determinism
//! versus repeated sequential epochs at any thread count (with the refresh
//! worker and the occupancy-driven hybrid planner both active), staleness
//! under the double-buffered refresh, split invariance, and the
//! spawn-once guarantee of the persistent pool.

use neutronorch::core::engine::{EngineConfig, TrainingEngine};
use neutronorch::core::pipeline::{PipelineConfig, PipelineExecutor};
use neutronorch::core::replica::{ReplicatedConfig, ReplicatedEngine};
use neutronorch::core::trainer::{ConvergenceTrainer, ReusePolicy, TrainerConfig};
use neutronorch::graph::DatasetSpec;
use neutronorch::hetero::InterconnectSpec;
use neutronorch::nn::LayerKind;
use proptest::prelude::*;

fn trainer(policy: ReusePolicy) -> ConvergenceTrainer {
    let ds = DatasetSpec::tiny().build_full();
    let mut cfg = TrainerConfig::convergence_default(LayerKind::Gcn, policy);
    cfg.batch_size = 48;
    cfg.lr = 0.4;
    ConvergenceTrainer::new(ds, cfg)
}

fn engine(sampler_threads: usize, gather_threads: usize, adaptive: bool) -> TrainingEngine {
    TrainingEngine::new(EngineConfig {
        pipeline: PipelineConfig {
            sampler_threads,
            gather_threads,
            channel_depth: 3,
            h2d_gibps: 0.0,
        },
        adaptive_split: adaptive,
        gpu_free_bytes: 64 << 20,
        ..EngineConfig::default()
    })
}

/// The acceptance criterion of the persistent-engine refactor: a session
/// over E epochs is bit-identical to E sequential `run_epoch_sequential`
/// calls, at every tested thread count, while the background refresh worker
/// and the occupancy-driven `HybridPolicy::plan` feedback are both active.
/// The adaptive split changes *which device computes* hot embeddings,
/// never the numerical result.
#[test]
fn session_bit_identical_to_sequential_epochs_at_any_thread_count() {
    let policy = || ReusePolicy::HotnessAware {
        hot_ratio: 0.3,
        super_batch: 2,
    };
    let epochs = 4;
    let seq_exec = PipelineExecutor::new(PipelineConfig::default());
    let mut seq = trainer(policy());
    let reference: Vec<_> = (0..epochs)
        .map(|e| seq_exec.run_epoch_sequential(&mut seq, e).0)
        .collect();
    for (st, gt) in [(1, 1), (2, 2), (4, 3)] {
        let mut t = trainer(policy());
        let session = engine(st, gt, true).run_session(&mut t, 0, epochs);
        assert_eq!(session.epochs.len(), epochs);
        for (run, want) in session.epochs.iter().zip(&reference) {
            assert_eq!(
                run.observation.train_loss, want.train_loss,
                "epoch {} loss diverged at {st}x{gt} threads",
                run.epoch
            );
            assert_eq!(
                run.observation.test_accuracy, want.test_accuracy,
                "epoch {} accuracy diverged at {st}x{gt} threads",
                run.epoch
            );
        }
    }
}

/// Sharding the refresh worker's CPU partition across threads must be
/// invisible: shards are contiguous sub-partitions and every vertex's
/// sampler is seeded per-vertex, so any `refresh_workers` setting — serial,
/// few, or far more threads than shards — replays the exact sequential
/// trajectory.
#[test]
fn sharded_refresh_is_bit_identical_at_any_worker_count() {
    let policy = || ReusePolicy::HotnessAware {
        hot_ratio: 0.3,
        super_batch: 2,
    };
    let epochs = 4;
    let seq_exec = PipelineExecutor::new(PipelineConfig::default());
    let mut seq = trainer(policy());
    let reference: Vec<_> = (0..epochs)
        .map(|e| seq_exec.run_epoch_sequential(&mut seq, e).0)
        .collect();
    for refresh_workers in [1, 2, 3, 16] {
        let mut t = trainer(policy());
        let mut config = EngineConfig {
            pipeline: PipelineConfig {
                sampler_threads: 2,
                gather_threads: 2,
                channel_depth: 3,
                h2d_gibps: 0.0,
            },
            adaptive_split: true,
            gpu_free_bytes: 64 << 20,
            ..EngineConfig::default()
        };
        config.refresh_workers = refresh_workers;
        let session = TrainingEngine::new(config).run_session(&mut t, 0, epochs);
        for (run, want) in session.epochs.iter().zip(&reference) {
            assert_eq!(
                run.observation.train_loss, want.train_loss,
                "epoch {} loss diverged with {refresh_workers} refresh workers",
                run.epoch
            );
            assert_eq!(
                run.observation.test_accuracy, want.test_accuracy,
                "epoch {} accuracy diverged with {refresh_workers} refresh workers",
                run.epoch
            );
        }
    }
}

/// One session is also bit-identical to many single-epoch sessions (the
/// compat path used by `PipelineExecutor::run_epoch`), proving the parked
/// worker pool and the in-flight refresh hand-off across epoch boundaries
/// change nothing.
#[test]
fn one_session_equals_many_single_epoch_sessions() {
    let policy = || ReusePolicy::HotnessAware {
        hot_ratio: 0.25,
        super_batch: 3,
    };
    let epochs = 3;
    let mut many = trainer(policy());
    let exec = PipelineExecutor::new(PipelineConfig::default());
    let reference: Vec<_> = (0..epochs)
        .map(|e| exec.run_epoch(&mut many, e).0)
        .collect();
    let mut once = trainer(policy());
    let session = engine(2, 1, true).run_session(&mut once, 0, epochs);
    for (run, want) in session.epochs.iter().zip(&reference) {
        assert_eq!(run.observation.train_loss, want.train_loss);
        assert_eq!(run.observation.test_accuracy, want.test_accuracy);
    }
}

/// The hybrid split is placement, not arithmetic: pinning the CPU share of
/// the refresh to 0, ½ or 1 (adaptive planner off) yields bit-identical
/// trajectories, because refresh tasks are partition-stable pure functions
/// of the boundary's parameter snapshot.
#[test]
fn refresh_split_never_changes_the_trajectory() {
    let run = |cpu_fraction: f64| {
        let mut t = trainer(ReusePolicy::HotnessAware {
            hot_ratio: 0.3,
            super_batch: 2,
        });
        t.set_refresh_cpu_fraction(cpu_fraction);
        let session = engine(2, 1, false).run_session(&mut t, 0, 3);
        assert_eq!(t.refresh_cpu_fraction(), cpu_fraction, "split must persist");
        session
            .epochs
            .iter()
            .map(|r| (r.observation.train_loss, r.observation.test_accuracy))
            .collect::<Vec<_>>()
    };
    let all_cpu = run(1.0);
    let half = run(0.5);
    let all_gpu = run(0.0);
    assert_eq!(all_cpu, half, "cpu=1.0 vs cpu=0.5 diverged");
    assert_eq!(all_cpu, all_gpu, "cpu=1.0 vs cpu=0.0 diverged");
}

/// Bit-identity is independent of the GPU feature-cache budget: the cache
/// only decides *where* a feature row is read from (verbatim copies), so
/// any budget — zero, tiny, or effectively unlimited — yields the same
/// trajectory while the byte accounting stays exact: hits + misses always
/// equal the sequential baseline's gathered-vertex count, a nonzero budget
/// never ships more bytes than the cache-less run, and a zero budget ships
/// exactly the sequential baseline's bytes with zero hits.
#[test]
fn cache_budget_never_changes_the_trajectory() {
    let policy = || ReusePolicy::HotnessAware {
        hot_ratio: 0.3,
        super_batch: 2,
    };
    let epochs = 4;
    let seq_exec = PipelineExecutor::new(PipelineConfig::default());
    let mut seq = trainer(policy());
    let reference: Vec<_> = (0..epochs)
        .map(|e| seq_exec.run_epoch_sequential(&mut seq, e))
        .collect();
    for budget in [0u64, 48 << 10, 64 << 20] {
        let mut t = trainer(policy());
        let engine = TrainingEngine::new(EngineConfig {
            pipeline: PipelineConfig {
                sampler_threads: 2,
                gather_threads: 2,
                channel_depth: 3,
                h2d_gibps: 0.0,
            },
            adaptive_split: true,
            gpu_free_bytes: budget,
            ..EngineConfig::default()
        });
        let session = engine.run_session(&mut t, 0, epochs);
        for (run, (want, seq_report)) in session.epochs.iter().zip(&reference) {
            assert_eq!(
                run.observation.train_loss, want.train_loss,
                "epoch {} loss diverged at budget {budget}",
                run.epoch
            );
            assert_eq!(
                run.observation.test_accuracy, want.test_accuracy,
                "epoch {} accuracy diverged at budget {budget}",
                run.epoch
            );
            assert_eq!(
                run.report.cache_hits + run.report.cache_misses,
                seq_report.cache_misses,
                "epoch {}: hits+misses must cover every gathered vertex",
                run.epoch
            );
            assert!(
                run.report.h2d_bytes <= seq_report.h2d_bytes,
                "epoch {}: a cache may only remove bytes",
                run.epoch
            );
            if budget == 0 {
                assert_eq!(run.report.cache_hits, 0, "zero budget must never hit");
                assert_eq!(
                    run.report.h2d_bytes, seq_report.h2d_bytes,
                    "zero budget must ship exactly the sequential bytes"
                );
            }
        }
    }
}

/// Bit-identity is independent of the buffer-return pool size: recycled
/// bundles only donate *capacity* (every pooled path clears before
/// refilling), so a pool of 1 (smaller than the in-flight batch depth — the
/// samplers mostly allocate fresh), the auto size, and an oversized pool
/// all replay the sequential trajectory exactly.
#[test]
fn pool_size_never_changes_the_trajectory() {
    let policy = || ReusePolicy::HotnessAware {
        hot_ratio: 0.3,
        super_batch: 2,
    };
    let epochs = 4;
    let seq_exec = PipelineExecutor::new(PipelineConfig::default());
    let mut seq = trainer(policy());
    let reference: Vec<_> = (0..epochs)
        .map(|e| seq_exec.run_epoch_sequential(&mut seq, e).0)
        .collect();
    for pool_batches in [1usize, 2, 0, 64] {
        let mut t = trainer(policy());
        let mut config = EngineConfig {
            pipeline: PipelineConfig {
                sampler_threads: 3,
                gather_threads: 2,
                channel_depth: 3,
                h2d_gibps: 0.0,
            },
            adaptive_split: true,
            gpu_free_bytes: 64 << 20,
            ..EngineConfig::default()
        };
        config.pool_batches = pool_batches;
        let session = TrainingEngine::new(config).run_session(&mut t, 0, epochs);
        for (run, want) in session.epochs.iter().zip(&reference) {
            assert_eq!(
                run.observation.train_loss, want.train_loss,
                "epoch {} loss diverged with pool_batches={pool_batches}",
                run.epoch
            );
            assert_eq!(
                run.observation.test_accuracy, want.test_accuracy,
                "epoch {} accuracy diverged with pool_batches={pool_batches}",
                run.epoch
            );
        }
    }
}

/// The persistent pool spawns its workers exactly once per session,
/// independent of how many epochs the session runs, and opens one gate
/// generation per epoch.
#[test]
fn workers_spawn_once_per_session() {
    for epochs in [1usize, 2, 6] {
        let mut t = trainer(ReusePolicy::Exact);
        let session = engine(3, 2, true).run_session(&mut t, 0, epochs);
        assert_eq!(
            session.workers_spawned,
            3 + 2 + 1 + 1,
            "samplers + gatherers + transfer + refresh, once, for {epochs} epochs"
        );
        assert_eq!(session.generations, epochs as u64);
        assert_eq!(session.epochs.len(), epochs);
    }
}

/// Double buffering is real: with the deferred publish, embeddings read in
/// super-batch k carry the version of boundary k−1, so the observed gap
/// reaches at least n (and stays < 2n). A refresh published immediately
/// (the old schedule) could never produce a gap ≥ n.
#[test]
fn double_buffered_refresh_gap_spans_n_to_2n() {
    let n = 3usize;
    let mut t = trainer(ReusePolicy::HotnessAware {
        hot_ratio: 0.4,
        super_batch: n,
    });
    let session = engine(2, 1, true).run_session(&mut t, 0, 5);
    let max_gap = session
        .epochs
        .iter()
        .map(|r| r.observation.max_staleness)
        .max()
        .unwrap();
    assert!(max_gap < 2 * n as u64, "gap {max_gap} ≥ 2n = {}", 2 * n);
    assert!(
        max_gap >= n as u64,
        "gap {max_gap} < n = {n}: refresh was not deferred one super-batch"
    );
    assert!(t.embedding_reuses() > 0, "hot embeddings must be reused");
}

/// The data-parallel acceptance criterion: a replicated session at R=1 is
/// bit-identical to the single-replica engine session — at every staging
/// depth, buffer-pool size, per-replica cache budget and locality setting.
/// A 1-way partition owns everything, so the batch stream, the sampling
/// seeds and the one-replica train path are all literally the
/// single-replica ones.
#[test]
fn replicated_r1_is_bit_identical_to_the_engine_session() {
    let policy = || ReusePolicy::HotnessAware {
        hot_ratio: 0.3,
        super_batch: 2,
    };
    let epochs = 3;
    let mut single = trainer(policy());
    let reference = engine(2, 2, true).run_session(&mut single, 0, epochs);
    for (depth, pool, budget, locality) in [
        (1usize, 0usize, 0u64, true),
        (3, 1, 48 << 10, false),
        (4, 16, 64 << 20, true),
    ] {
        let mut t = trainer(policy());
        let mut cfg = ReplicatedConfig {
            replicas: 1,
            locality_aware: locality,
            gpu_free_bytes: budget,
            pool_batches: pool,
            ..ReplicatedConfig::default()
        };
        cfg.pipeline.channel_depth = depth;
        let session = ReplicatedEngine::new(cfg).run_session(&mut t, 0, epochs);
        for (run, want) in session.epochs.iter().zip(&reference.epochs) {
            assert_eq!(
                run.observation.train_loss, want.observation.train_loss,
                "epoch {} loss diverged at depth={depth} pool={pool} budget={budget} locality={locality}",
                run.epoch
            );
            assert_eq!(
                run.observation.test_accuracy, want.observation.test_accuracy,
                "epoch {} accuracy diverged at depth={depth} pool={pool} budget={budget} locality={locality}",
                run.epoch
            );
            assert_eq!(run.allreduce_bytes, 0, "R=1 must not exchange gradients");
            assert_eq!(run.remote_feature_bytes, 0, "R=1 owns every vertex");
        }
    }
}

/// R ∈ {2, 4} sessions replay exactly across repeats: losses, remote
/// feature bytes and all-reduce bytes are all pure functions of the seed,
/// the partition and the replica count — and the all-reduce series obeys
/// the closed-form `steps × 2(R−1) × model_bytes` law on both fabrics.
#[test]
fn replicated_sessions_are_deterministic_at_r2_and_r4() {
    let run = |replicas: usize, link: InterconnectSpec| {
        let mut t = trainer(ReusePolicy::HotnessAware {
            hot_ratio: 0.3,
            super_batch: 2,
        });
        let cfg = ReplicatedConfig {
            replicas,
            interconnect: link,
            ..ReplicatedConfig::default()
        };
        ReplicatedEngine::new(cfg).run_session(&mut t, 0, 3)
    };
    for replicas in [2usize, 4] {
        let a = run(replicas, InterconnectSpec::nvlink_like());
        let b = run(replicas, InterconnectSpec::nvlink_like());
        assert_eq!(a.loss_trajectory(), b.loss_trajectory(), "R={replicas}");
        assert_eq!(a.remote_bytes_trajectory(), b.remote_bytes_trajectory());
        assert_eq!(
            a.allreduce_bytes_trajectory(),
            b.allreduce_bytes_trajectory()
        );
        for run in &a.epochs {
            assert_eq!(
                run.allreduce_bytes,
                run.steps as u64 * 2 * (replicas as u64 - 1) * a.model_bytes,
                "ring all-reduce law broken at R={replicas}"
            );
            assert!(run.remote_feature_bytes > 0, "a hash cut pulls remote rows");
        }
        // The interconnect model only reprices the same bytes: a slower
        // fabric must cost more simulated seconds on an identical run.
        let slow = run(replicas, InterconnectSpec::ethernet_like());
        assert_eq!(a.loss_trajectory(), slow.loss_trajectory());
        assert_eq!(a.remote_bytes_trajectory(), slow.remote_bytes_trajectory());
        for (fast, eth) in a.epochs.iter().zip(&slow.epochs) {
            assert!(eth.interconnect_seconds > fast.interconnect_seconds);
        }
    }
}

/// Partition-aware sampling must *measurably* cut the remote-feature
/// traffic versus the locality-blind ablation, without touching the PCIe
/// byte accounting invariants.
#[test]
fn locality_aware_sampling_reduces_remote_feature_bytes() {
    let run = |locality: bool| {
        let mut t = trainer(ReusePolicy::HotnessAware {
            hot_ratio: 0.3,
            super_batch: 2,
        });
        let cfg = ReplicatedConfig {
            replicas: 2,
            locality_aware: locality,
            ..ReplicatedConfig::default()
        };
        ReplicatedEngine::new(cfg).run_session(&mut t, 0, 2)
    };
    let aware = run(true);
    let blind = run(false);
    let aware_bytes: u64 = aware.remote_bytes_trajectory().iter().sum();
    let blind_bytes: u64 = blind.remote_bytes_trajectory().iter().sum();
    assert!(
        aware_bytes < blind_bytes,
        "locality-aware sampling must pull fewer remote rows: {aware_bytes} vs {blind_bytes}"
    );
    for run in aware.epochs.iter().chain(&blind.epochs) {
        let picked: u64 = run.per_replica.iter().map(|s| s.h2d_bytes).sum();
        assert_eq!(picked, run.report.h2d_bytes, "per-replica bytes must sum");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Staleness property: for random super-batch sizes, hot ratios and
    /// thread counts, every historical read mid-super-batch stays under the
    /// 2n bound while the refresh worker runs in the background. The store
    /// enforces the bound *hard* (a violating read is an error that panics
    /// the trainer), so surviving the run at all is the property; the
    /// observation double-checks the recorded maximum.
    #[test]
    fn staleness_bound_holds_for_any_super_batch_shape(
        n in 1usize..5,
        hot_pct in 1u32..10,
        sampler_threads in 1usize..4,
        epochs in 1usize..4,
    ) {
        let mut t = trainer(ReusePolicy::HotnessAware {
            hot_ratio: hot_pct as f64 / 10.0,
            super_batch: n,
        });
        let session = engine(sampler_threads, 1, true).run_session(&mut t, 0, epochs);
        for run in &session.epochs {
            prop_assert!(
                run.observation.max_staleness < 2 * n as u64,
                "epoch {}: gap {} ≥ 2n = {}",
                run.epoch,
                run.observation.max_staleness,
                2 * n
            );
        }
    }
}
