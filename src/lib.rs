//! # neutronorch
//!
//! Facade crate for the NeutronOrch reproduction (VLDB 2024). Re-exports the
//! workspace crates so examples and downstream users can depend on a single
//! package:
//!
//! ```
//! use neutronorch::graph::dataset::DatasetSpec;
//! let spec = DatasetSpec::reddit_scaled();
//! assert!(spec.scale >= 1.0);
//! ```
//!
//! See `DESIGN.md` for the system inventory and `EXPERIMENTS.md` for the
//! paper-vs-measured record of every table and figure.

pub use neutron_cache as cache;
pub use neutron_core as core;
pub use neutron_graph as graph;
pub use neutron_hetero as hetero;
pub use neutron_nn as nn;
pub use neutron_sample as sample;
pub use neutron_tensor as tensor;
