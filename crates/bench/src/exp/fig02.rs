//! Fig 2 — resource utilization and per-epoch runtime of the four
//! step-based orchestration methods vs NeutronOrch (Reddit, 3-layer GCN).

use crate::util::{fmt_pct, fmt_secs, render_table};
use crate::Setup;
use neutron_core::baselines::{Case1Dgl, Case2DglUva, Case3PaGraph, Case4GnnLab};
use neutron_core::{NeutronOrch, Orchestrator};
use neutron_hetero::HardwareSpec;
use neutron_nn::LayerKind;

/// One bar group of Fig 2.
#[derive(Clone, Debug)]
pub struct Fig2Row {
    /// Orchestration method label (paper's "CPU:S G / GPU:T" etc.).
    pub method: String,
    /// CPU utilization fraction.
    pub cpu_util: f64,
    /// GPU utilization fraction.
    pub gpu_util: f64,
    /// Per-epoch runtime (replica-scale seconds).
    pub runtime: f64,
}

/// Computes the Fig 2 rows.
pub fn data(setup: Setup) -> Vec<Fig2Row> {
    let spec = setup.dataset("Reddit");
    let profile = crate::build_profile(setup, &spec, LayerKind::Gcn, 3, 1024);
    let hw = HardwareSpec::v100_server(1.0);
    let systems: Vec<(String, Box<dyn Orchestrator>)> = vec![
        (
            "CPU:S G | GPU:T".into(),
            Box::new(Case1Dgl { pipelined: true }),
        ),
        (
            "CPU:G | GPU:S T".into(),
            Box::new(Case2DglUva { pipelined: true }),
        ),
        ("CPU:S | GPU:G T".into(), Box::new(Case3PaGraph)),
        ("CPU:-- | GPU:S G T".into(), Box::new(Case4GnnLab)),
        ("NeutronOrch".into(), Box::new(NeutronOrch::new())),
    ];
    systems
        .into_iter()
        .map(|(method, sys)| {
            let r = sys
                .simulate_epoch(&profile, &hw)
                .expect("Reddit replica fits");
            Fig2Row {
                method,
                cpu_util: r.cpu_util,
                gpu_util: r.gpu_util,
                runtime: r.epoch_seconds,
            }
        })
        .collect()
}

/// Renders the figure as a table.
pub fn run(setup: Setup) -> String {
    let rows: Vec<Vec<String>> = data(setup)
        .into_iter()
        .map(|r| {
            vec![
                r.method,
                fmt_pct(r.cpu_util),
                fmt_pct(r.gpu_util),
                fmt_secs(r.runtime),
            ]
        })
        .collect();
    render_table(
        "Fig 2: utilization & per-epoch runtime (Reddit, 3-layer GCN, bs=1024)",
        &["method", "CPU util", "GPU util", "runtime (s)"],
        &rows,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn neutronorch_balances_and_wins() {
        let rows = data(Setup::Smoke);
        assert_eq!(rows.len(), 5);
        let ours = rows.last().unwrap();
        let best_baseline = rows[..4]
            .iter()
            .map(|r| r.runtime)
            .fold(f64::INFINITY, f64::min);
        assert!(
            ours.runtime <= best_baseline * 1.3,
            "ours {} vs best baseline {best_baseline}",
            ours.runtime
        );
        // The Fig 2 claim: NeutronOrch keeps the GPU busier than Case 1.
        assert!(ours.gpu_util > rows[0].gpu_util);
    }
}
