//! Trainable parameters.

use neutron_tensor::Matrix;

/// A trainable parameter: value plus accumulated gradient.
#[derive(Clone, Debug)]
pub struct Param {
    /// Current value.
    pub value: Matrix,
    /// Gradient accumulated by the last backward pass.
    pub grad: Matrix,
}

impl Param {
    /// Wraps an initial value with a zeroed gradient.
    pub fn new(value: Matrix) -> Self {
        let grad = Matrix::zeros(value.rows(), value.cols());
        Self { value, grad }
    }

    /// Zeroes the gradient (start of a batch).
    pub fn zero_grad(&mut self) {
        self.grad.fill_zero();
    }

    /// Number of scalar parameters.
    pub fn len(&self) -> usize {
        self.value.len()
    }

    /// True for empty parameters (never expected in practice).
    pub fn is_empty(&self) -> bool {
        self.value.is_empty()
    }

    /// Bytes of the value buffer; model-size accounting for the simulator.
    pub fn nbytes(&self) -> usize {
        self.value.nbytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_param_has_zero_grad_of_same_shape() {
        let p = Param::new(Matrix::full(2, 3, 1.0));
        assert_eq!(p.grad.shape(), (2, 3));
        assert!(p.grad.as_slice().iter().all(|&v| v == 0.0));
        assert_eq!(p.len(), 6);
        assert_eq!(p.nbytes(), 24);
    }

    #[test]
    fn zero_grad_clears_accumulation() {
        let mut p = Param::new(Matrix::zeros(1, 2));
        p.grad.set(0, 0, 5.0);
        p.zero_grad();
        assert_eq!(p.grad.get(0, 0), 0.0);
    }
}
