//! Property tests of the discrete-event processor-sharing engine: physical
//! conservation laws that must hold for any task system.

use neutronorch::hetero::{Engine, TaskKind};
use proptest::prelude::*;

/// A randomly generated task: `(resource idx, work, demand, dep offset)`.
type RawTask = (u8, f64, f64, Option<u8>);

fn tasks() -> impl Strategy<Value = Vec<RawTask>> {
    proptest::collection::vec(
        (
            0u8..3,
            0.01f64..10.0,
            0.1f64..8.0,
            proptest::option::of(1u8..8),
        ),
        1..40,
    )
}

fn build(raw: &[RawTask]) -> (Engine, Vec<f64>) {
    let mut e = Engine::new();
    let caps = [4.0, 1.0, 6.0];
    let r: Vec<_> = caps
        .iter()
        .enumerate()
        .map(|(i, &c)| e.add_resource(format!("r{i}"), c))
        .collect();
    let mut ids = Vec::new();
    for (i, &(res, work, demand, dep)) in raw.iter().enumerate() {
        let deps: Vec<_> = match dep {
            Some(off) => {
                let j = i.saturating_sub(off as usize);
                if j < i {
                    vec![ids[j]]
                } else {
                    vec![]
                }
            }
            None => vec![],
        };
        ids.push(e.add_task(r[res as usize % 3], TaskKind::Other, work, demand, &deps));
    }
    (e, caps.to_vec())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Makespan can never beat the critical path or the per-resource
    /// work/capacity bound, and utilization stays within [0, 1].
    #[test]
    fn conservation_laws(raw in tasks()) {
        let (mut e, caps) = build(&raw);
        let cp = e.critical_path();
        let report = e.run();
        prop_assert!(report.makespan.is_finite());
        prop_assert!(report.makespan + 1e-6 >= cp, "makespan {} < critical path {}", report.makespan, cp);
        for &u in &report.utilization {
            prop_assert!((0.0..=1.0 + 1e-9).contains(&u));
        }
        // Work conservation per resource: total work / capacity ≤ makespan.
        for (ri, &cap) in caps.iter().enumerate() {
            let total_work: f64 = raw
                .iter()
                .filter(|t| (t.0 as usize % 3) == ri)
                .map(|t| t.1)
                .sum();
            prop_assert!(
                report.makespan + 1e-6 >= total_work / cap,
                "resource {ri}: makespan {} < work bound {}",
                report.makespan,
                total_work / cap
            );
        }
    }

    /// Fully serialising every task (one global chain) upper-bounds any
    /// dependency structure: overlap can exhibit small scheduling
    /// anomalies, but never loses to strict serial execution.
    ///
    /// (Note: "removing dependencies always helps" is *not* a theorem under
    /// processor sharing — proptest found a Graham-style anomaly where
    /// freeing tasks earlier changed the sharing pattern and slightly
    /// delayed the critical task.)
    #[test]
    fn serial_execution_upper_bounds_any_schedule(raw in tasks()) {
        let (mut any_deps, caps) = build(&raw);
        let makespan = any_deps.run().makespan;
        let serial_sum: f64 = raw
            .iter()
            .map(|&(res, work, demand, _)| {
                work / demand.min(caps[res as usize % 3])
            })
            .sum();
        prop_assert!(makespan <= serial_sum + 1e-6, "{makespan} > serial {serial_sum}");
    }

    /// Doubling every capacity can only help.
    #[test]
    fn more_capacity_never_hurts(raw in tasks()) {
        let (mut base, _) = build(&raw);
        let slow = base.run().makespan;
        let mut fast_engine = Engine::new();
        let r: Vec<_> = [8.0, 2.0, 12.0]
            .iter()
            .enumerate()
            .map(|(i, &c)| fast_engine.add_resource(format!("r{i}"), c))
            .collect();
        let mut ids = Vec::new();
        for (i, &(res, work, demand, dep)) in raw.iter().enumerate() {
            let deps: Vec<_> = match dep {
                Some(off) => {
                    let j = i.saturating_sub(off as usize);
                    if j < i { vec![ids[j]] } else { vec![] }
                }
                None => vec![],
            };
            ids.push(fast_engine.add_task(r[res as usize % 3], TaskKind::Other, work, demand, &deps));
        }
        let fast = fast_engine.run().makespan;
        prop_assert!(fast <= slow + 1e-6, "{fast} > {slow}");
    }
}
