//! The discrete-event processor-sharing engine.

use std::collections::HashMap;

/// Index of a registered resource.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct ResourceId(pub usize);

/// Index of a submitted task.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct TaskId(pub usize);

/// Task classification for breakdown reports (Table 2 / Table 3 rows).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum TaskKind {
    /// Graph sampling (S).
    Sample,
    /// Feature collection on the host (the "FC" half of gather).
    GatherCollect,
    /// Host↔device transfer (the "FT" half of gather).
    Transfer,
    /// Forward+backward training (T).
    Train,
    /// CPU historical-embedding computation (NeutronOrch stage 2).
    HotEmbed,
    /// Gradient/parameter synchronisation between devices.
    Sync,
    /// Anything else.
    Other,
}

struct Resource {
    name: String,
    capacity: f64,
}

struct Task {
    resource: ResourceId,
    kind: TaskKind,
    work: f64,
    demand: f64,
    deps: Vec<TaskId>,
    remaining: f64,
    unfinished_deps: usize,
    start_time: Option<f64>,
    finish_time: Option<f64>,
}

/// One executed task's lifetime, for pipeline visualisation (Fig 5 / 9).
#[derive(Clone, Debug)]
pub struct TraceSpan {
    /// The task.
    pub task: TaskId,
    /// Task classification.
    pub kind: TaskKind,
    /// Resource index (see [`RunReport::resource_names`]).
    pub resource: ResourceId,
    /// First instant the task was allocated capacity.
    pub start: f64,
    /// Completion instant.
    pub finish: f64,
}

/// Simulation outcome.
#[derive(Clone, Debug)]
pub struct RunReport {
    /// Total simulated wall-clock of the schedule, seconds.
    pub makespan: f64,
    /// Busy fraction per resource, in registration order, in `[0, 1]`.
    pub utilization: Vec<f64>,
    /// Resource names, registration order.
    pub resource_names: Vec<String>,
    /// Total task-seconds per kind (duration each task of the kind was
    /// running, summed).
    pub busy_by_kind: HashMap<TaskKind, f64>,
}

impl RunReport {
    /// Utilization of the resource whose name matches exactly.
    pub fn utilization_of(&self, name: &str) -> Option<f64> {
        self.resource_names
            .iter()
            .position(|n| n == name)
            .map(|i| self.utilization[i])
    }

    /// Busy seconds of a task kind (0 when absent).
    pub fn busy(&self, kind: TaskKind) -> f64 {
        self.busy_by_kind.get(&kind).copied().unwrap_or(0.0)
    }
}

/// Discrete-event engine. Register resources, submit a task DAG, `run`.
#[derive(Default)]
pub struct Engine {
    resources: Vec<Resource>,
    tasks: Vec<Task>,
}

impl Engine {
    /// Creates an empty engine.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a capacity pool (e.g. "cpu" with 48 cores, "gpu0" with 1.0).
    pub fn add_resource(&mut self, name: impl Into<String>, capacity: f64) -> ResourceId {
        assert!(capacity > 0.0);
        self.resources.push(Resource {
            name: name.into(),
            capacity,
        });
        ResourceId(self.resources.len() - 1)
    }

    /// Submits a task: `work` resource-unit-seconds on `resource`, using at
    /// most `demand` units concurrently, starting after all `deps` finish.
    /// Zero-work tasks are permitted (barriers).
    pub fn add_task(
        &mut self,
        resource: ResourceId,
        kind: TaskKind,
        work: f64,
        demand: f64,
        deps: &[TaskId],
    ) -> TaskId {
        assert!(resource.0 < self.resources.len(), "unknown resource");
        assert!(work >= 0.0 && work.is_finite(), "bad work {work}");
        let cap = self.resources[resource.0].capacity;
        let demand = demand.clamp(f64::MIN_POSITIVE, cap);
        for d in deps {
            assert!(d.0 < self.tasks.len(), "dependency on unsubmitted task");
        }
        self.tasks.push(Task {
            resource,
            kind,
            work,
            demand,
            deps: deps.to_vec(),
            remaining: work,
            unfinished_deps: 0,
            start_time: None,
            finish_time: None,
        });
        TaskId(self.tasks.len() - 1)
    }

    /// Number of submitted tasks.
    pub fn num_tasks(&self) -> usize {
        self.tasks.len()
    }

    /// Runs the simulation to completion and reports makespan, utilization
    /// and per-kind busy time.
    ///
    /// Allocation rule per resource at every event instant: *water-filling*.
    /// Tasks with demand below the fair share keep their demand; the slack
    /// is redistributed among the rest. This models both GPU kernel
    /// contention (two kernels on one device each slow down) and the fact
    /// that a small kernel cannot use a whole device.
    pub fn run(&mut self) -> RunReport {
        self.run_traced().0
    }

    /// Like [`Engine::run`], additionally returning every task's executed
    /// time span (for Gantt-style pipeline visualisation).
    pub fn run_traced(&mut self) -> (RunReport, Vec<TraceSpan>) {
        let n = self.tasks.len();
        // Dependency bookkeeping.
        let mut dependents: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (i, t) in self.tasks.iter_mut().enumerate() {
            t.remaining = t.work;
            t.start_time = None;
            t.finish_time = None;
            t.unfinished_deps = t.deps.len();
            for d in &t.deps {
                dependents[d.0].push(i);
            }
        }
        let mut ready: Vec<usize> = Vec::new();
        let mut running: Vec<usize> = Vec::new();
        for (i, t) in self.tasks.iter().enumerate() {
            if t.unfinished_deps == 0 {
                ready.push(i);
            }
        }
        let mut now = 0.0f64;
        let mut busy_integral = vec![0.0f64; self.resources.len()];
        let mut busy_by_kind: HashMap<TaskKind, f64> = HashMap::new();
        let mut finished = 0usize;
        // Move ready→running, completing zero-work tasks immediately.
        loop {
            while let Some(i) = ready.pop() {
                if self.tasks[i].start_time.is_none() {
                    self.tasks[i].start_time = Some(now);
                }
                if self.tasks[i].remaining <= 0.0 {
                    Self::complete(
                        &mut self.tasks,
                        &dependents,
                        i,
                        now,
                        &mut ready,
                        &mut finished,
                    );
                } else {
                    running.push(i);
                }
            }
            if running.is_empty() {
                break;
            }
            // Water-filling allocation per resource.
            let rates = self.allocate(&running);
            // Time to next completion.
            let mut dt = f64::INFINITY;
            for (&i, &r) in running.iter().zip(&rates) {
                if r > 0.0 {
                    dt = dt.min(self.tasks[i].remaining / r);
                }
            }
            assert!(dt.is_finite(), "deadlock: running tasks with zero rate");
            // Integrate busy time.
            for (&i, &r) in running.iter().zip(&rates) {
                let res = self.tasks[i].resource.0;
                busy_integral[res] += r * dt;
                *busy_by_kind.entry(self.tasks[i].kind).or_insert(0.0) += dt;
            }
            now += dt;
            // Progress and completions.
            let mut still_running = Vec::with_capacity(running.len());
            for (&i, &r) in running.iter().zip(&rates) {
                self.tasks[i].remaining -= r * dt;
                if self.tasks[i].remaining <= 1e-12 {
                    Self::complete(
                        &mut self.tasks,
                        &dependents,
                        i,
                        now,
                        &mut ready,
                        &mut finished,
                    );
                } else {
                    still_running.push(i);
                }
            }
            running = still_running;
        }
        assert_eq!(
            finished, n,
            "cycle in task graph: {} of {n} finished",
            finished
        );
        let utilization = busy_integral
            .iter()
            .zip(&self.resources)
            .map(|(b, r)| {
                if now > 0.0 {
                    (b / (r.capacity * now)).min(1.0)
                } else {
                    0.0
                }
            })
            .collect();
        let report = RunReport {
            makespan: now,
            utilization,
            resource_names: self.resources.iter().map(|r| r.name.clone()).collect(),
            busy_by_kind,
        };
        let spans = self
            .tasks
            .iter()
            .enumerate()
            .map(|(i, t)| TraceSpan {
                task: TaskId(i),
                kind: t.kind,
                resource: t.resource,
                start: t.start_time.unwrap_or(0.0),
                finish: t.finish_time.unwrap_or(now),
            })
            .collect();
        (report, spans)
    }

    fn complete(
        tasks: &mut [Task],
        dependents: &[Vec<usize>],
        i: usize,
        now: f64,
        ready: &mut Vec<usize>,
        finished: &mut usize,
    ) {
        if tasks[i].finish_time.is_some() {
            return;
        }
        tasks[i].finish_time = Some(now);
        *finished += 1;
        for &j in &dependents[i] {
            tasks[j].unfinished_deps -= 1;
            if tasks[j].unfinished_deps == 0 {
                ready.push(j);
            }
        }
    }

    /// Water-filling rates for the running set, aligned with `running`.
    fn allocate(&self, running: &[usize]) -> Vec<f64> {
        let mut rates = vec![0.0f64; running.len()];
        for (res_idx, res) in self.resources.iter().enumerate() {
            // Indices into `running` on this resource.
            let mut members: Vec<usize> = running
                .iter()
                .enumerate()
                .filter(|(_, &t)| self.tasks[t].resource.0 == res_idx)
                .map(|(k, _)| k)
                .collect();
            if members.is_empty() {
                continue;
            }
            let mut capacity = res.capacity;
            // Iteratively satisfy tasks whose demand ≤ fair share.
            loop {
                let share = capacity / members.len() as f64;
                let mut satisfied = Vec::new();
                for (pos, &k) in members.iter().enumerate() {
                    let demand = self.tasks[running[k]].demand;
                    if demand <= share + 1e-15 {
                        rates[k] = demand;
                        capacity -= demand;
                        satisfied.push(pos);
                    }
                }
                if satisfied.is_empty() {
                    for &k in &members {
                        rates[k] = share;
                    }
                    break;
                }
                for pos in satisfied.into_iter().rev() {
                    members.remove(pos);
                }
                if members.is_empty() {
                    break;
                }
            }
        }
        rates
    }

    /// Lower bound on the makespan: the longest dependency chain when every
    /// task runs alone at full demand. Used by property tests
    /// (`makespan >= critical_path`).
    pub fn critical_path(&self) -> f64 {
        let mut longest = vec![0.0f64; self.tasks.len()];
        for i in 0..self.tasks.len() {
            let t = &self.tasks[i];
            let own = if t.work > 0.0 { t.work / t.demand } else { 0.0 };
            let dep_max = t.deps.iter().map(|d| longest[d.0]).fold(0.0f64, f64::max);
            longest[i] = dep_max + own;
        }
        longest.into_iter().fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_task_duration_is_work_over_demand() {
        let mut e = Engine::new();
        let cpu = e.add_resource("cpu", 8.0);
        e.add_task(cpu, TaskKind::Sample, 16.0, 4.0, &[]);
        let r = e.run();
        assert!((r.makespan - 4.0).abs() < 1e-9);
        assert!((r.utilization[0] - 0.5).abs() < 1e-9, "4 of 8 cores busy");
    }

    #[test]
    fn independent_tasks_share_capacity() {
        let mut e = Engine::new();
        let gpu = e.add_resource("gpu", 1.0);
        // Two kernels, each could use 80% of the device alone.
        e.add_task(gpu, TaskKind::Train, 0.8, 0.8, &[]);
        e.add_task(gpu, TaskKind::Sample, 0.8, 0.8, &[]);
        let r = e.run();
        // Alone: 1s each, serial: 2s. Sharing at 0.5 each: both finish at 1.6.
        assert!((r.makespan - 1.6).abs() < 1e-9, "makespan {}", r.makespan);
    }

    #[test]
    fn small_demand_task_is_not_throttled_by_sharing() {
        let mut e = Engine::new();
        let gpu = e.add_resource("gpu", 1.0);
        e.add_task(gpu, TaskKind::Train, 0.9, 0.9, &[]);
        e.add_task(gpu, TaskKind::Other, 0.05, 0.1, &[]); // tiny kernel
        let r = e.run();
        // The tiny kernel keeps its 0.1 demand (fair share is 0.5);
        // the big one gets the remaining 0.9 → finishes at t=1.0.
        assert!((r.makespan - 1.0).abs() < 1e-6, "makespan {}", r.makespan);
    }

    #[test]
    fn dependencies_serialise_execution() {
        let mut e = Engine::new();
        let cpu = e.add_resource("cpu", 1.0);
        let a = e.add_task(cpu, TaskKind::Sample, 1.0, 1.0, &[]);
        let b = e.add_task(cpu, TaskKind::Train, 1.0, 1.0, &[a]);
        e.add_task(cpu, TaskKind::Other, 1.0, 1.0, &[b]);
        let r = e.run();
        assert!((r.makespan - 3.0).abs() < 1e-9);
        assert!((r.utilization[0] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn pipeline_overlaps_across_resources() {
        // Three batches through sample(cpu, 1s) → train(gpu, 1s).
        let mut e = Engine::new();
        let cpu = e.add_resource("cpu", 1.0);
        let gpu = e.add_resource("gpu", 1.0);
        let mut prev_sample: Option<TaskId> = None;
        let mut prev_train: Option<TaskId> = None;
        for _ in 0..3 {
            let mut sdeps = Vec::new();
            if let Some(p) = prev_sample {
                sdeps.push(p);
            }
            let s = e.add_task(cpu, TaskKind::Sample, 1.0, 1.0, &sdeps);
            let mut tdeps = vec![s];
            if let Some(p) = prev_train {
                tdeps.push(p);
            }
            let t = e.add_task(gpu, TaskKind::Train, 1.0, 1.0, &tdeps);
            prev_sample = Some(s);
            prev_train = Some(t);
        }
        let r = e.run();
        // Ideal pipeline: 1 + 3 = 4s, not the serial 6s (Fig 5a).
        assert!((r.makespan - 4.0).abs() < 1e-9, "makespan {}", r.makespan);
    }

    #[test]
    fn zero_work_tasks_act_as_barriers() {
        let mut e = Engine::new();
        let cpu = e.add_resource("cpu", 1.0);
        let a = e.add_task(cpu, TaskKind::Other, 1.0, 1.0, &[]);
        let barrier = e.add_task(cpu, TaskKind::Other, 0.0, 1.0, &[a]);
        e.add_task(cpu, TaskKind::Other, 1.0, 1.0, &[barrier]);
        let r = e.run();
        assert!((r.makespan - 2.0).abs() < 1e-9);
    }

    #[test]
    fn busy_by_kind_tracks_wall_time_per_kind() {
        let mut e = Engine::new();
        let cpu = e.add_resource("cpu", 2.0);
        e.add_task(cpu, TaskKind::Sample, 2.0, 1.0, &[]);
        e.add_task(cpu, TaskKind::Train, 4.0, 1.0, &[]);
        let r = e.run();
        assert!((r.busy(TaskKind::Sample) - 2.0).abs() < 1e-9);
        assert!((r.busy(TaskKind::Train) - 4.0).abs() < 1e-9);
        assert_eq!(r.busy(TaskKind::Transfer), 0.0);
    }

    #[test]
    fn critical_path_lower_bounds_makespan() {
        let mut e = Engine::new();
        let cpu = e.add_resource("cpu", 1.0);
        let a = e.add_task(cpu, TaskKind::Other, 2.0, 1.0, &[]);
        e.add_task(cpu, TaskKind::Other, 3.0, 1.0, &[a]);
        e.add_task(cpu, TaskKind::Other, 4.0, 1.0, &[]);
        let cp = e.critical_path();
        let r = e.run();
        assert!((cp - 5.0).abs() < 1e-9);
        assert!(r.makespan + 1e-9 >= cp);
    }

    #[test]
    fn traces_record_start_and_finish() {
        let mut e = Engine::new();
        let cpu = e.add_resource("cpu", 1.0);
        let a = e.add_task(cpu, TaskKind::Sample, 1.0, 1.0, &[]);
        let b = e.add_task(cpu, TaskKind::Train, 2.0, 1.0, &[a]);
        let (report, spans) = e.run_traced();
        assert_eq!(spans.len(), 2);
        let sa = spans.iter().find(|s| s.task == a).unwrap();
        let sb = spans.iter().find(|s| s.task == b).unwrap();
        assert_eq!(sa.start, 0.0);
        assert!((sa.finish - 1.0).abs() < 1e-9);
        assert!((sb.start - 1.0).abs() < 1e-9, "b starts when a finishes");
        assert!((sb.finish - report.makespan).abs() < 1e-9);
        assert_eq!(sb.kind, TaskKind::Train);
    }

    #[test]
    fn zero_work_trace_has_zero_span() {
        let mut e = Engine::new();
        let cpu = e.add_resource("cpu", 1.0);
        let a = e.add_task(cpu, TaskKind::Other, 1.0, 1.0, &[]);
        let barrier = e.add_task(cpu, TaskKind::Other, 0.0, 1.0, &[a]);
        let (_, spans) = e.run_traced();
        let sb = spans.iter().find(|s| s.task == barrier).unwrap();
        assert_eq!(sb.start, sb.finish);
        assert!((sb.start - 1.0).abs() < 1e-9);
    }

    #[test]
    fn utilization_of_finds_named_resource() {
        let mut e = Engine::new();
        let _cpu = e.add_resource("cpu", 1.0);
        let gpu = e.add_resource("gpu0", 1.0);
        e.add_task(gpu, TaskKind::Train, 1.0, 1.0, &[]);
        let r = e.run();
        assert_eq!(r.utilization_of("cpu"), Some(0.0));
        assert_eq!(r.utilization_of("gpu0"), Some(1.0));
        assert_eq!(r.utilization_of("nope"), None);
    }
}
