//! NeutronOrch core: task orchestration for sample-based GNN training on
//! CPU-GPU heterogeneous environments.
//!
//! This crate implements the paper's contribution and every baseline it is
//! evaluated against, all on one shared substrate (mirroring the paper's own
//! §5.4 methodology):
//!
//! | Orchestrator | Models | Strategy (Fig 4) |
//! |---|---|---|
//! | [`baselines::Case1Dgl`] | DGL | CPU: sample+gather, GPU: train |
//! | [`baselines::Case2DglUva`] | DGL-UVA | GPU: sample (UVA), CPU-resident gather, GPU: train |
//! | [`baselines::Case3PaGraph`] | PaGraph | CPU: sample, GPU: degree-cache gather + train |
//! | [`baselines::Case4GnnLab`] | GNNLab | GPU: sample + presample-cache gather + train |
//! | [`baselines::GasLike`] | GNNAutoScale | CPU gather, historical embeddings for all vertices |
//! | [`baselines::DspLike`] | DSP | Case 4 × multi-GPU, NVLink sync |
//! | [`neutronorch::NeutronOrch`] | this paper | hotness-aware layer-based orchestration + super-batch pipeline |
//!
//! Two execution modes:
//! - **simulation** ([`orchestrator::Orchestrator::simulate_epoch`]): builds
//!   the epoch's task DAG on the discrete-event hardware simulator and
//!   reports runtime, utilizations, transfer volume, memory and OOM;
//! - **numeric training** ([`trainer`]): really trains on a replica dataset,
//!   reusing historical embeddings under the configured staleness policy —
//!   the accuracy results of Fig 16 come from here.

pub mod baselines;
pub mod checkpoint;
pub mod engine;
pub mod fault;
pub mod gather;
pub mod neutronorch;
pub mod orchestrator;
pub mod pipeline;
pub mod pool;
pub mod profile;
pub mod refresh;
pub mod replica;
pub mod report;
pub mod runner;
pub mod sim;
pub mod trainer;

pub use checkpoint::{Checkpoint, CheckpointError};
pub use engine::{EngineConfig, EpochRun, SessionError, SessionReport, TrainingEngine};
pub use fault::{FailureAction, FailureEvent, FailurePolicy, FaultKind, FaultPlan, FaultSpec};
pub use gather::{GatheredFeatures, StagedBatch};
pub use neutronorch::{NeutronOrch, NeutronOrchConfig};
pub use orchestrator::Orchestrator;
pub use pipeline::{PipelineConfig, PipelineExecutor, PipelineReport};
pub use pool::BatchBuffers;
pub use profile::{WorkloadConfig, WorkloadProfile};
pub use refresh::{InlineRefresh, RefreshBackend, RefreshOutput, RefreshTask};
pub use replica::{
    ReplicaEpochStats, ReplicatedConfig, ReplicatedEngine, ReplicatedEpochRun,
    ReplicatedSessionReport,
};
pub use report::EpochReport;
pub use trainer::TrainerState;
