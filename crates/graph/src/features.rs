//! Vertex feature and label synthesis.

use neutron_tensor::{init, Matrix};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Random features in `[-1, 1)`; used where the paper also uses random
/// features ("For graphs without ground-truth properties … we use randomly
/// generated features", §5.1).
pub fn random_features(num_vertices: usize, dim: usize, seed: u64) -> Matrix {
    init::uniform(num_vertices, dim, -1.0, 1.0, seed)
}

/// Class-correlated features: one Gaussian centroid per class plus noise.
///
/// `signal` controls separability (centroid norm relative to unit noise).
/// The convergence experiments use these so that accuracy actually improves
/// over epochs.
pub fn class_features(
    labels: &[usize],
    num_classes: usize,
    dim: usize,
    signal: f32,
    seed: u64,
) -> Matrix {
    let centroids = init::normal(num_classes, dim, signal, seed ^ 0x9e37_79b9);
    let noise = init::normal(labels.len(), dim, 1.0, seed);
    let mut out = noise;
    for (v, &label) in labels.iter().enumerate() {
        assert!(label < num_classes);
        let c = centroids.row(label).to_vec();
        for (o, cv) in out.row_mut(v).iter_mut().zip(&c) {
            *o += cv;
        }
    }
    out
}

/// Uniform random labels; for perf-only datasets where labels are never
/// inspected beyond their byte size.
pub fn random_labels(num_vertices: usize, num_classes: usize, seed: u64) -> Vec<usize> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..num_vertices)
        .map(|_| rng.random_range(0..num_classes))
        .collect()
}

/// Splits `num_vertices` vertex ids into (train, test, val) sets with the
/// paper's 65% / 10% / 25% proportions (§5.1), after a seeded shuffle.
pub fn split_65_10_25(num_vertices: usize, seed: u64) -> (Vec<u32>, Vec<u32>, Vec<u32>) {
    let mut ids: Vec<u32> = (0..num_vertices as u32).collect();
    let mut rng = StdRng::seed_from_u64(seed);
    // Fisher-Yates; rand's shuffle trait churn across versions makes the
    // 6-line manual loop the more stable choice.
    for i in (1..ids.len()).rev() {
        let j = rng.random_range(0..=i);
        ids.swap(i, j);
    }
    let n_train = num_vertices * 65 / 100;
    let n_test = num_vertices * 10 / 100;
    let train = ids[..n_train].to_vec();
    let test = ids[n_train..n_train + n_test].to_vec();
    let val = ids[n_train + n_test..].to_vec();
    (train, test, val)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_features_bounded() {
        let f = random_features(10, 4, 1);
        assert_eq!(f.shape(), (10, 4));
        assert!(f.as_slice().iter().all(|&v| (-1.0..1.0).contains(&v)));
    }

    #[test]
    fn class_features_cluster_by_label() {
        let labels: Vec<usize> = (0..200).map(|v| v % 2).collect();
        let f = class_features(&labels, 2, 16, 4.0, 2);
        // Mean intra-class distance should be well below inter-class.
        let centroid = |class: usize| -> Vec<f32> {
            let rows: Vec<usize> = (0..200).filter(|&v| labels[v] == class).collect();
            let mut c = vec![0.0f32; 16];
            for &r in &rows {
                for (cv, fv) in c.iter_mut().zip(f.row(r)) {
                    *cv += fv / rows.len() as f32;
                }
            }
            c
        };
        let c0 = centroid(0);
        let c1 = centroid(1);
        let dist: f32 = c0
            .iter()
            .zip(&c1)
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f32>()
            .sqrt();
        assert!(dist > 2.0, "class centroids too close: {dist}");
    }

    #[test]
    fn split_respects_proportions_and_is_disjoint() {
        let (train, test, val) = split_65_10_25(1000, 3);
        assert_eq!(train.len(), 650);
        assert_eq!(test.len(), 100);
        assert_eq!(val.len(), 250);
        let mut all: Vec<u32> = train.iter().chain(&test).chain(&val).copied().collect();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), 1000, "splits overlap or drop vertices");
    }

    #[test]
    fn split_is_seed_deterministic() {
        assert_eq!(split_65_10_25(100, 7).0, split_65_10_25(100, 7).0);
        assert_ne!(split_65_10_25(100, 7).0, split_65_10_25(100, 8).0);
    }

    #[test]
    fn random_labels_in_range() {
        let l = random_labels(500, 7, 4);
        assert!(l.iter().all(|&x| x < 7));
        assert!(l.contains(&0));
    }
}
