//! The pipelined executor: NeutronOrch's super-batch pipeline (Fig 8) as
//! real multi-threaded concurrency rather than a discrete-event simulation.
//!
//! The paper's stage graph runs as actual threads connected by bounded
//! channels:
//!
//! ```text
//! [sample xN] --ch--> [gather xM] --ch--> [transfer] --ch--> [train]
//!   worker threads      worker threads      1 thread          caller
//! ```
//!
//! - **sample**: `sampler_threads` workers claim batch indices from a shared
//!   atomic counter and run the neighbor sampler (Algorithm 1);
//! - **gather**: `gather_threads` workers collect the bottom layer's raw
//!   feature rows ("Gather (FC)") — under `ReusePolicy::HotnessAware`, hot
//!   destinations are later served from the [`neutron_cache::EmbeddingStore`]
//!   instead of recomputed, which is the layer-based CPU/GPU split of §4.1;
//! - **transfer**: one worker accounts host→device bytes and, when
//!   [`PipelineConfig::h2d_gibps`] is set, stalls for the simulated PCIe
//!   time — sleeping on its own thread, so transfer latency is *hidden*
//!   behind compute exactly like a DMA engine ("Gather (FT)");
//! - **train**: the calling thread reorders out-of-order arrivals and drives
//!   [`ConvergenceTrainer::train_epoch_with`], which owns the model, the
//!   version counter, the super-batch barrier and the hot-embedding refresh.
//!
//! Determinism: block sampling is seeded by `(config seed, epoch, batch
//! index)` ([`crate::trainer::batch_sample_seed`]) and the train stage
//! consumes batches in epoch order, so the loss trajectory is **bit-identical
//! to the sequential trainer for any thread count** — concurrency changes
//! wall-clock, never results.
//!
//! Staleness: the super-batch barrier runs on the train thread between
//! batches, so the §4.2.2 guarantee is untouched by pipelining — every
//! historical-embedding read still observes a version gap `< 2n` (enforced
//! hard by the bounded [`neutron_cache::EmbeddingStore`]).

use crate::trainer::{batch_sample_seed, ConvergenceTrainer, EpochObservation, PreparedBatch};
use std::collections::{BTreeMap, VecDeque};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

/// Pipelined-executor configuration.
#[derive(Clone, Debug)]
pub struct PipelineConfig {
    /// CPU sampling worker threads (stage 1).
    pub sampler_threads: usize,
    /// CPU feature-gather worker threads (stage 2).
    pub gather_threads: usize,
    /// Capacity of each inter-stage channel, in batches. Bounds memory:
    /// at most `3 * channel_depth + reorder window` batches are in flight.
    pub channel_depth: usize,
    /// Simulated host→device bandwidth in GiB/s; `0.0` disables the
    /// transfer stall (bytes are still accounted). Replica methodology:
    /// compute on the replica is orders of magnitude slower than the
    /// paper's V100, so a faithfully *proportioned* transfer stage scales
    /// PCIe bandwidth down by the same factor (the simulator applies the
    /// identical rule to memory capacities).
    pub h2d_gibps: f64,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        Self {
            sampler_threads: 2,
            gather_threads: 1,
            channel_depth: 4,
            h2d_gibps: 0.0,
        }
    }
}

/// Per-stage busy time and throughput of one pipelined epoch — the measured
/// counterpart of the simulator's [`crate::report::EpochReport`] (same
/// field naming so tables can mix both).
#[derive(Clone, Debug)]
pub struct PipelineReport {
    /// Wall-clock of the epoch, seconds.
    pub epoch_seconds: f64,
    /// Batches executed.
    pub num_batches: usize,
    /// Busy seconds summed across sampling workers.
    pub sample_seconds: f64,
    /// Busy seconds summed across gather workers ("Gather (FC)").
    pub gather_collect_seconds: f64,
    /// Busy seconds of the transfer stage ("Gather (FT)"), including the
    /// simulated stall.
    pub transfer_seconds: f64,
    /// Seconds the train stage spent actually training (wall minus time
    /// blocked waiting for upstream stages).
    pub train_seconds: f64,
    /// Seconds the train stage spent starved, waiting on upstream.
    pub train_wait_seconds: f64,
    /// Host→device bytes the epoch shipped.
    pub h2d_bytes: u64,
    /// Largest out-of-order reorder buffer the train stage needed.
    pub reorder_peak: usize,
}

impl PipelineReport {
    /// Epoch throughput in batches per second.
    pub fn batches_per_second(&self) -> f64 {
        self.num_batches as f64 / self.epoch_seconds.max(1e-12)
    }

    /// Fraction of the epoch the train stage was compute-bound (1.0 means
    /// the pipeline kept the trainer perfectly fed).
    pub fn train_occupancy(&self) -> f64 {
        self.train_seconds / self.epoch_seconds.max(1e-12)
    }
}

/// A bounded MPMC channel built on `Mutex` + `Condvar` — the workspace
/// avoids external concurrency crates, and `std::sync::mpsc` receivers
/// cannot be shared by a pool of gather workers.
struct Bounded<T> {
    state: Mutex<ChannelState<T>>,
    capacity: usize,
    not_full: Condvar,
    not_empty: Condvar,
}

struct ChannelState<T> {
    queue: VecDeque<T>,
    closed: bool,
}

impl<T> Bounded<T> {
    fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "channel capacity must be positive");
        Self {
            state: Mutex::new(ChannelState {
                queue: VecDeque::new(),
                closed: false,
            }),
            capacity,
            not_full: Condvar::new(),
            not_empty: Condvar::new(),
        }
    }

    /// Blocks while full. Returns `false` (dropping `item`) if the channel
    /// was closed.
    fn send(&self, item: T) -> bool {
        let mut st = self.state.lock().unwrap();
        while st.queue.len() >= self.capacity && !st.closed {
            st = self.not_full.wait(st).unwrap();
        }
        if st.closed {
            return false;
        }
        st.queue.push_back(item);
        self.not_empty.notify_one();
        true
    }

    /// Blocks while empty. Returns `None` once the channel is closed *and*
    /// drained.
    fn recv(&self) -> Option<T> {
        let mut st = self.state.lock().unwrap();
        loop {
            if let Some(item) = st.queue.pop_front() {
                self.not_full.notify_one();
                return Some(item);
            }
            if st.closed {
                return None;
            }
            st = self.not_empty.wait(st).unwrap();
        }
    }

    /// Marks the channel closed; receivers drain the queue then see `None`.
    fn close(&self) {
        self.state.lock().unwrap().closed = true;
        self.not_full.notify_all();
        self.not_empty.notify_all();
    }
}

/// Accumulates busy nanoseconds across worker threads.
#[derive(Default)]
struct BusyNs(AtomicU64);

impl BusyNs {
    fn add(&self, since: Instant) {
        self.0
            .fetch_add(since.elapsed().as_nanos() as u64, Ordering::Relaxed);
    }

    fn seconds(&self) -> f64 {
        self.0.load(Ordering::Relaxed) as f64 * 1e-9
    }
}

/// Runs a closure on drop — used so that channel close / liveness
/// bookkeeping happens even when a stage panics, turning a bug-induced
/// panic into a propagated failure instead of a pipeline deadlock (workers
/// blocked forever on a channel nobody will close).
struct Defer<F: FnMut()>(F);

impl<F: FnMut()> Drop for Defer<F> {
    fn drop(&mut self) {
        (self.0)();
    }
}

/// Train-stage input adaptor: receives possibly out-of-order prepared
/// batches and yields them in epoch order, tracking starvation time and the
/// reorder window.
struct Reorder<'a> {
    source: &'a Bounded<PreparedBatch>,
    pending: BTreeMap<usize, PreparedBatch>,
    next_index: usize,
    wait: Duration,
    peak: usize,
}

impl<'a> Reorder<'a> {
    fn new(source: &'a Bounded<PreparedBatch>) -> Self {
        Self {
            source,
            pending: BTreeMap::new(),
            next_index: 0,
            wait: Duration::ZERO,
            peak: 0,
        }
    }
}

impl Iterator for Reorder<'_> {
    type Item = PreparedBatch;

    fn next(&mut self) -> Option<PreparedBatch> {
        loop {
            if let Some(item) = self.pending.remove(&self.next_index) {
                self.next_index += 1;
                return Some(item);
            }
            let t0 = Instant::now();
            let received = self.source.recv();
            self.wait += t0.elapsed();
            match received {
                Some(item) => {
                    self.pending.insert(item.index, item);
                    self.peak = self.peak.max(self.pending.len());
                }
                None => return None,
            }
        }
    }
}

/// The multi-threaded pipelined executor (see module docs).
pub struct PipelineExecutor {
    config: PipelineConfig,
}

impl PipelineExecutor {
    /// Builds an executor; thread counts must be positive.
    pub fn new(config: PipelineConfig) -> Self {
        assert!(
            config.sampler_threads > 0,
            "need at least one sampler thread"
        );
        assert!(config.gather_threads > 0, "need at least one gather thread");
        Self { config }
    }

    /// The executor's configuration.
    pub fn config(&self) -> &PipelineConfig {
        &self.config
    }

    /// The transfer stage for one batch: account host→device bytes and,
    /// when a simulated link is configured, stall for the PCIe time.
    /// Shared by the pipelined and sequential runners so their per-batch
    /// costing can never drift apart.
    fn transfer_stage(&self, batch: &PreparedBatch, h2d_bytes: &AtomicU64) {
        let bytes = batch.h2d_bytes();
        h2d_bytes.fetch_add(bytes, Ordering::Relaxed);
        if self.config.h2d_gibps > 0.0 {
            let secs = bytes as f64 / (self.config.h2d_gibps * (1u64 << 30) as f64);
            std::thread::sleep(Duration::from_secs_f64(secs));
        }
    }

    /// Runs one epoch through the concurrent stage graph. Numerically
    /// identical to `trainer.train_epoch(epoch)` (see module docs).
    pub fn run_epoch(
        &self,
        trainer: &mut ConvergenceTrainer,
        epoch: usize,
    ) -> (EpochObservation, PipelineReport) {
        let cfg = &self.config;
        let dataset = trainer.dataset_handle();
        let sampler = trainer.sampler().clone();
        let config_seed = trainer.config().seed;
        let batches = trainer.epoch_batches(epoch);
        let total = batches.len();

        let sampled: Bounded<(usize, Vec<neutron_sample::Block>)> = Bounded::new(cfg.channel_depth);
        let prepared: Bounded<PreparedBatch> = Bounded::new(cfg.channel_depth);
        let ready: Bounded<PreparedBatch> = Bounded::new(cfg.channel_depth);
        let next_batch = AtomicUsize::new(0);
        let live_samplers = AtomicUsize::new(cfg.sampler_threads);
        let live_gatherers = AtomicUsize::new(cfg.gather_threads);
        let sample_busy = BusyNs::default();
        let gather_busy = BusyNs::default();
        let transfer_busy = BusyNs::default();
        let h2d_bytes = AtomicU64::new(0);

        let wall = Instant::now();
        let mut stats = None;
        let mut train_wait = Duration::ZERO;
        let mut reorder_peak = 0usize;
        std::thread::scope(|scope| {
            // If the train stage (this thread) panics, unblock every worker
            // so `thread::scope` can join them and propagate the panic
            // instead of deadlocking.
            let _unblock_workers = Defer(|| {
                sampled.close();
                prepared.close();
                ready.close();
            });
            for _ in 0..cfg.sampler_threads {
                scope.spawn(|| {
                    let _liveness = Defer(|| {
                        if live_samplers.fetch_sub(1, Ordering::AcqRel) == 1 {
                            sampled.close();
                        }
                    });
                    loop {
                        let i = next_batch.fetch_add(1, Ordering::Relaxed);
                        if i >= total {
                            break;
                        }
                        let t0 = Instant::now();
                        let blocks = sampler.sample_batch(
                            &dataset.csr,
                            &batches[i],
                            batch_sample_seed(config_seed, epoch, i),
                        );
                        sample_busy.add(t0);
                        if !sampled.send((i, blocks)) {
                            break;
                        }
                    }
                });
            }
            for _ in 0..cfg.gather_threads {
                scope.spawn(|| {
                    let _liveness = Defer(|| {
                        if live_gatherers.fetch_sub(1, Ordering::AcqRel) == 1 {
                            prepared.close();
                        }
                    });
                    while let Some((index, blocks)) = sampled.recv() {
                        let t0 = Instant::now();
                        let features =
                            ConvergenceTrainer::gather_features(&dataset, blocks[0].src());
                        gather_busy.add(t0);
                        if !prepared.send(PreparedBatch {
                            index,
                            blocks,
                            features,
                        }) {
                            break;
                        }
                    }
                });
            }
            scope.spawn(|| {
                let _liveness = Defer(|| ready.close());
                while let Some(batch) = prepared.recv() {
                    let t0 = Instant::now();
                    self.transfer_stage(&batch, &h2d_bytes);
                    transfer_busy.add(t0);
                    if !ready.send(batch) {
                        break;
                    }
                }
            });

            // Train stage on the calling thread: in-order, owns the model.
            let mut reorder = Reorder::new(&ready);
            stats = Some(trainer.train_batches(&mut reorder));
            // Drain any leftovers so upstream senders can't block forever
            // (only possible if train_batches stopped early).
            ready.close();
            while reorder.next().is_some() {}
            train_wait = reorder.wait;
            reorder_peak = reorder.peak;
        });

        // The timed region covers the stage graph only; test-set evaluation
        // is inference, not training, and stays out of throughput numbers.
        let epoch_seconds = wall.elapsed().as_secs_f64();
        let observation = trainer.observe_epoch(stats.expect("train stage ran"));
        let report = PipelineReport {
            epoch_seconds,
            num_batches: total,
            sample_seconds: sample_busy.seconds(),
            gather_collect_seconds: gather_busy.seconds(),
            transfer_seconds: transfer_busy.seconds(),
            train_seconds: (epoch_seconds - train_wait.as_secs_f64()).max(0.0),
            train_wait_seconds: train_wait.as_secs_f64(),
            h2d_bytes: h2d_bytes.load(Ordering::Relaxed),
            reorder_peak,
        };
        (observation, report)
    }

    /// The unpipelined baseline: the *same* stage costing (including the
    /// simulated transfer stall) executed serially on the calling thread —
    /// the paper's "w/o pipelining" ablation (Fig 14). Comparing
    /// [`Self::run_epoch`] against this isolates the benefit of overlap,
    /// with identical per-batch work on both sides.
    pub fn run_epoch_sequential(
        &self,
        trainer: &mut ConvergenceTrainer,
        epoch: usize,
    ) -> (EpochObservation, PipelineReport) {
        let dataset = trainer.dataset_handle();
        let sampler = trainer.sampler().clone();
        let config_seed = trainer.config().seed;
        let batches = trainer.epoch_batches(epoch);
        let total = batches.len();

        let sample_busy = BusyNs::default();
        let gather_busy = BusyNs::default();
        let transfer_busy = BusyNs::default();
        let h2d_bytes = AtomicU64::new(0);

        let wall = Instant::now();
        let items = batches.iter().enumerate().map(|(i, batch)| {
            let t0 = Instant::now();
            let blocks = sampler.sample_batch(
                &dataset.csr,
                batch,
                batch_sample_seed(config_seed, epoch, i),
            );
            sample_busy.add(t0);
            let t1 = Instant::now();
            let features = ConvergenceTrainer::gather_features(&dataset, blocks[0].src());
            gather_busy.add(t1);
            let item = PreparedBatch {
                index: i,
                blocks,
                features,
            };
            let t2 = Instant::now();
            self.transfer_stage(&item, &h2d_bytes);
            transfer_busy.add(t2);
            item
        });
        let stats = trainer.train_batches(items);

        // Same timed region as `run_epoch`: stage graph only, no eval.
        let epoch_seconds = wall.elapsed().as_secs_f64();
        let observation = trainer.observe_epoch(stats);
        let staged = sample_busy.seconds() + gather_busy.seconds() + transfer_busy.seconds();
        let report = PipelineReport {
            epoch_seconds,
            num_batches: total,
            sample_seconds: sample_busy.seconds(),
            gather_collect_seconds: gather_busy.seconds(),
            transfer_seconds: transfer_busy.seconds(),
            train_seconds: (epoch_seconds - staged).max(0.0),
            train_wait_seconds: staged,
            h2d_bytes: h2d_bytes.load(Ordering::Relaxed),
            reorder_peak: 0,
        };
        (observation, report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trainer::{ReusePolicy, TrainerConfig};
    use neutron_graph::DatasetSpec;
    use neutron_nn::LayerKind;
    use std::sync::Arc;

    fn trainer(policy: ReusePolicy) -> ConvergenceTrainer {
        let ds = DatasetSpec::tiny().build_full();
        let mut cfg = TrainerConfig::convergence_default(LayerKind::Gcn, policy);
        cfg.batch_size = 64;
        cfg.lr = 0.5;
        ConvergenceTrainer::new(ds, cfg)
    }

    #[test]
    fn bounded_channel_blocks_at_capacity_and_drains_after_close() {
        let ch: Arc<Bounded<u32>> = Arc::new(Bounded::new(2));
        let producer = {
            let ch = Arc::clone(&ch);
            std::thread::spawn(move || {
                for i in 0..10 {
                    assert!(ch.send(i));
                }
                ch.close();
            })
        };
        let mut got = Vec::new();
        while let Some(v) = ch.recv() {
            got.push(v);
        }
        producer.join().unwrap();
        assert_eq!(got, (0..10).collect::<Vec<_>>());
        // After close, sends are rejected and recv keeps returning None.
        assert!(!ch.send(99));
        assert!(ch.recv().is_none());
    }

    #[test]
    fn reorder_restores_epoch_order() {
        let ch: Bounded<PreparedBatch> = Bounded::new(8);
        for index in [2usize, 0, 1, 3] {
            ch.send(PreparedBatch {
                index,
                blocks: Vec::new(),
                features: neutron_tensor::Matrix::zeros(1, 1),
            });
        }
        ch.close();
        let order: Vec<usize> = Reorder::new(&ch).map(|b| b.index).collect();
        assert_eq!(order, vec![0, 1, 2, 3]);
    }

    #[test]
    fn pipelined_epoch_matches_sequential_exactly() {
        let mut seq = trainer(ReusePolicy::Exact);
        let mut pip = trainer(ReusePolicy::Exact);
        let exec = PipelineExecutor::new(PipelineConfig {
            sampler_threads: 3,
            gather_threads: 2,
            channel_depth: 2,
            h2d_gibps: 0.0,
        });
        for epoch in 0..3 {
            let a = seq.train_epoch(epoch);
            let (b, report) = exec.run_epoch(&mut pip, epoch);
            assert_eq!(a.train_loss, b.train_loss, "epoch {epoch} loss diverged");
            assert_eq!(a.test_accuracy, b.test_accuracy);
            assert_eq!(report.num_batches, 4);
            assert!(report.sample_seconds > 0.0);
        }
    }

    #[test]
    fn pipelined_hotness_aware_keeps_staleness_bound() {
        let n = 2;
        let mut t = trainer(ReusePolicy::HotnessAware {
            hot_ratio: 0.3,
            super_batch: n,
        });
        let exec = PipelineExecutor::new(PipelineConfig::default());
        for epoch in 0..4 {
            let (obs, _) = exec.run_epoch(&mut t, epoch);
            assert!(
                obs.max_staleness < 2 * n as u64,
                "gap {} ≥ 2n",
                obs.max_staleness
            );
        }
        assert!(t.embedding_reuses() > 0);
    }

    #[test]
    fn transfer_stall_is_hidden_by_the_pipeline() {
        // With a slow simulated link, the sequential baseline pays the full
        // stall; the pipelined run overlaps it with compute.
        let mut seq = trainer(ReusePolicy::Exact);
        let mut pip = trainer(ReusePolicy::Exact);
        let cfg = PipelineConfig {
            h2d_gibps: 0.02,
            ..PipelineConfig::default()
        };
        let exec = PipelineExecutor::new(cfg);
        let (_, seq_report) = exec.run_epoch_sequential(&mut seq, 0);
        let (_, pip_report) = exec.run_epoch(&mut pip, 0);
        assert_eq!(seq_report.h2d_bytes, pip_report.h2d_bytes);
        assert!(
            pip_report.epoch_seconds < seq_report.epoch_seconds,
            "pipelined {} ≥ sequential {}",
            pip_report.epoch_seconds,
            seq_report.epoch_seconds
        );
    }
}
