//! Row/column reductions.

use crate::matrix::Matrix;

/// Mean of each row as a length-`rows` vector.
pub fn row_means(m: &Matrix) -> Vec<f32> {
    let c = m.cols().max(1) as f32;
    (0..m.rows())
        .map(|r| m.row(r).iter().sum::<f32>() / c)
        .collect()
}

/// Sum of each column as a 1×cols matrix.
pub fn col_sums(m: &Matrix) -> Matrix {
    crate::ops::sum_rows(m)
}

/// Mean of all elements.
pub fn mean(m: &Matrix) -> f32 {
    if m.is_empty() {
        return 0.0;
    }
    m.as_slice().iter().sum::<f32>() / m.len() as f32
}

/// Scales each row `r` of `m` by `weights[r]` in place — the degree
/// normalisation primitive of GCN aggregation.
pub fn scale_rows_inplace(m: &mut Matrix, weights: &[f32]) {
    assert_eq!(m.rows(), weights.len());
    for (r, &w) in weights.iter().enumerate() {
        for v in m.row_mut(r) {
            *v *= w;
        }
    }
}

/// L2-normalises each row in place (zero rows are left untouched).
pub fn l2_normalize_rows(m: &mut Matrix) {
    for r in 0..m.rows() {
        let norm: f32 = m.row(r).iter().map(|v| v * v).sum::<f32>().sqrt();
        if norm > 1e-12 {
            for v in m.row_mut(r) {
                *v /= norm;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn row_means_average_each_row() {
        let m = Matrix::from_rows(&[&[1.0, 3.0], &[2.0, 2.0]]);
        assert_eq!(row_means(&m), vec![2.0, 2.0]);
    }

    #[test]
    fn mean_over_all_elements() {
        let m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert_eq!(mean(&m), 2.5);
        assert_eq!(mean(&Matrix::zeros(0, 0)), 0.0);
    }

    #[test]
    fn scale_rows_applies_per_row_weight() {
        let mut m = Matrix::from_rows(&[&[1.0, 1.0], &[1.0, 1.0]]);
        scale_rows_inplace(&mut m, &[2.0, 0.5]);
        assert_eq!(m.row(0), &[2.0, 2.0]);
        assert_eq!(m.row(1), &[0.5, 0.5]);
    }

    #[test]
    fn l2_normalize_makes_unit_rows() {
        let mut m = Matrix::from_rows(&[&[3.0, 4.0], &[0.0, 0.0]]);
        l2_normalize_rows(&mut m);
        let n: f32 = m.row(0).iter().map(|v| v * v).sum::<f32>().sqrt();
        assert!((n - 1.0).abs() < 1e-6);
        assert_eq!(m.row(1), &[0.0, 0.0], "zero rows untouched");
    }
}
