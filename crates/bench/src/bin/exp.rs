//! Experiment runner: regenerates any table/figure of the paper.
//!
//! ```text
//! cargo run --release -p neutron-bench --bin exp -- all
//! cargo run --release -p neutron-bench --bin exp -- fig10 table2
//! cargo run --release -p neutron-bench --bin exp -- --smoke fig16
//! ```

use neutron_bench::{exp, Setup};
use std::io::Write;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut setup = Setup::Paper;
    let mut ids: Vec<String> = Vec::new();
    for a in args {
        match a.as_str() {
            "--smoke" => setup = Setup::Smoke,
            "--paper" => setup = Setup::Paper,
            "all" => ids.extend(exp::ALL_EXPERIMENTS.iter().map(|s| s.to_string())),
            "extras" => ids.extend(exp::EXTRA_EXPERIMENTS.iter().map(|s| s.to_string())),
            other => ids.push(other.to_string()),
        }
    }
    if ids.is_empty() {
        eprintln!("usage: exp [--smoke] <experiment...|all>");
        eprintln!("experiments: {}", exp::ALL_EXPERIMENTS.join(" "));
        std::process::exit(2);
    }
    let stdout = std::io::stdout();
    let mut lock = stdout.lock();
    for id in ids {
        let started = std::time::Instant::now();
        match exp::run(&id, setup) {
            Some(report) => {
                writeln!(lock, "{report}").unwrap();
                writeln!(
                    lock,
                    "[{id} completed in {:.1}s]\n",
                    started.elapsed().as_secs_f64()
                )
                .unwrap();
            }
            None => {
                eprintln!(
                    "unknown experiment '{id}'; known: {}",
                    exp::ALL_EXPERIMENTS.join(" ")
                );
                std::process::exit(2);
            }
        }
    }
}
