//! Fig 12 — performance gain analysis: the cumulative ablation ladder
//! (L, HE, HH, S) over the step-based baseline, GCN on all datasets.

use crate::util::render_table;
use crate::Setup;
use neutron_core::neutronorch::NeutronOrchConfig;
use neutron_core::{NeutronOrch, Orchestrator};
use neutron_hetero::HardwareSpec;
use neutron_nn::LayerKind;

/// One dataset's ablation ladder: speedups normalised to the baseline.
#[derive(Clone, Debug)]
pub struct Fig12Row {
    pub dataset: &'static str,
    /// `(stage label, speedup vs baseline)` in ladder order.
    pub speedups: Vec<(&'static str, f64)>,
}

/// Computes Fig 12.
pub fn data(setup: Setup) -> Vec<Fig12Row> {
    let hw = HardwareSpec::v100_server(1.0);
    setup
        .datasets()
        .iter()
        .map(|spec| {
            let profile = crate::build_profile(setup, spec, LayerKind::Gcn, 3, 1024);
            let ladder = NeutronOrchConfig::ablation_ladder();
            let times: Vec<(&'static str, f64)> = ladder
                .iter()
                .map(|(label, cfg)| {
                    let secs = NeutronOrch::with_config(*cfg)
                        .simulate_epoch(&profile, &hw)
                        .map(|r| r.epoch_seconds)
                        .unwrap_or(f64::INFINITY);
                    (*label, secs)
                })
                .collect();
            let base = times[0].1;
            Fig12Row {
                dataset: spec.name,
                speedups: times.into_iter().map(|(l, t)| (l, base / t)).collect(),
            }
        })
        .collect()
}

/// Renders Fig 12.
pub fn run(setup: Setup) -> String {
    let rows = data(setup);
    let headers: Vec<String> = std::iter::once("Dataset".to_string())
        .chain(rows[0].speedups.iter().map(|(l, _)| l.to_string()))
        .collect();
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            std::iter::once(r.dataset.to_string())
                .chain(r.speedups.iter().map(|(_, s)| format!("{s:.2}x")))
                .collect()
        })
        .collect();
    render_table(
        "Fig 12: cumulative speedup of L / HE / HH / S over the step-based baseline (GCN)",
        &header_refs,
        &table,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_dataset_ends_faster_than_baseline() {
        for row in data(Setup::Smoke) {
            let full = row.speedups.last().unwrap().1;
            assert!(
                full > 1.0,
                "{}: full system speedup {full:.2} ≤ 1",
                row.dataset
            );
            assert!(
                (row.speedups[0].1 - 1.0).abs() < 1e-9,
                "baseline must be 1.0x"
            );
        }
    }

    #[test]
    fn hotness_reuse_rescues_naive_layer_split() {
        // On the miniature smoke replicas the graph saturates and access
        // skew flattens, so allow a small tolerance; at paper replica scale
        // the +HE stage strictly dominates (see EXPERIMENTS.md).
        for row in data(Setup::Smoke) {
            let l = row.speedups[1].1;
            let he = row.speedups[2].1;
            assert!(
                he >= l * 0.85,
                "{}: +HE ({he:.2}) collapsed vs +L ({l:.2})",
                row.dataset
            );
        }
    }
}
