//! A minimal JSON reader for the bench harness.
//!
//! The container has no serde; the two formats this crate consumes — the
//! criterion stub's result lines and the committed `BENCH_*.json` files —
//! are plain trees of objects/arrays/numbers/strings, so a ~150-line
//! recursive-descent parser covers them completely. Not a general JSON
//! library: numbers parse through `f64` (fine for nanosecond counts far
//! below 2^53) and no effort is made to reject every malformed document,
//! only to never mis-read a well-formed one.

use std::collections::BTreeMap;

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Value>),
    Obj(BTreeMap<String, Value>),
}

impl Value {
    /// Parses a complete JSON document (trailing whitespace allowed).
    pub fn parse(text: &str) -> Result<Value, String> {
        let bytes = text.as_bytes();
        let mut p = Parser { bytes, at: 0 };
        p.ws();
        let v = p.value()?;
        p.ws();
        if p.at != bytes.len() {
            return Err(format!("trailing bytes at offset {}", p.at));
        }
        Ok(v)
    }

    /// Member lookup on an object; `None` for other kinds or missing keys.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(m) => m.get(key),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        self.as_f64().filter(|n| *n >= 0.0).map(|n| n as u64)
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(a) => Some(a),
            _ => None,
        }
    }

    /// An array of numbers, e.g. a bench series.
    pub fn as_f64_series(&self) -> Option<Vec<f64>> {
        self.as_arr()?.iter().map(Value::as_f64).collect()
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl Parser<'_> {
    fn ws(&mut self) {
        while self
            .bytes
            .get(self.at)
            .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\n' | b'\r'))
        {
            self.at += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.at).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.at += 1;
            Ok(())
        } else {
            Err(format!(
                "expected '{}' at offset {}, found {:?}",
                b as char,
                self.at,
                self.peek().map(|c| c as char)
            ))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, String> {
        if self.bytes[self.at..].starts_with(word.as_bytes()) {
            self.at += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at offset {}", self.at))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            other => Err(format!("unexpected {other:?} at offset {}", self.at)),
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.ws();
        if self.peek() == Some(b'}') {
            self.at += 1;
            return Ok(Value::Obj(map));
        }
        loop {
            self.ws();
            let key = self.string()?;
            self.ws();
            self.expect(b':')?;
            self.ws();
            map.insert(key, self.value()?);
            self.ws();
            match self.peek() {
                Some(b',') => self.at += 1,
                Some(b'}') => {
                    self.at += 1;
                    return Ok(Value::Obj(map));
                }
                other => return Err(format!("bad object separator {other:?} at {}", self.at)),
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.ws();
        if self.peek() == Some(b']') {
            self.at += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.ws();
            items.push(self.value()?);
            self.ws();
            match self.peek() {
                Some(b',') => self.at += 1,
                Some(b']') => {
                    self.at += 1;
                    return Ok(Value::Arr(items));
                }
                other => return Err(format!("bad array separator {other:?} at {}", self.at)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.at += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.at += 1;
                    let esc = self.peek().ok_or("unterminated escape")?;
                    self.at += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.at..self.at + 4)
                                .ok_or("short \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                                16,
                            )
                            .map_err(|e| e.to_string())?;
                            self.at += 4;
                            // Surrogate pairs don't occur in bench ids;
                            // map unpaired surrogates to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        other => return Err(format!("bad escape '\\{}'", other as char)),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (multi-byte sequences pass
                    // through untouched).
                    let rest = &self.bytes[self.at..];
                    let s = std::str::from_utf8(rest).map_err(|e| e.to_string())?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.at += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.at;
        while self
            .peek()
            .is_some_and(|b| matches!(b, b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9'))
        {
            self.at += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.at])
            .map_err(|e| e.to_string())?
            .parse::<f64>()
            .map(Value::Num)
            .map_err(|e| format!("bad number at {start}: {e}"))
    }
}

/// Parses a file of newline-delimited JSON objects (the criterion stub's
/// `CRITERION_JSON` format), skipping blank lines.
pub fn parse_lines(text: &str) -> Result<Vec<Value>, String> {
    text.lines()
        .filter(|l| !l.trim().is_empty())
        .map(Value::parse)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_documents() {
        let v =
            Value::parse(r#"{"a": [1, 2.5, -3e2], "s": "x\"yA", "t": true, "n": null, "o": {}}"#)
                .unwrap();
        assert_eq!(
            v.get("a").unwrap().as_f64_series().unwrap(),
            [1.0, 2.5, -300.0]
        );
        assert_eq!(v.get("s").unwrap().as_str().unwrap(), "x\"yA");
        assert_eq!(v.get("t").unwrap(), &Value::Bool(true));
        assert_eq!(v.get("n").unwrap(), &Value::Null);
        assert!(matches!(v.get("o").unwrap(), Value::Obj(m) if m.is_empty()));
    }

    #[test]
    fn parses_bench_lines() {
        let lines = parse_lines(
            "{\"id\":\"kern/matmul/chunked\",\"min_ns\":751686,\"mean_ns\":1046794,\"iters\":7}\n\n{\"id\":\"b\",\"min_ns\":2,\"mean_ns\":3,\"iters\":7}\n",
        )
        .unwrap();
        assert_eq!(lines.len(), 2);
        assert_eq!(
            lines[0].get("id").unwrap().as_str().unwrap(),
            "kern/matmul/chunked"
        );
        assert_eq!(lines[0].get("min_ns").unwrap().as_u64().unwrap(), 751686);
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(Value::parse("{} x").is_err());
        assert!(Value::parse("[1,").is_err());
    }
}
