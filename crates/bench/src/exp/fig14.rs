//! Fig 14 — average GPU training time per epoch: NeutronOrch with hot
//! embedding reuse vs the same system with a hot ratio of zero (GCN).

use crate::util::{fmt_secs, render_table};
use crate::Setup;
use neutron_core::profile::WorkloadConfig;
use neutron_core::profile::WorkloadProfile;
use neutron_core::{NeutronOrch, Orchestrator};
use neutron_hetero::HardwareSpec;
use neutron_nn::LayerKind;

/// One dataset's GPU-training-time pair.
#[derive(Clone, Debug)]
pub struct Fig14Row {
    pub dataset: &'static str,
    /// GPU train seconds with hot ratio 0 (no reuse).
    pub baseline: f64,
    /// GPU train seconds with the default hot ratio.
    pub neutronorch: f64,
}

impl Fig14Row {
    /// Fractional reduction in GPU training time.
    pub fn reduction(&self) -> f64 {
        1.0 - self.neutronorch / self.baseline
    }
}

/// Computes Fig 14.
pub fn data(setup: Setup) -> Vec<Fig14Row> {
    let hw = HardwareSpec::v100_server(1.0);
    setup
        .datasets()
        .iter()
        .map(|spec| {
            let mut cfg = WorkloadConfig::paper_default(LayerKind::Gcn);
            cfg.profiled_batches = setup.profiled_batches();
            let with_hot = WorkloadProfile::build(spec, &cfg);
            cfg.hot_ratio = 0.0;
            let no_hot = WorkloadProfile::build(spec, &cfg);
            let sys = NeutronOrch::new();
            let baseline = sys
                .simulate_epoch(&no_hot, &hw)
                .expect("fits")
                .train_seconds;
            let ours = sys
                .simulate_epoch(&with_hot, &hw)
                .expect("fits")
                .train_seconds;
            Fig14Row {
                dataset: spec.name,
                baseline,
                neutronorch: ours,
            }
        })
        .collect()
}

/// Renders Fig 14.
pub fn run(setup: Setup) -> String {
    let rows: Vec<Vec<String>> = data(setup)
        .into_iter()
        .map(|r| {
            vec![
                r.dataset.to_string(),
                fmt_secs(r.baseline),
                fmt_secs(r.neutronorch),
                format!("-{:.0}%", r.reduction() * 100.0),
            ]
        })
        .collect();
    render_table(
        "Fig 14: GPU training time per epoch, hot-ratio 0 vs NeutronOrch (GCN)",
        &["Dataset", "baseline (s)", "NeutronOrch (s)", "reduction"],
        &rows,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reuse_cuts_gpu_training_time_on_every_dataset() {
        // Paper: 36.5% average reduction, largest on high-degree graphs.
        let rows = data(Setup::Smoke);
        assert_eq!(rows.len(), 6);
        for r in &rows {
            assert!(
                r.neutronorch < r.baseline,
                "{}: {} !< {}",
                r.dataset,
                r.neutronorch,
                r.baseline
            );
        }
        // Smoke replicas saturate (flat access skew), so the measured
        // reduction is a floor; the paper replicas show 20-50% (Fig 14's
        // 36.5% average).
        let avg: f64 = rows.iter().map(|r| r.reduction()).sum::<f64>() / rows.len() as f64;
        assert!(avg > 0.02, "average reduction {avg:.3} too small");
    }
}
