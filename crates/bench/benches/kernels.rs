//! Micro-benchmarks of the substrate kernels: matmul, sampling, the DES
//! engine and GNN layer passes.

use criterion::{criterion_group, criterion_main, Criterion};
use neutron_graph::generate::{rmat, RmatParams};
use neutron_hetero::{Engine, TaskKind};
use neutron_nn::layers::{Layer, LayerKind};
use neutron_sample::{Fanout, NeighborSampler};
use neutron_tensor::kernels::reference;
use neutron_tensor::{init, ops, Matrix};
use std::hint::black_box;

fn matmul(c: &mut Criterion) {
    let a = init::uniform(512, 128, -1.0, 1.0, 1);
    let b = init::uniform(128, 64, -1.0, 1.0, 2);
    c.bench_function("tensor/matmul 512x128x64", |bench| {
        bench.iter(|| black_box(ops::matmul(&a, &b)));
    });
}

/// Chunked-vs-scalar pairs at training shapes (512-row batch, 128-dim
/// features, 64-dim hidden). Ids follow `kern/<kernel>/<variant>`; `xtask
/// bench-diff` pairs them up and gates on the speedups.
fn kernel_pairs(c: &mut Criterion) {
    let batch = 512usize;
    let feat = 128usize;
    let hid = 64usize;
    let a = init::uniform(batch, feat, -1.0, 1.0, 1);
    let b = init::uniform(feat, hid, -1.0, 1.0, 2);
    c.bench_function("kern/matmul/chunked", |bench| {
        bench.iter(|| black_box(ops::matmul(&a, &b)));
    });
    c.bench_function("kern/matmul/scalar", |bench| {
        bench.iter(|| {
            black_box(reference::matmul(
                a.as_slice(),
                b.as_slice(),
                batch,
                feat,
                hid,
            ))
        });
    });

    // ∇W shape: A: batch×feat (activations), B: batch×hid (deltas).
    let dz = init::uniform(batch, hid, -1.0, 1.0, 3);
    c.bench_function("kern/matmul_at_b/chunked", |bench| {
        bench.iter(|| black_box(ops::matmul_at_b(&a, &dz)));
    });
    c.bench_function("kern/matmul_at_b/scalar", |bench| {
        bench.iter(|| {
            black_box(reference::matmul_at_b(
                a.as_slice(),
                dz.as_slice(),
                batch,
                feat,
                hid,
            ))
        });
    });

    // ∇H shape: A: batch×hid (deltas), B: feat×hid (weights, transposed use).
    let w = init::uniform(feat, hid, -1.0, 1.0, 4);
    c.bench_function("kern/matmul_a_bt/chunked", |bench| {
        bench.iter(|| black_box(ops::matmul_a_bt(&dz, &w)));
    });
    c.bench_function("kern/matmul_a_bt/scalar", |bench| {
        bench.iter(|| {
            black_box(reference::matmul_a_bt(
                dz.as_slice(),
                w.as_slice(),
                batch,
                hid,
                feat,
            ))
        });
    });

    // Feature row gather: 4096 sampled vertices out of a 20k-vertex host
    // matrix — the Gather (FC) shape of the scaled replica.
    let host = init::uniform(20_000, feat, -1.0, 1.0, 5);
    let idx: Vec<usize> = (0..4096).map(|i| (i * 4_877) % 20_000).collect();
    c.bench_function("kern/gather/chunked", |bench| {
        bench.iter(|| black_box(host.gather_rows(&idx)));
    });
    c.bench_function("kern/gather/scalar", |bench| {
        bench.iter(|| black_box(reference::gather_rows(host.as_slice(), feat, &idx)));
    });

    // Backward aggregation scatter: 4096 gradient rows into 8192 src rows.
    let grads = init::uniform(4096, hid, -1.0, 1.0, 6);
    let dst: Vec<usize> = (0..4096).map(|i| (i * 3_203) % 8192).collect();
    c.bench_function("kern/scatter_add/chunked", |bench| {
        let mut out = Matrix::zeros(8192, hid);
        bench.iter(|| {
            out.scatter_add_rows(&dst, &grads);
            black_box(out.get(0, 0))
        });
    });
    c.bench_function("kern/scatter_add/scalar", |bench| {
        let mut out = Matrix::zeros(8192, hid);
        bench.iter(|| {
            reference::scatter_add_rows(out.as_mut_slice(), hid, &dst, grads.as_slice());
            black_box(out.get(0, 0))
        });
    });
}

/// The `a_val == 0.0` skip branch that used to guard `matmul` /
/// `matmul_at_b`, measured against the branch-free kernel on ReLU-sparse
/// input (~50% zeros) — its best case. The recorded numbers back the
/// decision (documented in `neutron_tensor::kernels`) to remove the branch:
/// it loses even here at GNN hidden widths.
fn zero_skip_ablation(c: &mut Criterion) {
    let batch = 512usize;
    let feat = 128usize;
    let hid = 64usize;
    let mut a = init::uniform(batch, feat, -1.0, 1.0, 7);
    for v in a.as_mut_slice() {
        *v = v.max(0.0); // ReLU: ~half the entries become exact zeros.
    }
    let b = init::uniform(feat, hid, -1.0, 1.0, 8);
    c.bench_function("skip/matmul_relu/noskip", |bench| {
        bench.iter(|| black_box(ops::matmul(&a, &b)));
    });
    c.bench_function("skip/matmul_relu/skip", |bench| {
        bench.iter(|| {
            let mut out = vec![0.0f32; batch * hid];
            let (ad, bd) = (a.as_slice(), b.as_slice());
            for (i, out_row) in out.chunks_exact_mut(hid).enumerate() {
                for (kk, &av) in ad[i * feat..(i + 1) * feat].iter().enumerate() {
                    if av == 0.0 {
                        continue;
                    }
                    for (o, &bv) in out_row.iter_mut().zip(&bd[kk * hid..(kk + 1) * hid]) {
                        *o += av * bv;
                    }
                }
            }
            black_box(out)
        });
    });
}

fn sampling(c: &mut Criterion) {
    let g = rmat(20_000, 300_000, RmatParams::graph500(), 3);
    let sampler = NeighborSampler::new(Fanout::paper_default(3));
    let seeds: Vec<u32> = (0..256).collect();
    c.bench_function("sample/3-hop 256 seeds", |bench| {
        let mut i = 0u64;
        bench.iter(|| {
            i += 1;
            black_box(sampler.sample_batch(&g, &seeds, i))
        });
    });
}

fn des_engine(c: &mut Criterion) {
    c.bench_function("hetero/DES 400-task pipeline", |bench| {
        bench.iter(|| {
            let mut e = Engine::new();
            let cpu = e.add_resource("cpu", 8.0);
            let gpu = e.add_resource("gpu", 1.0);
            let mut prev = None;
            for _ in 0..100 {
                let s = e.add_task(cpu, TaskKind::Sample, 1.0, 4.0, &[]);
                let f = e.add_task(cpu, TaskKind::GatherCollect, 0.5, 4.0, &[s]);
                let deps: Vec<_> = prev.into_iter().chain([f]).collect();
                let t = e.add_task(gpu, TaskKind::Train, 0.8, 0.8, &deps);
                let _ = e.add_task(gpu, TaskKind::Other, 0.1, 0.2, &[t]);
                prev = Some(t);
            }
            black_box(e.run().makespan)
        });
    });
}

fn gnn_layers(c: &mut Criterion) {
    let g = rmat(5_000, 80_000, RmatParams::graph500(), 5);
    let sampler = NeighborSampler::new(Fanout::new(vec![10]));
    let blocks = sampler.sample_batch(&g, &(0..128).collect::<Vec<_>>(), 7);
    let block = &blocks[0];
    let input = init::uniform(block.num_src(), 64, -1.0, 1.0, 8);
    for kind in [LayerKind::Gcn, LayerKind::Sage, LayerKind::Gat] {
        let layer = Layer::new(kind, 64, 32, false, 9);
        c.bench_function(&format!("nn/{kind:?} forward 128-dst block"), |bench| {
            bench.iter(|| black_box(layer.forward(block, &input)));
        });
    }
}

criterion_group!(
    kernels,
    matmul,
    kernel_pairs,
    zero_skip_ablation,
    sampling,
    des_engine,
    gnn_layers
);
criterion_main!(kernels);
