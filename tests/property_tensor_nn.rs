//! Property tests of the tensor kernels and the GNN layers' gradients.

use neutronorch::nn::gradcheck;
use neutronorch::nn::LayerKind;
use neutronorch::sample::Block;
use neutronorch::tensor::{init, kernels, ops, softmax, Matrix};
use proptest::prelude::*;

fn dims() -> impl Strategy<Value = (usize, usize, usize)> {
    (1usize..12, 1usize..12, 1usize..12)
}

/// Shapes that stress the chunked kernels' edges: zero-sized dimensions,
/// single columns, and inner dimensions straddling every lane/unroll
/// boundary of the 8-lane dot and the 4-wide k-unroll.
fn degenerate_dims() -> impl Strategy<Value = (usize, usize, usize)> {
    (0usize..10, 0usize..35, 0usize..10)
}

/// The chunked GEMMs change summation order versus the scalar references,
/// so elements agree to rounding, not bit-for-bit: within a few hundred
/// ULPs, or absolutely tiny where cancellation makes ULPs meaningless.
fn ulp_close(a: f32, b: f32) -> bool {
    if a == b {
        return true;
    }
    if (a - b).abs() <= 1e-4 {
        return true;
    }
    let (ai, bi) = (a.to_bits() as i64, b.to_bits() as i64);
    a.is_finite() && b.is_finite() && a.signum() == b.signum() && (ai - bi).abs() <= 256
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn matmul_matches_naive_reference((m, k, n) in dims(), seed in any::<u64>()) {
        let a = init::uniform(m, k, -2.0, 2.0, seed);
        let b = init::uniform(k, n, -2.0, 2.0, seed ^ 1);
        let fast = ops::matmul(&a, &b);
        let slow = ops::matmul_naive(&a, &b);
        prop_assert!(fast.approx_eq(&slow, 1e-3));
    }

    #[test]
    fn transpose_variants_agree((m, k, n) in dims(), seed in any::<u64>()) {
        let a = init::uniform(k, m, -1.0, 1.0, seed);
        let b = init::uniform(k, n, -1.0, 1.0, seed ^ 2);
        let via_t = ops::matmul(&a.transpose(), &b);
        prop_assert!(ops::matmul_at_b(&a, &b).approx_eq(&via_t, 1e-3));
        let c = init::uniform(m, k, -1.0, 1.0, seed ^ 3);
        let d = init::uniform(n, k, -1.0, 1.0, seed ^ 4);
        let via_t2 = ops::matmul(&c, &d.transpose());
        prop_assert!(ops::matmul_a_bt(&c, &d).approx_eq(&via_t2, 1e-3));
    }

    #[test]
    fn matmul_distributes_over_addition((m, k, n) in dims(), seed in any::<u64>()) {
        let a = init::uniform(m, k, -1.0, 1.0, seed);
        let b1 = init::uniform(k, n, -1.0, 1.0, seed ^ 5);
        let b2 = init::uniform(k, n, -1.0, 1.0, seed ^ 6);
        let lhs = ops::matmul(&a, &ops::add(&b1, &b2));
        let rhs = ops::add(&ops::matmul(&a, &b1), &ops::matmul(&a, &b2));
        prop_assert!(lhs.approx_eq(&rhs, 1e-3));
    }

    #[test]
    fn softmax_rows_are_distributions(rows in 1usize..8, cols in 1usize..16, seed in any::<u64>()) {
        let z = init::uniform(rows, cols, -30.0, 30.0, seed);
        let p = softmax::row_softmax(&z);
        prop_assert!(p.all_finite());
        for r in 0..rows {
            let sum: f32 = p.row(r).iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-4, "row {r} sums to {sum}");
            prop_assert!(p.row(r).iter().all(|&v| (0.0..=1.0).contains(&v)));
        }
    }

    #[test]
    fn chunked_gemms_match_scalar_references_on_degenerate_shapes(
        (m, k, n) in degenerate_dims(),
        seed in any::<u64>(),
    ) {
        let a = init::uniform(m, k, -2.0, 2.0, seed);
        let b = init::uniform(k, n, -2.0, 2.0, seed ^ 0x11);
        let want = kernels::reference::matmul(a.as_slice(), b.as_slice(), m, k, n);
        let got = ops::matmul(&a, &b);
        prop_assert_eq!(got.as_slice().len(), want.len());
        for (i, (&g, &w)) in got.as_slice().iter().zip(&want).enumerate() {
            prop_assert!(ulp_close(g, w), "matmul[{}]: chunked {} vs scalar {}", i, g, w);
        }

        // Aᵀ·B accumulates over rows of A (shape k×m here).
        let at = init::uniform(k, m, -2.0, 2.0, seed ^ 0x22);
        let want = kernels::reference::matmul_at_b(at.as_slice(), b.as_slice(), k, m, n);
        let got = ops::matmul_at_b(&at, &b);
        for (i, (&g, &w)) in got.as_slice().iter().zip(&want).enumerate() {
            prop_assert!(ulp_close(g, w), "matmul_at_b[{}]: chunked {} vs scalar {}", i, g, w);
        }

        // A·Bᵀ dots rows of A against rows of B (shape n×k here).
        let bt = init::uniform(n, k, -2.0, 2.0, seed ^ 0x33);
        let want = kernels::reference::matmul_a_bt(a.as_slice(), bt.as_slice(), m, k, n);
        let got = ops::matmul_a_bt(&a, &bt);
        for (i, (&g, &w)) in got.as_slice().iter().zip(&want).enumerate() {
            prop_assert!(ulp_close(g, w), "matmul_a_bt[{}]: chunked {} vs scalar {}", i, g, w);
        }
    }

    #[test]
    fn chunked_gather_and_scatter_are_bit_identical_to_references(
        rows in 1usize..20,
        cols in 0usize..12,
        picks in proptest::collection::vec(0usize..20, 0..32),
        seed in any::<u64>(),
    ) {
        // Row moves and adds are copy/add-exact: bit equality, not ULPs —
        // duplicate indices included (scatter accumulates in index order).
        let src = init::uniform(rows, cols, -3.0, 3.0, seed);
        let indices: Vec<usize> = picks.iter().map(|&p| p % rows).collect();

        let want = kernels::reference::gather_rows(src.as_slice(), cols, &indices);
        let got = src.gather_rows(&indices);
        prop_assert_eq!(got.rows(), indices.len());
        prop_assert_eq!(got.cols(), cols);
        prop_assert_eq!(got.as_slice(), want.as_slice());

        let grads = init::uniform(indices.len(), cols, -3.0, 3.0, seed ^ 0x44);
        let mut want_out = init::uniform(rows, cols, -1.0, 1.0, seed ^ 0x55);
        let mut got_out = want_out.clone();
        kernels::reference::scatter_add_rows(
            want_out.as_mut_slice(), cols, &indices, grads.as_slice(),
        );
        got_out.scatter_add_rows(&indices, &grads);
        prop_assert_eq!(got_out.as_slice(), want_out.as_slice());
    }

    #[test]
    fn gather_then_scatter_add_is_identity_on_disjoint_rows(
        n in 2usize..16,
        cols in 1usize..6,
        seed in any::<u64>(),
    ) {
        let m = init::uniform(n, cols, -1.0, 1.0, seed);
        let idx: Vec<usize> = (0..n).collect();
        let g = m.gather_rows(&idx);
        let mut out = Matrix::zeros(n, cols);
        out.scatter_add_rows(&idx, &g);
        prop_assert!(out.approx_eq(&m, 1e-6));
    }
}

/// Gradient checks on randomly shaped blocks — the strongest correctness
/// statement in the workspace: analytic backward == finite differences for
/// all three architectures.
#[test]
fn all_layer_gradients_match_finite_differences_on_random_blocks() {
    let mut failures = Vec::new();
    for seed in 0..3u64 {
        // Random small block: 3 dst, up to 6 src.
        let dst = vec![0, 1, 2];
        let src = vec![0, 1, 2, 3, 4, 5];
        let offsets = vec![0u32, 2, 3, 5];
        let indices = vec![3, 4, 5, 3, 4];
        let block = Block::new(dst, src, offsets, indices);
        let input = init::uniform(6, 5, -1.0, 1.0, 100 + seed);
        let labels = [0usize, 1, 2];
        for kind in LayerKind::ALL {
            let (p_err, i_err) = gradcheck::check_layer(kind, &block, &input, &labels, seed);
            if p_err > 2e-2 || i_err > 2e-2 {
                failures.push(format!("{kind:?} seed {seed}: param {p_err} input {i_err}"));
            }
        }
    }
    assert!(failures.is_empty(), "gradient mismatches: {failures:?}");
}
