//! Table 2 — runtime breakdown of the sample and gather steps on DGL
//! (Case 1) across all six datasets, 3-layer GCN.

use crate::util::{fmt_secs, render_table};
use crate::Setup;
use neutron_core::baselines::Case1Dgl;
use neutron_core::Orchestrator;
use neutron_hetero::HardwareSpec;
use neutron_nn::LayerKind;

/// One dataset row of Table 2.
#[derive(Clone, Debug)]
pub struct Table2Row {
    /// Dataset name.
    pub dataset: &'static str,
    /// Sampling seconds and share of total.
    pub sample: (f64, f64),
    /// Feature-collection seconds and share.
    pub gather_fc: (f64, f64),
    /// Feature-transfer seconds and share.
    pub gather_ft: (f64, f64),
    /// Total epoch seconds.
    pub total: f64,
}

/// Computes Table 2.
pub fn data(setup: Setup) -> Vec<Table2Row> {
    let hw = HardwareSpec::v100_server(1.0);
    setup
        .datasets()
        .iter()
        .map(|spec| {
            let profile = crate::build_profile(setup, spec, LayerKind::Gcn, 3, 1024);
            let r = Case1Dgl { pipelined: false }
                .simulate_epoch(&profile, &hw)
                .expect("DGL fits on every replica at bs 1024");
            let total = r.epoch_seconds;
            Table2Row {
                dataset: spec.name,
                sample: (r.sample_seconds, r.sample_seconds / total),
                gather_fc: (r.gather_collect_seconds, r.gather_collect_seconds / total),
                gather_ft: (r.transfer_seconds, r.transfer_seconds / total),
                total,
            }
        })
        .collect()
}

/// Renders Table 2.
pub fn run(setup: Setup) -> String {
    let rows: Vec<Vec<String>> = data(setup)
        .into_iter()
        .map(|r| {
            vec![
                r.dataset.to_string(),
                format!("{}/{:.0}%", fmt_secs(r.sample.0), r.sample.1 * 100.0),
                format!("{}/{:.0}%", fmt_secs(r.gather_fc.0), r.gather_fc.1 * 100.0),
                format!("{}/{:.0}%", fmt_secs(r.gather_ft.0), r.gather_ft.1 * 100.0),
                fmt_secs(r.total),
            ]
        })
        .collect();
    render_table(
        "Table 2: DGL sample/gather breakdown (3-layer GCN, replica scale)",
        &["Dataset", "Sample", "Gather (FC)", "Gather (FT)", "Total"],
        &rows,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gather_dominates_like_the_paper() {
        // Paper: sampling ≈ 19%, gathering ≈ 61% of DGL's epoch; FC is the
        // single largest cost. Check the ordering, not the digits.
        let rows = data(Setup::Smoke);
        assert_eq!(rows.len(), 6);
        let mut fc_dominant = 0;
        for r in &rows {
            assert!(r.total > 0.0);
            if r.gather_fc.0 + r.gather_ft.0 > r.sample.0 {
                fc_dominant += 1;
            }
            let share_sum = r.sample.1 + r.gather_fc.1 + r.gather_ft.1;
            assert!(share_sum <= 1.01, "shares cannot exceed total: {share_sum}");
        }
        assert!(
            fc_dominant >= 4,
            "gather should dominate sampling on most datasets"
        );
    }
}
