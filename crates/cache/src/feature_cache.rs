//! GPU feature-cache bookkeeping and storage (hit/miss accounting under a
//! byte budget, plus device-resident row copies for the cache-keyed gather).
//!
//! Zero-byte-row semantics (shared with [`crate::hybrid::HybridPolicy`]):
//! a row of zero bytes costs nothing, so **any** budget — including zero —
//! fits every candidate. Both the cache fill and the hybrid planner follow
//! this rule so their capacity arithmetic can never disagree.

use crate::policy::CacheRanking;
use neutron_graph::VertexId;

/// Slot-map sentinel for "vertex not cached".
const NOT_CACHED: u32 = u32::MAX;

/// A static GPU feature cache: the top-ranked vertices that fit in the byte
/// budget. Tracks hit/miss counts for transfer-volume accounting (Fig 6c,
/// Fig 13) and — when built with [`FeatureCache::for_vertices`] — holds the
/// actual feature rows, standing in for GPU-resident memory so the gather
/// stage can serve hits without touching the host feature matrix.
#[derive(Clone, Debug, Default)]
pub struct FeatureCache {
    /// Vertex → cache slot; [`NOT_CACHED`] when absent.
    slot: Vec<u32>,
    num_cached: usize,
    row_bytes: u64,
    /// Device-resident feature rows, `dim` floats per slot. Empty for
    /// bookkeeping-only caches built with [`FeatureCache::fill`].
    rows: Vec<f32>,
    dim: usize,
    hits: u64,
    misses: u64,
}

impl FeatureCache {
    /// A cache holding nothing: every probe misses, no memory is consumed.
    /// The canonical stand-in wherever a gather path runs cache-less.
    pub fn empty() -> Self {
        Self::default()
    }

    /// Fills the cache from `ranking` until `budget_bytes` is exhausted.
    /// Bookkeeping only (no row storage). Zero-byte rows fit everything
    /// (see module docs).
    pub fn fill(
        ranking: &CacheRanking,
        num_vertices: usize,
        row_bytes: u64,
        budget_bytes: u64,
    ) -> Self {
        let capacity = match row_bytes {
            0 => usize::MAX,
            r => (budget_bytes / r) as usize,
        };
        let mut slot = vec![NOT_CACHED; num_vertices];
        let mut num_cached = 0;
        for &v in ranking.top(capacity) {
            if slot[v as usize] == NOT_CACHED {
                slot[v as usize] = num_cached as u32;
                num_cached += 1;
            }
        }
        Self {
            slot,
            num_cached,
            row_bytes,
            rows: Vec::new(),
            dim: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// Builds a *materialised* cache for exactly `vertices` (e.g. a
    /// [`crate::HybridPlan`]'s `gpu_cache` list), copying each vertex's row
    /// out of the host feature matrix (`host_features` is row-major,
    /// `dim` floats per vertex). The copies stand in for GPU memory: once
    /// built, hits are served from here and the host matrix is not read.
    pub fn for_vertices(
        vertices: &[VertexId],
        num_vertices: usize,
        host_features: &[f32],
        dim: usize,
    ) -> Self {
        assert_eq!(
            host_features.len(),
            num_vertices * dim,
            "host feature matrix shape mismatch"
        );
        let mut slot = vec![NOT_CACHED; num_vertices];
        let mut unique: Vec<usize> = Vec::with_capacity(vertices.len());
        for &v in vertices {
            let s = v as usize;
            if slot[s] == NOT_CACHED {
                slot[s] = unique.len() as u32;
                unique.push(s);
            }
        }
        let num_cached = unique.len();
        // Bulk row copy through the shared gather kernel (slot order ==
        // unique order, so rows[slot[v]] is v's host row verbatim).
        let t0 = neutron_tensor::timing::start();
        let mut rows = Vec::new();
        neutron_tensor::kernels::gather_rows_into(&mut rows, host_features, dim, &unique);
        neutron_tensor::timing::stop(neutron_tensor::timing::Kernel::Gather, t0);
        Self {
            slot,
            num_cached,
            row_bytes: (dim * std::mem::size_of::<f32>()) as u64,
            rows,
            dim,
            hits: 0,
            misses: 0,
        }
    }

    /// Number of cached vertices.
    pub fn len(&self) -> usize {
        self.num_cached
    }

    /// True when nothing fits.
    pub fn is_empty(&self) -> bool {
        self.num_cached == 0
    }

    /// Cached fraction of all vertices (the paper's "cache ratio").
    pub fn cache_ratio(&self) -> f64 {
        if self.slot.is_empty() {
            0.0
        } else {
            self.num_cached as f64 / self.slot.len() as f64
        }
    }

    /// Bytes the cache occupies on the device.
    pub fn bytes(&self) -> u64 {
        self.num_cached as u64 * self.row_bytes
    }

    /// Side-effect-free membership probe — the gather stage's fast path,
    /// safe to share (`Arc`) across worker threads within an epoch.
    #[inline]
    pub fn contains(&self, v: VertexId) -> bool {
        self.slot.get(v as usize).is_some_and(|&s| s != NOT_CACHED)
    }

    /// The device-resident feature row of `v`. Panics if `v` is not cached
    /// or the cache was built without row storage ([`FeatureCache::fill`]).
    #[inline]
    pub fn row(&self, v: VertexId) -> &[f32] {
        let s = self.slot[v as usize];
        assert!(s != NOT_CACHED, "vertex {v} is not cached");
        let at = s as usize * self.dim;
        &self.rows[at..at + self.dim]
    }

    /// Records an access; returns true on hit.
    pub fn access(&mut self, v: VertexId) -> bool {
        if self.contains(v) {
            self.hits += 1;
            true
        } else {
            self.misses += 1;
            false
        }
    }

    /// Records a batch of accesses, returning the number of misses.
    pub fn access_all(&mut self, vs: &[VertexId]) -> u64 {
        let mut miss = 0;
        for &v in vs {
            if !self.access(v) {
                miss += 1;
            }
        }
        miss
    }

    /// Hit rate over all recorded accesses.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// (hits, misses) counters.
    pub fn counters(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{CachePolicy, PreSamplePolicy};
    use neutron_sample::HotnessRanking;

    fn ranking() -> CacheRanking {
        // hotness: v1 > v2 > v0 > v3
        let h = HotnessRanking::from_counts(vec![2, 9, 5, 0]);
        PreSamplePolicy::new(&h).rank()
    }

    #[test]
    fn budget_limits_cached_vertices() {
        let r = ranking();
        let cache = FeatureCache::fill(&r, 4, 100, 250);
        assert_eq!(cache.len(), 2, "250 B / 100 B rows = 2 slots");
        assert_eq!(cache.bytes(), 200);
        assert!((cache.cache_ratio() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn hottest_vertices_occupy_the_slots() {
        let r = ranking();
        let mut cache = FeatureCache::fill(&r, 4, 100, 250);
        assert!(cache.access(1));
        assert!(cache.access(2));
        assert!(!cache.access(0));
        assert!(!cache.access(3));
        assert_eq!(cache.counters(), (2, 2));
        assert!((cache.hit_rate() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn zero_budget_caches_nothing() {
        let r = ranking();
        let mut cache = FeatureCache::fill(&r, 4, 100, 0);
        assert!(cache.is_empty());
        assert_eq!(cache.access_all(&[0, 1, 2, 3]), 4);
    }

    #[test]
    fn oversized_budget_caches_everything() {
        let r = ranking();
        let cache = FeatureCache::fill(&r, 4, 100, 10_000);
        assert_eq!(cache.len(), 4);
        assert!((cache.cache_ratio() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn zero_byte_rows_fit_everything_even_with_zero_budget() {
        // The shared zero-row-size rule (module docs): rows that cost
        // nothing always fit, under any budget. HybridPolicy::plan applies
        // the identical rule to its net per-vertex cost.
        let r = ranking();
        let cache = FeatureCache::fill(&r, 4, 0, 0);
        assert_eq!(cache.len(), 4);
        assert_eq!(cache.bytes(), 0);
    }

    #[test]
    fn empty_cache_misses_every_probe_without_allocation() {
        let cache = FeatureCache::empty();
        assert!(cache.is_empty());
        assert_eq!(cache.cache_ratio(), 0.0);
        assert!(!cache.contains(0));
        assert!(!cache.contains(1_000_000));
    }

    #[test]
    fn materialised_cache_serves_host_rows_verbatim() {
        // 4 vertices, dim 2: row of v is [10v, 10v+1].
        let host: Vec<f32> = (0..4)
            .flat_map(|v| [10.0 * v as f32, 10.0 * v as f32 + 1.0])
            .collect();
        let cache = FeatureCache::for_vertices(&[3, 1], 4, &host, 2);
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.bytes(), 2 * 2 * 4);
        assert!(cache.contains(1) && cache.contains(3));
        assert!(!cache.contains(0) && !cache.contains(2));
        assert_eq!(cache.row(3), &[30.0, 31.0]);
        assert_eq!(cache.row(1), &[10.0, 11.0]);
    }

    #[test]
    fn duplicate_plan_vertices_occupy_one_slot() {
        let host = vec![0.0f32; 8];
        let cache = FeatureCache::for_vertices(&[2, 2, 2], 4, &host, 2);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    #[should_panic(expected = "not cached")]
    fn row_of_uncached_vertex_panics() {
        let host = vec![0.0f32; 4];
        let cache = FeatureCache::for_vertices(&[0], 2, &host, 2);
        let _ = cache.row(1);
    }
}
