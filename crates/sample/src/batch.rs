//! Mini-batch iteration over training vertices.

use neutron_graph::VertexId;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Splits a training set into shuffled mini-batches (Algorithm 1, line 1).
///
/// Shuffling is seeded per `(seed, epoch)` so epochs differ but runs
/// reproduce.
#[derive(Clone, Debug)]
pub struct BatchIterator {
    train: Vec<VertexId>,
    batch_size: usize,
    seed: u64,
}

impl BatchIterator {
    /// Creates an iterator factory over `train` vertices.
    pub fn new(train: Vec<VertexId>, batch_size: usize, seed: u64) -> Self {
        assert!(batch_size > 0);
        Self {
            train,
            batch_size,
            seed,
        }
    }

    /// Number of batches per epoch (last one may be short).
    pub fn batches_per_epoch(&self) -> usize {
        self.train.len().div_ceil(self.batch_size)
    }

    /// Batch size.
    pub fn batch_size(&self) -> usize {
        self.batch_size
    }

    /// Number of training vertices.
    pub fn num_train(&self) -> usize {
        self.train.len()
    }

    /// The iterator's shuffle seed. Together with an epoch number this is
    /// the *complete* rng-stream state: every shuffle is derived fresh from
    /// `seed ^ f(epoch)`, so checkpointing the seed and the next epoch
    /// index reproduces all remaining batch orders — there is no hidden
    /// generator position to save.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The training vertices, in their construction order (the order every
    /// epoch shuffle starts from).
    pub fn train_vertices(&self) -> &[VertexId] {
        &self.train
    }

    /// Returns the shuffled batches for `epoch`.
    pub fn epoch_batches(&self, epoch: usize) -> EpochBatches {
        let mut out = EpochBatches::default();
        self.fill_epoch_batches(epoch, &mut out);
        out
    }

    /// Shuffles `epoch`'s batches into a recycled [`EpochBatches`]: one
    /// flat id buffer whose capacity survives across epochs, with batches
    /// handed out as borrowed chunks. This replaces the old full-clone +
    /// per-chunk `to_vec` (one allocation per batch per epoch) with zero
    /// steady-state allocations; the shuffle itself is unchanged, so batch
    /// contents are bit-identical.
    pub fn fill_epoch_batches(&self, epoch: usize, out: &mut EpochBatches) {
        out.ids.clear();
        out.ids.extend_from_slice(&self.train);
        out.batch_size = self.batch_size;
        let ids = &mut out.ids;
        let mut rng =
            StdRng::seed_from_u64(self.seed ^ (epoch as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15));
        for i in (1..ids.len()).rev() {
            let j = rng.random_range(0..=i);
            ids.swap(i, j);
        }
    }
}

/// One epoch's shuffled training order: a flat vertex buffer sliced into
/// `batch_size` chunks on demand. Produced by
/// [`BatchIterator::fill_epoch_batches`] and reused epoch over epoch.
#[derive(Clone, Debug, Default)]
pub struct EpochBatches {
    ids: Vec<VertexId>,
    batch_size: usize,
}

impl EpochBatches {
    /// Number of batches (the last one may be short).
    pub fn len(&self) -> usize {
        if self.batch_size == 0 {
            0
        } else {
            self.ids.len().div_ceil(self.batch_size)
        }
    }

    /// True when the epoch holds no batches.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The seed vertices of batch `i`.
    pub fn batch(&self, i: usize) -> &[VertexId] {
        let lo = i * self.batch_size;
        let hi = (lo + self.batch_size).min(self.ids.len());
        &self.ids[lo..hi]
    }

    /// Iterates the batches in train order.
    pub fn iter(&self) -> impl Iterator<Item = &[VertexId]> + '_ {
        // `max(1)` keeps the default (empty) value panic-free; it yields
        // nothing either way.
        self.ids.chunks(self.batch_size.max(1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batches_cover_all_vertices_exactly_once() {
        let it = BatchIterator::new((0..103).collect(), 10, 1);
        assert_eq!(it.batches_per_epoch(), 11);
        let batches = it.epoch_batches(0);
        assert_eq!(batches.len(), 11);
        let mut all: Vec<u32> = batches.iter().flatten().copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..103).collect::<Vec<_>>());
        assert_eq!(batches.batch(10).len(), 3);
        assert_eq!(batches.iter().last().unwrap(), batches.batch(10));
    }

    #[test]
    fn epochs_shuffle_differently_but_reproducibly() {
        let it = BatchIterator::new((0..50).collect(), 50, 2);
        let e0 = it.epoch_batches(0);
        let e1 = it.epoch_batches(1);
        assert_ne!(
            e0.batch(0),
            e1.batch(0),
            "different epochs should shuffle differently"
        );
        // Refilling a recycled buffer must reproduce the epoch exactly.
        let mut recycled = e1;
        it.fill_epoch_batches(0, &mut recycled);
        assert_eq!(e0.batch(0), recycled.batch(0), "same epoch must reproduce");
    }

    #[test]
    fn default_epoch_batches_is_empty() {
        let eb = EpochBatches::default();
        assert!(eb.is_empty());
        assert_eq!(eb.len(), 0);
        assert_eq!(eb.iter().count(), 0);
    }

    #[test]
    #[should_panic]
    fn zero_batch_size_rejected() {
        let _ = BatchIterator::new(vec![1], 0, 0);
    }
}
