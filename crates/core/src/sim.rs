//! Schedule-building sugar over the discrete-event engine.
//!
//! Orchestrators express an epoch as tasks on named **streams**: tasks on
//! one stream run in submission order (a CUDA stream / a worker thread),
//! while different streams overlap freely subject to explicit dependencies.
//! Pipelining (Fig 5) falls out of stream structure; the non-pipelined
//! variants chain every batch behind the previous one.

use neutron_hetero::{Cost, Engine, ResourceId, RunReport, TaskId, TaskKind};
use std::collections::HashMap;

pub use neutron_hetero::cost::Cost as TaskCost;

/// Builder for one epoch's task DAG.
pub struct ScheduleBuilder {
    engine: Engine,
    streams: HashMap<String, TaskId>,
}

impl ScheduleBuilder {
    /// Empty schedule.
    pub fn new() -> Self {
        Self {
            engine: Engine::new(),
            streams: HashMap::new(),
        }
    }

    /// Registers a resource pool.
    pub fn resource(&mut self, name: impl Into<String>, capacity: f64) -> ResourceId {
        self.engine.add_resource(name, capacity)
    }

    /// Adds a task on `stream`: it runs after the stream's previous task and
    /// all `deps`.
    pub fn task(
        &mut self,
        resource: ResourceId,
        kind: TaskKind,
        cost: Cost,
        stream: &str,
        deps: &[TaskId],
    ) -> TaskId {
        let mut all = deps.to_vec();
        if let Some(&prev) = self.streams.get(stream) {
            all.push(prev);
        }
        let id = self
            .engine
            .add_task(resource, kind, cost.work, cost.demand, &all);
        self.streams.insert(stream.to_string(), id);
        id
    }

    /// Last task submitted on `stream`, if any.
    pub fn stream_tail(&self, stream: &str) -> Option<TaskId> {
        self.streams.get(stream).copied()
    }

    /// Runs the schedule.
    pub fn run(mut self) -> RunReport {
        self.engine.run()
    }

    /// Runs the schedule and returns the per-task execution trace (for
    /// Gantt rendering via [`neutron_hetero::gantt`]).
    pub fn run_traced(mut self) -> (RunReport, Vec<neutron_hetero::TraceSpan>) {
        self.engine.run_traced()
    }

    /// Number of tasks submitted so far.
    pub fn num_tasks(&self) -> usize {
        self.engine.num_tasks()
    }
}

impl Default for ScheduleBuilder {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(work: f64) -> Cost {
        Cost { work, demand: 1.0 }
    }

    #[test]
    fn streams_serialise_tasks() {
        let mut s = ScheduleBuilder::new();
        let cpu = s.resource("cpu", 4.0);
        s.task(cpu, TaskKind::Other, c(1.0), "a", &[]);
        s.task(cpu, TaskKind::Other, c(1.0), "a", &[]);
        let r = s.run();
        // Same stream: serialized despite 4 cores of capacity.
        assert!((r.makespan - 2.0).abs() < 1e-9);
    }

    #[test]
    fn different_streams_overlap() {
        let mut s = ScheduleBuilder::new();
        let cpu = s.resource("cpu", 4.0);
        s.task(cpu, TaskKind::Other, c(1.0), "a", &[]);
        s.task(cpu, TaskKind::Other, c(1.0), "b", &[]);
        let r = s.run();
        assert!((r.makespan - 1.0).abs() < 1e-9);
    }

    #[test]
    fn cross_stream_deps_apply() {
        let mut s = ScheduleBuilder::new();
        let cpu = s.resource("cpu", 4.0);
        let a = s.task(cpu, TaskKind::Other, c(1.0), "a", &[]);
        s.task(cpu, TaskKind::Other, c(1.0), "b", &[a]);
        let r = s.run();
        assert!((r.makespan - 2.0).abs() < 1e-9);
    }

    #[test]
    fn stream_tail_tracks_last_task() {
        let mut s = ScheduleBuilder::new();
        let cpu = s.resource("cpu", 1.0);
        assert!(s.stream_tail("a").is_none());
        let t = s.task(cpu, TaskKind::Other, c(1.0), "a", &[]);
        assert_eq!(s.stream_tail("a"), Some(t));
        assert_eq!(s.num_tasks(), 1);
    }
}
