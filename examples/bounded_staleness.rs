//! Bounded staleness in action: the Fig-16 experiment at example scale.
//!
//! Trains the same GCN three times — exact, GAS-style unbounded reuse, and
//! NeutronOrch's super-batch-bounded reuse — and prints the accuracy curves
//! plus the largest observed embedding version gap.
//!
//! ```text
//! cargo run --release --example bounded_staleness
//! ```

use neutronorch::core::runner::{fig16_policies, run_convergence};
use neutronorch::graph::DatasetSpec;
use neutronorch::nn::LayerKind;

fn main() {
    let spec = DatasetSpec::products_convergence();
    let epochs = 15;
    println!(
        "dataset: {} (|V|={}, {} classes), {} epochs\n",
        spec.name, spec.vertices, spec.num_classes, epochs
    );
    let curves: Vec<_> = fig16_policies(4)
        .into_iter()
        .map(|policy| run_convergence(&spec, LayerKind::Gcn, policy, epochs))
        .collect();

    print!("{:<28}", "epoch");
    for c in &curves {
        print!("{:>28}", c.label);
    }
    println!();
    for e in 0..epochs {
        print!("{:<28}", e);
        for c in &curves {
            print!("{:>28.4}", c.epochs[e].test_accuracy);
        }
        println!();
    }
    println!();
    for c in &curves {
        println!(
            "{:<28} best accuracy {:.4}, max staleness {}",
            c.label,
            c.best_accuracy(),
            c.max_staleness()
        );
    }
    println!("\nNeutronOrch's gap stays below 2n-1 = 7; GAS reuses without bound.");
}
