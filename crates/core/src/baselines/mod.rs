//! Step-based baseline orchestrators (the four cases of §3) plus the two
//! historical-embedding / multi-GPU comparators.

pub mod dsp;
pub mod gas;
pub mod step_based;

pub use dsp::DspLike;
pub use gas::GasLike;
pub use step_based::{Case1Dgl, Case2DglUva, Case3PaGraph, Case4GnnLab};

use crate::sim::ScheduleBuilder;
use neutron_hetero::{HardwareSpec, ResourceId};

/// The standard single-GPU resource layout.
pub(crate) struct SingleGpuParts {
    pub sched: ScheduleBuilder,
    pub cpu: ResourceId,
    pub gpu: ResourceId,
    pub h2d: ResourceId,
    #[allow(dead_code)]
    pub d2h: ResourceId,
}

/// Registers cpu / gpu / pcie resources for a single-GPU machine.
pub(crate) fn single_gpu_parts(hw: &HardwareSpec) -> SingleGpuParts {
    let mut sched = ScheduleBuilder::new();
    let cpu = sched.resource("cpu", hw.cpu.cores);
    let gpu = sched.resource("gpu0", 1.0);
    let h2d = sched.resource("h2d0", hw.pcie.bandwidth);
    let d2h = sched.resource("d2h0", hw.pcie.bandwidth);
    SingleGpuParts {
        sched,
        cpu,
        gpu,
        h2d,
        d2h,
    }
}

/// Mean utilization across all resources whose name starts with `prefix`.
pub(crate) fn mean_util(run: &neutron_hetero::RunReport, prefix: &str) -> f64 {
    let vals: Vec<f64> = run
        .resource_names
        .iter()
        .zip(&run.utilization)
        .filter(|(n, _)| n.starts_with(prefix))
        .map(|(_, &u)| u)
        .collect();
    if vals.is_empty() {
        0.0
    } else {
        vals.iter().sum::<f64>() / vals.len() as f64
    }
}
