//! The super-batch hot-embedding refresh as a detachable unit of work.
//!
//! NeutronOrch's Fig 8 timeline overlaps the CPU's hot-embedding refresh
//! with ongoing GPU training. To make that overlap *deterministic*, the
//! refresh is factored into a [`RefreshTask`]: a pure closure over
//!
//! - an **immutable parameter snapshot** of the bottom layer (cloned
//!   [`neutron_nn::param::Param`] values inside a [`Layer`]), taken on the
//!   train thread at a super-batch boundary,
//! - the list of hot vertices to recompute, and
//! - a sampling seed derived from the boundary's model version.
//!
//! Running the task later — on a background worker, or inline — always
//! produces bit-identical rows, because the snapshot freezes the weights
//! and [`NeighborSampler::sample_one_hop_stable`] seeds neighbor draws per
//! vertex, making the output independent of *where*, *when* and over *which
//! partition* of the hot set the task runs. That partition independence is
//! what lets the §4.1.3 hybrid split move vertices between the CPU refresh
//! worker and the training device without perturbing the training
//! trajectory.
//!
//! [`RefreshBackend`] abstracts the execution site: the sequential trainer
//! uses [`InlineRefresh`] (compute at submission, on the train thread); the
//! persistent [`crate::engine::TrainingEngine`] ships tasks to a dedicated
//! refresh worker and collects the rows at the next boundary.

use crate::trainer::ConvergenceTrainer;
use neutron_graph::{Dataset, VertexId};
use neutron_nn::layers::Layer;
use neutron_sample::{NeighborSampler, SamplerScratch};
use std::sync::Arc;

/// One super-batch's refresh work over a subset of the hot set.
pub struct RefreshTask {
    dataset: Arc<Dataset>,
    /// Immutable snapshot of the bottom layer's parameters.
    bottom: Layer,
    sampler: NeighborSampler,
    vertices: Vec<VertexId>,
    fanout: usize,
    /// Model version the snapshot was taken at; stamps the output rows.
    version: u64,
    seed: u64,
}

/// The rows a [`RefreshTask`] produced, ready to publish into the
/// historical-embedding store at the next super-batch boundary.
pub struct RefreshOutput {
    /// `(vertex, embedding row)` pairs, one per task vertex.
    pub rows: Vec<(VertexId, Vec<f32>)>,
    /// Version stamp for every row (the snapshot's model version).
    pub version: u64,
}

impl RefreshOutput {
    /// An output with no rows (empty task partition).
    pub fn empty(version: u64) -> Self {
        Self {
            rows: Vec::new(),
            version,
        }
    }
}

impl RefreshTask {
    /// Captures a refresh task. `bottom` must be a clone of the model's
    /// bottom layer taken at the boundary (the parameter snapshot).
    pub fn new(
        dataset: Arc<Dataset>,
        bottom: Layer,
        sampler: NeighborSampler,
        vertices: Vec<VertexId>,
        fanout: usize,
        version: u64,
        seed: u64,
    ) -> Self {
        Self {
            dataset,
            bottom,
            sampler,
            vertices,
            fanout,
            version,
            seed,
        }
    }

    /// Number of vertices this task recomputes.
    pub fn len(&self) -> usize {
        self.vertices.len()
    }

    /// True when the task has no vertices (e.g. an empty split partition).
    pub fn is_empty(&self) -> bool {
        self.vertices.is_empty()
    }

    /// The version stamp the output will carry.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Executes the task: partition-stable one-hop sampling, feature
    /// gather, bottom-layer forward under the frozen snapshot. Pure — safe
    /// to run on any thread, any number of times, with identical results.
    pub fn run(&self) -> RefreshOutput {
        let mut scratch = SamplerScratch::new();
        self.run_with_scratch(&mut scratch)
    }

    /// [`Self::run`] against a caller-owned sampler scratch, so repeat
    /// refreshers (a worker looping over tasks, the trainer at successive
    /// boundaries) amortise the dedup buffers instead of re-zeroing
    /// `O(|V|)` state per super-batch.
    pub fn run_with_scratch(&self, scratch: &mut SamplerScratch) -> RefreshOutput {
        RefreshOutput {
            rows: self.run_partition(&self.vertices, scratch),
            version: self.version,
        }
    }

    /// [`Self::run`], sharded across up to `workers` scoped threads.
    ///
    /// Because the task is partition-stable (per-vertex sampling seeds, a
    /// frozen parameter snapshot), running contiguous shards concurrently
    /// and concatenating their rows in shard order reproduces the serial
    /// output bit for bit — the same property
    /// `split_partitions_reproduce_the_full_run_row_for_row` asserts for
    /// the hybrid split. Shards below [`Self::MIN_SHARD_VERTICES`] aren't
    /// worth a thread spawn; the effective worker count is capped so every
    /// shard stays at least that large.
    pub fn run_sharded(&self, workers: usize) -> RefreshOutput {
        let workers = workers
            .min(self.vertices.len() / Self::MIN_SHARD_VERTICES)
            .max(1);
        if workers <= 1 {
            return self.run();
        }
        let chunk = self.vertices.len().div_ceil(workers);
        let mut rows = Vec::with_capacity(self.vertices.len());
        std::thread::scope(|scope| {
            let handles: Vec<_> = self
                .vertices
                .chunks(chunk)
                .map(|part| {
                    scope.spawn(move || {
                        let mut scratch = SamplerScratch::new();
                        self.run_partition(part, &mut scratch)
                    })
                })
                .collect();
            for h in handles {
                rows.extend(h.join().expect("refresh shard panicked"));
            }
        });
        RefreshOutput {
            rows,
            version: self.version,
        }
    }

    /// Smallest vertex count worth its own refresh shard (thread spawn +
    /// per-shard `SamplerScratch` are amortised over at least this much
    /// sampling + forward work).
    pub const MIN_SHARD_VERTICES: usize = 64;

    /// The shared partition body: sampling, gather and bottom-layer forward
    /// over an arbitrary slice of the task's vertex list.
    fn run_partition(
        &self,
        vertices: &[VertexId],
        scratch: &mut SamplerScratch,
    ) -> Vec<(VertexId, Vec<f32>)> {
        if vertices.is_empty() {
            return Vec::new();
        }
        let block = self.sampler.sample_one_hop_stable_with_scratch(
            &self.dataset.csr,
            vertices,
            self.fanout,
            self.seed,
            scratch,
        );
        // The train path's gather — same helper, so "Gather (FC)" can never
        // drift between training and refresh.
        let feats = ConvergenceTrainer::gather_features(&self.dataset, block.src());
        let (out, _ctx) = self.bottom.forward(&block, &feats);
        vertices
            .iter()
            .enumerate()
            .map(|(i, &v)| (v, out.row(i).to_vec()))
            .collect()
    }
}

/// Where the CPU-assigned share of a refresh executes.
///
/// `submit` is called at the super-batch boundary that *creates* the task;
/// the result is needed one super-batch later, at the boundary that
/// *publishes* it. A backend may therefore compute asynchronously between
/// the two calls.
pub trait RefreshBackend {
    /// Begins computing `task`; returns either the finished rows
    /// ([`CpuPart::Ready`]) or [`CpuPart::Submitted`] if the backend will
    /// deliver them through [`RefreshBackend::collect`].
    fn submit(&mut self, task: RefreshTask) -> CpuPart;

    /// Blocks until the rows of the previously `Submitted` task are ready.
    /// Called exactly once per `Submitted` return.
    fn collect(&mut self) -> RefreshOutput;
}

/// State of a refresh task's CPU share between the boundary that created it
/// and the boundary that publishes it.
pub enum CpuPart {
    /// Rows already computed (inline backend).
    Ready(RefreshOutput),
    /// Rows owed by the backend's worker; resolve with
    /// [`RefreshBackend::collect`].
    Submitted,
}

/// The synchronous backend: computes on the submitting (train) thread.
/// This is the sequential baseline's execution site — same numbers as any
/// asynchronous backend, no overlap.
#[derive(Default)]
pub struct InlineRefresh {
    scratch: SamplerScratch,
}

impl RefreshBackend for InlineRefresh {
    fn submit(&mut self, task: RefreshTask) -> CpuPart {
        CpuPart::Ready(task.run_with_scratch(&mut self.scratch))
    }

    fn collect(&mut self) -> RefreshOutput {
        unreachable!("inline refresh never leaves a task in flight")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use neutron_graph::DatasetSpec;
    use neutron_nn::layers::LayerKind;
    use neutron_sample::Fanout;

    fn fixture() -> (Arc<Dataset>, Layer, NeighborSampler) {
        let ds = Arc::new(DatasetSpec::tiny().build_full());
        let bottom = Layer::new(
            LayerKind::Gcn,
            ds.spec.feature_dim,
            ds.spec.hidden_dim,
            false,
            7,
        );
        let sampler = NeighborSampler::new(Fanout::new(vec![4, 4]));
        (ds, bottom, sampler)
    }

    #[test]
    fn task_output_is_deterministic_and_stamped() {
        let (ds, bottom, sampler) = fixture();
        let verts: Vec<u32> = (0..20).collect();
        let task = |b: Layer| {
            RefreshTask::new(
                Arc::clone(&ds),
                b,
                sampler.clone(),
                verts.clone(),
                4,
                9,
                0x5b,
            )
        };
        let a = task(bottom.clone()).run();
        let b = task(bottom.clone()).run();
        assert_eq!(a.version, 9);
        assert_eq!(a.rows.len(), 20);
        for ((va, ra), (vb, rb)) in a.rows.iter().zip(&b.rows) {
            assert_eq!(va, vb);
            assert_eq!(ra, rb);
        }
    }

    #[test]
    fn split_partitions_reproduce_the_full_run_row_for_row() {
        // The partition-independence property the hybrid split relies on:
        // computing [0..k) and [k..n) separately must equal one full run.
        let (ds, bottom, sampler) = fixture();
        let verts: Vec<u32> = (5..45).collect();
        let run = |vs: Vec<u32>| {
            RefreshTask::new(
                Arc::clone(&ds),
                bottom.clone(),
                sampler.clone(),
                vs,
                4,
                3,
                0xfeed,
            )
            .run()
        };
        let full = run(verts.clone());
        for k in [0usize, 13, 40] {
            let left = run(verts[..k].to_vec());
            let right = run(verts[k..].to_vec());
            let merged: Vec<_> = left.rows.into_iter().chain(right.rows).collect();
            assert_eq!(merged.len(), full.rows.len());
            for ((va, ra), (vb, rb)) in merged.iter().zip(&full.rows) {
                assert_eq!(va, vb, "split at {k}");
                assert_eq!(ra, rb, "split at {k}: rows diverged for vertex {va}");
            }
        }
    }

    #[test]
    fn sharded_run_is_bit_identical_to_serial_at_any_worker_count() {
        let (ds, bottom, sampler) = fixture();
        // 280 vertices: enough for up to 4 real shards at MIN_SHARD_VERTICES.
        let verts: Vec<u32> = (0..280).collect();
        let task = RefreshTask::new(ds, bottom, sampler, verts, 4, 11, 0xc0de);
        let serial = task.run();
        for workers in [0usize, 1, 2, 3, 4, 16] {
            let sharded = task.run_sharded(workers);
            assert_eq!(sharded.version, serial.version);
            assert_eq!(sharded.rows.len(), serial.rows.len());
            for ((va, ra), (vb, rb)) in sharded.rows.iter().zip(&serial.rows) {
                assert_eq!(va, vb, "workers={workers}");
                assert_eq!(ra, rb, "workers={workers}: row diverged for vertex {va}");
            }
        }
    }

    #[test]
    fn empty_task_yields_empty_output() {
        let (ds, bottom, sampler) = fixture();
        let task = RefreshTask::new(ds, bottom, sampler, Vec::new(), 4, 1, 2);
        assert!(task.is_empty());
        assert!(task.run().rows.is_empty());
    }

    #[test]
    fn inline_backend_computes_at_submission() {
        let (ds, bottom, sampler) = fixture();
        let task = RefreshTask::new(ds, bottom, sampler, vec![1, 2, 3], 4, 0, 1);
        match InlineRefresh::default().submit(task) {
            CpuPart::Ready(out) => assert_eq!(out.rows.len(), 3),
            CpuPart::Submitted => panic!("inline backend must be synchronous"),
        }
    }
}
