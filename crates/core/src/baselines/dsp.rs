//! DSP-like multi-GPU orchestrator: Case 4 replicated across GPUs with
//! cooperative sampling over NVLink and per-batch gradient all-reduce.

use super::mean_util;
use crate::orchestrator::{Lens, Orchestrator};
use crate::profile::WorkloadProfile;
use crate::report::EpochReport;
use crate::sim::ScheduleBuilder;
use neutron_hetero::{CostModel, HardwareSpec, MemLedger, OomError, TaskKind};

/// DSP-like multi-GPU system (§5.3): GPU sampling with the topology
/// partitioned across devices, popular-feature caching, NVLink exchanges.
#[derive(Clone, Debug)]
pub struct DspLike {
    /// Minimum feature-cache ratio DSP's kernels assume; falling below it is
    /// reported as a memory failure (the paper's Fig 11 "X"/"OOM" cells at
    /// low GPU counts on Papers100M).
    pub min_cache_ratio: f64,
}

impl Default for DspLike {
    fn default() -> Self {
        Self {
            min_cache_ratio: 0.25,
        }
    }
}

impl Orchestrator for DspLike {
    fn name(&self) -> String {
        "DSP".into()
    }

    fn simulate_epoch(
        &self,
        profile: &WorkloadProfile,
        hw: &HardwareSpec,
    ) -> Result<EpochReport, OomError> {
        let lens = Lens::new(profile);
        let cm = CostModel::new(hw.clone());
        let gpus = hw.num_gpus.max(1);
        // Per-GPU memory: topology shard + batch buffers + feature cache.
        let mut mem = MemLedger::new(hw.gpu.mem_bytes);
        mem.alloc("params", lens.param_bytes())?;
        mem.alloc("topology-shard", lens.paper_topology_bytes() / gpus as u64)?;
        mem.alloc(
            "batch",
            2 * lens.paper_batch_bytes(profile.config.batch_size),
        )?;
        let min_cache =
            (lens.paper_feature_bytes() as f64 * self.min_cache_ratio / gpus as f64) as u64;
        mem.alloc("feature-cache", min_cache.max(mem.available()))?;
        let (_, hit) = lens.cache_plan(mem.region("feature-cache") * gpus as u64, false);

        let mut sched = ScheduleBuilder::new();
        let cpu = sched.resource("cpu", hw.cpu.cores);
        let nvlink = hw.nvlink.map(|l| sched.resource("nvlink", l.bandwidth));
        let mut gpu_res = Vec::new();
        let mut h2d_res = Vec::new();
        for g in 0..gpus {
            gpu_res.push(sched.resource(format!("gpu{g}"), 1.0));
            h2d_res.push(sched.resource(format!("h2d{g}"), hw.pcie.bandwidth));
        }
        let _ = cpu;
        let mut h2d_bytes = 0u64;
        // Data parallelism: batches round-robin across GPUs; every batch
        // syncs gradients (ring all-reduce ≈ 2·params per step).
        for i in 0..profile.num_batches {
            let g = i % gpus;
            let s = sched.task(
                gpu_res[g],
                TaskKind::Sample,
                cm.gpu_sample(lens.sampled_edges(i)),
                &format!("gpu{g}:sample"),
                &[],
            );
            // Cooperative sampling: frontier exchange across shards.
            let mut train_deps = vec![s];
            if let Some(nv) = nvlink {
                let exch_bytes = lens.block_bytes(i) * (gpus as u64 - 1) / gpus as u64;
                let x = sched.task(
                    nv,
                    TaskKind::Sync,
                    cm.gpu_sync(exch_bytes),
                    "nvlink:exchange",
                    &[s],
                );
                train_deps = vec![x];
            }
            let miss_bytes = ((lens.bottom_feature_bytes(i) as f64) * (1.0 - hit)) as u64;
            let ft = sched.task(
                h2d_res[g],
                TaskKind::Transfer,
                cm.pcie_transfer(miss_bytes),
                &format!("pcie{g}:h2d"),
                &train_deps,
            );
            h2d_bytes += miss_bytes;
            let t = sched.task(
                gpu_res[g],
                TaskKind::Train,
                cm.gpu_train(lens.train_flops(i), profile.seeds(i) as u64),
                &format!("gpu{g}:train"),
                &[ft],
            );
            if let Some(nv) = nvlink {
                sched.task(
                    nv,
                    TaskKind::Sync,
                    cm.gpu_sync(2 * lens.param_bytes()),
                    "nvlink:allreduce",
                    &[t],
                );
            }
        }
        let run = sched.run();
        Ok(EpochReport::from_run(
            self.name(),
            &run,
            mean_util(&run, "cpu"),
            mean_util(&run, "gpu"),
            h2d_bytes,
            mem.used(),
            profile.num_batches,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::WorkloadConfig;
    use neutron_graph::DatasetSpec;
    use neutron_nn::LayerKind;

    fn fixture() -> WorkloadProfile {
        let mut cfg = WorkloadConfig::paper_default(LayerKind::Sage);
        cfg.batch_size = 64;
        cfg.layers = 2;
        cfg.profiled_batches = 2;
        WorkloadProfile::build(&DatasetSpec::tiny(), &cfg)
    }

    #[test]
    fn more_gpus_reduce_epoch_time() {
        let profile = fixture();
        let r1 = DspLike::default()
            .simulate_epoch(&profile, &HardwareSpec::dgx1_like(1, 1.0))
            .unwrap();
        let r4 = DspLike::default()
            .simulate_epoch(&profile, &HardwareSpec::dgx1_like(4, 1.0))
            .unwrap();
        assert!(
            r4.epoch_seconds < r1.epoch_seconds,
            "4 GPUs {} vs 1 GPU {}",
            r4.epoch_seconds,
            r1.epoch_seconds
        );
    }

    #[test]
    fn papers100m_replica_fails_on_one_gpu() {
        // Fig 11 shape: DSP cannot run billion-edge graphs on 1 GPU.
        let mut cfg = WorkloadConfig::paper_default(LayerKind::Sage);
        cfg.profiled_batches = 2;
        let mut spec = DatasetSpec::papers100m_scaled();
        spec.vertices = 20_000;
        spec.edges = 280_000;
        let profile = WorkloadProfile::build(&spec, &cfg);
        let err = DspLike::default()
            .simulate_epoch(&profile, &HardwareSpec::dgx1_like(1, 1.0))
            .unwrap_err();
        assert!(err.to_string().contains("OOM"));
        assert!(DspLike::default()
            .simulate_epoch(&profile, &HardwareSpec::dgx1_like(8, 1.0))
            .is_ok());
    }
}
