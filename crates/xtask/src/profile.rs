//! `xtask profile`: run a named workload under a sampling profiler, or with
//! the in-process timing hooks (`--timing`) for a per-stage / per-kernel
//! wall-time breakdown.
//!
//! Profiler mode follows the nomt xtask pattern: verify `samply` exists,
//! then re-exec this same binary under `samply record` with the subcommand
//! swapped to the inline `profile-exec` runner, so the profiled process is
//! nothing but the workload.

use neutron_core::engine::{EngineConfig, SessionError, TrainingEngine};
use neutron_core::fault::{FailureEvent, FailurePolicy, FaultPlan};
use neutron_core::pipeline::{PipelineConfig, PipelineExecutor, PipelineReport};
use neutron_core::replica::{ReplicatedConfig, ReplicatedEngine, ReplicatedSessionReport};
use neutron_core::trainer::{ConvergenceTrainer, ReusePolicy, TrainerConfig};
use neutron_graph::DatasetSpec;
use neutron_nn::LayerKind;
use neutron_tensor::{alloc, timing};
use std::process::Command;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// The named workloads `xtask profile` can drive.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Workload {
    /// The quickstart convergence run: sequential hotness-aware training on
    /// the Reddit-convergence replica (no pipeline).
    Quickstart,
    /// Per-epoch pipelined executor (`PipelineExecutor::run_epoch`) on the
    /// scaled Reddit replica — respawns stage workers every epoch.
    Pipeline,
    /// A persistent `TrainingEngine` session on the scaled Reddit replica —
    /// the BENCH_engine.json configuration.
    Engine,
}

impl Workload {
    pub fn parse(name: &str) -> Result<Self, String> {
        match name {
            "quickstart" => Ok(Self::Quickstart),
            "pipeline" => Ok(Self::Pipeline),
            "engine" => Ok(Self::Engine),
            other => Err(format!(
                "unknown workload '{other}' (expected quickstart | pipeline | engine)"
            )),
        }
    }

    fn name(self) -> &'static str {
        match self {
            Self::Quickstart => "quickstart",
            Self::Pipeline => "pipeline",
            Self::Engine => "engine",
        }
    }
}

/// The scaled Reddit replica every pipelined bench uses (matches
/// `examples/engine_multi_epoch.rs`).
fn scaled_spec() -> DatasetSpec {
    let mut spec = DatasetSpec::reddit_convergence();
    spec.vertices = 8_000;
    spec.edges = 640_000;
    spec
}

fn scaled_trainer(spec: &DatasetSpec) -> ConvergenceTrainer {
    let config = TrainerConfig {
        kind: LayerKind::Gcn,
        layers: 2,
        batch_size: 256,
        lr: 0.2,
        seed: 0xe4e,
        policy: ReusePolicy::HotnessAware {
            hot_ratio: 0.2,
            super_batch: 2,
        },
    };
    ConvergenceTrainer::new(spec.build_full(), config)
}

/// Per-epoch stage reports plus, for `--replicas R > 1`, the replicated
/// session with its per-replica breakdown.
struct RunOutput {
    reports: Vec<PipelineReport>,
    replicated: Option<ReplicatedSessionReport>,
}

/// Runs the workload inline and returns the per-epoch stage reports it
/// produced (empty for workloads without a pipeline).
fn run_workload(workload: Workload, epochs: usize, replicas: usize) -> RunOutput {
    if replicas > 1 {
        // Data-parallel engine over an R-way hash partition (the main.rs
        // arg parser rejects --replicas for the other workloads).
        assert_eq!(workload, Workload::Engine);
        let spec = scaled_spec();
        let mut trainer = scaled_trainer(&spec);
        let engine = ReplicatedEngine::new(ReplicatedConfig {
            replicas,
            ..ReplicatedConfig::default()
        });
        let session = engine.run_session(&mut trainer, 0, epochs);
        for run in &session.epochs {
            println!(
                "epoch {}: loss {:.4}, {:.2}s ({} steps, {:.2} MiB all-reduce, {:.2} MiB remote)",
                run.epoch,
                run.observation.train_loss,
                run.report.epoch_seconds,
                run.steps,
                run.allreduce_bytes as f64 / (1u64 << 20) as f64,
                run.remote_feature_bytes as f64 / (1u64 << 20) as f64,
            );
        }
        return RunOutput {
            reports: session.epochs.iter().map(|r| r.report.clone()).collect(),
            replicated: Some(session),
        };
    }
    let reports = match workload {
        Workload::Quickstart => {
            let spec = DatasetSpec::reddit_convergence();
            let policy = ReusePolicy::HotnessAware {
                hot_ratio: 0.2,
                super_batch: 4,
            };
            let config = TrainerConfig::convergence_default(LayerKind::Gcn, policy);
            let mut trainer = ConvergenceTrainer::new(spec.build_full(), config);
            for epoch in 0..epochs {
                let obs = trainer.train_epoch(epoch);
                println!("epoch {epoch}: loss {:.4}", obs.train_loss);
            }
            Vec::new()
        }
        Workload::Pipeline => {
            let spec = scaled_spec();
            let mut trainer = scaled_trainer(&spec);
            let exec = PipelineExecutor::new(PipelineConfig::default());
            let mut reports = Vec::with_capacity(epochs);
            for epoch in 0..epochs {
                let (obs, report) = exec.run_epoch(&mut trainer, epoch);
                println!(
                    "epoch {epoch}: loss {:.4}, {:.2}s",
                    obs.train_loss, report.epoch_seconds
                );
                reports.push(report);
            }
            reports
        }
        Workload::Engine => {
            let spec = scaled_spec();
            let mut trainer = scaled_trainer(&spec);
            let engine = TrainingEngine::new(EngineConfig::default());
            let session = engine.run_session(&mut trainer, 0, epochs);
            for run in &session.epochs {
                println!(
                    "epoch {}: loss {:.4}, {:.2}s (occupancy {:.2})",
                    run.epoch,
                    run.observation.train_loss,
                    run.report.epoch_seconds,
                    run.report.train_occupancy()
                );
            }
            session.epochs.into_iter().map(|r| r.report).collect()
        }
    };
    RunOutput {
        reports,
        replicated: None,
    }
}

/// `xtask profile-exec`: the inline runner `samply record` wraps.
pub fn exec(workload: Workload, epochs: usize, replicas: usize) {
    println!(
        "running workload '{}' for {epochs} epochs (replicas: {replicas})",
        workload.name()
    );
    let t0 = Instant::now();
    run_workload(workload, epochs, replicas);
    println!("workload done in {:.2}s", t0.elapsed().as_secs_f64());
}

/// `xtask profile <workload> --timing [--allocs]`: run inline with the
/// tensor timing hooks enabled and print the per-stage / per-kernel
/// breakdown, plus (with `--allocs`) a per-stage heap-allocation table
/// from the counting allocator xtask installs.
pub fn timing_run(workload: Workload, epochs: usize, replicas: usize, allocs: bool) {
    timing::reset();
    timing::set_enabled(true);
    if allocs {
        alloc::reset();
        alloc::set_enabled(true);
    }
    let t0 = Instant::now();
    let out = run_workload(workload, epochs, replicas);
    let reports = out.reports;
    let wall = t0.elapsed().as_secs_f64();
    timing::set_enabled(false);
    alloc::set_enabled(false);
    let alloc_snap = alloc::snapshot();
    let snap = timing::snapshot();

    if !reports.is_empty() {
        // Stage busy-time totals across the run. Stages run on concurrent
        // workers, so the sum can exceed wall-clock — each line is that
        // stage's own busy seconds.
        let total = |f: fn(&PipelineReport) -> f64| reports.iter().map(f).sum::<f64>();
        let epoch_secs = total(|r| r.epoch_seconds);
        println!("\nper-stage busy seconds ({} epochs):", reports.len());
        let rows: [(&str, f64); 5] = [
            ("sample", total(|r| r.sample_seconds)),
            ("gather (host collect)", total(|r| r.gather_collect_seconds)),
            ("transfer (H2D)", total(|r| r.transfer_seconds)),
            ("train (busy)", total(|r| r.train_seconds)),
            ("train (starved)", total(|r| r.train_wait_seconds)),
        ];
        for (name, secs) in rows {
            println!(
                "  {name:<22} {secs:>8.3}s  ({:>5.1}% of epoch wall)",
                100.0 * secs / epoch_secs.max(1e-12)
            );
        }
        println!("  {:<22} {epoch_secs:>8.3}s", "epoch wall total");
    }

    if let Some(session) = &out.replicated {
        const MIB: f64 = (1u64 << 20) as f64;
        println!(
            "\nper-replica per-stage busy seconds ({} replicas, {epochs} epochs; \
             partition cut {:.2}, balance {:.2}):",
            session.replicas, session.partition_cut_fraction, session.partition_balance
        );
        println!(
            "  replica    sample    gather  transfer    h2d_MiB  remote_MiB  remote_picks  batches"
        );
        for rep in 0..session.replicas {
            let (mut sample, mut gather, mut transfer) = (0.0f64, 0.0f64, 0.0f64);
            let (mut h2d, mut remote, mut picks) = (0u64, 0u64, 0u64);
            let mut batches = 0usize;
            for run in &session.epochs {
                let s = &run.per_replica[rep];
                sample += s.sample_seconds;
                gather += s.gather_seconds;
                transfer += s.transfer_seconds;
                h2d += s.h2d_bytes;
                remote += s.remote_feature_bytes;
                picks += s.remote_picks;
                batches += s.batches;
            }
            println!(
                "  {rep:>7} {sample:>8.3}s {gather:>8.3}s {transfer:>8.3}s {:>10.1} {:>11.1} {picks:>13} {batches:>8}",
                h2d as f64 / MIB,
                remote as f64 / MIB,
            );
        }
        let allreduce: u64 = session.epochs.iter().map(|r| r.allreduce_bytes).sum();
        let interconnect: f64 = session.epochs.iter().map(|r| r.interconnect_seconds).sum();
        println!(
            "  all-reduce {:.2} MiB over the run, simulated interconnect {:.4}s \
             (model {} B, ring)",
            allreduce as f64 / MIB,
            interconnect,
            session.model_bytes
        );
        if allocs {
            // The per-stage alloc counters below are process-global, i.e.
            // summed across every replica's workers; the per-epoch staging
            // series here is the replicated engine's own window.
            let staging: Vec<u64> = session
                .epochs
                .iter()
                .map(|r| r.allocs.staging_allocs())
                .collect();
            println!("  staging allocs per epoch (all replicas): {staging:?}");
        }
    }

    println!("\nper-kernel seconds (tensor timing hooks):");
    for (name, stat) in snap.iter() {
        if stat.calls == 0 {
            continue;
        }
        println!(
            "  {name:<14} {:>8.3}s  {:>9} calls  ({:>5.1}% of wall)",
            stat.seconds(),
            stat.calls,
            100.0 * stat.seconds() / wall.max(1e-12)
        );
    }
    println!(
        "  {:<14} {:>8.3}s  (wall {wall:.3}s; kernels overlap across threads)",
        "kernel total",
        snap.total_seconds()
    );

    if allocs {
        // Per-stage attribution needs the workload to tag its threads
        // (the engine and the sequential executor do); untagged work —
        // setup, eval, the plain quickstart loop — lands in `other`.
        println!("\nper-stage heap allocations ({epochs} epochs):");
        let per_epoch = |n: u64| n as f64 / epochs.max(1) as f64;
        for (name, stat) in alloc_snap.iter() {
            if stat.allocs == 0 {
                continue;
            }
            println!(
                "  {name:<10} {:>12} allocs  {:>14} B  ({:>10.1} allocs/epoch)",
                stat.allocs,
                stat.bytes,
                per_epoch(stat.allocs)
            );
        }
        println!(
            "  {:<10} {:>12} allocs  (staging hot path: {:.1} allocs/epoch)",
            "total",
            alloc_snap.total_allocs(),
            per_epoch(alloc_snap.staging_allocs())
        );
    }
}

/// One summarized epoch of a fault-injection run, engine-agnostic.
struct FaultEpochRow {
    epoch: usize,
    train_loss: f32,
    failures: Vec<FailureEvent>,
    checkpoint_bytes: u64,
    checkpoint_seconds: f64,
}

/// `xtask profile engine --faults <spec>`: run the engine workload with a
/// deterministic fault plan injected and print the detection/recovery
/// timeline. A session that ends in a typed [`SessionError`] still exits 0
/// — the harness exists to prove faults *terminate* (recover or error),
/// never hang; only a malformed spec is a tool error.
pub fn fault_run(
    workload: Workload,
    epochs: usize,
    replicas: usize,
    faults: &str,
    policy: FailurePolicy,
) -> Result<(), String> {
    if workload != Workload::Engine {
        return Err("--faults applies to the 'engine' workload only".into());
    }
    let plan = Arc::new(FaultPlan::parse(faults)?);
    println!(
        "fault plan ({} scheduled, policy {policy:?}):",
        plan.specs().count()
    );
    for spec in plan.specs() {
        println!("  scheduled: {spec}");
    }

    let spec = scaled_spec();
    let mut trainer = scaled_trainer(&spec);
    let ck_path =
        std::env::temp_dir().join(format!("neutronorch-faultrun-{}.ck", std::process::id()));
    // Short stall timeout: an injected stall should be detected in under a
    // second, not after the production-grade default.
    let stall_timeout = Duration::from_millis(500);
    let t0 = Instant::now();
    let outcome: Result<Vec<FaultEpochRow>, SessionError> = if replicas > 1 {
        let engine = ReplicatedEngine::new(ReplicatedConfig {
            replicas,
            fault_plan: Some(Arc::clone(&plan)),
            on_replica_failure: policy,
            checkpoint_every: 1,
            checkpoint_path: Some(ck_path.clone()),
            stall_timeout,
            ..ReplicatedConfig::default()
        });
        engine
            .run_session_checked(&mut trainer, 0, epochs)
            .map(|session| {
                session
                    .epochs
                    .iter()
                    .map(|run| FaultEpochRow {
                        epoch: run.epoch,
                        train_loss: run.observation.train_loss,
                        failures: run.report.failures.clone(),
                        checkpoint_bytes: run.checkpoint_bytes,
                        checkpoint_seconds: run.checkpoint_seconds,
                    })
                    .collect()
            })
    } else {
        let engine = TrainingEngine::new(EngineConfig {
            fault_plan: Some(Arc::clone(&plan)),
            checkpoint_every: 1,
            checkpoint_path: Some(ck_path.clone()),
            stall_timeout,
            ..EngineConfig::default()
        });
        engine
            .run_session_checked(&mut trainer, 0, epochs)
            .map(|session| {
                session
                    .epochs
                    .iter()
                    .map(|run| FaultEpochRow {
                        epoch: run.epoch,
                        train_loss: run.observation.train_loss,
                        failures: run.report.failures.clone(),
                        checkpoint_bytes: run.checkpoint_bytes,
                        checkpoint_seconds: run.checkpoint_seconds,
                    })
                    .collect()
            })
    };
    let wall = t0.elapsed().as_secs_f64();
    let _ = std::fs::remove_file(&ck_path);

    println!("\ntimeline:");
    match outcome {
        Ok(rows) => {
            for row in &rows {
                print!("  epoch {}: loss {:.4}", row.epoch, row.train_loss);
                if row.checkpoint_bytes > 0 {
                    print!(
                        ", checkpoint {} B in {:.3}s",
                        row.checkpoint_bytes, row.checkpoint_seconds
                    );
                }
                println!();
                for event in &row.failures {
                    println!("    {event}");
                }
            }
            println!(
                "session completed in {wall:.2}s ({} epochs recorded)",
                rows.len()
            );
        }
        Err(err) => {
            println!("  session ended with typed error after {wall:.2}s:");
            println!("    {err}");
        }
    }
    Ok(())
}

/// `xtask profile <workload>`: wrap the inline runner in `samply record`.
pub fn profile(workload: Workload, epochs: usize, replicas: usize) -> Result<(), String> {
    let have_samply = Command::new("sh")
        .args(["-c", "command -v samply"])
        .output()
        .map(|o| o.status.success())
        .unwrap_or(false);
    if !have_samply {
        return Err(
            "samply not found — install it (`cargo install samply`), or use \
             `--timing` for the hook-based breakdown (no profiler needed)"
                .into(),
        );
    }
    let exe = std::env::current_exe().map_err(|e| e.to_string())?;
    let status = Command::new("samply")
        .arg("record")
        .arg(exe)
        .args([
            "profile-exec",
            workload.name(),
            "--epochs",
            &epochs.to_string(),
            "--replicas",
            &replicas.to_string(),
        ])
        .status()
        .map_err(|e| format!("failed to launch samply: {e}"))?;
    if status.success() {
        Ok(())
    } else {
        Err(format!("samply exited with {status}"))
    }
}
