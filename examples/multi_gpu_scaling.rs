//! Multi-GPU scaling (Fig 11 at example scale): NeutronOrch vs DSP on the
//! Papers100M replica across 1–8 simulated V100s.
//!
//! ```text
//! cargo run --release --example multi_gpu_scaling
//! ```

use neutronorch::core::baselines::DspLike;
use neutronorch::core::profile::{WorkloadConfig, WorkloadProfile};
use neutronorch::core::{NeutronOrch, Orchestrator};
use neutronorch::graph::DatasetSpec;
use neutronorch::hetero::HardwareSpec;
use neutronorch::nn::LayerKind;

fn main() {
    let spec = DatasetSpec::papers100m_scaled();
    let mut cfg = WorkloadConfig::paper_default(LayerKind::Sage);
    cfg.batch_size = 1024;
    cfg.profiled_batches = 4;
    println!(
        "profiling {} replica (|V|={}, paper |E|={:.1}B)...\n",
        spec.name,
        spec.vertices,
        spec.paper_edges as f64 / 1e9
    );
    let profile = WorkloadProfile::build(&spec, &cfg);

    println!(
        "{:<6} {:>16} {:>16}",
        "GPUs", "DSP (ms)", "NeutronOrch (ms)"
    );
    for gpus in [1usize, 2, 4, 8] {
        let hw = HardwareSpec::dgx1_like(gpus, 1.0);
        let dsp = match DspLike::default().simulate_epoch(&profile, &hw) {
            Ok(r) => format!("{:.1}", r.epoch_seconds * 1e3),
            Err(_) => "OOM".to_string(),
        };
        let ours = match NeutronOrch::new().simulate_epoch(&profile, &hw) {
            Ok(r) => format!("{:.1}", r.epoch_seconds * 1e3),
            Err(_) => "OOM".to_string(),
        };
        println!("{gpus:<6} {dsp:>16} {ours:>16}");
    }
    println!("\nDSP needs several GPUs before the billion-edge replica fits (Fig 11);");
    println!("NeutronOrch's CPU offloading keeps every configuration trainable.");
}
