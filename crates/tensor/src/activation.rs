//! Activation functions and their gradients.
//!
//! The paper's convergence analysis (§4.3) assumes ρ-Lipschitz activations;
//! every activation here satisfies that with ρ ≤ 1 except ELU's α scaling.

use crate::matrix::Matrix;

/// Activation function selector used by [`neutron-nn`] layers.
///
/// GCN/GraphSAGE use [`Activation::Relu`]; GAT uses [`Activation::Elu`] for
/// layer outputs and [`Activation::LeakyRelu`] inside attention scores.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Activation {
    /// Identity (no nonlinearity) — used on final output layers.
    Identity,
    /// max(0, x)
    Relu,
    /// x if x > 0 else 0.2·x (slope fixed to the GAT paper's 0.2)
    LeakyRelu,
    /// x if x > 0 else exp(x) − 1
    Elu,
    /// 1 / (1 + exp(−x))
    Sigmoid,
    /// tanh(x)
    Tanh,
}

impl Activation {
    /// Applies the activation element-wise, returning a new matrix.
    pub fn forward(self, z: &Matrix) -> Matrix {
        let mut out = z.clone();
        self.forward_inplace(&mut out);
        out
    }

    /// Applies the activation element-wise in place.
    pub fn forward_inplace(self, z: &mut Matrix) {
        match self {
            Activation::Identity => {}
            Activation::Relu => {
                for v in z.as_mut_slice() {
                    if *v < 0.0 {
                        *v = 0.0;
                    }
                }
            }
            Activation::LeakyRelu => {
                for v in z.as_mut_slice() {
                    if *v < 0.0 {
                        *v *= 0.2;
                    }
                }
            }
            Activation::Elu => {
                for v in z.as_mut_slice() {
                    if *v < 0.0 {
                        *v = v.exp() - 1.0;
                    }
                }
            }
            Activation::Sigmoid => {
                for v in z.as_mut_slice() {
                    *v = 1.0 / (1.0 + (-*v).exp());
                }
            }
            Activation::Tanh => {
                for v in z.as_mut_slice() {
                    *v = v.tanh();
                }
            }
        }
    }

    /// Given the pre-activation input `z` and the upstream gradient
    /// `d_out = ∂L/∂f(z)`, returns `∂L/∂z = d_out ⊙ f'(z)`.
    pub fn backward(self, z: &Matrix, d_out: &Matrix) -> Matrix {
        assert_eq!(z.shape(), d_out.shape());
        let mut grad = d_out.clone();
        match self {
            Activation::Identity => {}
            Activation::Relu => {
                for (g, &zv) in grad.as_mut_slice().iter_mut().zip(z.as_slice()) {
                    if zv <= 0.0 {
                        *g = 0.0;
                    }
                }
            }
            Activation::LeakyRelu => {
                for (g, &zv) in grad.as_mut_slice().iter_mut().zip(z.as_slice()) {
                    if zv <= 0.0 {
                        *g *= 0.2;
                    }
                }
            }
            Activation::Elu => {
                for (g, &zv) in grad.as_mut_slice().iter_mut().zip(z.as_slice()) {
                    if zv <= 0.0 {
                        *g *= zv.exp();
                    }
                }
            }
            Activation::Sigmoid => {
                for (g, &zv) in grad.as_mut_slice().iter_mut().zip(z.as_slice()) {
                    let s = 1.0 / (1.0 + (-zv).exp());
                    *g *= s * (1.0 - s);
                }
            }
            Activation::Tanh => {
                for (g, &zv) in grad.as_mut_slice().iter_mut().zip(z.as_slice()) {
                    let t = zv.tanh();
                    *g *= 1.0 - t * t;
                }
            }
        }
        grad
    }

    /// Scalar forward, used by finite-difference gradient checks.
    pub fn scalar(self, x: f32) -> f32 {
        match self {
            Activation::Identity => x,
            Activation::Relu => x.max(0.0),
            Activation::LeakyRelu => {
                if x > 0.0 {
                    x
                } else {
                    0.2 * x
                }
            }
            Activation::Elu => {
                if x > 0.0 {
                    x
                } else {
                    x.exp() - 1.0
                }
            }
            Activation::Sigmoid => 1.0 / (1.0 + (-x).exp()),
            Activation::Tanh => x.tanh(),
        }
    }
}

/// All activations, for exhaustive tests.
pub const ALL_ACTIVATIONS: [Activation; 6] = [
    Activation::Identity,
    Activation::Relu,
    Activation::LeakyRelu,
    Activation::Elu,
    Activation::Sigmoid,
    Activation::Tanh,
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relu_clamps_negatives() {
        let z = Matrix::from_rows(&[&[-1.0, 0.0, 2.0]]);
        assert_eq!(Activation::Relu.forward(&z).row(0), &[0.0, 0.0, 2.0]);
    }

    #[test]
    fn leaky_relu_keeps_small_negative_slope() {
        let z = Matrix::from_rows(&[&[-1.0, 2.0]]);
        let out = Activation::LeakyRelu.forward(&z);
        assert!((out.get(0, 0) + 0.2).abs() < 1e-6);
        assert_eq!(out.get(0, 1), 2.0);
    }

    #[test]
    fn sigmoid_is_bounded_and_centered() {
        let z = Matrix::from_rows(&[&[-100.0, 0.0, 100.0]]);
        let out = Activation::Sigmoid.forward(&z);
        assert!(out.get(0, 0) < 1e-6);
        assert!((out.get(0, 1) - 0.5).abs() < 1e-6);
        assert!(out.get(0, 2) > 1.0 - 1e-6);
    }

    /// Finite-difference check of every activation gradient.
    #[test]
    fn backward_matches_finite_difference() {
        let points = [-1.5f32, -0.3, 0.4, 2.0];
        let h = 1e-3f32;
        for act in ALL_ACTIVATIONS {
            for &x in &points {
                let z = Matrix::from_rows(&[&[x]]);
                let ones = Matrix::from_rows(&[&[1.0]]);
                let analytic = act.backward(&z, &ones).get(0, 0);
                let numeric = (act.scalar(x + h) - act.scalar(x - h)) / (2.0 * h);
                assert!(
                    (analytic - numeric).abs() < 5e-3,
                    "{act:?} at {x}: analytic {analytic} vs numeric {numeric}"
                );
            }
        }
    }

    #[test]
    fn backward_scales_upstream_gradient() {
        let z = Matrix::from_rows(&[&[1.0, -1.0]]);
        let up = Matrix::from_rows(&[&[3.0, 3.0]]);
        let g = Activation::Relu.backward(&z, &up);
        assert_eq!(g.row(0), &[3.0, 0.0]);
    }
}
