//! Sequential vs pipelined epoch throughput on the scaled Reddit replica,
//! and the demonstration that the pipelined executor hides the (simulated)
//! host→device transfer behind compute — the paper's Fig 8 / Fig 14 claim.
//!
//! ```text
//! cargo run --release --example pipeline_executor
//! ```
//!
//! Replica methodology for the transfer stage: compute on the replica
//! (CPU-only, scalar kernels) is orders of magnitude slower than the
//! paper's V100, so a faithfully *proportioned* transfer stage must scale
//! PCIe bandwidth down by the same factor — otherwise transfer would be
//! negligible and no orchestration decision would matter, contradicting the
//! paper's own profile (Fig 2: gather/transfer dominate the epoch). The
//! example calibrates the simulated link so transfer time ≈ 50% of measured
//! compute, inside the Fig 2 Case-1 regime, then runs the *same* stall on
//! both the sequential baseline and the pipelined executor.
//!
//! Writes `BENCH_pipeline.json` with the measured baseline so future PRs
//! have a perf trajectory to beat.

use neutronorch::core::pipeline::{PipelineConfig, PipelineExecutor, PipelineReport};
use neutronorch::core::trainer::{ConvergenceTrainer, ReusePolicy, TrainerConfig};
use neutronorch::graph::DatasetSpec;
use neutronorch::nn::LayerKind;

const SAMPLER_THREADS: usize = 2;
const GATHER_THREADS: usize = 1;

fn trainer(spec: &DatasetSpec, policy: ReusePolicy) -> ConvergenceTrainer {
    let config = TrainerConfig {
        kind: LayerKind::Gcn,
        layers: 3,
        batch_size: 512,
        lr: 0.1,
        seed: 0x9192,
        policy,
    };
    ConvergenceTrainer::new(spec.build_full(), config)
}

fn print_report(label: &str, r: &PipelineReport) {
    println!(
        "{label:<12} epoch {:7.2}s  sample {:6.2}s  gather {:5.2}s  transfer {:6.2}s  train {:6.2}s  {:5.2} batches/s",
        r.epoch_seconds,
        r.sample_seconds,
        r.gather_collect_seconds,
        r.transfer_seconds,
        r.train_seconds,
        r.batches_per_second(),
    );
}

fn main() {
    let spec = DatasetSpec::reddit_scaled();
    println!(
        "building {} replica (|V|={}, {} feature dims)...",
        spec.name, spec.vertices, spec.feature_dim
    );

    // --- Calibration: one pure-compute epoch (no transfer stall). -------
    let mut cal = trainer(&spec, ReusePolicy::Exact);
    let calibrate = PipelineExecutor::new(PipelineConfig {
        sampler_threads: 1,
        gather_threads: 1,
        channel_depth: 4,
        h2d_gibps: 0.0,
    });
    let (_, compute) = calibrate.run_epoch_sequential(&mut cal, 0);
    let h2d_gibps = compute.h2d_bytes as f64 / (0.5 * compute.epoch_seconds) / (1u64 << 30) as f64;
    println!(
        "calibration: compute epoch {:.2}s, {:.1} MiB h2d -> simulated link {:.3} GiB/s (transfer ≈ 50% of compute)\n",
        compute.epoch_seconds,
        compute.h2d_bytes as f64 / (1u64 << 20) as f64,
        h2d_gibps
    );

    // --- Head-to-head: identical stage costing, serial vs overlapped. ---
    let config = PipelineConfig {
        sampler_threads: SAMPLER_THREADS,
        gather_threads: GATHER_THREADS,
        channel_depth: 4,
        h2d_gibps,
    };
    let exec = PipelineExecutor::new(config);
    let mut seq = trainer(&spec, ReusePolicy::Exact);
    let mut pip = trainer(&spec, ReusePolicy::Exact);
    let (seq_obs, seq_report) = exec.run_epoch_sequential(&mut seq, 0);
    let (pip_obs, pip_report) = exec.run_epoch(&mut pip, 0);
    print_report("sequential", &seq_report);
    print_report("pipelined", &pip_report);
    assert_eq!(
        seq_obs.train_loss, pip_obs.train_loss,
        "pipelining must not change the training trajectory"
    );
    let speedup = seq_report.epoch_seconds / pip_report.epoch_seconds;
    println!(
        "\nloss {:.4} (identical in both modes) — pipelined speedup {speedup:.2}x with {SAMPLER_THREADS} sampler threads\n",
        pip_obs.train_loss
    );

    // --- Hotness-aware pipelined epoch: bounded-staleness reuse. --------
    let super_batch = 4;
    let mut hot = trainer(
        &spec,
        ReusePolicy::HotnessAware {
            hot_ratio: 0.15,
            super_batch,
        },
    );
    let (hot_obs, hot_report) = exec.run_epoch(&mut hot, 0);
    print_report("hot-aware", &hot_report);
    println!(
        "hotness-aware: max staleness {} (< 2n = {}), {} embedding reuses, ε = {:.4}\n",
        hot_obs.max_staleness,
        2 * super_batch,
        hot.embedding_reuses(),
        hot_obs.staleness_epsilon
    );

    // --- Record the baseline. -------------------------------------------
    let json = format!(
        "{{\n  \"dataset\": \"{}\",\n  \"replica_vertices\": {},\n  \"layers\": 3,\n  \"batch_size\": 512,\n  \"sampler_threads\": {},\n  \"gather_threads\": {},\n  \"h2d_gibps\": {:.4},\n  \"compute_epoch_seconds\": {:.3},\n  \"sequential_epoch_seconds\": {:.3},\n  \"pipelined_epoch_seconds\": {:.3},\n  \"sequential_batches_per_second\": {:.3},\n  \"pipelined_batches_per_second\": {:.3},\n  \"speedup\": {:.3},\n  \"h2d_mib\": {:.1},\n  \"hotness_max_staleness\": {},\n  \"hotness_super_batch\": {}\n}}\n",
        spec.name,
        spec.vertices,
        SAMPLER_THREADS,
        GATHER_THREADS,
        h2d_gibps,
        compute.epoch_seconds,
        seq_report.epoch_seconds,
        pip_report.epoch_seconds,
        seq_report.batches_per_second(),
        pip_report.batches_per_second(),
        speedup,
        seq_report.h2d_bytes as f64 / (1u64 << 20) as f64,
        hot_obs.max_staleness,
        super_batch,
    );
    std::fs::write("BENCH_pipeline.json", &json).expect("write BENCH_pipeline.json");
    println!("wrote BENCH_pipeline.json");
    assert!(
        speedup >= 1.3,
        "pipelined executor must demonstrate ≥ 1.3x epoch throughput (got {speedup:.2}x)"
    );
}
