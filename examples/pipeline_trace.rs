//! Pipeline tracing: regenerate the paper's Fig 5 (step pipelines, with and
//! without GPU contention) and Fig 9 (naive vs super-batch scheduling) as
//! ASCII Gantt charts from actual simulated schedules.
//!
//! ```text
//! cargo run --release --example pipeline_trace
//! ```

use neutronorch::core::sim::ScheduleBuilder;
use neutronorch::hetero::gantt::render_gantt;
use neutronorch::hetero::{Cost, TaskKind};

fn c(work: f64, demand: f64) -> Cost {
    Cost { work, demand }
}

/// Fig 5(a): sample on CPU, gather on CPU+PCIe, train on GPU — independent
/// resources pipeline perfectly.
fn ideal_pipeline() -> ScheduleBuilder {
    let mut s = ScheduleBuilder::new();
    let cpu = s.resource("cpu", 2.0);
    let pcie = s.resource("pcie", 1.0);
    let gpu = s.resource("gpu", 1.0);
    for _ in 0..4 {
        let smp = s.task(cpu, TaskKind::Sample, c(1.0, 1.0), "cpu:sample", &[]);
        let gat = s.task(pcie, TaskKind::Transfer, c(1.0, 1.0), "pcie", &[smp]);
        s.task(gpu, TaskKind::Train, c(1.0, 1.0), "gpu:train", &[gat]);
    }
    s
}

/// Fig 5(b): sampling moved onto the GPU — it now contends with training
/// for the same device and the pipeline degrades.
fn contended_pipeline() -> ScheduleBuilder {
    let mut s = ScheduleBuilder::new();
    let pcie = s.resource("pcie", 1.0);
    let gpu = s.resource("gpu", 1.0);
    for _ in 0..4 {
        let smp = s.task(gpu, TaskKind::Sample, c(0.8, 0.6), "gpu:sample", &[]);
        let gat = s.task(pcie, TaskKind::Transfer, c(1.0, 1.0), "pcie", &[smp]);
        s.task(gpu, TaskKind::Train, c(1.0, 0.8), "gpu:train", &[gat]);
    }
    s
}

/// Fig 9(a): naive layer-based scheduling — the CPU refresh of hot
/// embeddings blocks the GPU at every stale-bound boundary.
fn naive_superbatch() -> ScheduleBuilder {
    let mut s = ScheduleBuilder::new();
    let cpu = s.resource("cpu", 1.0);
    let gpu = s.resource("gpu", 1.0);
    let mut last_train = None;
    for _ in 0..3 {
        let mut deps = Vec::new();
        if let Some(t) = last_train {
            deps.push(t);
        }
        let h = s.task(cpu, TaskKind::HotEmbed, c(2.0, 1.0), "cpu:hot", &deps);
        let mut t_last = None;
        for _ in 0..2 {
            let t = s.task(gpu, TaskKind::Train, c(1.0, 1.0), "gpu:train", &[h]);
            t_last = Some(t);
        }
        last_train = t_last;
    }
    s
}

/// Fig 9(b): super-batch pipelining — the CPU computes the *next*
/// super-batch's embeddings while the GPU trains the current one.
fn pipelined_superbatch() -> ScheduleBuilder {
    let mut s = ScheduleBuilder::new();
    let cpu = s.resource("cpu", 1.0);
    let gpu = s.resource("gpu", 1.0);
    let mut embeds = Vec::new();
    for sb in 0usize..3 {
        let h = s.task(cpu, TaskKind::HotEmbed, c(2.0, 1.0), "cpu:hot", &[]);
        embeds.push(h);
        let ready = embeds[sb.saturating_sub(1)];
        for _ in 0..2 {
            s.task(gpu, TaskKind::Train, c(1.0, 1.0), "gpu:train", &[ready]);
        }
    }
    s
}

fn show(title: &str, sched: ScheduleBuilder) {
    let (report, spans) = sched.run_traced();
    println!("--- {title} ---");
    print!("{}", render_gantt(&report, &spans, 60));
    println!();
}

fn main() {
    show("Fig 5(a): fully pipelined (S on CPU)", ideal_pipeline());
    show(
        "Fig 5(b): GPU sampling contends with training",
        contended_pipeline(),
    );
    show(
        "Fig 9(a): naive scheduling — GPU stalls on CPU embedding refresh",
        naive_superbatch(),
    );
    show(
        "Fig 9(b): super-batch pipelining — CPU works one super-batch ahead",
        pipelined_superbatch(),
    );
}
