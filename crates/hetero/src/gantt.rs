//! ASCII Gantt rendering of execution traces — the Fig 5 / Fig 9 pipeline
//! pictures, regenerated from actual simulated schedules.

use crate::engine::{RunReport, TaskKind, TraceSpan};

/// Single-letter lane symbol per task kind.
pub fn kind_symbol(kind: TaskKind) -> char {
    match kind {
        TaskKind::Sample => 'S',
        TaskKind::GatherCollect => 'G',
        TaskKind::Transfer => 'F',
        TaskKind::Train => 'T',
        TaskKind::HotEmbed => 'H',
        TaskKind::Sync => 'Y',
        TaskKind::Other => 'o',
    }
}

/// Renders one row per resource: time flows left to right across `width`
/// buckets; overlapping tasks on a resource show as `#`.
pub fn render_gantt(report: &RunReport, spans: &[TraceSpan], width: usize) -> String {
    assert!(width >= 10);
    let span_total = report.makespan.max(1e-12);
    let mut rows: Vec<Vec<char>> = vec![vec!['.'; width]; report.resource_names.len()];
    for s in spans {
        if s.finish <= s.start && s.start == 0.0 && s.finish == 0.0 {
            continue;
        }
        let row = &mut rows[s.resource.0];
        let b0 = ((s.start / span_total) * width as f64).floor() as usize;
        let b1 = (((s.finish / span_total) * width as f64).ceil() as usize).max(b0 + 1);
        let symbol = kind_symbol(s.kind);
        for cell in row.iter_mut().take(b1.min(width)).skip(b0.min(width - 1)) {
            *cell = if *cell == '.' || *cell == symbol {
                symbol
            } else {
                '#'
            };
        }
    }
    let name_w = report
        .resource_names
        .iter()
        .map(String::len)
        .max()
        .unwrap_or(4)
        .max(4);
    let mut out = String::new();
    out.push_str(&format!(
        "{:<name_w$} |{}| ({:.2}s)\n",
        "time",
        "-".repeat(width),
        report.makespan
    ));
    for (name, row) in report.resource_names.iter().zip(rows) {
        out.push_str(&format!("{name:<name_w$} |"));
        out.extend(row);
        out.push_str("|\n");
    }
    out.push_str(
        "legend: S sample, G collect, F transfer, T train, H hot-embed, Y sync, # overlap\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{Engine, TaskKind};

    #[test]
    fn gantt_shows_pipeline_structure() {
        let mut e = Engine::new();
        let cpu = e.add_resource("cpu", 1.0);
        let gpu = e.add_resource("gpu", 1.0);
        let s = e.add_task(cpu, TaskKind::Sample, 1.0, 1.0, &[]);
        e.add_task(gpu, TaskKind::Train, 1.0, 1.0, &[s]);
        let (report, spans) = e.run_traced();
        let g = render_gantt(&report, &spans, 20);
        assert!(g.contains("cpu"));
        assert!(g.contains("gpu"));
        assert!(g.contains('S'));
        assert!(g.contains('T'));
        // The train lane starts in the second half; the first half of the
        // gpu row must be idle dots.
        let gpu_row = g.lines().find(|l| l.starts_with("gpu")).unwrap();
        let bar = gpu_row.split('|').nth(1).unwrap();
        assert!(bar.starts_with("....."), "gpu should idle first: {bar}");
    }

    #[test]
    fn overlap_marks_contention() {
        let mut e = Engine::new();
        let gpu = e.add_resource("gpu", 1.0);
        e.add_task(gpu, TaskKind::Train, 1.0, 0.8, &[]);
        e.add_task(gpu, TaskKind::Sample, 1.0, 0.8, &[]);
        let (report, spans) = e.run_traced();
        let g = render_gantt(&report, &spans, 16);
        assert!(
            g.contains('#'),
            "concurrent kernels must render as overlap: {g}"
        );
    }

    #[test]
    fn symbols_are_unique() {
        let kinds = [
            TaskKind::Sample,
            TaskKind::GatherCollect,
            TaskKind::Transfer,
            TaskKind::Train,
            TaskKind::HotEmbed,
            TaskKind::Sync,
            TaskKind::Other,
        ];
        let mut seen = std::collections::HashSet::new();
        for k in kinds {
            assert!(seen.insert(kind_symbol(k)), "duplicate symbol for {k:?}");
        }
    }
}
