//! Stochastic gradient descent.

use super::Optimizer;
use crate::param::Param;
use neutron_tensor::ops;

/// Plain SGD — `W ← W − η·∇W` (Algorithm 1, line 16). The convergence
/// analysis of §4.3 is stated for SGD, so the staleness experiments use it.
#[derive(Clone, Debug)]
pub struct Sgd {
    lr: f32,
}

impl Sgd {
    /// Creates SGD with learning rate `lr`.
    pub fn new(lr: f32) -> Self {
        assert!(lr > 0.0);
        Self { lr }
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, params: &mut [&mut Param]) {
        for p in params {
            ops::add_scaled_assign(&mut p.value, -self.lr, &p.grad);
        }
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use neutron_tensor::Matrix;

    #[test]
    fn step_moves_against_gradient() {
        let mut p = Param::new(Matrix::from_rows(&[&[1.0, -1.0]]));
        p.grad = Matrix::from_rows(&[&[0.5, -0.5]]);
        let mut opt = Sgd::new(0.1);
        opt.step(&mut [&mut p]);
        assert!((p.value.get(0, 0) - 0.95).abs() < 1e-6);
        assert!((p.value.get(0, 1) + 0.95).abs() < 1e-6);
    }

    #[test]
    fn zero_grad_means_no_motion() {
        let mut p = Param::new(Matrix::from_rows(&[&[2.0]]));
        let mut opt = Sgd::new(0.5);
        opt.step(&mut [&mut p]);
        assert_eq!(p.value.get(0, 0), 2.0);
    }
}
