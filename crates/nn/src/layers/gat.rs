//! Graph Attention Network layer (single-head additive attention).
//!
//! Forward, per destination vertex `v` with edge set `E(v) = {v} ∪ N(v)`:
//! ```text
//! s_u   = h_u · W                       (projected inputs, all src)
//! e_uv  = LeakyReLU(a_l·s_u + a_r·s_v)  (additive attention score)
//! α_uv  = softmax_{u ∈ E(v)}(e_uv)
//! z_v   = Σ_u α_uv · s_u
//! out_v = σ(z_v)                        (ELU on hidden layers)
//! ```
//! The backward pass differentiates through the edge softmax; it is the most
//! intricate gradient in the workspace and is validated against central
//! finite differences in the `gradcheck` tests.

// Index loops here address several parallel per-dst/per-src arrays at once;
// iterator/enumerate forms obscure which array is being advanced.
#![allow(clippy::needless_range_loop)]

use crate::param::Param;
use neutron_sample::Block;
use neutron_tensor::{init, ops, Activation, Matrix};

/// A single-head GAT layer (`in_dim → out_dim`).
#[derive(Clone, Debug)]
pub struct GatLayer {
    weight: Param,
    /// Attention vector applied to the source projection (1 × out_dim).
    attn_src: Param,
    /// Attention vector applied to the destination projection (1 × out_dim).
    attn_dst: Param,
    activation: Activation,
}

/// Forward intermediates of a [`GatLayer`].
pub struct GatCtx {
    /// The layer input (num_src × in_dim), needed for `∂L/∂W`.
    input: Matrix,
    /// Projected inputs `s = h · W` (num_src × out_dim).
    s: Matrix,
    /// Pre-activation outputs (num_dst × out_dim).
    z: Matrix,
    /// Per-edge attention weights, dst-major, self edge first.
    alpha: Vec<f32>,
    /// Per-edge raw (pre-LeakyReLU) scores, same order as `alpha`.
    raw: Vec<f32>,
}

impl GatLayer {
    /// Creates a layer; `last` layers use identity output activation.
    pub fn new(in_dim: usize, out_dim: usize, last: bool, seed: u64) -> Self {
        Self {
            weight: Param::new(init::xavier_uniform(in_dim, out_dim, seed)),
            attn_src: Param::new(init::normal(1, out_dim, 0.3, seed ^ 0x11)),
            attn_dst: Param::new(init::normal(1, out_dim, 0.3, seed ^ 0x22)),
            activation: if last {
                Activation::Identity
            } else {
                Activation::Elu
            },
        }
    }

    /// Local src indices of dst `i`'s edges, self edge first.
    fn edge_locals(block: &Block, i: usize) -> impl Iterator<Item = usize> + '_ {
        std::iter::once(i).chain(block.neighbors_local(i).iter().map(|&x| x as usize))
    }

    /// Forward pass.
    pub fn forward(&self, block: &Block, input: &Matrix) -> (Matrix, GatCtx) {
        assert_eq!(input.rows(), block.num_src());
        let s = ops::matmul(input, &self.weight.value);
        let out_dim = self.out_dim();
        let al = self.attn_src.value.row(0);
        let ar = self.attn_dst.value.row(0);
        let p: Vec<f32> = (0..block.num_src()).map(|j| dot(s.row(j), al)).collect();
        let q: Vec<f32> = (0..block.num_dst()).map(|i| dot(s.row(i), ar)).collect();
        let total_edges = block.num_dst() + block.num_edges();
        let mut alpha = Vec::with_capacity(total_edges);
        let mut raw = Vec::with_capacity(total_edges);
        let mut z = Matrix::zeros(block.num_dst(), out_dim);
        let mut scores: Vec<f32> = Vec::new();
        for i in 0..block.num_dst() {
            scores.clear();
            for j in Self::edge_locals(block, i) {
                scores.push(p[j] + q[i]);
            }
            raw.extend_from_slice(&scores);
            for v in scores.iter_mut() {
                if *v < 0.0 {
                    *v *= 0.2; // LeakyReLU(0.2), as in the GAT paper
                }
            }
            let max = scores.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            let mut sum = 0.0;
            for v in scores.iter_mut() {
                *v = (*v - max).exp();
                sum += *v;
            }
            for v in scores.iter_mut() {
                *v /= sum;
            }
            for (k, j) in Self::edge_locals(block, i).enumerate() {
                let a = scores[k];
                let src_row = s.row(j).to_vec();
                for (zv, sv) in z.row_mut(i).iter_mut().zip(&src_row) {
                    *zv += a * sv;
                }
            }
            alpha.extend_from_slice(&scores);
        }
        let out = self.activation.forward(&z);
        (
            out,
            GatCtx {
                input: input.clone(),
                s,
                z,
                alpha,
                raw,
            },
        )
    }

    /// Backward pass; returns `∂L/∂input`.
    pub fn backward(&mut self, block: &Block, ctx: GatCtx, d_out: &Matrix) -> Matrix {
        let dz = self.activation.backward(&ctx.z, d_out);
        let out_dim = self.out_dim();
        let al = self.attn_src.value.row(0).to_vec();
        let ar = self.attn_dst.value.row(0).to_vec();
        let mut ds = Matrix::zeros(block.num_src(), out_dim);
        let mut d_al = vec![0.0f32; out_dim];
        let mut d_ar = vec![0.0f32; out_dim];
        // dp[j] accumulates ∂L/∂p_j where p_j = a_l · s_j; dq likewise for
        // q_i = a_r · s_i.
        let mut dp = vec![0.0f32; block.num_src()];
        let mut dq = vec![0.0f32; block.num_dst()];
        let mut cursor = 0usize;
        for i in 0..block.num_dst() {
            let edges = block.sampled_degree(i) + 1;
            let alphas = &ctx.alpha[cursor..cursor + edges];
            let raws = &ctx.raw[cursor..cursor + edges];
            let g = dz.row(i).to_vec();
            let d_alpha: Vec<f32> = Self::edge_locals(block, i)
                .map(|j| dot(&g, ctx.s.row(j)))
                .collect();
            // Softmax Jacobian: de_k = α_k (dα_k − Σ α·dα).
            let weighted: f32 = alphas.iter().zip(&d_alpha).map(|(a, d)| a * d).sum();
            for (k, j) in Self::edge_locals(block, i).enumerate() {
                let a = alphas[k];
                for (dsv, gv) in ds.row_mut(j).iter_mut().zip(&g) {
                    *dsv += a * gv;
                }
                let de = a * (d_alpha[k] - weighted);
                let slope = if raws[k] > 0.0 { 1.0 } else { 0.2 };
                let dscore = de * slope;
                dp[j] += dscore;
                dq[i] += dscore;
            }
            cursor += edges;
        }
        for j in 0..block.num_src() {
            if dp[j] != 0.0 {
                let s_row = ctx.s.row(j).to_vec();
                for (dav, sv) in d_al.iter_mut().zip(&s_row) {
                    *dav += dp[j] * sv;
                }
                for (dsv, &a) in ds.row_mut(j).iter_mut().zip(&al) {
                    *dsv += dp[j] * a;
                }
            }
        }
        for i in 0..block.num_dst() {
            if dq[i] != 0.0 {
                let s_row = ctx.s.row(i).to_vec();
                for (dav, sv) in d_ar.iter_mut().zip(&s_row) {
                    *dav += dq[i] * sv;
                }
                for (dsv, &a) in ds.row_mut(i).iter_mut().zip(&ar) {
                    *dsv += dq[i] * a;
                }
            }
        }
        for (g, d) in self.attn_src.grad.row_mut(0).iter_mut().zip(&d_al) {
            *g += d;
        }
        for (g, d) in self.attn_dst.grad.row_mut(0).iter_mut().zip(&d_ar) {
            *g += d;
        }
        // s = input · W.
        ops::add_assign(&mut self.weight.grad, &ops::matmul_at_b(&ctx.input, &ds));
        ops::matmul_a_bt(&ds, &self.weight.value)
    }

    /// Parameter views.
    pub fn params(&self) -> Vec<&Param> {
        vec![&self.weight, &self.attn_src, &self.attn_dst]
    }

    /// Mutable parameter views.
    pub fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![&mut self.weight, &mut self.attn_src, &mut self.attn_dst]
    }

    /// Input dimension.
    pub fn in_dim(&self) -> usize {
        self.weight.value.rows()
    }

    /// Output dimension.
    pub fn out_dim(&self) -> usize {
        self.weight.value.cols()
    }
}

#[inline]
fn dot(a: &[f32], b: &[f32]) -> f32 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_block() -> Block {
        Block::new(vec![0, 1], vec![0, 1, 2], vec![0, 2, 3], vec![1, 2, 2])
    }

    #[test]
    fn attention_weights_form_a_distribution_per_dst() {
        let block = toy_block();
        let input = init::uniform(3, 4, -1.0, 1.0, 1);
        let layer = GatLayer::new(4, 3, false, 2);
        let (_, ctx) = layer.forward(&block, &input);
        // dst 0 has 3 edges (self + 2), dst 1 has 2 edges.
        assert_eq!(ctx.alpha.len(), 5);
        let s0: f32 = ctx.alpha[..3].iter().sum();
        let s1: f32 = ctx.alpha[3..].iter().sum();
        assert!((s0 - 1.0).abs() < 1e-5);
        assert!((s1 - 1.0).abs() < 1e-5);
        assert!(ctx.alpha.iter().all(|&a| a >= 0.0));
    }

    #[test]
    fn isolated_vertex_attends_only_to_itself() {
        let block = Block::new(vec![0], vec![0], vec![0, 0], vec![]);
        let input = Matrix::from_rows(&[&[1.0, 2.0]]);
        let layer = GatLayer::new(2, 2, true, 3);
        let (out, ctx) = layer.forward(&block, &input);
        assert_eq!(ctx.alpha, vec![1.0]);
        // z must then equal s for that vertex.
        assert!(out.approx_eq(&ctx.s.gather_rows(&[0]), 1e-6));
    }

    #[test]
    fn output_changes_with_attention_vectors() {
        let block = toy_block();
        let input = init::uniform(3, 4, -1.0, 1.0, 4);
        let layer = GatLayer::new(4, 3, true, 5);
        let mut tweaked = layer.clone();
        tweaked.attn_src.value.set(0, 0, 5.0);
        let (a, _) = layer.forward(&block, &input);
        let (b, _) = tweaked.forward(&block, &input);
        assert_ne!(a, b, "attention parameters must influence outputs");
    }

    #[test]
    fn backward_accumulates_all_three_param_grads() {
        let block = toy_block();
        let input = init::uniform(3, 4, -1.0, 1.0, 6);
        let mut layer = GatLayer::new(4, 3, false, 7);
        let (out, ctx) = layer.forward(&block, &input);
        let d_out = Matrix::full(out.rows(), out.cols(), 1.0);
        let _ = layer.backward(&block, ctx, &d_out);
        assert!(layer.weight.grad.frobenius_norm() > 0.0);
        assert!(layer.attn_src.grad.frobenius_norm() > 0.0);
        assert!(layer.attn_dst.grad.frobenius_norm() > 0.0);
    }
}
