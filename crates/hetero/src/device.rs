//! Hardware specifications and calibrated profiles.

/// GPU device constants (a scaled V100 by default).
#[derive(Clone, Copy, Debug)]
pub struct GpuSpec {
    /// Effective dense-math throughput in FLOP/s when fully utilised.
    pub flops: f64,
    /// Global memory capacity in bytes (scaled with the dataset replica).
    pub mem_bytes: u64,
    /// Sampled edges per second when sampling uses the whole device.
    pub sample_edges_per_sec: f64,
    /// Fraction of the device a sampling kernel can occupy at most.
    pub sample_max_demand: f64,
    /// Batch rows at which training kernels reach ~50% device occupancy;
    /// drives the Fig 6(a) utilization-vs-batch-size curve.
    pub saturation_rows: f64,
}

/// Host CPU constants (a Xeon Platinum 8163-class socket).
#[derive(Clone, Copy, Debug)]
pub struct CpuSpec {
    /// Worker cores available to the training system.
    pub cores: f64,
    /// Effective dense-math FLOP/s **per core**.
    pub flops_per_core: f64,
    /// Sampled edges per second per core (random-access bound).
    pub sample_edges_per_core_sec: f64,
    /// Feature-collection bytes per second per core (random row gather).
    pub gather_bytes_per_core_sec: f64,
    /// Host memory capacity in bytes (scaled).
    pub mem_bytes: u64,
}

/// Interconnect constants.
#[derive(Clone, Copy, Debug)]
pub struct LinkSpec {
    /// Sustained bandwidth, bytes/second.
    pub bandwidth: f64,
    /// Per-transfer latency in seconds.
    pub latency: f64,
}

/// A full machine: one CPU socket, `gpus` identical GPUs, PCIe per GPU and
/// an optional NVLink mesh.
#[derive(Clone, Debug)]
pub struct HardwareSpec {
    pub cpu: CpuSpec,
    pub gpu: GpuSpec,
    pub num_gpus: usize,
    pub pcie: LinkSpec,
    /// NVLink between GPUs; `None` on the single-GPU server.
    pub nvlink: Option<LinkSpec>,
}

/// Named hardware profiles matching the paper's two testbeds (§5.1).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DeviceProfile {
    /// Aliyun server: Xeon 8163 (48 cores, 368 GB) + 1× V100 16 GB.
    V100Server,
    /// Aliyun 8-GPU server: 96 cores, 736 GB, 8× V100, NVLink (DGX-1-like).
    Dgx1Like,
}

impl HardwareSpec {
    /// Builds a profile, shrinking memory capacities by `scale` — the same
    /// factor the dataset replica was shrunk by, so capacity effects (cache
    /// ratios, OOM) reproduce at replica scale. Compute/bandwidth constants
    /// are *not* scaled: per-vertex work is unchanged by replica size.
    pub fn new(profile: DeviceProfile, scale: f64) -> Self {
        assert!(scale >= 1.0, "scale is paper/replica >= 1");
        let v100 = GpuSpec {
            flops: 2.8e12, // ~20% of 14 TFLOPS peak on sparse GNN kernels
            mem_bytes: ((16.0 * (1u64 << 30) as f64) / scale) as u64,
            sample_edges_per_sec: 5.0e8,
            sample_max_demand: 0.5,
            saturation_rows: 512.0,
        };
        let cpu_cores = match profile {
            DeviceProfile::V100Server => 48.0,
            DeviceProfile::Dgx1Like => 96.0,
        };
        let host_mem = match profile {
            DeviceProfile::V100Server => 368.0,
            DeviceProfile::Dgx1Like => 736.0,
        };
        let cpu = CpuSpec {
            cores: cpu_cores,
            // Effective f32 FLOPS/core on sparse-aggregation-heavy GNN math
            // (far below dense-BLAS peak); keeps the paper's premise that a
            // full bottom layer on the CPU becomes the bottleneck (Fig 8a).
            flops_per_core: 4.5e9,
            // Random-access bound; calibrated so GPU sampling is ~3x faster
            // than 16 CPU workers, the ratio of the paper's Table 3.
            sample_edges_per_core_sec: 5.0e6,
            // Random row gather into pinned staging buffers; calibrated so
            // DGL's FC:FT:T breakdown matches Table 2's proportions.
            gather_bytes_per_core_sec: 1.2e8,
            mem_bytes: ((host_mem * (1u64 << 30) as f64) / scale) as u64,
        };
        // PCIe 3.0 x16 is 12 GB/s nominal; pageable, fragmented GNN feature
        // copies sustain roughly half of that in practice.
        let pcie = LinkSpec {
            bandwidth: 6.0e9,
            latency: 10.0e-6,
        };
        let (num_gpus, nvlink) = match profile {
            DeviceProfile::V100Server => (1, None),
            DeviceProfile::Dgx1Like => (
                8,
                Some(LinkSpec {
                    bandwidth: 150.0e9,
                    latency: 3.0e-6,
                }),
            ),
        };
        Self {
            cpu,
            gpu: v100,
            num_gpus,
            pcie,
            nvlink,
        }
    }

    /// Single-GPU paper testbed at a replica scale.
    pub fn v100_server(scale: f64) -> Self {
        Self::new(DeviceProfile::V100Server, scale)
    }

    /// Multi-GPU paper testbed, restricted to the first `gpus` devices.
    pub fn dgx1_like(gpus: usize, scale: f64) -> Self {
        assert!((1..=8).contains(&gpus));
        let mut hw = Self::new(DeviceProfile::Dgx1Like, scale);
        hw.num_gpus = gpus;
        hw
    }

    /// Effective GPU demand of a dense kernel over `rows` rows — the
    /// occupancy curve behind Fig 6(a): small batches cannot fill the
    /// device even when running alone.
    pub fn gpu_efficiency(&self, rows: f64) -> f64 {
        (rows / (rows + self.gpu.saturation_rows)).clamp(0.05, 1.0)
    }

    /// Aggregate CPU FLOP/s when `cores` cores work on dense math.
    pub fn cpu_flops(&self, cores: f64) -> f64 {
        self.cpu.flops_per_core * cores.min(self.cpu.cores)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profiles_match_paper_testbeds() {
        let single = HardwareSpec::v100_server(1.0);
        assert_eq!(single.num_gpus, 1);
        assert!(single.nvlink.is_none());
        assert_eq!(single.cpu.cores, 48.0);
        let multi = HardwareSpec::dgx1_like(8, 1.0);
        assert_eq!(multi.num_gpus, 8);
        assert!(multi.nvlink.is_some());
        assert_eq!(multi.cpu.cores, 96.0);
    }

    #[test]
    fn memory_scales_down_with_replica() {
        let full = HardwareSpec::v100_server(1.0);
        let scaled = HardwareSpec::v100_server(16.0);
        assert_eq!(full.gpu.mem_bytes, 16 * (1 << 30));
        assert_eq!(scaled.gpu.mem_bytes, (1 << 30));
        // Compute constants unchanged.
        assert_eq!(full.gpu.flops, scaled.gpu.flops);
    }

    #[test]
    fn gpu_efficiency_grows_with_batch_rows() {
        let hw = HardwareSpec::v100_server(1.0);
        let small = hw.gpu_efficiency(128.0);
        let large = hw.gpu_efficiency(10_000.0);
        assert!(small <= 0.25, "small batches underutilise: {small}");
        assert!(large > 0.9, "large batches saturate: {large}");
        assert!(small < large);
        assert!(hw.gpu_efficiency(0.0) >= 0.05, "clamped at a floor");
    }

    #[test]
    fn gpu_outruns_cpu_on_dense_math() {
        let hw = HardwareSpec::v100_server(1.0);
        assert!(hw.gpu.flops > 5.0 * hw.cpu_flops(hw.cpu.cores));
    }

    #[test]
    #[should_panic(expected = "scale")]
    fn rejects_fractional_scale() {
        let _ = HardwareSpec::v100_server(0.5);
    }
}
