//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset this workspace's property suites use: the
//! [`proptest!`] macro with `#![proptest_config(...)]`, range / tuple /
//! [`Just`] / [`any`] strategies, `prop_flat_map` / `prop_map` combinators,
//! [`collection::vec`] and [`option::of`], plus `prop_assert!` /
//! `prop_assert_eq!`.
//!
//! Differences from real proptest: cases are generated from a deterministic
//! per-test-site seed (derived from `file!()` + `line!()` + case index), and
//! there is **no shrinking** — generation is fully deterministic, so simply
//! rerunning a failing test replays the exact failing inputs.

pub mod collection;
pub mod option;
pub mod strategy;
pub mod test_runner;

/// Common imports, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::strategy::{any, Any, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Property assertion; in this stand-in it panics immediately (no shrink
/// phase to report back to).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Equality property assertion.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Inequality property assertion.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Defines property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a test that runs `body` for `config.cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_fns! { cfg = $cfg; $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_fns! {
            cfg = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ( cfg = $cfg:expr; ) => {};
    (
        cfg = $cfg:expr;
        $(#[$meta:meta])*
        fn $name:ident( $($pat:pat in $strat:expr),* $(,)? ) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __cfg = $cfg;
            for __case in 0..__cfg.cases {
                let mut __rng =
                    $crate::test_runner::case_rng(file!(), line!(), __case);
                $(
                    let $pat =
                        $crate::strategy::Strategy::generate(&($strat), &mut __rng);
                )*
                { $body }
            }
        }
        $crate::__proptest_fns! { cfg = $cfg; $($rest)* }
    };
}
