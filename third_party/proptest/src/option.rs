//! `Option` strategies.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::RngExt;

/// Strategy producing `Option<T>` — see [`of`].
pub struct OptionStrategy<S> {
    inner: S,
}

/// `of(strategy)` — mirrors `proptest::option::of`: yields `Some` about
/// three quarters of the time.
pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
    OptionStrategy { inner }
}

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        if rng.random_bool(0.75) {
            Some(self.inner.generate(rng))
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::case_rng;

    #[test]
    fn yields_both_variants() {
        let strat = of(0u32..10);
        let mut rng = case_rng(file!(), line!(), 0);
        let vals: Vec<_> = (0..300).map(|_| strat.generate(&mut rng)).collect();
        assert!(vals.iter().any(|v| v.is_some()));
        assert!(vals.iter().any(|v| v.is_none()));
    }
}
