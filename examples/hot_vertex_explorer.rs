//! Hot-vertex explorer: how access skew drives NeutronOrch's design.
//!
//! Prints the paper-scale access-coverage curve of each evaluation replica
//! and shows how the hybrid policy (§4.1.3) splits the hot set between CPU
//! embedding computation and GPU feature caching as GPU idleness varies.
//!
//! ```text
//! cargo run --release --example hot_vertex_explorer
//! ```

use neutronorch::cache::HybridPolicy;
use neutronorch::core::profile::{WorkloadConfig, WorkloadProfile};
use neutronorch::graph::DatasetSpec;
use neutronorch::nn::LayerKind;

fn main() {
    let mut cfg = WorkloadConfig::paper_default(LayerKind::Gcn);
    cfg.profiled_batches = 3;

    println!("paper-scale access coverage of the hottest r fraction of vertices:\n");
    println!(
        "{:<12} {:>8} {:>8} {:>8} {:>8} {:>8}",
        "dataset", "r=5%", "r=10%", "r=15%", "r=20%", "r=30%"
    );
    for spec in DatasetSpec::all_scaled() {
        let profile = WorkloadProfile::build(&spec, &cfg);
        print!("{:<12}", spec.name);
        for r in [0.05, 0.10, 0.15, 0.20, 0.30] {
            print!(" {:>7.1}%", profile.paper_coverage(r) * 100.0);
        }
        println!();
    }

    // Hybrid split demonstration on one replica.
    let spec = DatasetSpec::orkut_scaled();
    let profile = WorkloadProfile::build(&spec, &cfg);
    let policy = HybridPolicy {
        feature_row_bytes: spec.feature_row_bytes(),
        embedding_row_bytes: spec.hidden_row_bytes(),
    };
    println!(
        "\nhybrid split of {}'s hot set ({} vertices) vs GPU idleness:\n",
        spec.name,
        profile.hot.len()
    );
    println!(
        "{:<10} {:>12} {:>12} {:>14}",
        "GPU idle", "CPU compute", "GPU cache", "GPU bytes (MB)"
    );
    for idle in [0.0, 0.25, 0.5, 0.75, 1.0] {
        let plan = policy.plan(&profile.hot, idle, u64::MAX);
        println!(
            "{:<10} {:>12} {:>12} {:>14.1}",
            format!("{:.0}%", idle * 100.0),
            plan.cpu_compute.len(),
            plan.gpu_cache.len(),
            plan.gpu_bytes as f64 / 1e6
        );
    }
    println!("\nidle GPU pulls hot vertices into its feature cache; a busy GPU");
    println!("leaves them to the CPU, which ships far smaller embeddings instead.");
}
