//! Orchestrator shootout: simulate one epoch of every task-orchestration
//! strategy on a scaled Reddit replica and print the Fig-2-style comparison
//! (runtime, utilization, transfers, memory).
//!
//! ```text
//! cargo run --release --example orchestrator_shootout
//! ```

use neutronorch::core::baselines::{Case1Dgl, Case2DglUva, Case3PaGraph, Case4GnnLab, GasLike};
use neutronorch::core::pipeline::{PipelineConfig, PipelineExecutor};
use neutronorch::core::profile::{WorkloadConfig, WorkloadProfile};
use neutronorch::core::trainer::{ConvergenceTrainer, ReusePolicy, TrainerConfig};
use neutronorch::core::{NeutronOrch, Orchestrator};
use neutronorch::graph::DatasetSpec;
use neutronorch::hetero::HardwareSpec;
use neutronorch::nn::LayerKind;

fn main() {
    let spec = DatasetSpec::reddit_scaled();
    let mut cfg = WorkloadConfig::paper_default(LayerKind::Gcn);
    cfg.profiled_batches = 4;
    println!(
        "profiling {} replica (|V|={}, scale {:.0}x)...",
        spec.name, spec.vertices, spec.scale
    );
    let profile = WorkloadProfile::build(&spec, &cfg);
    println!(
        "  {} batches/epoch, hot set {} vertices covering {:.0}% of paper-scale accesses\n",
        profile.num_batches,
        profile.hot.len(),
        profile.paper_coverage(cfg.hot_ratio) * 100.0
    );

    let hw = HardwareSpec::v100_server(1.0);
    let systems: Vec<Box<dyn Orchestrator>> = vec![
        Box::new(Case1Dgl { pipelined: true }),
        Box::new(Case2DglUva { pipelined: true }),
        Box::new(Case3PaGraph),
        Box::new(Case4GnnLab),
        Box::new(GasLike),
        Box::new(NeutronOrch::new()),
    ];
    println!(
        "{:<12} {:>10} {:>9} {:>9} {:>12} {:>11}",
        "system", "epoch (ms)", "CPU util", "GPU util", "h2d (MB)", "GPU mem (GB)"
    );
    let mut baseline = None;
    for sys in systems {
        match sys.simulate_epoch(&profile, &hw) {
            Ok(r) => {
                if baseline.is_none() {
                    baseline = Some(r.epoch_seconds);
                }
                println!(
                    "{:<12} {:>10.1} {:>8.0}% {:>8.0}% {:>12.1} {:>11.2}  ({:.2}x vs DGL)",
                    r.system,
                    r.epoch_seconds * 1e3,
                    r.cpu_util * 100.0,
                    r.gpu_util * 100.0,
                    r.h2d_bytes as f64 / 1e6,
                    r.gpu_mem_peak as f64 / (1u64 << 30) as f64,
                    baseline.unwrap() / r.epoch_seconds
                );
            }
            Err(oom) => println!("{:<12} OOM: {oom}", sys.name()),
        }
    }

    // The simulated table above models the orchestration strategies; the
    // pipelined executor *executes* NeutronOrch's super-batch pipeline as
    // real threads. Reprise the comparison measured, on the convergence
    // replica (small enough to finish in seconds): identical per-batch
    // stage costing, serial vs overlapped.
    println!("\nmeasured execution (pipelined executor, Reddit-conv replica):");
    let conv = DatasetSpec::reddit_convergence();
    let tcfg = TrainerConfig::convergence_default(LayerKind::Gcn, ReusePolicy::Exact);
    let mut seq = ConvergenceTrainer::new(conv.build_full(), tcfg.clone());
    let mut pip = ConvergenceTrainer::new(conv.build_full(), tcfg);
    // Calibrate the simulated H2D link to ~50% of compute (Fig 2 regime).
    let probe = PipelineExecutor::new(PipelineConfig {
        h2d_gibps: 0.0,
        ..PipelineConfig::default()
    });
    let (_, compute) = probe.run_epoch_sequential(&mut seq, 0);
    let h2d_gibps = compute.h2d_bytes as f64 / (0.5 * compute.epoch_seconds) / (1u64 << 30) as f64;
    let exec = PipelineExecutor::new(PipelineConfig {
        h2d_gibps,
        ..PipelineConfig::default()
    });
    let (_, s) = exec.run_epoch_sequential(&mut seq, 1);
    let (_, p) = exec.run_epoch(&mut pip, 1);
    println!(
        "  sequential {:.2}s/epoch, pipelined {:.2}s/epoch -> {:.2}x (transfer {:.2}s hidden behind train)",
        s.epoch_seconds,
        p.epoch_seconds,
        s.epoch_seconds / p.epoch_seconds,
        p.transfer_seconds,
    );
}
