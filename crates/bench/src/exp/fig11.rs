//! Fig 11 — multi-GPU scaling: GraphSAGE on Products and Papers100M with
//! batch sizes 512/1024 across 1–8 GPUs.

use crate::util::{fmt_secs, render_table};
use crate::Setup;
use neutron_core::baselines::{Case2DglUva, Case3PaGraph, Case4GnnLab, DspLike};
use neutron_core::profile::WorkloadProfile;
use neutron_core::report::EpochReport;
use neutron_core::{NeutronOrch, Orchestrator};
use neutron_hetero::{CostModel, HardwareSpec, OomError};
use neutron_nn::LayerKind;

/// One cell of Fig 11.
pub type Cell = Result<f64, &'static str>;

/// One (dataset, batch size, #GPUs) row across systems.
#[derive(Clone, Debug)]
pub struct Fig11Row {
    pub dataset: &'static str,
    pub batch_size: usize,
    pub gpus: usize,
    pub cells: Vec<(String, Cell)>,
}

/// Runs a single-GPU orchestrator data-parallel over `gpus` devices:
/// batches are split evenly and a per-batch gradient all-reduce is added.
/// (PaGraph / DGL-UVA / GNNLab multi-GPU are data-parallel replicas of
/// their single-GPU engines; DSP and NeutronOrch have native multi-GPU
/// schedules.)
pub fn simulate_data_parallel(
    orch: &dyn Orchestrator,
    profile: &WorkloadProfile,
    hw: &HardwareSpec,
    gpus: usize,
) -> Result<EpochReport, OomError> {
    let mut shard = profile.clone();
    shard.num_batches = profile.num_batches.div_ceil(gpus);
    let mut report = orch.simulate_epoch(&shard, hw)?;
    if gpus > 1 {
        let cm = CostModel::new(hw.clone());
        let lens = neutron_core::orchestrator::Lens::new(profile);
        let sync = cm.gpu_sync(2 * lens.param_bytes());
        let link_bw = hw.nvlink.map(|l| l.bandwidth).unwrap_or(hw.pcie.bandwidth);
        report.epoch_seconds += shard.num_batches as f64 * (sync.work / link_bw);
    }
    Ok(report)
}

/// Computes the Fig 11 grid.
pub fn data(setup: Setup) -> Vec<Fig11Row> {
    let gpu_counts = [1usize, 2, 4, 8];
    let batch_sizes = match setup {
        Setup::Paper => vec![512usize, 1024],
        Setup::Smoke => vec![512usize],
    };
    let mut rows = Vec::new();
    for name in ["Products", "Papers100M"] {
        let spec = setup.dataset(name);
        for &bs in &batch_sizes {
            let profile = crate::build_profile(setup, &spec, LayerKind::Sage, 3, bs);
            for &g in &gpu_counts {
                let hw = HardwareSpec::dgx1_like(g, 1.0);
                let mut cells: Vec<(String, Cell)> = Vec::new();
                let data_parallel: Vec<(&str, Box<dyn Orchestrator>)> = vec![
                    ("PaGraph", Box::new(Case3PaGraph)),
                    ("DGL-UVA", Box::new(Case2DglUva { pipelined: true })),
                    ("GNNLab", Box::new(Case4GnnLab)),
                ];
                for (label, orch) in data_parallel {
                    let cell = match simulate_data_parallel(orch.as_ref(), &profile, &hw, g) {
                        Ok(r) => Ok(r.epoch_seconds),
                        Err(_) => Err("OOM"),
                    };
                    cells.push((label.to_string(), cell));
                }
                let dsp = match DspLike::default().simulate_epoch(&profile, &hw) {
                    Ok(r) => Ok(r.epoch_seconds),
                    Err(_) => Err("OOM"),
                };
                cells.push(("DSP".into(), dsp));
                let ours = match NeutronOrch::new().simulate_epoch(&profile, &hw) {
                    Ok(r) => Ok(r.epoch_seconds),
                    Err(_) => Err("OOM"),
                };
                cells.push(("NeutronOrch".into(), ours));
                rows.push(Fig11Row {
                    dataset: spec.name,
                    batch_size: bs,
                    gpus: g,
                    cells,
                });
            }
        }
    }
    rows
}

/// Renders Fig 11.
pub fn run(setup: Setup) -> String {
    let rows = data(setup);
    let headers: Vec<String> = ["Dataset", "bs", "GPUs"]
        .iter()
        .map(|s| s.to_string())
        .chain(rows[0].cells.iter().map(|(n, _)| n.clone()))
        .collect();
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.dataset.to_string(),
                r.batch_size.to_string(),
                r.gpus.to_string(),
            ]
            .into_iter()
            .chain(r.cells.iter().map(|(_, c)| match c {
                Ok(s) => fmt_secs(*s),
                Err(m) => (*m).to_string(),
            }))
            .collect()
        })
        .collect();
    render_table(
        "Fig 11: multi-GPU per-epoch runtime, GraphSAGE (replica scale)",
        &header_refs,
        &table,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn neutronorch_scales_and_dsp_fails_small_configs_on_papers() {
        let rows = data(Setup::Smoke);
        // NeutronOrch time at 8 GPUs ≤ at 1 GPU for each dataset/bs.
        for name in ["Products", "Papers100M"] {
            let ours: Vec<f64> = rows
                .iter()
                .filter(|r| r.dataset == name)
                .filter_map(|r| r.cells.last().unwrap().1.ok())
                .collect();
            if ours.len() >= 2 {
                assert!(
                    ours.last().unwrap() <= ours.first().unwrap(),
                    "{name}: scaling regressed: {ours:?}"
                );
            }
        }
        // DSP must fail on Papers100M with 1 GPU (Fig 11's X/OOM cells).
        let papers_1gpu = rows
            .iter()
            .find(|r| r.dataset == "Papers100M" && r.gpus == 1)
            .unwrap();
        let dsp = &papers_1gpu
            .cells
            .iter()
            .find(|(n, _)| n == "DSP")
            .unwrap()
            .1;
        assert!(dsp.is_err(), "DSP should OOM on Papers100M @1 GPU");
    }

    #[test]
    fn neutronorch_beats_data_parallel_baselines() {
        let rows = data(Setup::Smoke);
        let mut wins = 0;
        let mut total = 0;
        for r in &rows {
            if let Ok(ours) = r.cells.last().unwrap().1 {
                for (_, c) in &r.cells[..r.cells.len() - 1] {
                    if let Ok(other) = c {
                        total += 1;
                        if ours <= other * 1.15 {
                            wins += 1;
                        }
                    }
                }
            }
        }
        assert!(total > 0);
        // Smoke-scale replicas flatten hotness skew, so NeutronOrch's edge
        // narrows; paper-scale runs (EXPERIMENTS.md) match Fig 11's margins.
        assert!(wins as f64 >= total as f64 * 0.4, "{wins}/{total}");
    }
}
