//! Graph substrate for the NeutronOrch reproduction.
//!
//! Stores graphs in immutable CSR form, synthesises scaled replicas of the
//! paper's six evaluation datasets (Table 4), and provides vertex
//! partitioning for the multi-GPU experiments.
//!
//! The paper trains on Reddit, Lj-large, Orkut, Wikipedia, Products and
//! Papers100M. Those datasets (up to 111M vertices / 1.6B edges) are gated
//! behind downloads and host-memory sizes this reproduction does not assume,
//! so [`dataset::DatasetSpec`] generates *scaled replicas*: R-MAT /
//! stochastic-block-model graphs with the same average degree, degree skew,
//! feature dimension and class count, at a recorded `scale` factor. The
//! hardware simulator shrinks device memories by the same factor, preserving
//! every capacity-driven effect (cache ratios, OOMs) at laptop scale.

pub mod builder;
pub mod csr;
pub mod dataset;
pub mod degree;
pub mod features;
pub mod generate;
pub mod partition;

pub use builder::GraphBuilder;
pub use csr::{Csr, VertexId};
pub use dataset::{Dataset, DatasetSpec};
