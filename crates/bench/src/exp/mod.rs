//! One module per table/figure of the paper's evaluation section.
//!
//! | module | reproduces |
//! |---|---|
//! | [`fig02`] | Fig 2 — utilization + runtime of the orchestration methods |
//! | [`table2`] | Table 2 — DGL sample/gather breakdown on all datasets |
//! | [`table3`] | Table 3 — pipeline effect under CPU/GPU sampling |
//! | [`fig06`] | Fig 6 — batch size & cache ratio effects |
//! | [`fig07`] | Fig 7 — per-layer workload & transfer, layer-based split |
//! | [`fig10`] | Fig 10 — overall single-GPU comparison |
//! | [`fig11`] | Fig 11 — multi-GPU scaling |
//! | [`fig12`] | Fig 12 — ablation ladder |
//! | [`fig13`] | Fig 13 — cache policy memory/transfer |
//! | [`fig14`] | Fig 14 — GPU training time savings |
//! | [`fig15`] | Fig 15 — utilization on Lj-large and Orkut |
//! | [`table5`] | Table 5 — model depth sweep |
//! | [`table6`] | Table 6 — batch size sweep |
//! | [`fig16`] | Fig 16 — epoch-to-accuracy convergence |

pub mod ablations;
pub mod fig02;
pub mod fig06;
pub mod fig07;
pub mod fig10;
pub mod fig11;
pub mod fig12;
pub mod fig13;
pub mod fig14;
pub mod fig15;
pub mod fig16;
pub mod table2;
pub mod table3;
pub mod table5;
pub mod table6;

/// Every paper table/figure id accepted by the `exp` binary.
pub const ALL_EXPERIMENTS: [&str; 14] = [
    "fig2", "table2", "table3", "fig6", "fig7", "fig10", "fig11", "fig12", "fig13", "fig14",
    "fig15", "table5", "table6", "fig16",
];

/// Extension experiments beyond the paper (design-choice ablations).
pub const EXTRA_EXPERIMENTS: [&str; 2] = ["abl-superbatch", "abl-hotratio"];

/// Runs one experiment by id, returning its rendered report.
pub fn run(id: &str, setup: crate::Setup) -> Option<String> {
    let out = match id {
        "fig2" => fig02::run(setup),
        "table2" => table2::run(setup),
        "table3" => table3::run(setup),
        "fig6" => fig06::run(setup),
        "fig7" => fig07::run(setup),
        "fig10" => fig10::run(setup),
        "fig11" => fig11::run(setup),
        "fig12" => fig12::run(setup),
        "fig13" => fig13::run(setup),
        "fig14" => fig14::run(setup),
        "fig15" => fig15::run(setup),
        "table5" => table5::run(setup),
        "table6" => table6::run(setup),
        "fig16" => fig16::run(setup),
        "abl-superbatch" => ablations::run_superbatch(setup),
        "abl-hotratio" => ablations::run_hotratio(setup),
        _ => return None,
    };
    Some(out)
}
