//! Allocation-budget regression test for the pooled engine hot path.
//!
//! Only meaningful with the counting `#[global_allocator]` installed, so
//! the whole file is gated on the facade's `count-allocs` feature:
//!
//! ```text
//! cargo test --release -p neutronorch --features count-allocs --test alloc_budget
//! ```
//!
//! A single test function owns the process-global counters end to end (the
//! allocator state is shared, so concurrent tests would cross-contaminate
//! the per-stage attribution).
#![cfg(feature = "count-allocs")]

use neutronorch::core::engine::{EngineConfig, TrainingEngine};
use neutronorch::core::pipeline::{PipelineConfig, PipelineExecutor};
use neutronorch::core::replica::{ReplicatedConfig, ReplicatedEngine};
use neutronorch::core::trainer::{ConvergenceTrainer, ReusePolicy, TrainerConfig};
use neutronorch::graph::DatasetSpec;
use neutronorch::nn::LayerKind;
use neutronorch::tensor::alloc;

/// Hard ceiling on staging (sample + gather + transfer) heap allocations
/// per warm engine epoch on the tiny workload. The pooled path measures
/// ~35/epoch here (residual capacity-growth on recycled buffers); the
/// ceiling leaves headroom while still catching any reintroduced per-batch
/// or per-vertex Vec churn, which lands in the hundreds even on this
/// workload.
const WARM_STAGING_ALLOC_BUDGET: u64 = 300;

/// The warm sequential path must allocate at least this many times more
/// than the pooled engine path. The tiny workload runs only a couple of
/// batches per epoch, so per-epoch constants dominate and the ratio is
/// modest (~3x measured); the headline ≥10x claim is gated on the bench
/// workload by `cargo xtask bench-diff` against `BENCH_engine.json`.
const MIN_IMPROVEMENT: u64 = 2;

fn trainer() -> ConvergenceTrainer {
    let ds = DatasetSpec::tiny().build_full();
    let mut cfg = TrainerConfig::convergence_default(
        LayerKind::Gcn,
        ReusePolicy::HotnessAware {
            hot_ratio: 0.3,
            super_batch: 2,
        },
    );
    cfg.batch_size = 48;
    cfg.lr = 0.4;
    ConvergenceTrainer::new(ds, cfg)
}

#[test]
fn warm_engine_epochs_stay_inside_the_staging_alloc_budget() {
    assert!(
        alloc::counting_installed(),
        "count-allocs must install the counting global allocator"
    );
    let epochs = 4;

    // Sequential "before" numbers: the executor tags stages itself, so the
    // staging delta is directly comparable with the engine's.
    let exec = PipelineExecutor::new(PipelineConfig::default());
    let mut seq = trainer();
    alloc::reset();
    alloc::set_enabled(true);
    let mut seq_staging = Vec::with_capacity(epochs);
    for epoch in 0..epochs {
        let before = alloc::snapshot();
        exec.run_epoch_sequential(&mut seq, epoch);
        seq_staging.push(alloc::snapshot().since(&before).staging_allocs());
    }

    let mut eng = trainer();
    let engine = TrainingEngine::new(EngineConfig {
        pipeline: PipelineConfig {
            sampler_threads: 2,
            gather_threads: 2,
            channel_depth: 3,
            h2d_gibps: 0.0,
        },
        adaptive_split: true,
        gpu_free_bytes: 64 << 20,
        ..EngineConfig::default()
    });
    let session = engine.run_session(&mut eng, 0, epochs);

    // Data-parallel engine at R=2: both replicas run the same pooled
    // staging path, so the process-wide per-epoch window (the counters are
    // global, per-replica attribution is not tracked) must hold R times
    // the single-engine ceiling on warm epochs.
    let replicas = 2;
    let mut rep = trainer();
    let replicated = ReplicatedEngine::new(ReplicatedConfig {
        pipeline: PipelineConfig {
            sampler_threads: 1,
            gather_threads: 1,
            channel_depth: 3,
            h2d_gibps: 0.0,
        },
        replicas,
        ..ReplicatedConfig::default()
    });
    let rep_session = replicated.run_session(&mut rep, 0, epochs);
    alloc::set_enabled(false);

    assert_eq!(session.epochs.len(), epochs);
    // Epoch 0 pays the one-time pool fill; every later epoch is "warm" and
    // must run on recycled buffers.
    for run in &session.epochs[1..] {
        let staging = run.allocs.staging_allocs();
        println!(
            "epoch {}: engine staging allocs {staging} (sequential {})",
            run.epoch, seq_staging[run.epoch]
        );
        for (name, stat) in run.allocs.iter() {
            println!("    {name}: {} allocs {} B", stat.allocs, stat.bytes);
        }
        assert!(
            staging <= WARM_STAGING_ALLOC_BUDGET,
            "warm epoch {} staged {staging} allocs, budget {WARM_STAGING_ALLOC_BUDGET} — \
             did a pooled path regress to allocating?",
            run.epoch
        );
        assert!(
            seq_staging[run.epoch] >= MIN_IMPROVEMENT * staging.max(1),
            "warm epoch {}: sequential path staged {} allocs, engine {staging} — \
             expected at least {MIN_IMPROVEMENT}x fewer on the pooled path",
            run.epoch,
            seq_staging[run.epoch]
        );
    }

    assert_eq!(rep_session.epochs.len(), epochs);
    let replicated_budget = replicas as u64 * WARM_STAGING_ALLOC_BUDGET;
    for run in &rep_session.epochs[1..] {
        let staging = run.allocs.staging_allocs();
        println!(
            "replicated (R={replicas}) epoch {}: staging allocs {staging} \
             (budget {replicated_budget})",
            run.epoch
        );
        assert!(
            staging <= replicated_budget,
            "warm replicated epoch {} staged {staging} allocs across {replicas} replicas, \
             budget {replicated_budget} — did a pooled path regress to allocating?",
            run.epoch
        );
    }
}
