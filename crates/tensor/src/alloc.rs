//! Heap-allocation accounting for the metadata-overhead telemetry
//! (`cargo xtask profile --timing --allocs`, `BENCH_engine.json`'s
//! `allocs_per_epoch` series).
//!
//! The host-overhead literature (see PAPERS.md) shows that *metadata*
//! churn — batch index maps, dedup scratch, format conversion — can rival
//! feature-gather time in sampling pipelines. This module makes that
//! measurable: [`CountingAllocator`] wraps [`System`] and, while
//! [`set_enabled`] is on, attributes every allocation to the [`Stage`] the
//! allocating thread declared via [`set_stage`]. The counters mirror the
//! [`crate::timing`] design: relaxed atomics, zero cost when disabled, a
//! [`snapshot`]/[`reset`] read-out.
//!
//! Installation is the caller's choice — a `#[global_allocator]` is
//! program-global, so the library only installs one behind the
//! `count-allocs` cargo feature (used by the engine bench and the
//! alloc-budget test); `xtask` installs its own unconditionally. Everything
//! else here (stage tags, snapshots) compiles and runs regardless: without
//! an installed [`CountingAllocator`] the counters simply never move, which
//! [`counting_installed`] probes for.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// The pipeline stages allocations are attributed to. `Other` is the
/// default for threads that never declared a stage (test harnesses, setup
/// code, evaluation).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Stage {
    /// Unattributed / non-pipeline work (setup, eval, planning).
    Other,
    /// Sampler workers (block construction).
    Sample,
    /// Gather workers (cache probe + host feature gather).
    Gather,
    /// The transfer stage (byte accounting + simulated stall).
    Transfer,
    /// The train stage (assembly, forward/backward, optimizer).
    Train,
    /// The background hot-embedding refresh worker.
    Refresh,
}

/// All stages, in the order [`AllocSnapshot::iter`] reports them.
pub const STAGES: [Stage; 6] = [
    Stage::Other,
    Stage::Sample,
    Stage::Gather,
    Stage::Transfer,
    Stage::Train,
    Stage::Refresh,
];

impl Stage {
    /// Stable lowercase identifier used in tables and bench JSON.
    pub fn name(self) -> &'static str {
        match self {
            Stage::Other => "other",
            Stage::Sample => "sample",
            Stage::Gather => "gather",
            Stage::Transfer => "transfer",
            Stage::Train => "train",
            Stage::Refresh => "refresh",
        }
    }
}

const N: usize = STAGES.len();

static ENABLED: AtomicBool = AtomicBool::new(false);
#[allow(clippy::declare_interior_mutable_const)]
const ZERO: AtomicU64 = AtomicU64::new(0);
static ALLOCS: [AtomicU64; N] = [ZERO; N];
static BYTES: [AtomicU64; N] = [ZERO; N];

thread_local! {
    // Const-initialised and Drop-free on purpose: this cell is read inside
    // `GlobalAlloc::alloc`, where lazy TLS initialisation or destructor
    // registration would recurse into the allocator.
    static STAGE: Cell<usize> = const { Cell::new(0) };
}

/// Declares which [`Stage`] this thread's allocations belong to from now
/// on, returning the previous stage (for scoped restores). Cheap enough to
/// call per batch: one thread-local store.
pub fn set_stage(stage: Stage) -> Stage {
    STAGE.with(|s| {
        let prev = s.get();
        s.set(stage as usize);
        STAGES[prev]
    })
}

/// Turns counting on or off. Counters are *not* cleared; call [`reset`].
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Whether allocation counting is currently on.
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Zeroes every counter (leaves the enabled flag alone).
pub fn reset() {
    for i in 0..N {
        ALLOCS[i].store(0, Ordering::Relaxed);
        BYTES[i].store(0, Ordering::Relaxed);
    }
}

/// Point-in-time totals for one stage.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StageAlloc {
    /// Heap allocations attributed to the stage (alloc + realloc calls).
    pub allocs: u64,
    /// Bytes those allocations requested.
    pub bytes: u64,
}

/// Totals for every stage since the last [`reset`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AllocSnapshot {
    /// Per-stage counters, indexed by [`Stage`] discriminant.
    pub stats: [StageAlloc; N],
}

impl AllocSnapshot {
    /// The counters of one stage.
    pub fn get(&self, stage: Stage) -> StageAlloc {
        self.stats[stage as usize]
    }

    /// Allocations summed over every stage.
    pub fn total_allocs(&self) -> u64 {
        self.stats.iter().map(|s| s.allocs).sum()
    }

    /// The delta since an `earlier` snapshot (saturating, so a counter
    /// [`reset`] between the two snapshots reads as zero, not garbage).
    pub fn since(&self, earlier: &AllocSnapshot) -> AllocSnapshot {
        let mut out = AllocSnapshot::default();
        for i in 0..N {
            out.stats[i] = StageAlloc {
                allocs: self.stats[i].allocs.saturating_sub(earlier.stats[i].allocs),
                bytes: self.stats[i].bytes.saturating_sub(earlier.stats[i].bytes),
            };
        }
        out
    }

    /// Allocations summed over the staging stages (sample + gather +
    /// transfer) — the pipeline's metadata hot path, which the pooled
    /// buffers are meant to drive to (near) zero. Excludes train/refresh
    /// (model compute) and other (setup/eval).
    pub fn staging_allocs(&self) -> u64 {
        self.get(Stage::Sample).allocs
            + self.get(Stage::Gather).allocs
            + self.get(Stage::Transfer).allocs
    }

    /// `(name, stat)` pairs in canonical stage order.
    pub fn iter(&self) -> impl Iterator<Item = (&'static str, StageAlloc)> + '_ {
        STAGES.iter().map(move |&s| (s.name(), self.get(s)))
    }
}

/// Reads all counters.
pub fn snapshot() -> AllocSnapshot {
    let mut s = AllocSnapshot::default();
    for i in 0..N {
        s.stats[i] = StageAlloc {
            allocs: ALLOCS[i].load(Ordering::Relaxed),
            bytes: BYTES[i].load(Ordering::Relaxed),
        };
    }
    s
}

/// Whether a [`CountingAllocator`] is actually installed as the global
/// allocator: makes a probe allocation with counting forced on and checks
/// that a counter moved. Benches use this to label their numbers honestly
/// instead of reporting all-zero series as "allocation-free".
pub fn counting_installed() -> bool {
    let was = ENABLED.swap(true, Ordering::SeqCst);
    let before = snapshot().total_allocs();
    drop(std::hint::black_box(Box::new(0xa110u32)));
    let moved = snapshot().total_allocs() > before;
    ENABLED.store(was, Ordering::SeqCst);
    moved
}

/// A [`System`]-delegating global allocator that attributes allocation
/// counts and bytes to the calling thread's declared [`Stage`] while
/// counting is [`enabled`]. Install it with `#[global_allocator]`; see the
/// module docs for who does.
pub struct CountingAllocator;

#[inline]
fn count(bytes: usize) {
    if !ENABLED.load(Ordering::Relaxed) {
        return;
    }
    // `try_with` + const init: never allocates, never panics, even during
    // thread teardown — a failure just falls back to `Other`.
    let stage = STAGE.try_with(Cell::get).unwrap_or(0);
    ALLOCS[stage].fetch_add(1, Ordering::Relaxed);
    BYTES[stage].fetch_add(bytes as u64, Ordering::Relaxed);
}

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        count(layout.size());
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        count(layout.size());
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        // A grow is the reallocation the pooled buffers exist to avoid, so
        // it counts like a fresh allocation of the new size.
        count(new_size);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

/// The feature-gated installation used by the engine bench and the
/// alloc-budget integration test (`--features count-allocs`). Exactly one
/// crate in a build graph may install a global allocator; binaries that
/// want one unconditionally (xtask) declare their own instead of enabling
/// this feature.
#[cfg(feature = "count-allocs")]
#[global_allocator]
static GLOBAL_COUNTING_ALLOCATOR: CountingAllocator = CountingAllocator;

#[cfg(test)]
mod tests {
    use super::*;

    // One test fn only: the counters are process-global, and the test
    // harness runs test fns concurrently.
    #[test]
    fn stage_attribution_and_snapshots_work_without_an_installed_allocator() {
        // Counter plumbing is testable without the global allocator: drive
        // `count` through the same path the allocator uses.
        reset();
        set_enabled(false);
        count(64);
        assert_eq!(snapshot().total_allocs(), 0, "disabled counting counted");

        set_enabled(true);
        let prev = set_stage(Stage::Gather);
        assert_eq!(prev, Stage::Other);
        count(128);
        count(32);
        let restored = set_stage(prev);
        assert_eq!(restored, Stage::Gather);
        count(8); // attributed to Other again
        let snap = snapshot();
        assert_eq!(
            snap.get(Stage::Gather),
            StageAlloc {
                allocs: 2,
                bytes: 160
            }
        );
        assert_eq!(
            snap.get(Stage::Other),
            StageAlloc {
                allocs: 1,
                bytes: 8
            }
        );
        assert_eq!(snap.staging_allocs(), 2);
        assert_eq!(snap.total_allocs(), 3);

        let later_extra = {
            set_stage(Stage::Sample);
            count(1);
            set_stage(Stage::Other);
            snapshot().since(&snap)
        };
        assert_eq!(later_extra.get(Stage::Sample).allocs, 1);
        assert_eq!(later_extra.get(Stage::Gather).allocs, 0);
        assert_eq!(
            later_extra.iter().map(|(n, _)| n).collect::<Vec<_>>(),
            ["other", "sample", "gather", "transfer", "train", "refresh"]
        );

        set_enabled(false);
        reset();
        assert_eq!(snapshot().total_allocs(), 0);
        // In the plain test build no CountingAllocator is installed, and
        // the probe must say so (the count-allocs test build flips this).
        if cfg!(feature = "count-allocs") {
            assert!(counting_installed());
        } else {
            assert!(!counting_installed());
        }
        assert_eq!(snapshot().total_allocs(), 0, "probe must restore state");
    }
}
