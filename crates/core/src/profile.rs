//! Workload profiling: measure what an epoch of sampling actually touches.
//!
//! The simulator never guesses sampled-subgraph sizes — they are measured by
//! running the real sampler on the replica graph. Profiling samples a few
//! batches (`profiled_batches`) and cycles their statistics over the epoch,
//! which matches how the paper reports per-epoch averages.

use neutron_graph::{degree, DatasetSpec, VertexId};
use neutron_nn::LayerKind;
use neutron_sample::{
    BatchIterator, Fanout, HotSet, HotnessRanking, NeighborSampler, PreSampler, SampleStats,
};
use std::collections::HashSet;

/// Sampling/model configuration of one experiment cell.
#[derive(Clone, Debug)]
pub struct WorkloadConfig {
    /// GNN architecture.
    pub kind: LayerKind,
    /// Model depth (paper default 3).
    pub layers: usize,
    /// Mini-batch size (paper default 1024).
    pub batch_size: usize,
    /// Hot-vertex ratio for NeutronOrch and the cache policies (paper
    /// explores 0.05–0.30; default 0.15).
    pub hot_ratio: f64,
    /// Batches per super-batch (`n` of §4.2; default 4).
    pub super_batch: usize,
    /// Batches actually sampled during profiling; the rest reuse their
    /// statistics round-robin.
    pub profiled_batches: usize,
    /// Seed for sampling/profiling.
    pub seed: u64,
    /// Overrides the §5.1 default fanout (used by Fig 7's fanout-4 study).
    pub fanout_override: Option<Vec<usize>>,
}

impl WorkloadConfig {
    /// The paper's default setup (§5.1): 3 layers, fanout [25,10,5],
    /// batch 1024.
    pub fn paper_default(kind: LayerKind) -> Self {
        Self {
            kind,
            layers: 3,
            batch_size: 1024,
            hot_ratio: 0.15,
            super_batch: 4,
            profiled_batches: 6,
            seed: 0xbeef,
            fanout_override: None,
        }
    }

    /// The fanout implied by `layers` (§5.1's [25,10,5,5…]), unless
    /// overridden.
    pub fn fanout(&self) -> Fanout {
        match &self.fanout_override {
            Some(f) => Fanout::new(f.clone()),
            None => Fanout::paper_default(self.layers),
        }
    }
}

/// Full 1-hop (unsampled) neighborhood statistics of a batch — the working
/// set GAS-style systems train on.
#[derive(Clone, Copy, Debug, Default)]
pub struct OneHopStats {
    /// Unique vertices in `batch ∪ N(batch)`.
    pub src: usize,
    /// Total in-edges of the batch vertices.
    pub edges: usize,
}

/// Measured workload of one (dataset, config) cell.
#[derive(Clone)]
pub struct WorkloadProfile {
    /// Replica dataset specification.
    pub spec: DatasetSpec,
    /// Experiment configuration.
    pub config: WorkloadConfig,
    /// Batches per epoch.
    pub num_batches: usize,
    /// Measured per-batch statistics (cycled when `num_batches` exceeds the
    /// profiled count). Hot/cold splits are against [`Self::hot`].
    pub per_batch: Vec<SampleStats>,
    /// Full 1-hop stats per profiled batch (GAS working sets).
    pub one_hop: Vec<OneHopStats>,
    /// Bottom-layer access frequencies from pre-sampling.
    pub hotness: HotnessRanking,
    /// The hot set at `config.hot_ratio`.
    pub hot: HotSet,
    /// Fraction of bottom-layer accesses covered by the hot set.
    pub hot_coverage: f64,
    /// Cumulative bottom-access coverage of the top-k vertices **by
    /// pre-sampling rank** (GNNLab cache curve); index k.
    pub presample_coverage: Vec<f64>,
    /// Same curve ranked **by degree** (PaGraph cache curve).
    pub degree_coverage: Vec<f64>,
    /// Average unique hot vertices appearing in a window of `super_batch`
    /// consecutive batches — the CPU's per-super-batch embedding workload.
    pub hot_per_super_batch: f64,
    /// Σ over hot vertices of min(degree, bottom fanout): one-hop sampled
    /// edges the CPU aggregates per embedding refresh.
    pub hot_one_hop_edges: u64,
    /// Replica vertex count.
    pub num_vertices: usize,
    /// Replica CSR topology bytes.
    pub topology_bytes: u64,
    /// Replica average degree.
    pub avg_degree: f64,
    /// Estimated **paper-scale** access-coverage curve: entry `i` is the
    /// fraction of bottom-layer accesses covered by caching/offloading the
    /// hottest `i/1000` of all vertices *at paper scale* (see
    /// [`WorkloadProfile::paper_coverage`]).
    pub paper_coverage_curve: Vec<f64>,
}

impl WorkloadProfile {
    /// Builds a profile by generating the replica graph and sampling
    /// `config.profiled_batches` real batches.
    pub fn build(spec: &DatasetSpec, config: &WorkloadConfig) -> Self {
        let ds = spec.build_topology();
        let fanout = config.fanout();
        let sampler = NeighborSampler::new(fanout.clone());
        let batches = BatchIterator::new(ds.train.clone(), config.batch_size, config.seed);
        let num_batches = batches.batches_per_epoch();
        let profiled = config.profiled_batches.clamp(1, num_batches);
        let epoch0 = batches.epoch_batches(0);

        // Pass 1: sample the profiled batches, keep blocks.
        let mut sampled_blocks = Vec::with_capacity(profiled);
        for (i, batch) in epoch0.iter().take(profiled).enumerate() {
            sampled_blocks.push(sampler.sample_batch(&ds.csr, batch, config.seed ^ (i as u64 + 1)));
        }

        // Hotness: GNNLab-style pre-sampling over one simulated epoch
        // (capped to the profiled batches for large replicas).
        let presampler = PreSampler::new(1);
        let pre_batches = BatchIterator::new(
            ds.train[..(profiled * config.batch_size).min(ds.train.len())].to_vec(),
            config.batch_size,
            config.seed ^ 77,
        );
        let mut hotness = presampler.estimate(&ds.csr, &sampler, &pre_batches, config.seed ^ 99);
        // Fold in the profiled batches' own accesses for stability.
        {
            let mut counts: Vec<u32> = (0..ds.csr.num_vertices() as u32)
                .map(|v| hotness.count(v))
                .collect();
            for blocks in &sampled_blocks {
                for &v in blocks[0].src() {
                    counts[v as usize] += 1;
                }
            }
            hotness = HotnessRanking::from_counts(counts);
        }
        let hot = hotness.hot_set(config.hot_ratio);
        let hot_coverage = hotness.access_coverage(&hot);

        // Per-batch stats with hot/cold split + GAS 1-hop working sets.
        let mut per_batch = Vec::with_capacity(profiled);
        let mut one_hop = Vec::with_capacity(profiled);
        for (i, blocks) in sampled_blocks.iter().enumerate() {
            per_batch.push(SampleStats::measure(blocks, Some(&hot)));
            let seeds = epoch0.batch(i);
            let mut uniq: HashSet<VertexId> = seeds.iter().copied().collect();
            let mut edges = 0usize;
            for &s in seeds {
                let n = ds.csr.neighbors(s);
                edges += n.len();
                uniq.extend(n.iter().copied());
            }
            one_hop.push(OneHopStats {
                src: uniq.len(),
                edges,
            });
        }

        // Coverage curves for the two static cache policies.
        let total_accesses: f64 = (0..ds.csr.num_vertices() as u32)
            .map(|v| hotness.count(v) as f64)
            .sum::<f64>()
            .max(1.0);
        let curve = |order: &[VertexId]| -> Vec<f64> {
            let mut cum = 0.0;
            let mut out = Vec::with_capacity(order.len() + 1);
            out.push(0.0);
            for &v in order {
                cum += hotness.count(v) as f64;
                out.push(cum / total_accesses);
            }
            out
        };
        let presample_coverage = curve(hotness.order());
        let degree_coverage = curve(&degree::vertices_by_degree_desc(&ds.csr));

        // Unique hot vertices per super-batch window.
        let window = config.super_batch.max(1);
        let mut windows = 0usize;
        let mut unique_sum = 0usize;
        let mut i = 0;
        while i < sampled_blocks.len() {
            let mut uniq: HashSet<VertexId> = HashSet::new();
            for blocks in sampled_blocks.iter().skip(i).take(window) {
                uniq.extend(blocks[0].src().iter().filter(|&&v| hot.contains(v)));
            }
            unique_sum += uniq.len();
            windows += 1;
            i += window;
        }
        let hot_per_super_batch = if windows > 0 {
            unique_sum as f64 / windows as f64
        } else {
            0.0
        };

        let bottom_fanout = fanout.at(0);
        let hot_one_hop_edges: u64 = hot
            .vertices()
            .iter()
            .map(|&v| ds.csr.degree(v).min(bottom_fanout) as u64)
            .sum();

        let paper_coverage_curve = paper_coverage_curve(&ds.csr, spec, config, &fanout);

        Self {
            spec: spec.clone(),
            config: config.clone(),
            num_batches,
            per_batch,
            one_hop,
            hotness,
            hot,
            hot_coverage,
            presample_coverage,
            degree_coverage,
            hot_per_super_batch,
            hot_one_hop_edges,
            num_vertices: ds.csr.num_vertices(),
            topology_bytes: ds.csr.topology_bytes(),
            avg_degree: ds.csr.avg_degree(),
            paper_coverage_curve,
        }
    }

    /// Estimated fraction of bottom-layer accesses covered by the hottest
    /// `ratio` of vertices **at paper scale**.
    ///
    /// Replica graphs saturate under 3-hop fanout-25 sampling (one batch
    /// reaches most of a 100k-vertex replica), flattening the measured skew
    /// that the full datasets exhibit. This estimator restores paper-scale
    /// skew analytically: a vertex is touched by a batch with probability
    /// `p(v) = 1 − exp(−c·deg(v))`, with `c` calibrated so the expected
    /// touched set matches the paper-scale bottom-layer size. The replica's
    /// degree distribution (same generator family) supplies the shape.
    pub fn paper_coverage(&self, ratio: f64) -> f64 {
        let ratio = ratio.clamp(0.0, 1.0);
        let idx = ratio * (self.paper_coverage_curve.len() - 1) as f64;
        let lo = idx.floor() as usize;
        let hi = (lo + 1).min(self.paper_coverage_curve.len() - 1);
        let frac = idx - lo as f64;
        self.paper_coverage_curve[lo] * (1.0 - frac) + self.paper_coverage_curve[hi] * frac
    }

    /// Clones the profile for a different GNN architecture. Sampling is
    /// architecture-independent, so the measured statistics carry over —
    /// only the FLOP accounting changes.
    pub fn with_kind(&self, kind: neutron_nn::LayerKind) -> WorkloadProfile {
        let mut p = self.clone();
        p.config.kind = kind;
        p
    }

    /// Stats of epoch batch `i` (cycled over the profiled set).
    pub fn stats(&self, i: usize) -> &SampleStats {
        &self.per_batch[i % self.per_batch.len()]
    }

    /// GAS 1-hop stats of batch `i`.
    pub fn one_hop_stats(&self, i: usize) -> OneHopStats {
        self.one_hop[i % self.one_hop.len()]
    }

    /// Coverage of a `k`-vertex cache under the presample ranking.
    pub fn presample_coverage_topk(&self, k: usize) -> f64 {
        self.presample_coverage[k.min(self.presample_coverage.len() - 1)]
    }

    /// Coverage of a `k`-vertex cache under the degree ranking.
    pub fn degree_coverage_topk(&self, k: usize) -> f64 {
        self.degree_coverage[k.min(self.degree_coverage.len() - 1)]
    }

    /// Seed count of batch `i` (the last batch may be short).
    pub fn seeds(&self, i: usize) -> usize {
        let train = (self.num_vertices as f64 * 0.65) as usize;
        let full = train / self.config.batch_size;
        if i < full {
            self.config.batch_size
        } else {
            (train - full * self.config.batch_size).max(1)
        }
    }
}

/// Builds the 1001-entry paper-scale coverage curve (see
/// [`WorkloadProfile::paper_coverage`]).
fn paper_coverage_curve(
    csr: &neutron_graph::Csr,
    spec: &DatasetSpec,
    config: &WorkloadConfig,
    fanout: &Fanout,
) -> Vec<f64> {
    // Paper-scale expected bottom-layer size via top-down expansion with
    // birthday dedup.
    let v_paper = spec.paper_vertices as f64;
    let mut dst = config.batch_size as f64;
    for l in (0..fanout.layers()).rev() {
        let picks = dst * (fanout.at(l) as f64 + 1.0);
        dst = picks.min(v_paper * (1.0 - (-picks / v_paper).exp()));
    }
    let target_fraction = (dst / v_paper).clamp(1e-6, 1.0);
    // Replica degree distribution, descending — the skew shape.
    let mut degs: Vec<f64> = (0..csr.num_vertices())
        .map(|v| csr.degree(v as u32) as f64)
        .collect();
    degs.sort_unstable_by(|a, b| b.partial_cmp(a).unwrap());
    if degs.is_empty() {
        return vec![0.0; 1001];
    }
    let n = degs.len() as f64;
    // Bisect c so that mean(1 − exp(−c·deg)) == target_fraction.
    let mean_p = |c: f64| degs.iter().map(|&d| 1.0 - (-c * d).exp()).sum::<f64>() / n;
    let (mut lo, mut hi) = (1e-12f64, 1e3f64);
    for _ in 0..80 {
        let mid = (lo * hi).sqrt();
        if mean_p(mid) < target_fraction {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    let c = (lo * hi).sqrt();
    let ps: Vec<f64> = degs.iter().map(|&d| 1.0 - (-c * d).exp()).collect();
    let total: f64 = ps.iter().sum::<f64>().max(1e-12);
    // Cumulative coverage at 1/1000 vertex-ratio granularity.
    let mut curve = Vec::with_capacity(1001);
    let mut cum = 0.0;
    let mut next = 0usize;
    for step in 0..=1000usize {
        let k = ((step as f64 / 1000.0) * n).round() as usize;
        while next < k.min(ps.len()) {
            cum += ps[next];
            next += 1;
        }
        curve.push(cum / total);
    }
    curve
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_profile() -> WorkloadProfile {
        let spec = DatasetSpec::tiny();
        let mut cfg = WorkloadConfig::paper_default(LayerKind::Gcn);
        cfg.batch_size = 64;
        cfg.layers = 2;
        cfg.profiled_batches = 3;
        WorkloadProfile::build(&spec, &cfg)
    }

    #[test]
    fn profile_measures_real_batches() {
        let p = tiny_profile();
        assert_eq!(p.per_batch.len(), 3);
        assert!(p.num_batches >= 3);
        for i in 0..p.per_batch.len() {
            assert_eq!(p.stats(i).layers.len(), 2);
            assert!(p.stats(i).layers[0].num_src >= p.stats(i).layers[1].num_src);
        }
        // Cycling beyond the profiled range works.
        let _ = p.stats(100);
        let _ = p.one_hop_stats(100);
    }

    #[test]
    fn coverage_curves_are_monotone_and_bounded() {
        let p = tiny_profile();
        for curve in [&p.presample_coverage, &p.degree_coverage] {
            assert!(curve.windows(2).all(|w| w[0] <= w[1] + 1e-12));
            assert!(*curve.last().unwrap() <= 1.0 + 1e-9);
            assert_eq!(curve[0], 0.0);
        }
        // Presample ranking is optimal for its own access counts.
        let k = p.num_vertices / 10;
        assert!(p.presample_coverage_topk(k) + 1e-9 >= p.degree_coverage_topk(k));
    }

    #[test]
    fn hot_set_matches_ratio_and_coverage_is_consistent() {
        let p = tiny_profile();
        let expect = (p.num_vertices as f64 * p.config.hot_ratio).round() as usize;
        assert_eq!(p.hot.len(), expect);
        let k = p.hot.len();
        assert!((p.hot_coverage - p.presample_coverage_topk(k)).abs() < 1e-9);
    }

    #[test]
    fn hot_super_batch_workload_is_bounded_by_hot_set() {
        let p = tiny_profile();
        assert!(p.hot_per_super_batch <= p.hot.len() as f64 + 1e-9);
        assert!(p.hot_one_hop_edges <= p.hot.len() as u64 * 25);
    }

    #[test]
    fn paper_coverage_is_monotone_and_skewed() {
        let p = tiny_profile();
        assert_eq!(p.paper_coverage(0.0), 0.0);
        assert!((p.paper_coverage(1.0) - 1.0).abs() < 1e-9);
        assert!(p.paper_coverage(0.3) >= p.paper_coverage(0.1));
        // Skew: the hottest 20% must cover more than 20% of accesses on a
        // graph with any degree variance.
        assert!(p.paper_coverage(0.2) >= 0.2);
    }

    #[test]
    fn paper_coverage_exceeds_replica_coverage_on_large_graphs() {
        // For a dataset whose paper graph is much larger than one batch's
        // reach, the analytic curve shows stronger skew than the saturated
        // replica measurement.
        let mut spec = DatasetSpec::papers100m_scaled();
        spec.vertices = 8_000;
        spec.edges = 112_000;
        let mut cfg = WorkloadConfig::paper_default(LayerKind::Gcn);
        cfg.profiled_batches = 2;
        let p = WorkloadProfile::build(&spec, &cfg);
        let k = (0.15 * p.num_vertices as f64) as usize;
        let replica_cov = p.presample_coverage_topk(k);
        assert!(
            p.paper_coverage(0.15) > replica_cov * 0.9,
            "paper {} vs replica {}",
            p.paper_coverage(0.15),
            replica_cov
        );
        assert!(p.paper_coverage(0.15) > 0.3, "BA skew should be strong");
    }

    #[test]
    fn seeds_respects_batch_boundaries() {
        let p = tiny_profile();
        assert_eq!(p.seeds(0), 64);
        let total: usize = (0..p.num_batches).map(|i| p.seeds(i)).sum();
        let train = (p.num_vertices as f64 * 0.65) as usize;
        assert_eq!(total, train);
    }
}
