//! Feature caching and historical-embedding storage.
//!
//! Three cache rankings compete in the paper's Fig 13:
//! - **Degree** (PaGraph): cache the highest-degree vertices,
//! - **PreSample** (GNNLab): cache the vertices pre-sampling found hottest,
//! - **Hybrid** (NeutronOrch §4.1.3): split the hot set between CPU
//!   embedding computation and GPU feature caching under a memory budget.
//!
//! [`embedding_store::EmbeddingStore`] is the versioned historical-embedding
//! store behind NeutronOrch's bounded staleness: every read reports its
//! version gap, and the store can enforce a hard bound (§4.2.2's `2n`).

pub mod embedding_store;
pub mod feature_cache;
pub mod hybrid;
pub mod policy;

pub use embedding_store::{EmbeddingStore, StaleReadError, StoreSnapshot};
pub use feature_cache::FeatureCache;
pub use hybrid::{HybridPlan, HybridPolicy};
pub use policy::{CachePolicy, CacheRanking};
