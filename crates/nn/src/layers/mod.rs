//! GNN layers over sampled blocks.

pub mod gat;
pub mod gcn;
pub mod sage;

use crate::param::Param;
use neutron_sample::Block;
use neutron_tensor::Matrix;

pub use gat::{GatCtx, GatLayer};
pub use gcn::{GcnCtx, GcnLayer};
pub use sage::{SageCtx, SageLayer};

/// Which GNN architecture a layer (or model) uses.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum LayerKind {
    /// Graph Convolutional Network (Kipf & Welling) — mean aggregation
    /// including self, single weight matrix.
    Gcn,
    /// GraphSAGE (Hamilton et al.) — separate self/neighbor weights, mean
    /// aggregator.
    Sage,
    /// Graph Attention Network (Veličković et al.) — additive single-head
    /// attention.
    Gat,
}

impl LayerKind {
    /// Display name matching the paper's figures.
    pub fn name(&self) -> &'static str {
        match self {
            LayerKind::Gcn => "GCN",
            LayerKind::Sage => "GraphSAGE",
            LayerKind::Gat => "GAT",
        }
    }

    /// All three evaluated models.
    pub const ALL: [LayerKind; 3] = [LayerKind::Gcn, LayerKind::Sage, LayerKind::Gat];
}

/// A concrete GNN layer.
#[derive(Clone, Debug)]
pub enum Layer {
    Gcn(GcnLayer),
    Sage(SageLayer),
    Gat(GatLayer),
}

/// Saved intermediates of a layer's forward pass.
pub enum LayerCtx {
    Gcn(GcnCtx),
    Sage(SageCtx),
    Gat(GatCtx),
}

impl Layer {
    /// Builds a layer of `kind` with the given dims and init seed.
    /// `last` selects the output nonlinearity (identity on the final layer).
    pub fn new(kind: LayerKind, in_dim: usize, out_dim: usize, last: bool, seed: u64) -> Self {
        match kind {
            LayerKind::Gcn => Layer::Gcn(GcnLayer::new(in_dim, out_dim, last, seed)),
            LayerKind::Sage => Layer::Sage(SageLayer::new(in_dim, out_dim, last, seed)),
            LayerKind::Gat => Layer::Gat(GatLayer::new(in_dim, out_dim, last, seed)),
        }
    }

    /// Forward pass: `input` has one row per `block.src()` vertex; the
    /// output has one row per `block.dst()` vertex.
    pub fn forward(&self, block: &Block, input: &Matrix) -> (Matrix, LayerCtx) {
        match self {
            Layer::Gcn(l) => {
                let (out, ctx) = l.forward(block, input);
                (out, LayerCtx::Gcn(ctx))
            }
            Layer::Sage(l) => {
                let (out, ctx) = l.forward(block, input);
                (out, LayerCtx::Sage(ctx))
            }
            Layer::Gat(l) => {
                let (out, ctx) = l.forward(block, input);
                (out, LayerCtx::Gat(ctx))
            }
        }
    }

    /// Backward pass: consumes the forward ctx, accumulates parameter
    /// gradients, and returns `∂L/∂input` (one row per src vertex).
    pub fn backward(&mut self, block: &Block, ctx: LayerCtx, d_out: &Matrix) -> Matrix {
        match (self, ctx) {
            (Layer::Gcn(l), LayerCtx::Gcn(c)) => l.backward(block, c, d_out),
            (Layer::Sage(l), LayerCtx::Sage(c)) => l.backward(block, c, d_out),
            (Layer::Gat(l), LayerCtx::Gat(c)) => l.backward(block, c, d_out),
            _ => panic!("layer/ctx kind mismatch"),
        }
    }

    /// Immutable views of the layer's parameters.
    pub fn params(&self) -> Vec<&Param> {
        match self {
            Layer::Gcn(l) => l.params(),
            Layer::Sage(l) => l.params(),
            Layer::Gat(l) => l.params(),
        }
    }

    /// Mutable views of the layer's parameters (optimizer entry point).
    pub fn params_mut(&mut self) -> Vec<&mut Param> {
        match self {
            Layer::Gcn(l) => l.params_mut(),
            Layer::Sage(l) => l.params_mut(),
            Layer::Gat(l) => l.params_mut(),
        }
    }

    /// Input dimension.
    pub fn in_dim(&self) -> usize {
        match self {
            Layer::Gcn(l) => l.in_dim(),
            Layer::Sage(l) => l.in_dim(),
            Layer::Gat(l) => l.in_dim(),
        }
    }

    /// Output dimension.
    pub fn out_dim(&self) -> usize {
        match self {
            Layer::Gcn(l) => l.out_dim(),
            Layer::Sage(l) => l.out_dim(),
            Layer::Gat(l) => l.out_dim(),
        }
    }

    /// The architecture of this layer.
    pub fn kind(&self) -> LayerKind {
        match self {
            Layer::Gcn(_) => LayerKind::Gcn,
            Layer::Sage(_) => LayerKind::Sage,
            Layer::Gat(_) => LayerKind::Gat,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use neutron_tensor::init;

    fn toy_block() -> Block {
        // dst [0,1]; src [0,1,2]; 0 ← {1,2}, 1 ← {2}.
        Block::new(vec![0, 1], vec![0, 1, 2], vec![0, 2, 3], vec![1, 2, 2])
    }

    #[test]
    fn all_kinds_produce_correct_shapes() {
        let block = toy_block();
        let input = init::uniform(3, 5, -1.0, 1.0, 1);
        for kind in LayerKind::ALL {
            let layer = Layer::new(kind, 5, 4, false, 2);
            let (out, _ctx) = layer.forward(&block, &input);
            assert_eq!(out.shape(), (2, 4), "{kind:?}");
            assert!(out.all_finite());
        }
    }

    #[test]
    fn backward_returns_src_shaped_gradient() {
        let block = toy_block();
        let input = init::uniform(3, 5, -1.0, 1.0, 3);
        for kind in LayerKind::ALL {
            let mut layer = Layer::new(kind, 5, 4, false, 4);
            let (out, ctx) = layer.forward(&block, &input);
            let d_out = Matrix::full(out.rows(), out.cols(), 1.0);
            let d_in = layer.backward(&block, ctx, &d_out);
            assert_eq!(d_in.shape(), input.shape(), "{kind:?}");
            assert!(d_in.all_finite());
        }
    }

    #[test]
    fn kind_names_match_paper() {
        assert_eq!(LayerKind::Gcn.name(), "GCN");
        assert_eq!(LayerKind::Sage.name(), "GraphSAGE");
        assert_eq!(LayerKind::Gat.name(), "GAT");
    }
}
