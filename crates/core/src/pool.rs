//! The recycled per-batch buffer bundle that makes the steady-state epoch
//! (near) allocation-free.
//!
//! Every stage of the pipeline used to allocate its working vectors fresh
//! per batch — block component buffers in the sampler, hit/miss position
//! lists and the miss matrix in the gather stage, the assembled feature
//! buffer in the train stage. [`BatchBuffers`] bundles all of that spent
//! capacity so it can flow *backwards* through the engine: after a batch
//! trains, its buffers are dismantled into a `BatchBuffers` and sent down a
//! bounded return channel to the sampler workers, which refill them for a
//! future batch. A batch whose bundle is missing (cold start, pool
//! exhausted) simply allocates — the pooled code paths are value-identical
//! to the allocating ones, only the capacity source differs.

use neutron_sample::{Block, BlockBuilder, BlockParts};
use neutron_tensor::Matrix;

/// A bundle of spent, reusable buffers covering one in-flight batch.
/// Contents of every buffer are stale garbage; only capacity matters.
#[derive(Debug, Default)]
pub struct BatchBuffers {
    /// Emptied block stacks (one per recycled batch).
    pub stacks: Vec<Vec<Block>>,
    /// Spent block component buffers (one per recycled block).
    pub parts: Vec<BlockParts>,
    /// Spent `f32` row buffers (miss / assembled feature matrices).
    pub f32_bufs: Vec<Vec<f32>>,
    /// Spent `u32` position buffers (hit / miss lists).
    pub pos_bufs: Vec<Vec<u32>>,
}

impl BatchBuffers {
    /// An empty bundle (the allocating fallback).
    pub fn new() -> Self {
        Self::default()
    }

    /// Pops a cleared `f32` buffer, or a fresh one if none is spare.
    pub fn take_f32(&mut self) -> Vec<f32> {
        let mut buf = self.f32_bufs.pop().unwrap_or_default();
        buf.clear();
        buf
    }

    /// Pops a recycled matrix shell (cleared buffer, 0x0 shape) for an
    /// `*_into` gather, or an empty one if none is spare.
    pub fn take_matrix(&mut self) -> Matrix {
        Matrix::from_vec(0, 0, self.take_f32())
    }

    /// Pops a cleared position buffer, or a fresh one if none is spare.
    pub fn take_pos(&mut self) -> Vec<u32> {
        let mut buf = self.pos_bufs.pop().unwrap_or_default();
        buf.clear();
        buf
    }

    /// Returns a spent `f32` buffer to the bundle.
    pub fn put_f32(&mut self, buf: Vec<f32>) {
        self.f32_bufs.push(buf);
    }

    /// Returns a spent position buffer to the bundle.
    pub fn put_pos(&mut self, buf: Vec<u32>) {
        self.pos_bufs.push(buf);
    }

    /// Dismantles a trained batch's block stack into this bundle.
    pub fn recycle_blocks(&mut self, mut blocks: Vec<Block>) {
        for block in blocks.drain(..) {
            self.parts.push(block.into_parts());
        }
        self.stacks.push(blocks);
    }

    /// Hands the sampler-side spares (block parts and stacks) to a worker's
    /// [`BlockBuilder`], keeping the gather-side buffers in the bundle.
    pub fn donate_to(&mut self, builder: &mut BlockBuilder) {
        for parts in self.parts.drain(..) {
            builder.donate_parts(parts);
        }
        for stack in self.stacks.drain(..) {
            builder.donate_stack(stack);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buffers_round_trip_and_come_back_cleared() {
        let mut bufs = BatchBuffers::new();
        assert!(bufs.take_f32().is_empty());
        assert!(bufs.take_pos().is_empty());

        bufs.put_f32(vec![1.0, 2.0, 3.0]);
        bufs.put_pos(vec![7, 8]);
        let f = bufs.take_f32();
        assert!(f.is_empty() && f.capacity() >= 3, "stale data must clear");
        let p = bufs.take_pos();
        assert!(p.is_empty() && p.capacity() >= 2);

        bufs.put_f32(vec![4.0; 5]);
        let m = bufs.take_matrix();
        assert_eq!(m.shape(), (0, 0));

        let block = Block::new(vec![1], vec![1, 2], vec![0, 1], vec![1]);
        bufs.recycle_blocks(vec![block]);
        assert_eq!(bufs.parts.len(), 1);
        assert_eq!(bufs.stacks.len(), 1);
        let mut builder = BlockBuilder::new();
        bufs.donate_to(&mut builder);
        assert!(bufs.parts.is_empty() && bufs.stacks.is_empty());
    }
}
