//! Hotness rankings and hot-vertex sets (§4.1.2).

use neutron_graph::VertexId;

/// Per-vertex access frequencies plus the descending-hotness order.
#[derive(Clone, Debug)]
pub struct HotnessRanking {
    counts: Vec<u32>,
    order: Vec<VertexId>,
}

impl HotnessRanking {
    /// Builds a ranking from raw access counts (index = vertex id).
    pub fn from_counts(counts: Vec<u32>) -> Self {
        let mut order: Vec<VertexId> = (0..counts.len() as u32).collect();
        // Stable tie-break on vertex id keeps rankings deterministic.
        order.sort_by_key(|&v| (std::cmp::Reverse(counts[v as usize]), v));
        Self { counts, order }
    }

    /// Access count of vertex `v`.
    pub fn count(&self, v: VertexId) -> u32 {
        self.counts[v as usize]
    }

    /// All vertices in descending hotness order.
    pub fn order(&self) -> &[VertexId] {
        &self.order
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.counts.len()
    }

    /// Selects the hottest `ratio` fraction of vertices ("hot vertex ratio",
    /// §4.1.2; the paper reports datasets supporting 10%–30%).
    pub fn hot_set(&self, ratio: f64) -> HotSet {
        assert!((0.0..=1.0).contains(&ratio), "ratio {ratio} out of [0,1]");
        let k = (self.counts.len() as f64 * ratio).round() as usize;
        let hot: Vec<VertexId> = self.order[..k.min(self.order.len())].to_vec();
        let mut is_hot = vec![false; self.counts.len()];
        for &v in &hot {
            is_hot[v as usize] = true;
        }
        HotSet { hot, is_hot, ratio }
    }

    /// Fraction of all recorded accesses that fall on the given hot set —
    /// the cache-hit / CPU-reuse rate that the orchestrators feed into the
    /// cost model.
    pub fn access_coverage(&self, hot: &HotSet) -> f64 {
        let total: u64 = self.counts.iter().map(|&c| c as u64).sum();
        if total == 0 {
            return 0.0;
        }
        let covered: u64 = hot
            .hot
            .iter()
            .map(|&v| self.counts[v as usize] as u64)
            .sum();
        covered as f64 / total as f64
    }
}

/// A selected set of hot vertices.
#[derive(Clone, Debug)]
pub struct HotSet {
    hot: Vec<VertexId>,
    is_hot: Vec<bool>,
    ratio: f64,
}

impl HotSet {
    /// Hot vertices in descending hotness order.
    pub fn vertices(&self) -> &[VertexId] {
        &self.hot
    }

    /// Number of hot vertices.
    pub fn len(&self) -> usize {
        self.hot.len()
    }

    /// True if no vertices are hot.
    pub fn is_empty(&self) -> bool {
        self.hot.is_empty()
    }

    /// Membership test.
    #[inline]
    pub fn contains(&self, v: VertexId) -> bool {
        self.is_hot[v as usize]
    }

    /// The ratio this set was selected with.
    pub fn ratio(&self) -> f64 {
        self.ratio
    }

    /// Splits the hot set into a CPU-computed prefix and GPU-cached suffix
    /// at `cpu_fraction` — the §4.1.3 hybrid worklist split. The hottest
    /// vertices go to the CPU: their embeddings are reused most often, so
    /// computing them once per super-batch saves the most GPU work.
    pub fn split_cpu_gpu(&self, cpu_fraction: f64) -> (Vec<VertexId>, Vec<VertexId>) {
        assert!((0.0..=1.0).contains(&cpu_fraction));
        let k = (self.hot.len() as f64 * cpu_fraction).round() as usize;
        (self.hot[..k].to_vec(), self.hot[k..].to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn order_is_descending_with_stable_ties() {
        let r = HotnessRanking::from_counts(vec![3, 9, 9, 1]);
        assert_eq!(r.order(), &[1, 2, 0, 3]);
    }

    #[test]
    fn hot_set_selects_top_ratio() {
        let r = HotnessRanking::from_counts(vec![5, 1, 10, 0, 7]);
        let hot = r.hot_set(0.4);
        assert_eq!(hot.len(), 2);
        assert!(hot.contains(2));
        assert!(hot.contains(4));
        assert!(!hot.contains(0));
    }

    #[test]
    fn coverage_is_share_of_accesses() {
        let r = HotnessRanking::from_counts(vec![8, 1, 1]);
        let hot = r.hot_set(1.0 / 3.0);
        assert!((r.access_coverage(&hot) - 0.8).abs() < 1e-9);
    }

    #[test]
    fn ratio_zero_and_one_edge_cases() {
        let r = HotnessRanking::from_counts(vec![1, 2, 3]);
        assert!(r.hot_set(0.0).is_empty());
        assert_eq!(r.hot_set(1.0).len(), 3);
        assert!((r.access_coverage(&r.hot_set(1.0)) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn cpu_gpu_split_partitions_hot_set() {
        let r = HotnessRanking::from_counts(vec![4, 3, 2, 1]);
        let hot = r.hot_set(1.0);
        let (cpu, gpu) = hot.split_cpu_gpu(0.5);
        assert_eq!(cpu, vec![0, 1]);
        assert_eq!(gpu, vec![2, 3]);
        let (all_cpu, none) = hot.split_cpu_gpu(1.0);
        assert_eq!(all_cpu.len(), 4);
        assert!(none.is_empty());
    }
}
