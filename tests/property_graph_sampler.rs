//! Property tests: CSR invariants and neighbor-sampler guarantees under
//! randomly generated graphs and batches.

use neutronorch::graph::{Csr, GraphBuilder, VertexId};
use neutronorch::sample::{Block, Fanout, NeighborSampler, SamplerScratch};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::collections::HashMap;

/// The historical `HashMap`-deduplicated one-hop path, kept verbatim as the
/// reference the dense-scratch rewrite must reproduce block-for-block (same
/// local index assignment order, same rng consumption).
fn reference_one_hop(g: &Csr, frontier: &[VertexId], fanout: usize, rng: &mut StdRng) -> Block {
    let dst: Vec<VertexId> = frontier.to_vec();
    let mut src: Vec<VertexId> = dst.clone();
    let mut local: HashMap<VertexId, u32> = dst
        .iter()
        .enumerate()
        .map(|(i, &v)| (v, i as u32))
        .collect();
    let mut offsets = Vec::with_capacity(dst.len() + 1);
    offsets.push(0u32);
    let mut indices = Vec::with_capacity(dst.len() * fanout);
    for &v in &dst {
        let picks = reference_distinct_neighbors(g, v, fanout, rng);
        for &u in &picks {
            let next = src.len() as u32;
            let idx = *local.entry(u).or_insert_with(|| {
                src.push(u);
                next
            });
            indices.push(idx);
        }
        offsets.push(indices.len() as u32);
    }
    Block::new(dst, src, offsets, indices)
}

fn reference_distinct_neighbors(
    g: &Csr,
    v: VertexId,
    fanout: usize,
    rng: &mut StdRng,
) -> Vec<VertexId> {
    let neigh = g.neighbors(v);
    if neigh.len() <= fanout {
        return neigh.to_vec();
    }
    let n = neigh.len();
    let k = fanout;
    let mut chosen: Vec<usize> = Vec::with_capacity(k);
    for j in (n - k)..n {
        let t = rng.random_range(0..=j);
        if chosen.contains(&t) {
            chosen.push(j);
        } else {
            chosen.push(t);
        }
    }
    chosen.into_iter().map(|i| neigh[i]).collect()
}

/// Strategy: a random edge list over `n` vertices.
fn edges(max_v: usize, max_e: usize) -> impl Strategy<Value = (usize, Vec<(u32, u32)>)> {
    (2..max_v).prop_flat_map(move |n| {
        let edge = (0..n as u32, 0..n as u32);
        (Just(n), proptest::collection::vec(edge, 0..max_e))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn built_graphs_always_validate((n, es) in edges(64, 256)) {
        let mut b = GraphBuilder::new(n);
        for (s, d) in &es {
            b.add_edge(*s, *d);
        }
        let g = b.build();
        prop_assert!(g.validate().is_ok());
        // Dedup + self-loop removal can only shrink.
        prop_assert!(g.num_edges() <= es.len());
        // No self loops survive.
        for v in 0..n as u32 {
            prop_assert!(!g.neighbors(v).contains(&v));
        }
    }

    #[test]
    fn reverse_preserves_edge_multiset((n, es) in edges(48, 200)) {
        let mut b = GraphBuilder::new(n);
        for (s, d) in &es {
            b.add_edge(*s, *d);
        }
        let g = b.build();
        let rr = g.reverse().reverse();
        prop_assert_eq!(g.num_edges(), rr.num_edges());
        for v in 0..n as u32 {
            let mut a = g.neighbors(v).to_vec();
            let mut c = rr.neighbors(v).to_vec();
            a.sort_unstable();
            c.sort_unstable();
            prop_assert_eq!(a, c);
        }
    }

    #[test]
    fn sampler_respects_fanout_and_universe(
        (n, es) in edges(48, 400),
        fanout in 1usize..6,
        layers in 1usize..4,
        seed in any::<u64>(),
    ) {
        let mut b = GraphBuilder::new(n);
        for (s, d) in &es {
            b.add_edge(*s, *d);
        }
        let g: Csr = b.build();
        let seeds: Vec<u32> = (0..(n as u32).min(5)).collect();
        let sampler = NeighborSampler::new(Fanout::new(vec![fanout; layers]));
        let blocks = sampler.sample_batch(&g, &seeds, seed);
        prop_assert_eq!(blocks.len(), layers);
        // Chaining: each block's dst equals the upper block's src.
        for w in blocks.windows(2) {
            prop_assert_eq!(w[0].dst(), w[1].src());
        }
        prop_assert_eq!(blocks.last().unwrap().dst(), &seeds[..]);
        for block in &blocks {
            prop_assert!(block.validate().is_ok());
            for i in 0..block.num_dst() {
                let v = block.dst()[i];
                prop_assert!(block.sampled_degree(i) <= fanout);
                prop_assert!(block.sampled_degree(i) <= g.degree(v));
                // All sampled neighbors are true neighbors.
                for &li in block.neighbors_local(i) {
                    let u = block.src()[li as usize];
                    prop_assert!(g.neighbors(v).contains(&u));
                }
            }
        }
    }

    #[test]
    fn sampling_is_deterministic_per_seed((n, es) in edges(32, 150), seed in any::<u64>()) {
        let mut b = GraphBuilder::new(n);
        for (s, d) in &es {
            b.add_edge(*s, *d);
        }
        let g = b.build();
        let sampler = NeighborSampler::new(Fanout::new(vec![3, 3]));
        let seeds: Vec<u32> = vec![0, (n as u32 - 1).min(7)];
        let a = sampler.sample_batch(&g, &seeds, seed);
        let bb = sampler.sample_batch(&g, &seeds, seed);
        for (x, y) in a.iter().zip(&bb) {
            prop_assert_eq!(x.src(), y.src());
            prop_assert_eq!(x.num_edges(), y.num_edges());
        }
    }

    /// The dense-scratch dedup path produces blocks *identical* to the old
    /// per-call `HashMap` path — same dst/src order, offsets and local
    /// indices — for any graph, frontier, fanout and seed, including when
    /// one scratch is reused across consecutive hops.
    #[test]
    fn scratch_path_identical_to_hashmap_path(
        (n, es) in edges(48, 400),
        fanout in 1usize..6,
        seed in any::<u64>(),
        hops in 1usize..4,
    ) {
        let mut b = GraphBuilder::new(n);
        for (s, d) in &es {
            b.add_edge(*s, *d);
        }
        let g = b.build();
        let sampler = NeighborSampler::new(Fanout::new(vec![fanout]));
        let mut scratch = SamplerScratch::new();
        let mut ref_rng = StdRng::seed_from_u64(seed);
        let mut new_rng = StdRng::seed_from_u64(seed);
        let mut frontier: Vec<u32> = (0..(n as u32).min(6)).collect();
        for hop in 0..hops {
            let want = reference_one_hop(&g, &frontier, fanout, &mut ref_rng);
            let got = sampler.sample_one_hop_with_scratch(
                &g, &frontier, fanout, &mut new_rng, &mut scratch,
            );
            prop_assert_eq!(got.dst(), want.dst(), "hop {} dst", hop);
            prop_assert_eq!(got.src(), want.src(), "hop {} src", hop);
            prop_assert_eq!(got.num_edges(), want.num_edges(), "hop {} edges", hop);
            for i in 0..want.num_dst() {
                prop_assert_eq!(
                    got.neighbors_local(i),
                    want.neighbors_local(i),
                    "hop {} dst {} local indices",
                    hop,
                    i
                );
            }
            frontier = want.src().to_vec();
        }
    }
}
