//! Finite-difference gradient checking.
//!
//! The backward passes in this crate are hand-derived; these utilities
//! compare every parameter gradient and the input gradient against central
//! finite differences of the scalar loss. The GAT edge-softmax backward in
//! particular is only trustworthy because of these checks.

use crate::layers::{Layer, LayerKind};
use crate::loss::cross_entropy;
use neutron_sample::Block;
use neutron_tensor::Matrix;

/// Scalar loss of a single layer followed by cross-entropy on its output.
fn layer_loss(layer: &Layer, block: &Block, input: &Matrix, labels: &[usize]) -> f32 {
    let (out, _) = layer.forward(block, input);
    cross_entropy(&out, labels).loss
}

/// Maximum relative error between analytic and numeric gradients for one
/// layer on one block. Returns `(max_param_err, max_input_err)`.
pub fn check_layer(
    kind: LayerKind,
    block: &Block,
    input: &Matrix,
    labels: &[usize],
    seed: u64,
) -> (f32, f32) {
    let out_dim = labels.iter().copied().max().unwrap_or(0) + 2;
    let mut layer = Layer::new(kind, input.cols(), out_dim, true, seed);
    // Analytic gradients.
    let (out, ctx) = layer.forward(block, input);
    let lr = cross_entropy(&out, labels);
    let d_input = layer.backward(block, ctx, &lr.d_logits);
    let analytic_params: Vec<Matrix> = layer.params().iter().map(|p| p.grad.clone()).collect();

    // Step size balances f32 cancellation noise (pushes h up) against
    // truncation error at LeakyReLU kinks in the GAT attention path (pushes
    // h down): at 1e-2 a kink inside the ±h window inflates the numeric
    // gradient of nearby parameters past the 2e-2 tolerance.
    let h = 5e-3f32;
    let mut max_param_err = 0.0f32;
    for (pi, analytic) in analytic_params.iter().enumerate() {
        for r in 0..analytic.rows() {
            for c in 0..analytic.cols() {
                let orig = layer.params()[pi].value.get(r, c);
                layer.params_mut()[pi].value.set(r, c, orig + h);
                let lp = layer_loss(&layer, block, input, labels);
                layer.params_mut()[pi].value.set(r, c, orig - h);
                let lm = layer_loss(&layer, block, input, labels);
                layer.params_mut()[pi].value.set(r, c, orig);
                let numeric = (lp - lm) / (2.0 * h);
                let denom = 1.0f32.max(numeric.abs()).max(analytic.get(r, c).abs());
                max_param_err = max_param_err.max((analytic.get(r, c) - numeric).abs() / denom);
            }
        }
    }
    let mut max_input_err = 0.0f32;
    let mut input_var = input.clone();
    for r in 0..input.rows() {
        for c in 0..input.cols() {
            let orig = input_var.get(r, c);
            input_var.set(r, c, orig + h);
            let lp = layer_loss(&layer, block, &input_var, labels);
            input_var.set(r, c, orig - h);
            let lm = layer_loss(&layer, block, &input_var, labels);
            input_var.set(r, c, orig);
            let numeric = (lp - lm) / (2.0 * h);
            let denom = 1.0f32.max(numeric.abs()).max(d_input.get(r, c).abs());
            max_input_err = max_input_err.max((d_input.get(r, c) - numeric).abs() / denom);
        }
    }
    (max_param_err, max_input_err)
}

#[cfg(test)]
mod tests {
    use super::*;
    use neutron_tensor::init;

    fn toy_block() -> Block {
        // dst [0,1,2]; src [0..5]; varied degrees including zero.
        Block::new(
            vec![0, 1, 2],
            vec![0, 1, 2, 3, 4],
            vec![0, 2, 3, 3],
            vec![3, 4, 4],
        )
    }

    fn check(kind: LayerKind) {
        let block = toy_block();
        let input = init::uniform(5, 4, -1.0, 1.0, 99);
        let labels = [1usize, 0, 2];
        let (p_err, i_err) = check_layer(kind, &block, &input, &labels, 5);
        assert!(p_err < 2e-2, "{kind:?} param gradient error {p_err}");
        assert!(i_err < 2e-2, "{kind:?} input gradient error {i_err}");
    }

    #[test]
    fn gcn_gradients_match_finite_difference() {
        check(LayerKind::Gcn);
    }

    #[test]
    fn sage_gradients_match_finite_difference() {
        check(LayerKind::Sage);
    }

    #[test]
    fn gat_gradients_match_finite_difference() {
        check(LayerKind::Gat);
    }
}
