//! Optimizers.

pub mod adam;
pub mod sgd;

pub use adam::{Adam, AdamState};
pub use sgd::Sgd;

use crate::param::Param;

/// A first-order optimizer stepping a parameter list in place.
///
/// Parameters must be passed in a stable order across steps (Adam keeps
/// per-slot moment state).
pub trait Optimizer {
    /// Applies one update step from the accumulated gradients.
    fn step(&mut self, params: &mut [&mut Param]);

    /// The current learning rate.
    fn learning_rate(&self) -> f32;
}
