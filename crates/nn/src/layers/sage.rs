//! GraphSAGE layer with mean aggregator.
//!
//! Forward, per destination vertex `v`:
//! ```text
//! n_v   = mean(h_u, u ∈ N(v))          (zero vector if no sampled neighbors)
//! z_v   = h_v · W_self + n_v · W_neigh + b
//! out_v = σ(z_v)
//! ```

use crate::param::Param;
use neutron_sample::Block;
use neutron_tensor::timing::{self, Kernel};
use neutron_tensor::{init, kernels, ops, Activation, Matrix};

/// A GraphSAGE-mean layer (`in_dim → out_dim`).
#[derive(Clone, Debug)]
pub struct SageLayer {
    w_self: Param,
    w_neigh: Param,
    bias: Param,
    activation: Activation,
}

/// Forward intermediates of a [`SageLayer`].
pub struct SageCtx {
    /// Self inputs (num_dst × in_dim) — a copy of the src-prefix rows.
    self_rows: Matrix,
    /// Mean-aggregated neighbor inputs (num_dst × in_dim).
    neigh: Matrix,
    /// Pre-activation outputs.
    z: Matrix,
}

impl SageLayer {
    /// Creates a layer; `last` layers use identity output activation.
    pub fn new(in_dim: usize, out_dim: usize, last: bool, seed: u64) -> Self {
        Self {
            w_self: Param::new(init::xavier_uniform(in_dim, out_dim, seed)),
            w_neigh: Param::new(init::xavier_uniform(in_dim, out_dim, seed ^ 0xa5a5)),
            bias: Param::new(Matrix::zeros(1, out_dim)),
            activation: if last {
                Activation::Identity
            } else {
                Activation::Relu
            },
        }
    }

    /// Neighbor-mean aggregation (self excluded).
    pub fn aggregate_neighbors(block: &Block, input: &Matrix) -> Matrix {
        let t0 = timing::start();
        let mut agg = Matrix::zeros(block.num_dst(), input.cols());
        for i in 0..block.num_dst() {
            let deg = block.sampled_degree(i);
            if deg == 0 {
                continue;
            }
            let norm = 1.0 / deg as f32;
            for &li in block.neighbors_local(i) {
                kernels::axpy(agg.row_mut(i), norm, input.row(li as usize));
            }
        }
        timing::stop(Kernel::Aggregate, t0);
        agg
    }

    /// Forward pass.
    pub fn forward(&self, block: &Block, input: &Matrix) -> (Matrix, SageCtx) {
        assert_eq!(input.rows(), block.num_src());
        let self_rows = input.gather_rows(&(0..block.num_dst()).collect::<Vec<_>>());
        let neigh = Self::aggregate_neighbors(block, input);
        let mut z = ops::matmul(&self_rows, &self.w_self.value);
        ops::add_assign(&mut z, &ops::matmul(&neigh, &self.w_neigh.value));
        ops::add_bias_row(&mut z, &self.bias.value);
        let out = self.activation.forward(&z);
        (
            out,
            SageCtx {
                self_rows,
                neigh,
                z,
            },
        )
    }

    /// Backward pass; returns `∂L/∂input`.
    pub fn backward(&mut self, block: &Block, ctx: SageCtx, d_out: &Matrix) -> Matrix {
        let dz = self.activation.backward(&ctx.z, d_out);
        ops::add_assign(
            &mut self.w_self.grad,
            &ops::matmul_at_b(&ctx.self_rows, &dz),
        );
        ops::add_assign(&mut self.w_neigh.grad, &ops::matmul_at_b(&ctx.neigh, &dz));
        ops::add_assign(&mut self.bias.grad, &ops::sum_rows(&dz));
        let d_self = ops::matmul_a_bt(&dz, &self.w_self.value);
        let d_neigh = ops::matmul_a_bt(&dz, &self.w_neigh.value);
        let t0 = timing::start();
        let mut d_in = Matrix::zeros(block.num_src(), self.in_dim());
        for i in 0..block.num_dst() {
            kernels::add_assign_slice(d_in.row_mut(i), d_self.row(i));
            let deg = block.sampled_degree(i);
            if deg == 0 {
                continue;
            }
            let norm = 1.0 / deg as f32;
            let g = d_neigh.row(i);
            for &li in block.neighbors_local(i) {
                kernels::axpy(d_in.row_mut(li as usize), norm, g);
            }
        }
        timing::stop(Kernel::Aggregate, t0);
        d_in
    }

    /// Parameter views.
    pub fn params(&self) -> Vec<&Param> {
        vec![&self.w_self, &self.w_neigh, &self.bias]
    }

    /// Mutable parameter views.
    pub fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![&mut self.w_self, &mut self.w_neigh, &mut self.bias]
    }

    /// Input dimension.
    pub fn in_dim(&self) -> usize {
        self.w_self.value.rows()
    }

    /// Output dimension.
    pub fn out_dim(&self) -> usize {
        self.w_self.value.cols()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_block() -> Block {
        Block::new(vec![0, 1], vec![0, 1, 2], vec![0, 2, 3], vec![1, 2, 2])
    }

    #[test]
    fn neighbor_mean_excludes_self() {
        let block = toy_block();
        let input = Matrix::from_rows(&[&[1.0], &[2.0], &[4.0]]);
        let agg = SageLayer::aggregate_neighbors(&block, &input);
        assert_eq!(agg.get(0, 0), 3.0); // mean(2, 4)
        assert_eq!(agg.get(1, 0), 4.0); // mean(4)
    }

    #[test]
    fn no_neighbors_gives_zero_aggregate() {
        let block = Block::new(vec![0], vec![0], vec![0, 0], vec![]);
        let input = Matrix::from_rows(&[&[7.0, 7.0]]);
        let agg = SageLayer::aggregate_neighbors(&block, &input);
        assert_eq!(agg.row(0), &[0.0, 0.0]);
    }

    #[test]
    fn forward_uses_both_weight_matrices() {
        let block = toy_block();
        let input = init::uniform(3, 3, -1.0, 1.0, 1);
        let layer = SageLayer::new(3, 2, true, 2);
        let (out, _) = layer.forward(&block, &input);
        // Zeroing W_neigh must change the output (neighbors matter).
        let mut layer2 = layer.clone();
        layer2.w_neigh.value.fill_zero();
        let (out2, _) = layer2.forward(&block, &input);
        assert_ne!(out, out2);
    }

    #[test]
    fn params_exposes_three_tensors() {
        let layer = SageLayer::new(3, 2, false, 3);
        assert_eq!(layer.params().len(), 3);
    }
}
