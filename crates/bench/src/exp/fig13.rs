//! Fig 13 — GPU memory and transfer volume of the Degree, PreSample and
//! Hybrid hot-vertex policies across hot-vertex ratios (Wikipedia, GCN).

use crate::util::{fmt_gb, render_table};
use crate::Setup;
use neutron_core::profile::WorkloadProfile;
use neutron_nn::LayerKind;

/// One `(policy, ratio)` measurement.
#[derive(Clone, Debug)]
pub struct Fig13Point {
    pub policy: &'static str,
    pub hot_ratio: f64,
    /// Paper-scale GPU bytes the policy dedicates to hot vertices.
    pub memory: u64,
    /// Paper-scale feature/embedding bytes transferred per epoch.
    pub transfer: u64,
}

fn epoch_bottom_feature_bytes(profile: &WorkloadProfile) -> u64 {
    let row = profile.spec.feature_row_bytes();
    (0..profile.num_batches)
        .map(|i| profile.stats(i).bottom_src() as u64 * row)
        .sum()
}

/// Computes Fig 13 for ratios 0.05–0.25.
pub fn data(setup: Setup) -> Vec<Fig13Point> {
    let spec = setup.dataset("Wikipedia");
    let profile = crate::build_profile(setup, &spec, LayerKind::Gcn, 3, 1024);
    let ratios = [0.05, 0.10, 0.15, 0.20, 0.25];
    let feat_row = spec.feature_row_bytes();
    let hid_row = spec.hidden_row_bytes();
    let scale = profile.spec.scale;
    let epoch_bytes = epoch_bottom_feature_bytes(&profile) as f64 * scale;
    let paper_v = spec.paper_vertices as f64;
    let mut out = Vec::new();
    for &ratio in &ratios {
        let k = (ratio * profile.num_vertices as f64).round() as usize;
        let k_paper = ratio * paper_v;
        // Static caches: features of the top-k vertices live on the GPU;
        // every miss ships raw features.
        for (policy, hit) in [
            ("Degree", profile.degree_coverage_topk(k)),
            ("PreSample", profile.presample_coverage_topk(k)),
        ] {
            out.push(Fig13Point {
                policy,
                hot_ratio: ratio,
                memory: (k_paper * feat_row as f64) as u64,
                transfer: (epoch_bytes * (1.0 - hit)) as u64,
            });
        }
        // Hybrid: hot vertices become CPU-computed embeddings (hidden dim,
        // double-buffered across super-batches); hits save *feature* bytes
        // at the cost of shipping (much smaller) embeddings.
        let hit = profile.presample_coverage_topk(k);
        let embed_ship = {
            // One embedding per hot vertex per super-batch refresh.
            let refreshes =
                (profile.num_batches as f64 / profile.config.super_batch.max(1) as f64).ceil();
            profile.hot_per_super_batch / profile.hot.len().max(1) as f64
                * k_paper
                * hid_row as f64
                * refreshes
        };
        out.push(Fig13Point {
            policy: "Hybrid",
            hot_ratio: ratio,
            memory: (2.0 * k_paper * hid_row as f64) as u64,
            transfer: (epoch_bytes * (1.0 - hit) + embed_ship) as u64,
        });
    }
    out
}

/// Renders Fig 13.
pub fn run(setup: Setup) -> String {
    let pts = data(setup);
    let rows: Vec<Vec<String>> = pts
        .iter()
        .map(|p| {
            vec![
                format!("{:.2}", p.hot_ratio),
                p.policy.to_string(),
                fmt_gb(p.memory),
                fmt_gb(p.transfer),
            ]
        })
        .collect();
    render_table(
        "Fig 13: hot-vertex policy memory & transfer (Wikipedia, GCN, paper-scale GB)",
        &["hot ratio", "policy", "memory (GB)", "transfer (GB/epoch)"],
        &rows,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hybrid_uses_least_memory_at_every_ratio() {
        // Paper: 55.1% average GPU memory reduction vs static caches,
        // because embeddings are smaller than features.
        let pts = data(Setup::Smoke);
        for ratio in [0.05, 0.15, 0.25] {
            let at = |p: &str| {
                pts.iter()
                    .find(|x| x.policy == p && (x.hot_ratio - ratio).abs() < 1e-9)
                    .unwrap()
                    .memory
            };
            assert!(at("Hybrid") < at("Degree"));
            assert!(at("Hybrid") < at("PreSample"));
        }
    }

    #[test]
    fn hybrid_transfer_is_competitive() {
        // Paper: Hybrid ships 63–76% of the static policies' volume.
        let pts = data(Setup::Smoke);
        let total = |p: &str| -> u64 {
            pts.iter()
                .filter(|x| x.policy == p)
                .map(|x| x.transfer)
                .sum()
        };
        // At smoke scale the epoch is only a couple of batches, so the
        // per-super-batch embedding refresh dominates; at paper scale the
        // feature-miss term dominates and Hybrid ships 63-76% of the static
        // policies' volume (paper Fig 13b; see EXPERIMENTS.md).
        let hybrid = total("Hybrid");
        let degree = total("Degree");
        assert!(
            (hybrid as f64) < degree as f64 * 2.0,
            "hybrid {hybrid} out of range vs degree {degree}"
        );
    }

    #[test]
    fn presample_beats_degree_on_transfer() {
        let pts = data(Setup::Smoke);
        let t = |p: &str, r: f64| {
            pts.iter()
                .find(|x| x.policy == p && (x.hot_ratio - r).abs() < 1e-9)
                .unwrap()
                .transfer
        };
        assert!(t("PreSample", 0.15) <= t("Degree", 0.15));
    }
}
