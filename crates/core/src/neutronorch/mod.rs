//! NeutronOrch: hotness-aware layer-based task orchestration with
//! super-batch pipelined training (§4).

mod config;
mod sim;

pub use config::NeutronOrchConfig;
pub use sim::NeutronOrch;
