//! Mini-batch iteration over training vertices.

use neutron_graph::VertexId;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Splits a training set into shuffled mini-batches (Algorithm 1, line 1).
///
/// Shuffling is seeded per `(seed, epoch)` so epochs differ but runs
/// reproduce.
#[derive(Clone, Debug)]
pub struct BatchIterator {
    train: Vec<VertexId>,
    batch_size: usize,
    seed: u64,
}

impl BatchIterator {
    /// Creates an iterator factory over `train` vertices.
    pub fn new(train: Vec<VertexId>, batch_size: usize, seed: u64) -> Self {
        assert!(batch_size > 0);
        Self {
            train,
            batch_size,
            seed,
        }
    }

    /// Number of batches per epoch (last one may be short).
    pub fn batches_per_epoch(&self) -> usize {
        self.train.len().div_ceil(self.batch_size)
    }

    /// Batch size.
    pub fn batch_size(&self) -> usize {
        self.batch_size
    }

    /// Number of training vertices.
    pub fn num_train(&self) -> usize {
        self.train.len()
    }

    /// Returns the shuffled batches for `epoch`.
    pub fn epoch_batches(&self, epoch: usize) -> Vec<Vec<VertexId>> {
        let mut ids = self.train.clone();
        let mut rng =
            StdRng::seed_from_u64(self.seed ^ (epoch as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15));
        for i in (1..ids.len()).rev() {
            let j = rng.random_range(0..=i);
            ids.swap(i, j);
        }
        ids.chunks(self.batch_size).map(|c| c.to_vec()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batches_cover_all_vertices_exactly_once() {
        let it = BatchIterator::new((0..103).collect(), 10, 1);
        assert_eq!(it.batches_per_epoch(), 11);
        let batches = it.epoch_batches(0);
        let mut all: Vec<u32> = batches.concat();
        all.sort_unstable();
        assert_eq!(all, (0..103).collect::<Vec<_>>());
        assert_eq!(batches.last().unwrap().len(), 3);
    }

    #[test]
    fn epochs_shuffle_differently_but_reproducibly() {
        let it = BatchIterator::new((0..50).collect(), 50, 2);
        let e0 = it.epoch_batches(0);
        let e1 = it.epoch_batches(1);
        assert_ne!(e0[0], e1[0], "different epochs should shuffle differently");
        let e0_again = it.epoch_batches(0);
        assert_eq!(e0[0], e0_again[0], "same epoch must reproduce");
    }

    #[test]
    #[should_panic]
    fn zero_batch_size_rejected() {
        let _ = BatchIterator::new(vec![1], 0, 0);
    }
}
