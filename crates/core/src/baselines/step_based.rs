//! The four step-based task orchestrating methods of §3 (Fig 4 a–d).
//!
//! All four share the sample→gather(collect, transfer)→train structure and
//! differ only in placement, caching and pipelining — which is exactly the
//! paper's claim about why none of them balances the machine.

use super::{mean_util, single_gpu_parts};
use crate::orchestrator::{Lens, Orchestrator};
use crate::profile::WorkloadProfile;
use crate::report::EpochReport;
use neutron_hetero::{CostModel, HardwareSpec, MemLedger, OomError, TaskKind};

/// Case 1 — DGL: CPU sampling, CPU gathering, GPU training.
///
/// Suffers from inefficient CPU processing (§3.1 Case 1, Table 2).
#[derive(Clone, Debug)]
pub struct Case1Dgl {
    /// Overlap the stages of consecutive batches (DGL's default loader).
    pub pipelined: bool,
}

/// Case 2 — DGL-UVA: GPU sampling over unified virtual addressing, features
/// fetched zero-copy from host memory, GPU training.
///
/// Suffers from GPU resource contention between sampling and training
/// kernels (§3.1 Case 2, Table 3).
#[derive(Clone, Debug)]
pub struct Case2DglUva {
    /// Overlap the stages of consecutive batches.
    pub pipelined: bool,
}

/// Case 3 — PaGraph: CPU sampling, GPU-cached gathering (degree policy),
/// GPU training.
///
/// Suffers from GPU memory contention between cache and batch data (§3.1
/// Case 3, Fig 6).
#[derive(Clone, Debug)]
pub struct Case3PaGraph;

/// Case 4 — GNNLab: everything on the GPU — topology-resident sampling,
/// presample-cached gathering, training.
///
/// Suffers from both kinds of GPU contention; the CPU idles (§3.1 Case 4).
#[derive(Clone, Debug)]
pub struct Case4GnnLab;

impl Orchestrator for Case1Dgl {
    fn name(&self) -> String {
        if self.pipelined {
            "DGL".into()
        } else {
            "DGL (no pipeline)".into()
        }
    }

    fn simulate_epoch(
        &self,
        profile: &WorkloadProfile,
        hw: &HardwareSpec,
    ) -> Result<EpochReport, OomError> {
        let lens = Lens::new(profile);
        let cm = CostModel::new(hw.clone());
        // GPU memory: model + the in-flight batch (prefetched batches stage
        // in host pinned memory, so only one batch is device-resident).
        // Charged at paper scale against the unscaled device budget.
        let mut mem = MemLedger::new(hw.gpu.mem_bytes);
        mem.alloc("params", lens.param_bytes())?;
        mem.alloc("batch", lens.paper_batch_bytes(profile.config.batch_size))?;
        let mut parts = single_gpu_parts(hw);
        let mut h2d_bytes = 0u64;
        let mut prev_train = None;
        for i in 0..profile.num_batches {
            let mut deps = Vec::new();
            if !self.pipelined {
                if let Some(t) = prev_train {
                    deps.push(t);
                }
            }
            let s = parts.sched.task(
                parts.cpu,
                TaskKind::Sample,
                cm.cpu_sample(lens.sampled_edges(i)),
                "cpu:sample",
                &deps,
            );
            let move_bytes = lens.bottom_feature_bytes(i) + lens.block_bytes(i);
            let fc = parts.sched.task(
                parts.cpu,
                TaskKind::GatherCollect,
                cm.cpu_collect(move_bytes),
                "cpu:gather",
                &[s],
            );
            let ft = parts.sched.task(
                parts.h2d,
                TaskKind::Transfer,
                cm.pcie_transfer(move_bytes),
                "pcie:h2d",
                &[fc],
            );
            h2d_bytes += move_bytes;
            let t = parts.sched.task(
                parts.gpu,
                TaskKind::Train,
                cm.gpu_train(lens.train_flops(i), profile.seeds(i) as u64),
                "gpu:train",
                &[ft],
            );
            prev_train = Some(t);
        }
        let run = parts.sched.run();
        Ok(EpochReport::from_run(
            self.name(),
            &run,
            mean_util(&run, "cpu"),
            mean_util(&run, "gpu"),
            h2d_bytes,
            mem.used(),
            profile.num_batches,
        ))
    }
}

impl Orchestrator for Case2DglUva {
    fn name(&self) -> String {
        if self.pipelined {
            "DGL-UVA".into()
        } else {
            "DGL-UVA (no pipeline)".into()
        }
    }

    fn simulate_epoch(
        &self,
        profile: &WorkloadProfile,
        hw: &HardwareSpec,
    ) -> Result<EpochReport, OomError> {
        let lens = Lens::new(profile);
        let cm = CostModel::new(hw.clone());
        let mut mem = MemLedger::new(hw.gpu.mem_bytes);
        mem.alloc("params", lens.param_bytes())?;
        mem.alloc("batch", lens.paper_batch_bytes(profile.config.batch_size))?;
        let mut parts = single_gpu_parts(hw);
        let mut h2d_bytes = 0u64;
        let mut prev_train = None;
        for i in 0..profile.num_batches {
            let mut deps = Vec::new();
            if !self.pipelined {
                if let Some(t) = prev_train {
                    deps.push(t);
                }
            }
            // GPU sampling reads host topology over UVA: the PCIe reads and
            // the sampling kernel proceed together; serialized here (reads
            // gate the kernel), which matches UVA's latency-bound behaviour.
            let topo_reads = parts.sched.task(
                parts.h2d,
                TaskKind::Sample,
                cm.uva_transfer(lens.sampled_edges(i) * 8),
                "pcie:uva",
                &deps,
            );
            let s = parts.sched.task(
                parts.gpu,
                TaskKind::Sample,
                cm.gpu_sample(lens.sampled_edges(i)),
                "gpu:sample",
                &[topo_reads],
            );
            // Features fetched zero-copy during training (no FC stage).
            let feat_bytes = lens.bottom_feature_bytes(i) + lens.block_bytes(i);
            let ft = parts.sched.task(
                parts.h2d,
                TaskKind::Transfer,
                cm.uva_transfer(feat_bytes),
                "pcie:h2d",
                &[s],
            );
            h2d_bytes += feat_bytes;
            let t = parts.sched.task(
                parts.gpu,
                TaskKind::Train,
                cm.gpu_train(lens.train_flops(i), profile.seeds(i) as u64),
                "gpu:train",
                &[ft],
            );
            prev_train = Some(t);
        }
        let run = parts.sched.run();
        Ok(EpochReport::from_run(
            self.name(),
            &run,
            mean_util(&run, "cpu"),
            mean_util(&run, "gpu"),
            h2d_bytes,
            mem.used(),
            profile.num_batches,
        ))
    }
}

impl Orchestrator for Case3PaGraph {
    fn name(&self) -> String {
        "PaGraph".into()
    }

    fn simulate_epoch(
        &self,
        profile: &WorkloadProfile,
        hw: &HardwareSpec,
    ) -> Result<EpochReport, OomError> {
        let lens = Lens::new(profile);
        let cm = CostModel::new(hw.clone());
        let mut mem = MemLedger::new(hw.gpu.mem_bytes);
        mem.alloc("params", lens.param_bytes())?;
        mem.alloc(
            "batch",
            2 * lens.paper_batch_bytes(profile.config.batch_size),
        )?;
        // Whatever is left becomes the degree-ranked feature cache — this is
        // the batch-size/cache-ratio tradeoff of Fig 6.
        let (_, hit) = lens.cache_plan(mem.available(), true);
        mem.alloc("feature-cache", mem.available())?;
        let mut parts = single_gpu_parts(hw);
        let mut h2d_bytes = 0u64;
        for i in 0..profile.num_batches {
            let s = parts.sched.task(
                parts.cpu,
                TaskKind::Sample,
                cm.cpu_sample(lens.sampled_edges(i)),
                "cpu:sample",
                &[],
            );
            let miss_bytes =
                ((lens.bottom_feature_bytes(i) as f64) * (1.0 - hit)) as u64 + lens.block_bytes(i);
            let fc = parts.sched.task(
                parts.cpu,
                TaskKind::GatherCollect,
                cm.cpu_collect(miss_bytes),
                "cpu:gather",
                &[s],
            );
            let ft = parts.sched.task(
                parts.h2d,
                TaskKind::Transfer,
                cm.pcie_transfer(miss_bytes),
                "pcie:h2d",
                &[fc],
            );
            h2d_bytes += miss_bytes;
            parts.sched.task(
                parts.gpu,
                TaskKind::Train,
                cm.gpu_train(lens.train_flops(i), profile.seeds(i) as u64),
                "gpu:train",
                &[ft],
            );
        }
        let run = parts.sched.run();
        Ok(EpochReport::from_run(
            self.name(),
            &run,
            mean_util(&run, "cpu"),
            mean_util(&run, "gpu"),
            h2d_bytes,
            mem.used(),
            profile.num_batches,
        ))
    }
}

impl Orchestrator for Case4GnnLab {
    fn name(&self) -> String {
        "GNNLab".into()
    }

    fn simulate_epoch(
        &self,
        profile: &WorkloadProfile,
        hw: &HardwareSpec,
    ) -> Result<EpochReport, OomError> {
        let lens = Lens::new(profile);
        let cm = CostModel::new(hw.clone());
        let mut mem = MemLedger::new(hw.gpu.mem_bytes);
        mem.alloc("params", lens.param_bytes())?;
        // GNNLab keeps the full topology on the GPU for sampling.
        mem.alloc("topology", lens.paper_topology_bytes())?;
        mem.alloc(
            "batch",
            2 * lens.paper_batch_bytes(profile.config.batch_size),
        )?;
        let (_, hit) = lens.cache_plan(mem.available(), false);
        mem.alloc("feature-cache", mem.available())?;
        let mut parts = single_gpu_parts(hw);
        let mut h2d_bytes = 0u64;
        for i in 0..profile.num_batches {
            // Sampling and training contend for GPU cores (Fig 5b).
            let s = parts.sched.task(
                parts.gpu,
                TaskKind::Sample,
                cm.gpu_sample(lens.sampled_edges(i)),
                "gpu:sample",
                &[],
            );
            let miss_bytes = ((lens.bottom_feature_bytes(i) as f64) * (1.0 - hit)) as u64;
            let fc = parts.sched.task(
                parts.cpu,
                TaskKind::GatherCollect,
                cm.cpu_collect(miss_bytes),
                "cpu:gather",
                &[s],
            );
            let ft = parts.sched.task(
                parts.h2d,
                TaskKind::Transfer,
                cm.pcie_transfer(miss_bytes),
                "pcie:h2d",
                &[fc],
            );
            h2d_bytes += miss_bytes;
            parts.sched.task(
                parts.gpu,
                TaskKind::Train,
                cm.gpu_train(lens.train_flops(i), profile.seeds(i) as u64),
                "gpu:train",
                &[ft],
            );
        }
        let run = parts.sched.run();
        Ok(EpochReport::from_run(
            self.name(),
            &run,
            mean_util(&run, "cpu"),
            mean_util(&run, "gpu"),
            h2d_bytes,
            mem.used(),
            profile.num_batches,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::WorkloadConfig;
    use neutron_graph::DatasetSpec;
    use neutron_nn::LayerKind;

    fn fixture() -> (WorkloadProfile, HardwareSpec) {
        let mut cfg = WorkloadConfig::paper_default(LayerKind::Gcn);
        cfg.batch_size = 64;
        cfg.layers = 2;
        cfg.profiled_batches = 2;
        let spec = DatasetSpec::tiny();
        let profile = WorkloadProfile::build(&spec, &cfg);
        let hw = HardwareSpec::v100_server(1.0);
        (profile, hw)
    }

    #[test]
    fn all_four_cases_run_and_report() {
        let (profile, hw) = fixture();
        let systems: Vec<Box<dyn Orchestrator>> = vec![
            Box::new(Case1Dgl { pipelined: true }),
            Box::new(Case2DglUva { pipelined: true }),
            Box::new(Case3PaGraph),
            Box::new(Case4GnnLab),
        ];
        for sys in systems {
            let r = sys.simulate_epoch(&profile, &hw).expect("no OOM on tiny");
            assert!(r.epoch_seconds > 0.0, "{}", sys.name());
            assert!(r.cpu_util >= 0.0 && r.cpu_util <= 1.0);
            assert!(r.gpu_util > 0.0 && r.gpu_util <= 1.0);
            assert_eq!(r.num_batches, profile.num_batches);
        }
    }

    #[test]
    fn pipelining_helps_case1() {
        let (profile, hw) = fixture();
        let piped = Case1Dgl { pipelined: true }
            .simulate_epoch(&profile, &hw)
            .unwrap();
        let serial = Case1Dgl { pipelined: false }
            .simulate_epoch(&profile, &hw)
            .unwrap();
        assert!(
            piped.epoch_seconds < serial.epoch_seconds,
            "pipeline must help (Table 3)"
        );
    }

    #[test]
    fn caching_systems_transfer_less_than_dgl() {
        let (profile, hw) = fixture();
        let dgl = Case1Dgl { pipelined: true }
            .simulate_epoch(&profile, &hw)
            .unwrap();
        let pagraph = Case3PaGraph.simulate_epoch(&profile, &hw).unwrap();
        let gnnlab = Case4GnnLab.simulate_epoch(&profile, &hw).unwrap();
        assert!(pagraph.h2d_bytes <= dgl.h2d_bytes);
        assert!(gnnlab.h2d_bytes <= dgl.h2d_bytes);
    }

    #[test]
    fn case1_has_high_cpu_low_gpu_utilization() {
        let (profile, hw) = fixture();
        let r = Case1Dgl { pipelined: true }
            .simulate_epoch(&profile, &hw)
            .unwrap();
        // The Fig 2 signature: CPU-side steps starve the GPU.
        assert!(
            r.cpu_util > r.gpu_util,
            "cpu {} vs gpu {}",
            r.cpu_util,
            r.gpu_util
        );
    }

    #[test]
    fn gnnlab_leaves_cpu_mostly_idle() {
        let (profile, hw) = fixture();
        let r = Case4GnnLab.simulate_epoch(&profile, &hw).unwrap();
        assert!(
            r.cpu_util < 0.5,
            "Case 4 idles the CPU (Fig 2), got {}",
            r.cpu_util
        );
    }
}
