//! R-MAT (recursive matrix) graph generator.

use crate::builder::GraphBuilder;
use crate::csr::{Csr, VertexId};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// R-MAT quadrant probabilities. Must sum to 1.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RmatParams {
    pub a: f64,
    pub b: f64,
    pub c: f64,
    pub d: f64,
}

impl RmatParams {
    /// Graph500 reference parameters — strong degree skew, the regime of the
    /// paper's social-network datasets.
    pub fn graph500() -> Self {
        Self {
            a: 0.57,
            b: 0.19,
            c: 0.19,
            d: 0.05,
        }
    }

    /// Milder skew, closer to co-purchase networks (Products).
    pub fn mild() -> Self {
        Self {
            a: 0.45,
            b: 0.22,
            c: 0.22,
            d: 0.11,
        }
    }

    fn validate(&self) {
        let s = self.a + self.b + self.c + self.d;
        assert!(
            (s - 1.0).abs() < 1e-9,
            "R-MAT probabilities sum to {s}, expected 1"
        );
        assert!(self.a >= 0.0 && self.b >= 0.0 && self.c >= 0.0 && self.d >= 0.0);
    }
}

/// Generates an R-MAT graph with `num_vertices` vertices and ~`num_edges`
/// undirected edges (stored in both directions, deduplicated).
///
/// Vertices are drawn in a `2^k` square and folded into `[0, n)`; the fold
/// preserves skew while allowing arbitrary vertex counts.
pub fn rmat(num_vertices: usize, num_edges: usize, params: RmatParams, seed: u64) -> Csr {
    params.validate();
    assert!(num_vertices > 1, "need at least two vertices");
    let mut rng = StdRng::seed_from_u64(seed);
    let levels = usize::BITS - (num_vertices - 1).leading_zeros();
    let mut builder = GraphBuilder::new(num_vertices).symmetric(true);
    // The symmetric+dedup build roughly halves the unique directed count per
    // generated pair, so generate num_edges/2 pairs to land near num_edges
    // directed edges. Exactness is not needed; dataset specs record actuals.
    let pairs = num_edges / 2;
    for _ in 0..pairs {
        let (mut src, mut dst) = (0usize, 0usize);
        for _ in 0..levels {
            let r: f64 = rng.random_range(0.0..1.0);
            let (row, col) = if r < params.a {
                (0, 0)
            } else if r < params.a + params.b {
                (0, 1)
            } else if r < params.a + params.b + params.c {
                (1, 0)
            } else {
                (1, 1)
            };
            src = (src << 1) | row;
            dst = (dst << 1) | col;
        }
        let src = (src % num_vertices) as VertexId;
        let dst = (dst % num_vertices) as VertexId;
        builder.add_edge(src, dst);
    }
    builder.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_roughly_requested_size() {
        let g = rmat(1000, 10_000, RmatParams::graph500(), 1);
        assert_eq!(g.num_vertices(), 1000);
        // Dedup and self-loop removal lose some edges; expect within 2x.
        assert!(g.num_edges() > 4_000, "got {}", g.num_edges());
        assert!(g.num_edges() <= 10_000);
        assert!(g.validate().is_ok());
    }

    #[test]
    fn is_deterministic_per_seed() {
        let a = rmat(500, 4_000, RmatParams::graph500(), 7);
        let b = rmat(500, 4_000, RmatParams::graph500(), 7);
        assert_eq!(a.num_edges(), b.num_edges());
        for v in 0..500 {
            assert_eq!(a.neighbors(v), b.neighbors(v));
        }
        let c = rmat(500, 4_000, RmatParams::graph500(), 8);
        assert_ne!(
            (0..500).map(|v| a.degree(v)).collect::<Vec<_>>(),
            (0..500).map(|v| c.degree(v)).collect::<Vec<_>>()
        );
    }

    #[test]
    fn graph500_params_produce_skew() {
        let g = rmat(2000, 40_000, RmatParams::graph500(), 3);
        let mut degs: Vec<usize> = (0..2000).map(|v| g.degree(v)).collect();
        degs.sort_unstable_by(|a, b| b.cmp(a));
        let top_decile: usize = degs[..200].iter().sum();
        let total: usize = degs.iter().sum();
        assert!(
            top_decile as f64 > 0.35 * total as f64,
            "top 10% of vertices should hold a large share of edges (got {top_decile}/{total})"
        );
    }

    #[test]
    #[should_panic(expected = "probabilities sum")]
    fn rejects_bad_params() {
        let _ = rmat(
            10,
            10,
            RmatParams {
                a: 0.5,
                b: 0.5,
                c: 0.5,
                d: 0.5,
            },
            0,
        );
    }
}
