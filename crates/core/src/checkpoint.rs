//! Deterministic checkpoint/restore of training sessions.
//!
//! A checkpoint is a versioned, length-prefixed binary image of the full
//! training state ([`crate::trainer::TrainerState`] plus session counters):
//!
//! ```text
//! magic "NOCK" | format version u32 | config digest u64 |
//! payload length u64 | payload | fnv1a-64 checksum of everything before
//! ```
//!
//! Every scalar is little-endian; floats are serialized as their raw IEEE
//! bits (`to_bits`), so a restore reproduces values **bit for bit** — the
//! property the session-identity tests assert. The config digest binds a
//! file to the `(trainer config, replica count)` that wrote it; loading
//! under a different configuration fails with
//! [`CheckpointError::ConfigMismatch`] instead of resuming a subtly
//! different run. Saves go through a temp file + atomic rename, so a crash
//! mid-write can never leave a torn checkpoint at the published path — the
//! previous complete checkpoint survives.
//!
//! Why this is sufficient for bit-identity: all sampling/shuffling
//! randomness in the workspace is derived per `(seed, epoch, index)`
//! ([`crate::trainer::batch_sample_seed`], the per-epoch Fisher–Yates
//! seed, the per-replica seed salt) — there is no long-lived generator
//! whose position could drift, so capturing the seeds and the next epoch
//! index captures the complete rng-stream state.

use crate::trainer::{PendingSnapshot, TrainerConfig, TrainerState};
use neutron_cache::StoreSnapshot;
use neutron_graph::VertexId;
use neutron_nn::optim::AdamState;
use neutron_tensor::Matrix;
use std::fmt;
use std::path::Path;

/// File magic: "NeutronOrch ChecKpoint".
pub const MAGIC: [u8; 4] = *b"NOCK";
/// Current on-disk format version.
pub const FORMAT_VERSION: u32 = 1;

/// Typed checkpoint failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CheckpointError {
    /// Underlying filesystem error (open/read/write/rename).
    Io(String),
    /// The file does not start with the checkpoint magic.
    BadMagic,
    /// The file's format version is newer/older than this build reads.
    UnsupportedVersion(u32),
    /// The file ends before the encoded structure does.
    Truncated,
    /// The checksum or an internal invariant failed — the bytes are not a
    /// checkpoint this build wrote.
    Corrupt(String),
    /// The file was written under a different trainer/session
    /// configuration.
    ConfigMismatch {
        /// Digest the loading session expects.
        expected: u64,
        /// Digest recorded in the file.
        found: u64,
    },
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "checkpoint io error: {e}"),
            CheckpointError::BadMagic => write!(f, "not a checkpoint file (bad magic)"),
            CheckpointError::UnsupportedVersion(v) => {
                write!(f, "unsupported checkpoint format version {v}")
            }
            CheckpointError::Truncated => write!(f, "checkpoint file is truncated"),
            CheckpointError::Corrupt(why) => write!(f, "checkpoint is corrupt: {why}"),
            CheckpointError::ConfigMismatch { expected, found } => write!(
                f,
                "checkpoint config digest {found:#018x} does not match session {expected:#018x}"
            ),
        }
    }
}

impl std::error::Error for CheckpointError {}

// ---------------------------------------------------------------------------
// Primitive codec.
// ---------------------------------------------------------------------------

/// Append-only little-endian writer for checkpoint payloads.
#[derive(Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// Fresh empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// The bytes written so far.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Writes a `u8`.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Writes a little-endian `u32`.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a little-endian `u64`.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes an `f32` as its raw IEEE bits (bit-exact round-trip).
    pub fn put_f32(&mut self, v: f32) {
        self.put_u32(v.to_bits());
    }

    /// Writes an `f64` as its raw IEEE bits (bit-exact round-trip).
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }
}

/// Cursor over checkpoint payload bytes; every read is bounds-checked and
/// under-runs surface as [`CheckpointError::Truncated`].
pub struct Reader<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Reader over `data` starting at offset 0.
    pub fn new(data: &'a [u8]) -> Self {
        Self { data, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], CheckpointError> {
        if self.remaining() < n {
            return Err(CheckpointError::Truncated);
        }
        let out = &self.data[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Reads a `u8`.
    pub fn get_u8(&mut self) -> Result<u8, CheckpointError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u32`.
    pub fn get_u32(&mut self) -> Result<u32, CheckpointError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Reads a little-endian `u64`.
    pub fn get_u64(&mut self) -> Result<u64, CheckpointError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Reads an `f32` from raw bits.
    pub fn get_f32(&mut self) -> Result<f32, CheckpointError> {
        Ok(f32::from_bits(self.get_u32()?))
    }

    /// Reads an `f64` from raw bits.
    pub fn get_f64(&mut self) -> Result<f64, CheckpointError> {
        Ok(f64::from_bits(self.get_u64()?))
    }

    /// Reads a length prefix that must be satisfiable by the remaining
    /// bytes (each element at least `min_elem_bytes`) — rejects absurd
    /// lengths from corrupt files before any allocation happens.
    pub fn get_len(&mut self, min_elem_bytes: usize) -> Result<usize, CheckpointError> {
        let n = self.get_u64()? as usize;
        if n.saturating_mul(min_elem_bytes.max(1)) > self.remaining() {
            return Err(CheckpointError::Truncated);
        }
        Ok(n)
    }
}

/// FNV-1a over `bytes` — the trailer checksum and the config digest hash.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

// ---------------------------------------------------------------------------
// Component codecs (each proptest-covered for bit-exact round-trips).
// ---------------------------------------------------------------------------

/// Encodes a parameter (or any matrix) list: count, then `rows cols bits*`.
pub fn encode_params(w: &mut Writer, params: &[Matrix]) {
    w.put_u64(params.len() as u64);
    for m in params {
        w.put_u64(m.rows() as u64);
        w.put_u64(m.cols() as u64);
        for &v in m.as_slice() {
            w.put_f32(v);
        }
    }
}

/// Decodes a matrix list written by [`encode_params`].
pub fn decode_params(r: &mut Reader<'_>) -> Result<Vec<Matrix>, CheckpointError> {
    let n = r.get_len(16)?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        let rows = r.get_u64()? as usize;
        let cols = r.get_u64()? as usize;
        let len = rows.saturating_mul(cols);
        if len.saturating_mul(4) > r.remaining() {
            return Err(CheckpointError::Truncated);
        }
        let mut data = Vec::with_capacity(len);
        for _ in 0..len {
            data.push(r.get_f32()?);
        }
        out.push(Matrix::from_vec(rows, cols, data));
    }
    Ok(out)
}

/// Encodes Adam state: step count + paired moment matrices.
pub fn encode_adam(w: &mut Writer, state: &AdamState) {
    w.put_u64(state.t);
    w.put_u64(state.moments.len() as u64);
    for (m, v) in &state.moments {
        encode_params(w, std::slice::from_ref(m));
        encode_params(w, std::slice::from_ref(v));
    }
}

/// Decodes Adam state written by [`encode_adam`].
pub fn decode_adam(r: &mut Reader<'_>) -> Result<AdamState, CheckpointError> {
    let t = r.get_u64()?;
    let n = r.get_len(32)?;
    let mut moments = Vec::with_capacity(n);
    for _ in 0..n {
        let m = decode_params(r)?;
        let v = decode_params(r)?;
        let (m, v) = match (m.into_iter().next(), v.into_iter().next()) {
            (Some(m), Some(v)) => (m, v),
            _ => return Err(CheckpointError::Corrupt("empty Adam moment pair".into())),
        };
        if m.shape() != v.shape() {
            return Err(CheckpointError::Corrupt(
                "Adam moment shape mismatch".into(),
            ));
        }
        moments.push((m, v));
    }
    Ok(AdamState { t, moments })
}

/// Encodes `(vertex, row)` pairs (a refresh output's payload).
pub fn encode_rows(w: &mut Writer, rows: &[(VertexId, Vec<f32>)]) {
    w.put_u64(rows.len() as u64);
    for (v, row) in rows {
        w.put_u64(*v as u64);
        w.put_u64(row.len() as u64);
        for &x in row {
            w.put_f32(x);
        }
    }
}

/// Decodes rows written by [`encode_rows`].
pub fn decode_rows(r: &mut Reader<'_>) -> Result<Vec<(VertexId, Vec<f32>)>, CheckpointError> {
    let n = r.get_len(16)?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        let v = r.get_u64()? as VertexId;
        let len = r.get_len(4)?;
        let mut row = Vec::with_capacity(len);
        for _ in 0..len {
            row.push(r.get_f32()?);
        }
        out.push((v, row));
    }
    Ok(out)
}

/// Encodes an embedding-store snapshot, counters included.
pub fn encode_store(w: &mut Writer, snap: &StoreSnapshot) {
    w.put_u64(snap.dim as u64);
    match snap.bound {
        None => w.put_u8(0),
        Some(b) => {
            w.put_u8(1);
            w.put_u64(b);
        }
    }
    w.put_u64(snap.max_observed_gap);
    w.put_u64(snap.reads);
    w.put_u64(snap.rows.len() as u64);
    for (v, row, version) in &snap.rows {
        w.put_u64(*v as u64);
        w.put_u64(*version);
        w.put_u64(row.len() as u64);
        for &x in row {
            w.put_f32(x);
        }
    }
}

/// Decodes a store snapshot written by [`encode_store`].
pub fn decode_store(r: &mut Reader<'_>) -> Result<StoreSnapshot, CheckpointError> {
    let dim = r.get_u64()? as usize;
    let bound = match r.get_u8()? {
        0 => None,
        1 => Some(r.get_u64()?),
        other => {
            return Err(CheckpointError::Corrupt(format!(
                "bad store bound tag {other}"
            )))
        }
    };
    let max_observed_gap = r.get_u64()?;
    let reads = r.get_u64()?;
    let n = r.get_len(24)?;
    let mut rows = Vec::with_capacity(n);
    for _ in 0..n {
        let v = r.get_u64()? as VertexId;
        let version = r.get_u64()?;
        let len = r.get_len(4)?;
        if len != dim {
            return Err(CheckpointError::Corrupt(format!(
                "store row of {len} values in a dim-{dim} store"
            )));
        }
        let mut row = Vec::with_capacity(len);
        for _ in 0..len {
            row.push(r.get_f32()?);
        }
        rows.push((v, row, version));
    }
    Ok(StoreSnapshot {
        dim,
        bound,
        rows,
        max_observed_gap,
        reads,
    })
}

/// Encodes the session's rng-stream state: the per-replica derived seeds.
/// (Combined with the checkpoint's next-epoch counter this is the complete
/// stream state — see the module docs.)
pub fn encode_seeds(w: &mut Writer, seeds: &[u64]) {
    w.put_u64(seeds.len() as u64);
    for &s in seeds {
        w.put_u64(s);
    }
}

/// Decodes seeds written by [`encode_seeds`].
pub fn decode_seeds(r: &mut Reader<'_>) -> Result<Vec<u64>, CheckpointError> {
    let n = r.get_len(8)?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(r.get_u64()?);
    }
    Ok(out)
}

fn encode_trainer_state(w: &mut Writer, state: &TrainerState) {
    encode_params(w, &state.params);
    w.put_u64(state.version);
    w.put_f64(state.refresh_cpu_fraction);
    match &state.store {
        None => w.put_u8(0),
        Some(snap) => {
            w.put_u8(1);
            encode_store(w, snap);
        }
    }
    match &state.pending {
        None => w.put_u8(0),
        Some(p) => {
            w.put_u8(1);
            w.put_u64(p.gpu_version);
            encode_rows(w, &p.gpu_rows);
            w.put_u64(p.cpu_version);
            encode_rows(w, &p.cpu_rows);
        }
    }
}

fn decode_trainer_state(r: &mut Reader<'_>) -> Result<TrainerState, CheckpointError> {
    let params = decode_params(r)?;
    let version = r.get_u64()?;
    let refresh_cpu_fraction = r.get_f64()?;
    let store = match r.get_u8()? {
        0 => None,
        1 => Some(decode_store(r)?),
        other => {
            return Err(CheckpointError::Corrupt(format!(
                "bad store presence tag {other}"
            )))
        }
    };
    let pending = match r.get_u8()? {
        0 => None,
        1 => {
            let gpu_version = r.get_u64()?;
            let gpu_rows = decode_rows(r)?;
            let cpu_version = r.get_u64()?;
            let cpu_rows = decode_rows(r)?;
            Some(PendingSnapshot {
                gpu_version,
                gpu_rows,
                cpu_version,
                cpu_rows,
            })
        }
        other => {
            return Err(CheckpointError::Corrupt(format!(
                "bad pending-refresh tag {other}"
            )))
        }
    };
    Ok(TrainerState {
        params,
        version,
        refresh_cpu_fraction,
        store,
        pending,
    })
}

// ---------------------------------------------------------------------------
// The whole-session checkpoint.
// ---------------------------------------------------------------------------

/// A complete session checkpoint, written at an epoch boundary.
#[derive(Clone, Debug)]
pub struct Checkpoint {
    /// First epoch a resumed session should run (the boundary the file was
    /// written at).
    pub next_epoch: u64,
    /// Replica count of the session that wrote the file.
    pub replicas: u64,
    /// Per-replica derived batch-shuffle seeds (replica 0 first).
    pub rng_seeds: Vec<u64>,
    /// The trainer's mutable state.
    pub state: TrainerState,
}

/// Digest binding a checkpoint to the `(trainer config, replica count)`
/// that wrote it. Hashes everything that shapes the training trajectory:
/// seed, batch size, depth, learning-rate bits, architecture and reuse
/// policy (with its parameters), plus the session's replica count.
pub fn config_digest(config: &TrainerConfig, replicas: usize) -> u64 {
    let mut w = Writer::new();
    w.put_u64(config.seed);
    w.put_u64(config.batch_size as u64);
    w.put_u64(config.layers as u64);
    w.put_f32(config.lr);
    w.put_u8(match config.kind {
        neutron_nn::LayerKind::Gcn => 0,
        neutron_nn::LayerKind::Sage => 1,
        neutron_nn::LayerKind::Gat => 2,
    });
    match &config.policy {
        crate::trainer::ReusePolicy::Exact => w.put_u8(0),
        crate::trainer::ReusePolicy::GasLike => w.put_u8(1),
        crate::trainer::ReusePolicy::HotnessAware {
            hot_ratio,
            super_batch,
        } => {
            w.put_u8(2);
            w.put_f64(*hot_ratio);
            w.put_u64(*super_batch as u64);
        }
    }
    w.put_u64(replicas as u64);
    fnv1a(&w.into_bytes())
}

/// Serializes a checkpoint to its on-disk byte image (header + payload +
/// checksum trailer).
pub fn checkpoint_to_bytes(config_digest: u64, ck: &Checkpoint) -> Vec<u8> {
    let mut payload = Writer::new();
    payload.put_u64(ck.next_epoch);
    payload.put_u64(ck.replicas);
    encode_seeds(&mut payload, &ck.rng_seeds);
    encode_trainer_state(&mut payload, &ck.state);
    let payload = payload.into_bytes();

    let mut w = Writer::new();
    w.buf.extend_from_slice(&MAGIC);
    w.put_u32(FORMAT_VERSION);
    w.put_u64(config_digest);
    w.put_u64(payload.len() as u64);
    w.buf.extend_from_slice(&payload);
    let checksum = fnv1a(&w.buf);
    w.put_u64(checksum);
    w.into_bytes()
}

/// Parses a checkpoint byte image, verifying magic, format version,
/// checksum and the config digest.
pub fn checkpoint_from_bytes(
    bytes: &[u8],
    expected_digest: u64,
) -> Result<Checkpoint, CheckpointError> {
    let mut r = Reader::new(bytes);
    let magic = r.take(4)?;
    if magic != MAGIC {
        return Err(CheckpointError::BadMagic);
    }
    let version = r.get_u32()?;
    if version != FORMAT_VERSION {
        return Err(CheckpointError::UnsupportedVersion(version));
    }
    let found_digest = r.get_u64()?;
    let payload_len = r.get_u64()? as usize;
    if r.remaining() < payload_len + 8 {
        return Err(CheckpointError::Truncated);
    }
    let body_end = bytes.len() - 8;
    if body_end != 4 + 4 + 8 + 8 + payload_len {
        return Err(CheckpointError::Corrupt("trailing garbage".into()));
    }
    let mut trailer = Reader::new(&bytes[body_end..]);
    let checksum = trailer.get_u64()?;
    if fnv1a(&bytes[..body_end]) != checksum {
        return Err(CheckpointError::Corrupt("checksum mismatch".into()));
    }
    if found_digest != expected_digest {
        return Err(CheckpointError::ConfigMismatch {
            expected: expected_digest,
            found: found_digest,
        });
    }
    let next_epoch = r.get_u64()?;
    let replicas = r.get_u64()?;
    let rng_seeds = decode_seeds(&mut r)?;
    let state = decode_trainer_state(&mut r)?;
    Ok(Checkpoint {
        next_epoch,
        replicas,
        rng_seeds,
        state,
    })
}

/// Writes a checkpoint atomically (temp file in the target's directory,
/// then rename) and returns the byte count written. A crash mid-save
/// leaves the previous checkpoint at `path` intact.
pub fn save(path: &Path, config_digest: u64, ck: &Checkpoint) -> Result<u64, CheckpointError> {
    let bytes = checkpoint_to_bytes(config_digest, ck);
    let tmp = path.with_extension("ck-tmp");
    std::fs::write(&tmp, &bytes).map_err(|e| CheckpointError::Io(e.to_string()))?;
    std::fs::rename(&tmp, path).map_err(|e| CheckpointError::Io(e.to_string()))?;
    Ok(bytes.len() as u64)
}

/// Reads and verifies the checkpoint at `path`.
pub fn load(path: &Path, expected_digest: u64) -> Result<Checkpoint, CheckpointError> {
    let bytes = std::fs::read(path).map_err(|e| CheckpointError::Io(e.to_string()))?;
    checkpoint_from_bytes(&bytes, expected_digest)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trainer::ReusePolicy;
    use neutron_nn::LayerKind;

    fn sample_checkpoint() -> Checkpoint {
        Checkpoint {
            next_epoch: 3,
            replicas: 2,
            rng_seeds: vec![0xe4e, 0xdead_beef],
            state: TrainerState {
                params: vec![
                    Matrix::from_vec(2, 3, vec![1.0, -2.5, 3.25, 0.0, f32::MIN, f32::MAX]),
                    Matrix::from_vec(1, 1, vec![0.125]),
                ],
                version: 42,
                refresh_cpu_fraction: 0.375,
                store: Some(StoreSnapshot {
                    dim: 2,
                    bound: Some(3),
                    rows: vec![(1, vec![0.5, -0.5], 7), (9, vec![1.5, 2.5], 9)],
                    max_observed_gap: 3,
                    reads: 11,
                }),
                pending: Some(PendingSnapshot {
                    gpu_version: 40,
                    gpu_rows: vec![(3, vec![0.1, 0.2])],
                    cpu_version: 40,
                    cpu_rows: vec![(5, vec![0.3, 0.4])],
                }),
            },
        }
    }

    fn digest() -> u64 {
        config_digest(
            &TrainerConfig {
                kind: LayerKind::Gcn,
                layers: 2,
                batch_size: 64,
                lr: 0.5,
                seed: 0xacc,
                policy: ReusePolicy::Exact,
            },
            2,
        )
    }

    #[test]
    fn byte_roundtrip_is_lossless() {
        let ck = sample_checkpoint();
        let bytes = checkpoint_to_bytes(digest(), &ck);
        let back = checkpoint_from_bytes(&bytes, digest()).unwrap();
        assert_eq!(back.next_epoch, ck.next_epoch);
        assert_eq!(back.replicas, ck.replicas);
        assert_eq!(back.rng_seeds, ck.rng_seeds);
        assert_eq!(back.state.version, ck.state.version);
        assert_eq!(
            back.state.refresh_cpu_fraction.to_bits(),
            ck.state.refresh_cpu_fraction.to_bits()
        );
        assert_eq!(back.state.store, ck.state.store);
        assert_eq!(back.state.pending, ck.state.pending);
        for (a, b) in back.state.params.iter().zip(&ck.state.params) {
            assert_eq!(a.shape(), b.shape());
            let bits = |m: &Matrix| m.as_slice().iter().map(|v| v.to_bits()).collect::<Vec<_>>();
            assert_eq!(bits(a), bits(b));
        }
    }

    #[test]
    fn every_truncation_is_a_typed_error() {
        let bytes = checkpoint_to_bytes(digest(), &sample_checkpoint());
        for cut in [0, 3, 4, 10, 20, bytes.len() / 2, bytes.len() - 1] {
            let err = checkpoint_from_bytes(&bytes[..cut], digest()).unwrap_err();
            assert!(
                matches!(err, CheckpointError::Truncated | CheckpointError::BadMagic),
                "cut at {cut} gave {err:?}"
            );
        }
    }

    #[test]
    fn corruption_and_version_mismatch_are_rejected() {
        let good = checkpoint_to_bytes(digest(), &sample_checkpoint());
        // Flip a payload byte: checksum fails.
        let mut bad = good.clone();
        bad[40] ^= 0xff;
        assert!(matches!(
            checkpoint_from_bytes(&bad, digest()),
            Err(CheckpointError::Corrupt(_))
        ));
        // Bump the format version (and nothing else): version gate fires
        // before the checksum is even consulted.
        let mut newer = good.clone();
        newer[4] = FORMAT_VERSION as u8 + 1;
        assert_eq!(
            checkpoint_from_bytes(&newer, digest()).err(),
            Some(CheckpointError::UnsupportedVersion(FORMAT_VERSION + 1))
        );
        // Wrong magic.
        let mut unmagical = good.clone();
        unmagical[0] = b'X';
        assert!(matches!(
            checkpoint_from_bytes(&unmagical, digest()),
            Err(CheckpointError::BadMagic)
        ));
        // Wrong config digest.
        assert!(matches!(
            checkpoint_from_bytes(&good, digest() ^ 1),
            Err(CheckpointError::ConfigMismatch { .. })
        ));
    }

    #[test]
    fn save_is_atomic_and_loadable() {
        let dir = std::env::temp_dir().join(format!("nock-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("session.ck");
        let ck = sample_checkpoint();
        let bytes = save(&path, digest(), &ck).unwrap();
        assert_eq!(bytes, std::fs::metadata(&path).unwrap().len());
        assert!(!path.with_extension("ck-tmp").exists(), "tmp file renamed");
        let back = load(&path, digest()).unwrap();
        assert_eq!(back.next_epoch, ck.next_epoch);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn config_digest_separates_configurations() {
        let base = TrainerConfig {
            kind: LayerKind::Gcn,
            layers: 2,
            batch_size: 64,
            lr: 0.5,
            seed: 0xacc,
            policy: ReusePolicy::Exact,
        };
        let d0 = config_digest(&base, 1);
        assert_eq!(d0, config_digest(&base.clone(), 1), "digest is stable");
        let mut other = base.clone();
        other.seed ^= 1;
        assert_ne!(d0, config_digest(&other, 1));
        assert_ne!(d0, config_digest(&base, 2), "replica count is bound in");
    }
}
