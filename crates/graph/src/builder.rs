//! Edge-stream graph builder.

use crate::csr::{Csr, VertexId};

/// Accumulates an edge stream and finalises it into a [`Csr`].
///
/// Edges are interpreted as `src -> dst`; the resulting CSR stores, for each
/// vertex, its list of *in*-neighbors (aggregation sources). Self-loops and
/// duplicate edges can optionally be removed at build time.
pub struct GraphBuilder {
    num_vertices: usize,
    edges: Vec<(VertexId, VertexId)>,
    symmetric: bool,
    dedup: bool,
    drop_self_loops: bool,
}

impl GraphBuilder {
    /// New builder over `num_vertices` vertices.
    pub fn new(num_vertices: usize) -> Self {
        Self {
            num_vertices,
            edges: Vec::new(),
            symmetric: false,
            dedup: true,
            drop_self_loops: true,
        }
    }

    /// Also insert the reverse of every edge (undirected input).
    pub fn symmetric(mut self, yes: bool) -> Self {
        self.symmetric = yes;
        self
    }

    /// Remove duplicate edges at build time (default: true).
    pub fn dedup(mut self, yes: bool) -> Self {
        self.dedup = yes;
        self
    }

    /// Remove self-loops at build time (default: true). GNN layers add the
    /// self contribution explicitly, so stored self-loops would double it.
    pub fn drop_self_loops(mut self, yes: bool) -> Self {
        self.drop_self_loops = yes;
        self
    }

    /// Adds a directed edge `src -> dst`.
    pub fn add_edge(&mut self, src: VertexId, dst: VertexId) {
        debug_assert!((src as usize) < self.num_vertices);
        debug_assert!((dst as usize) < self.num_vertices);
        self.edges.push((src, dst));
    }

    /// Number of edges currently buffered (before dedup).
    pub fn pending_edges(&self) -> usize {
        self.edges.len()
    }

    /// Finalises into CSR (in-neighbor orientation).
    pub fn build(mut self) -> Csr {
        if self.symmetric {
            let rev: Vec<_> = self.edges.iter().map(|&(s, d)| (d, s)).collect();
            self.edges.extend(rev);
        }
        if self.drop_self_loops {
            self.edges.retain(|&(s, d)| s != d);
        }
        // Bucket by destination: CSR rows are in-neighbor lists.
        let n = self.num_vertices;
        let mut counts = vec![0u64; n + 1];
        for &(_, d) in &self.edges {
            counts[d as usize + 1] += 1;
        }
        for i in 0..n {
            counts[i + 1] += counts[i];
        }
        let offsets_raw = counts.clone();
        let mut cursor = counts;
        let mut targets = vec![0 as VertexId; self.edges.len()];
        for &(s, d) in &self.edges {
            let slot = cursor[d as usize];
            targets[slot as usize] = s;
            cursor[d as usize] += 1;
        }
        if !self.dedup {
            return Csr::from_raw(offsets_raw, targets);
        }
        // Sort + dedup each row, then rebuild offsets.
        let mut new_offsets = Vec::with_capacity(n + 1);
        new_offsets.push(0u64);
        let mut new_targets = Vec::with_capacity(targets.len());
        for v in 0..n {
            let row = &mut targets[offsets_raw[v] as usize..offsets_raw[v + 1] as usize];
            row.sort_unstable();
            let mut prev: Option<VertexId> = None;
            for &t in row.iter() {
                if prev != Some(t) {
                    new_targets.push(t);
                    prev = Some(t);
                }
            }
            new_offsets.push(new_targets.len() as u64);
        }
        Csr::from_raw(new_offsets, new_targets)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_in_neighbor_orientation() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 2);
        b.add_edge(1, 2);
        let g = b.build();
        assert_eq!(g.neighbors(2), &[0, 1]);
        assert_eq!(g.degree(0), 0);
    }

    #[test]
    fn dedup_removes_duplicates() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(0, 1);
        b.add_edge(0, 1);
        b.add_edge(0, 1);
        assert_eq!(b.pending_edges(), 3);
        let g = b.build();
        assert_eq!(g.num_edges(), 1);
    }

    #[test]
    fn dedup_disabled_keeps_multiplicity() {
        let mut b = GraphBuilder::new(2).dedup(false);
        b.add_edge(0, 1);
        b.add_edge(0, 1);
        let g = b.build();
        assert_eq!(g.num_edges(), 2);
    }

    #[test]
    fn self_loops_dropped_by_default() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(0, 0);
        b.add_edge(0, 1);
        let g = b.build();
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.neighbors(0), &[] as &[VertexId]);
    }

    #[test]
    fn symmetric_adds_reverse_edges() {
        let mut b = GraphBuilder::new(2).symmetric(true);
        b.add_edge(0, 1);
        let g = b.build();
        assert_eq!(g.neighbors(0), &[1]);
        assert_eq!(g.neighbors(1), &[0]);
    }

    #[test]
    fn rows_are_sorted_after_build() {
        let mut b = GraphBuilder::new(4);
        b.add_edge(3, 0);
        b.add_edge(1, 0);
        b.add_edge(2, 0);
        let g = b.build();
        assert_eq!(g.neighbors(0), &[1, 2, 3]);
    }
}
