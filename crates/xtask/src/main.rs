//! Workspace task runner (`cargo xtask ...`).
//!
//! Subcommands:
//!
//! - `profile <workload> [--epochs N]` — run a named workload under
//!   `samply record` (re-execs this binary as `profile-exec`).
//! - `profile <workload> --timing [--epochs N]` — run inline with the
//!   tensor timing hooks on; print per-stage and per-kernel breakdowns.
//! - `profile-exec <workload> [--epochs N]` — the inline runner samply
//!   wraps; usable directly for a plain timed run.
//! - `bench-kernels [--update]` — run the kernel microbench, print the
//!   chunked-vs-scalar table, optionally rewrite `BENCH_kernels.json`.
//! - `bench-diff [--kernels-only | --engine-only]` — the CI regression
//!   gate over `BENCH_kernels.json` and `BENCH_engine.json`.

mod benchdiff;
mod json;
mod profile;

use profile::Workload;

/// Alloc accounting is always available in xtask (`profile --timing
/// --allocs`): counting costs nothing while disabled, and installing the
/// allocator here — instead of via the library's `count-allocs` feature —
/// keeps the one-global-allocator-per-binary rule trivially satisfied no
/// matter which feature unification the workspace build picks.
#[global_allocator]
static GLOBAL_COUNTING_ALLOCATOR: neutron_tensor::alloc::CountingAllocator =
    neutron_tensor::alloc::CountingAllocator;

const USAGE: &str = "\
usage: cargo xtask <command>

commands:
  profile <quickstart|pipeline|engine> [--timing [--allocs]] [--epochs N] [--replicas R]
          [--faults SPEC [--policy fail|drop|restore]]
      run a workload under samply (default) or with timing hooks (--timing);
      --allocs adds a per-stage heap-allocation breakdown; --replicas R runs
      the engine workload data-parallel over an R-way graph partition with
      per-replica per-stage tables; --faults injects a deterministic fault
      plan (e.g. crash@r1e2s3,stall@r0e1s0) into the engine workload and
      prints the detection/recovery timeline, applying --policy on replica
      failures (default fail)
  profile-exec <workload> [--epochs N] [--replicas R]
      run the workload inline (what samply wraps)
  bench-kernels [--update]
      run the kernel microbench; --update rewrites BENCH_kernels.json
  bench-diff [--kernels-only|--engine-only]
      regression gate: kernel speedups + BENCH_engine.json invariants";

const DEFAULT_EPOCHS: usize = 4;

fn parse_epochs(args: &[String]) -> Result<usize, String> {
    match args.iter().position(|a| a == "--epochs") {
        None => Ok(DEFAULT_EPOCHS),
        Some(i) => args
            .get(i + 1)
            .ok_or("--epochs needs a value".to_string())?
            .parse::<usize>()
            .map_err(|e| format!("bad --epochs value: {e}"))
            .and_then(|n| {
                if n == 0 {
                    Err("--epochs must be >= 1".into())
                } else {
                    Ok(n)
                }
            }),
    }
}

fn parse_replicas(args: &[String], workload: Workload) -> Result<usize, String> {
    let replicas = match args.iter().position(|a| a == "--replicas") {
        None => 1,
        Some(i) => args
            .get(i + 1)
            .ok_or("--replicas needs a value".to_string())?
            .parse::<usize>()
            .map_err(|e| format!("bad --replicas value: {e}"))?,
    };
    if replicas == 0 {
        return Err("--replicas must be >= 1".into());
    }
    if replicas > 1 && workload != Workload::Engine {
        return Err("--replicas applies to the 'engine' workload only".into());
    }
    Ok(replicas)
}

fn parse_flag_value(args: &[String], flag: &str) -> Result<Option<String>, String> {
    match args.iter().position(|a| a == flag) {
        None => Ok(None),
        Some(i) => args
            .get(i + 1)
            .cloned()
            .map(Some)
            .ok_or_else(|| format!("{flag} needs a value")),
    }
}

fn parse_policy(args: &[String]) -> Result<neutron_core::FailurePolicy, String> {
    use neutron_core::FailurePolicy;
    match parse_flag_value(args, "--policy")?.as_deref() {
        None | Some("fail") => Ok(FailurePolicy::Fail),
        Some("drop") => Ok(FailurePolicy::DropReplica),
        Some("restore") => Ok(FailurePolicy::Restore),
        Some(other) => Err(format!(
            "bad --policy value '{other}' (expected fail | drop | restore)"
        )),
    }
}

fn run() -> Result<(), String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else {
        return Err(USAGE.into());
    };
    let rest = &args[1..];
    match command.as_str() {
        "profile" => {
            let name = rest.first().ok_or(USAGE.to_string())?;
            let workload = Workload::parse(name)?;
            let epochs = parse_epochs(rest)?;
            let replicas = parse_replicas(rest, workload)?;
            if let Some(faults) = parse_flag_value(rest, "--faults")? {
                let policy = parse_policy(rest)?;
                profile::fault_run(workload, epochs, replicas, &faults, policy)
            } else if rest.iter().any(|a| a == "--timing") {
                profile::timing_run(
                    workload,
                    epochs,
                    replicas,
                    rest.iter().any(|a| a == "--allocs"),
                );
                Ok(())
            } else {
                profile::profile(workload, epochs, replicas)
            }
        }
        "profile-exec" => {
            let name = rest.first().ok_or(USAGE.to_string())?;
            let workload = Workload::parse(name)?;
            profile::exec(
                workload,
                parse_epochs(rest)?,
                parse_replicas(rest, workload)?,
            );
            Ok(())
        }
        "bench-kernels" => benchdiff::bench_kernels(rest.iter().any(|a| a == "--update")),
        "bench-diff" => {
            let kernels_only = rest.iter().any(|a| a == "--kernels-only");
            let engine_only = rest.iter().any(|a| a == "--engine-only");
            if kernels_only && engine_only {
                return Err("--kernels-only and --engine-only are mutually exclusive".into());
            }
            benchdiff::bench_diff(!engine_only, !kernels_only)
        }
        "--help" | "-h" | "help" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command '{other}'\n\n{USAGE}")),
    }
}

fn main() {
    if let Err(message) = run() {
        eprintln!("{message}");
        std::process::exit(1);
    }
}
