//! Row softmax and softmax-cross-entropy, numerically stabilised.

use crate::matrix::Matrix;

/// Row-wise softmax with the standard max-subtraction stabilisation.
pub fn row_softmax(z: &Matrix) -> Matrix {
    let mut out = z.clone();
    for r in 0..out.rows() {
        let row = out.row_mut(r);
        let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let mut sum = 0.0;
        for v in row.iter_mut() {
            *v = (*v - max).exp();
            sum += *v;
        }
        for v in row.iter_mut() {
            *v /= sum;
        }
    }
    out
}

/// Result of a fused softmax-cross-entropy forward pass.
pub struct SoftmaxCrossEntropy {
    /// Mean negative log-likelihood over rows.
    pub loss: f32,
    /// Softmax probabilities, kept for the backward pass.
    pub probs: Matrix,
}

/// Computes mean cross-entropy of logits `z` against integer `labels`.
pub fn softmax_cross_entropy(z: &Matrix, labels: &[usize]) -> SoftmaxCrossEntropy {
    assert_eq!(z.rows(), labels.len(), "one label per row required");
    let probs = row_softmax(z);
    let mut loss = 0.0;
    for (r, &y) in labels.iter().enumerate() {
        assert!(
            y < z.cols(),
            "label {y} out of range for {} classes",
            z.cols()
        );
        loss -= probs.get(r, y).max(1e-12).ln();
    }
    SoftmaxCrossEntropy {
        loss: loss / labels.len().max(1) as f32,
        probs,
    }
}

/// Gradient of mean softmax-cross-entropy w.r.t. the logits:
/// `(softmax(z) − one_hot(y)) / batch`.
pub fn softmax_cross_entropy_grad(probs: &Matrix, labels: &[usize]) -> Matrix {
    assert_eq!(probs.rows(), labels.len());
    let batch = labels.len().max(1) as f32;
    let mut grad = probs.clone();
    for (r, &y) in labels.iter().enumerate() {
        let row = grad.row_mut(r);
        row[y] -= 1.0;
        for v in row.iter_mut() {
            *v /= batch;
        }
    }
    grad
}

/// Row-wise argmax; used for predictions.
pub fn row_argmax(z: &Matrix) -> Vec<usize> {
    (0..z.rows())
        .map(|r| {
            z.row(r)
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
                .map(|(i, _)| i)
                .unwrap_or(0)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn softmax_rows_sum_to_one() {
        let z = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[-5.0, 0.0, 5.0]]);
        let p = row_softmax(&z);
        for r in 0..p.rows() {
            let s: f32 = p.row(r).iter().sum();
            assert!((s - 1.0).abs() < 1e-6);
            assert!(p.row(r).iter().all(|&v| v >= 0.0));
        }
    }

    #[test]
    fn softmax_is_shift_invariant() {
        let z = Matrix::from_rows(&[&[1.0, 2.0, 3.0]]);
        let shifted = Matrix::from_rows(&[&[101.0, 102.0, 103.0]]);
        assert!(row_softmax(&z).approx_eq(&row_softmax(&shifted), 1e-5));
    }

    #[test]
    fn softmax_survives_large_logits() {
        let z = Matrix::from_rows(&[&[1000.0, 999.0]]);
        let p = row_softmax(&z);
        assert!(p.all_finite());
        assert!(p.get(0, 0) > p.get(0, 1));
    }

    #[test]
    fn cross_entropy_of_perfect_prediction_is_near_zero() {
        let z = Matrix::from_rows(&[&[100.0, 0.0], &[0.0, 100.0]]);
        let sce = softmax_cross_entropy(&z, &[0, 1]);
        assert!(sce.loss < 1e-5);
    }

    #[test]
    fn cross_entropy_of_uniform_logits_is_log_k() {
        let z = Matrix::zeros(4, 8);
        let sce = softmax_cross_entropy(&z, &[0, 1, 2, 3]);
        assert!((sce.loss - (8.0f32).ln()).abs() < 1e-5);
    }

    #[test]
    fn gradient_matches_finite_difference() {
        let z = Matrix::from_rows(&[&[0.5, -0.2, 0.1], &[1.0, 0.0, -1.0]]);
        let labels = [2usize, 0];
        let sce = softmax_cross_entropy(&z, &labels);
        let grad = softmax_cross_entropy_grad(&sce.probs, &labels);
        let h = 1e-2f32;
        for r in 0..z.rows() {
            for c in 0..z.cols() {
                let mut zp = z.clone();
                zp.set(r, c, z.get(r, c) + h);
                let mut zm = z.clone();
                zm.set(r, c, z.get(r, c) - h);
                let numeric = (softmax_cross_entropy(&zp, &labels).loss
                    - softmax_cross_entropy(&zm, &labels).loss)
                    / (2.0 * h);
                assert!(
                    (grad.get(r, c) - numeric).abs() < 1e-3,
                    "grad[{r},{c}] {} vs numeric {numeric}",
                    grad.get(r, c)
                );
            }
        }
    }

    #[test]
    fn gradient_rows_sum_to_zero() {
        let z = Matrix::from_rows(&[&[0.3, 0.2, 0.5]]);
        let sce = softmax_cross_entropy(&z, &[1]);
        let g = softmax_cross_entropy_grad(&sce.probs, &[1]);
        let s: f32 = g.row(0).iter().sum();
        assert!(s.abs() < 1e-6);
    }

    #[test]
    fn argmax_picks_largest() {
        let z = Matrix::from_rows(&[&[0.1, 0.9], &[5.0, -1.0]]);
        assert_eq!(row_argmax(&z), vec![1, 0]);
    }
}
