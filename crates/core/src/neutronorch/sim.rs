//! The NeutronOrch orchestrator (simulation side).

use super::config::NeutronOrchConfig;
use crate::baselines::mean_util;
use crate::orchestrator::{Lens, Orchestrator};
use crate::profile::WorkloadProfile;
use crate::report::EpochReport;
use crate::sim::ScheduleBuilder;
use neutron_cache::HybridPolicy;
use neutron_hetero::{CostModel, HardwareSpec, MemLedger, OomError, ResourceId, TaskId, TaskKind};
use neutron_nn::flops;

/// NeutronOrch with a given set of enabled techniques (see
/// [`NeutronOrchConfig`]); [`NeutronOrchConfig::full`] is the published
/// system.
#[derive(Clone, Debug, Default)]
pub struct NeutronOrch {
    /// Enabled techniques.
    pub config: NeutronOrchConfig,
}

impl NeutronOrch {
    /// The full system.
    pub fn new() -> Self {
        Self {
            config: NeutronOrchConfig::full(),
        }
    }

    /// A specific ablation stage.
    pub fn with_config(config: NeutronOrchConfig) -> Self {
        config.validate().expect("invalid NeutronOrch config");
        Self { config }
    }
}

impl Orchestrator for NeutronOrch {
    fn name(&self) -> String {
        if self.config == NeutronOrchConfig::full() {
            "NeutronOrch".into()
        } else if self.config == NeutronOrchConfig::baseline() {
            "Baseline".into()
        } else if self.config == NeutronOrchConfig::plus_l() {
            "Baseline+L".into()
        } else if self.config == NeutronOrchConfig::plus_l_he() {
            "Baseline+L+HE".into()
        } else {
            "Baseline+L+HE+HH".into()
        }
    }

    fn simulate_epoch(
        &self,
        profile: &WorkloadProfile,
        hw: &HardwareSpec,
    ) -> Result<EpochReport, OomError> {
        self.config.validate().expect("invalid config");
        if !self.config.layer_based {
            return simulate_step_baseline(profile, hw, &self.name());
        }
        if !self.config.hotness_reuse {
            return simulate_naive_layer_based(profile, hw, &self.name());
        }
        // Hotness-aware flavor. Hybrid processing needs the GPU idle
        // fraction, which NeutronOrch "monitors during execution" (§4.1.3);
        // we reproduce the feedback loop: simulate with all-CPU hot
        // processing, observe idleness, re-plan, re-simulate.
        let first = simulate_hotness(
            profile,
            hw,
            &self.name(),
            1.0,
            self.config.super_batch_pipeline,
        )?;
        if !self.config.hybrid {
            return Ok(first);
        }
        let policy = HybridPolicy {
            feature_row_bytes: profile.spec.feature_row_bytes(),
            embedding_row_bytes: profile.spec.hidden_row_bytes(),
        };
        // Hot features displace the opportunistic cold-feature cache, so the
        // split is idleness-driven; the ledger of the second pass still
        // validates the result (falling back to the all-CPU plan on OOM).
        // Same feedback rule the measured TrainingEngine applies between
        // epochs (`plan_from_occupancy`), here fed by simulated utilization.
        let plan = policy.plan_from_occupancy(&profile.hot, first.gpu_util, u64::MAX);
        match simulate_hotness(
            profile,
            hw,
            &self.name(),
            plan.cpu_fraction(),
            self.config.super_batch_pipeline,
        ) {
            Ok(second) => Ok(second),
            Err(_) => Ok(first),
        }
    }
}

/// Fig 12's "Baseline": GPU sampling, CPU gather, GPU training, pipelined.
fn simulate_step_baseline(
    profile: &WorkloadProfile,
    hw: &HardwareSpec,
    name: &str,
) -> Result<EpochReport, OomError> {
    let lens = Lens::new(profile);
    let cm = CostModel::new(hw.clone());
    let mut mem = MemLedger::new(hw.gpu.mem_bytes);
    mem.alloc("params", lens.param_bytes())?;
    mem.alloc("topology", lens.paper_topology_bytes())?;
    mem.alloc(
        "batch",
        2 * lens.paper_batch_bytes(profile.config.batch_size),
    )?;
    let mut sched = ScheduleBuilder::new();
    let cpu = sched.resource("cpu", hw.cpu.cores);
    let gpu = sched.resource("gpu0", 1.0);
    let h2d = sched.resource("h2d0", hw.pcie.bandwidth);
    let mut h2d_bytes = 0u64;
    for i in 0..profile.num_batches {
        let s = sched.task(
            gpu,
            TaskKind::Sample,
            cm.gpu_sample(lens.sampled_edges(i)),
            "gpu:sample",
            &[],
        );
        let bytes = lens.bottom_feature_bytes(i) + lens.block_bytes(i);
        let fc = sched.task(
            cpu,
            TaskKind::GatherCollect,
            cm.cpu_collect(bytes),
            "cpu:gather",
            &[s],
        );
        let ft = sched.task(
            h2d,
            TaskKind::Transfer,
            cm.pcie_transfer(bytes),
            "pcie:h2d",
            &[fc],
        );
        h2d_bytes += bytes;
        sched.task(
            gpu,
            TaskKind::Train,
            cm.gpu_train(lens.train_flops(i), profile.seeds(i) as u64),
            "gpu:train",
            &[ft],
        );
    }
    let run = sched.run();
    Ok(EpochReport::from_run(
        name,
        &run,
        mean_util(&run, "cpu"),
        mean_util(&run, "gpu"),
        h2d_bytes,
        mem.used(),
        profile.num_batches,
    ))
}

/// Naive layer-based orchestration (Fig 8a): the CPU computes the complete
/// bottom layer of every batch — demonstrably a new bottleneck.
fn simulate_naive_layer_based(
    profile: &WorkloadProfile,
    hw: &HardwareSpec,
    name: &str,
) -> Result<EpochReport, OomError> {
    let lens = Lens::new(profile);
    let cm = CostModel::new(hw.clone());
    let mut mem = MemLedger::new(hw.gpu.mem_bytes);
    mem.alloc("params", lens.param_bytes())?;
    mem.alloc("batch", 2 * layer_based_batch_bytes(&lens, profile, 1.0))?;
    let mut sched = ScheduleBuilder::new();
    let cpu = sched.resource("cpu", hw.cpu.cores);
    let gpu = sched.resource("gpu0", 1.0);
    let h2d = sched.resource("h2d0", hw.pcie.bandwidth);
    let mut h2d_bytes = 0u64;
    let embed_cores = hw.cpu.cores * 0.75;
    for i in 0..profile.num_batches {
        let stats = profile.stats(i);
        let bottom = &stats.layers[0];
        // CPU: sample the bottom hop + forward-compute the whole layer.
        let s_cpu = sched.task(
            cpu,
            TaskKind::Sample,
            cm.cpu_sample(bottom.num_edges as u64),
            "cpu:sample",
            &[],
        );
        let total = lens.train_flops(i);
        let (_, upper) = lens.train_flops_layer_split(i);
        let bottom_train = total - upper;
        let bottom_fwd = bottom_train / 3;
        let e = sched.task(
            cpu,
            TaskKind::HotEmbed,
            cm.cpu_compute(bottom_fwd, embed_cores),
            "cpu:embed",
            &[s_cpu],
        );
        // GPU: sample the upper hops.
        let upper_edges = stats.total_edges() as u64 - bottom.num_edges as u64;
        let s_gpu = sched.task(
            gpu,
            TaskKind::Sample,
            cm.gpu_sample(upper_edges),
            "gpu:sample",
            &[],
        );
        // Transfer: computed embeddings + data for the GPU-side backward
        // (aggregated neighbor representation + new embedding, §4.1.1).
        let bytes = bottom.num_dst as u64
            * (profile.spec.hidden_row_bytes() + profile.spec.feature_row_bytes())
            + lens.block_bytes(i);
        let ft = sched.task(
            h2d,
            TaskKind::Transfer,
            cm.pcie_transfer(bytes),
            "pcie:h2d",
            &[e],
        );
        h2d_bytes += bytes;
        // GPU: upper layers + the bottom layer's backward pass.
        let gpu_flops = upper + 2 * bottom_fwd;
        sched.task(
            gpu,
            TaskKind::Train,
            cm.gpu_train(gpu_flops, profile.seeds(i) as u64),
            "gpu:train",
            &[s_gpu, ft],
        );
    }
    let run = sched.run();
    Ok(EpochReport::from_run(
        name,
        &run,
        mean_util(&run, "cpu"),
        mean_util(&run, "gpu"),
        h2d_bytes,
        mem.used(),
        profile.num_batches,
    ))
}

/// GPU batch bytes (paper scale) under layer-based orchestration: only the
/// cold fraction of bottom features lives on the GPU.
fn layer_based_batch_bytes(lens: &Lens, profile: &WorkloadProfile, cold_fraction: f64) -> u64 {
    let sizes = lens.paper_layer_sizes(profile.config.batch_size);
    let feat = profile.spec.feature_row_bytes() as f64;
    let hid = profile.spec.hidden_row_bytes() as f64;
    let bottom_src = sizes.first().map(|&(_, s)| s).unwrap_or(0.0);
    let mut bytes = bottom_src * cold_fraction * feat;
    for &(dst, src) in sizes.iter().skip(1) {
        bytes += (src + dst) * hid * 2.0;
    }
    bytes as u64
}

/// The hotness-aware flavor: CPU computes hot-vertex embeddings per
/// super-batch, GPU trains with embedding reuse; optionally fully pipelined.
fn simulate_hotness(
    profile: &WorkloadProfile,
    hw: &HardwareSpec,
    name: &str,
    cpu_fraction: f64,
    pipelined: bool,
) -> Result<EpochReport, OomError> {
    let lens = Lens::new(profile);
    let cm = CostModel::new(hw.clone());
    let n = profile.config.super_batch.max(1);
    let gpus = hw.num_gpus.max(1);
    let spec = &profile.spec;
    let hot_ratio = profile.config.hot_ratio;
    let hot_n_paper = (spec.paper_vertices as f64 * hot_ratio) as u64;
    // Paper-scale share of bottom accesses served by CPU-computed hot
    // embeddings (and, under hybrid, GPU-cached hot features).
    let hot_cov = profile.paper_coverage(hot_ratio);

    // Memory (paper scale, per GPU). The layer-based split lets the GPU
    // consume cold bottom-layer features and wide activations as *streamed
    // tiles* (double-buffered) instead of materialising the whole sampled
    // batch — this bounded working set is why NeutronOrch survives depths
    // and batch sizes that OOM the step-based systems (Tables 5/6).
    const STREAM_WORKING_SET_CAP: u64 = 6 << 30;
    let cold_fraction = 1.0 - hot_cov;
    let mut mem = MemLedger::new(hw.gpu.mem_bytes);
    mem.alloc("params", lens.param_bytes())?;
    mem.alloc(
        "batch",
        (2 * layer_based_batch_bytes(&lens, profile, cold_fraction)).min(STREAM_WORKING_SET_CAP),
    )?;
    // Two super-batch versions of hot embeddings (current + incoming).
    mem.alloc(
        "hot-embeddings",
        2 * ((hot_n_paper as f64 * cpu_fraction) as u64) * spec.hidden_row_bytes() / gpus as u64,
    )?;
    // Hybrid: the GPU-cached share holds raw features.
    mem.alloc(
        "hot-feature-cache",
        ((hot_n_paper as f64 * (1.0 - cpu_fraction)) as u64) * spec.feature_row_bytes()
            / gpus as u64,
    )?;
    // "When GPU resources are sufficient, reduce CPU embedding computation
    // while increasing the feature cache ratio" (§5.2): leftover device
    // memory becomes a presample-ranked cache for the next-hottest cold
    // vertices.
    let (extra_ratio, _) = lens.cache_plan(mem.available() * gpus as u64, false);
    mem.alloc("cold-feature-cache", mem.available())?;
    let cold_hit = {
        let combined = profile.paper_coverage(hot_ratio + extra_ratio);
        ((combined - hot_cov) / (1.0 - hot_cov).max(1e-9)).clamp(0.0, 1.0)
    };
    // Fraction of a batch's bottom feature volume that still crosses PCIe.
    let miss_fraction = (1.0 - hot_cov) * (1.0 - cold_hit);

    // Resources.
    let mut sched = ScheduleBuilder::new();
    let cpu = sched.resource("cpu", hw.cpu.cores);
    let nvlink = hw.nvlink.map(|l| sched.resource("nvlink", l.bandwidth));
    let mut gpu_res: Vec<ResourceId> = Vec::new();
    let mut h2d_res: Vec<ResourceId> = Vec::new();
    for g in 0..gpus {
        gpu_res.push(sched.resource(format!("gpu{g}"), 1.0));
        h2d_res.push(sched.resource(format!("h2d{g}"), hw.pcie.bandwidth));
    }

    // CPU embedding workload per super-batch.
    let hot_len = profile.hot.len().max(1);
    let edges_per_hot = profile.hot_one_hop_edges as f64 / hot_len as f64;
    let hot_vertices_per_sb = profile.hot_per_super_batch * cpu_fraction;
    let hot_edges_per_sb = (hot_vertices_per_sb * edges_per_hot) as u64;
    let (din0, dout0) = lens.dims[0];
    let embed_flops_per_sb = flops::layer_forward_flops(
        profile.config.kind,
        hot_vertices_per_sb as u64,
        (hot_vertices_per_sb * (edges_per_hot + 1.0)) as u64,
        hot_edges_per_sb,
        din0 as u64,
        dout0 as u64,
    );
    let embed_cores = hw.cpu.cores * 0.75;

    let num_sb = profile.num_batches.div_ceil(n);
    let mut h2d_bytes = 0u64;
    let mut prev_sb_last_train: Vec<Option<TaskId>> = vec![None; gpus];
    let mut embed_tasks: Vec<TaskId> = Vec::with_capacity(num_sb);
    for sb in 0..num_sb {
        // CPU: one-hop sampling + embedding computation for this
        // super-batch's hot queue.
        let mut deps: Vec<TaskId> = Vec::new();
        if !pipelined {
            // Naive scheduling (Fig 9a): the CPU refresh waits for the
            // previous super-batch to finish training.
            deps.extend(prev_sb_last_train.iter().flatten().copied());
        }
        let s_hot = sched.task(
            cpu,
            TaskKind::Sample,
            cm.cpu_sample(hot_edges_per_sb),
            "cpu:hotsample",
            &deps,
        );
        let e = sched.task(
            cpu,
            TaskKind::HotEmbed,
            cm.cpu_compute(embed_flops_per_sb, embed_cores),
            "cpu:hotembed",
            &[s_hot],
        );
        embed_tasks.push(e);
        // The embeddings a super-batch consumes come from the *previous*
        // super-batch's CPU pass (bounded staleness < 2n, §4.2.2).
        let embed_ready = if sb == 0 { e } else { embed_tasks[sb - 1] };

        let first_batch = sb * n;
        let last_batch = ((sb + 1) * n).min(profile.num_batches);
        // Stage 1: all sampling of the super-batch precedes its training
        // ("the GPU completes n rounds of sampling before n training
        // rounds", §4.2.2), avoiding kernel contention.
        let mut sample_tails: Vec<Option<TaskId>> = vec![None; gpus];
        for i in first_batch..last_batch {
            let g = i % gpus;
            let stats = profile.stats(i);
            // Sampling skips the subtrees below CPU-handled hot vertices.
            let bottom_edges = stats.layers[0].num_edges as u64;
            let upper_edges = stats.total_edges() as u64 - bottom_edges;
            let sampled =
                upper_edges + ((bottom_edges as f64) * (1.0 - hot_cov * cpu_fraction)) as u64;
            let s = sched.task(
                gpu_res[g],
                TaskKind::Sample,
                cm.gpu_sample(sampled),
                &format!("gpu{g}:sample"),
                &[],
            );
            sample_tails[g] = Some(s);
        }
        for i in first_batch..last_batch {
            let g = i % gpus;
            let stats = profile.stats(i);
            // Gather: feature misses + amortised hot embeddings + structure.
            let miss_bytes = ((stats.bottom_src() as u64 * spec.feature_row_bytes()) as f64
                * miss_fraction) as u64;
            let embed_bytes =
                (hot_vertices_per_sb / n as f64 * spec.hidden_row_bytes() as f64) as u64;
            let bytes = miss_bytes + embed_bytes + lens.block_bytes(i);
            // Host-side collection of the missed rows into staging buffers.
            let fc = sched.task(
                cpu,
                TaskKind::GatherCollect,
                cm.cpu_collect(miss_bytes),
                "cpu:gather",
                &[],
            );
            let ft = sched.task(
                h2d_res[g],
                TaskKind::Transfer,
                cm.pcie_transfer(bytes),
                &format!("pcie{g}:h2d"),
                &[embed_ready, fc],
            );
            h2d_bytes += bytes;
            // Train: the GPU computes the bottom layer for everything except
            // the CPU-computed hot destinations, plus all upper layers.
            let (_, upper) = lens.train_flops_layer_split(i);
            let bottom_full = lens.train_flops(i) - upper;
            let bottom_gpu = ((bottom_full as f64) * (1.0 - hot_cov * cpu_fraction)) as u64;
            let mut tdeps = vec![ft];
            if let Some(s) = sample_tails[g] {
                tdeps.push(s);
            }
            let t = sched.task(
                gpu_res[g],
                TaskKind::Train,
                cm.gpu_train(bottom_gpu + upper, profile.seeds(i) as u64),
                &format!("gpu{g}:train"),
                &tdeps,
            );
            prev_sb_last_train[g] = Some(t);
            if gpus > 1 {
                if let Some(nv) = nvlink {
                    sched.task(
                        nv,
                        TaskKind::Sync,
                        cm.gpu_sync(2 * lens.param_bytes()),
                        "nvlink:allreduce",
                        &[t],
                    );
                }
            }
        }
    }
    let run = sched.run();
    Ok(EpochReport::from_run(
        name,
        &run,
        mean_util(&run, "cpu"),
        mean_util(&run, "gpu"),
        h2d_bytes,
        mem.used(),
        profile.num_batches,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baselines::{Case1Dgl, Case4GnnLab};
    use crate::profile::WorkloadConfig;
    use neutron_graph::DatasetSpec;
    use neutron_nn::LayerKind;

    fn fixture() -> (WorkloadProfile, HardwareSpec) {
        let mut cfg = WorkloadConfig::paper_default(LayerKind::Gcn);
        cfg.batch_size = 64;
        cfg.layers = 2;
        cfg.profiled_batches = 4;
        let profile = WorkloadProfile::build(&DatasetSpec::tiny(), &cfg);
        (profile, HardwareSpec::v100_server(1.0))
    }

    #[test]
    fn full_system_runs() {
        let (profile, hw) = fixture();
        let r = NeutronOrch::new().simulate_epoch(&profile, &hw).unwrap();
        assert!(r.epoch_seconds > 0.0);
        assert!(
            r.hot_embed_seconds > 0.0,
            "CPU must be computing hot embeddings"
        );
    }

    #[test]
    fn ablation_ladder_is_mostly_monotone() {
        let (profile, hw) = fixture();
        let ladder = NeutronOrchConfig::ablation_ladder();
        let times: Vec<f64> = ladder
            .iter()
            .map(|(_, cfg)| {
                NeutronOrch::with_config(*cfg)
                    .simulate_epoch(&profile, &hw)
                    .unwrap()
                    .epoch_seconds
            })
            .collect();
        // The full system must beat the baseline and the naive layer split.
        assert!(
            times[4] < times[0],
            "full {} vs baseline {}",
            times[4],
            times[0]
        );
        assert!(times[4] < times[1], "full {} vs +L {}", times[4], times[1]);
        // HE must rescue the naive layer split's CPU bottleneck.
        assert!(times[2] < times[1], "+HE {} vs +L {}", times[2], times[1]);
    }

    #[test]
    fn beats_step_based_baselines_on_skewed_replicas() {
        let mut cfg = WorkloadConfig::paper_default(LayerKind::Gcn);
        cfg.profiled_batches = 3;
        let mut spec = DatasetSpec::reddit_scaled();
        spec.vertices = 4000;
        spec.edges = 400_000;
        let profile = WorkloadProfile::build(&spec, &cfg);
        let hw = HardwareSpec::v100_server(1.0);
        let ours = NeutronOrch::new().simulate_epoch(&profile, &hw).unwrap();
        let dgl = Case1Dgl { pipelined: true }
            .simulate_epoch(&profile, &hw)
            .unwrap();
        let gnnlab = Case4GnnLab.simulate_epoch(&profile, &hw).unwrap();
        assert!(
            ours.epoch_seconds < dgl.epoch_seconds,
            "NeutronOrch {} vs DGL {}",
            ours.epoch_seconds,
            dgl.epoch_seconds
        );
        assert!(
            ours.epoch_seconds < gnnlab.epoch_seconds * 1.05,
            "NeutronOrch {} should at least match GNNLab {}",
            ours.epoch_seconds,
            gnnlab.epoch_seconds
        );
    }

    #[test]
    fn transfers_less_than_dgl() {
        let (profile, hw) = fixture();
        let ours = NeutronOrch::new().simulate_epoch(&profile, &hw).unwrap();
        let dgl = Case1Dgl { pipelined: true }
            .simulate_epoch(&profile, &hw)
            .unwrap();
        assert!(
            ours.h2d_bytes < dgl.h2d_bytes,
            "{} vs {}",
            ours.h2d_bytes,
            dgl.h2d_bytes
        );
    }

    #[test]
    fn multi_gpu_scales() {
        let (profile, _) = fixture();
        let r1 = NeutronOrch::new()
            .simulate_epoch(&profile, &HardwareSpec::dgx1_like(1, 1.0))
            .unwrap();
        let r4 = NeutronOrch::new()
            .simulate_epoch(&profile, &HardwareSpec::dgx1_like(4, 1.0))
            .unwrap();
        assert!(r4.epoch_seconds <= r1.epoch_seconds);
    }
}
