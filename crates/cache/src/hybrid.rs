//! Hybrid hot-vertex processing (§4.1.3).
//!
//! NeutronOrch splits the hot set between **CPU embedding computation** and
//! **GPU feature caching**: when the GPU has spare memory and is idling on
//! CPU-side work, hot vertices shift to the GPU cache; when GPU memory is
//! tight (or idle time reaches zero), they stay on the CPU. Embeddings are
//! smaller than features (hidden_dim < feature_dim), which is where the
//! Fig 13 memory savings come from.

use neutron_graph::VertexId;
use neutron_sample::HotSet;

/// Outcome of the hybrid split.
#[derive(Clone, Debug)]
pub struct HybridPlan {
    /// Hot vertices whose embeddings the CPU computes and the GPU reuses.
    pub cpu_compute: Vec<VertexId>,
    /// Hot vertices whose raw features are cached in GPU memory.
    pub gpu_cache: Vec<VertexId>,
    /// GPU bytes consumed: cached features + staged hot embeddings.
    pub gpu_bytes: u64,
}

impl HybridPlan {
    /// Fraction of the hot set assigned to CPU computation.
    pub fn cpu_fraction(&self) -> f64 {
        let total = self.cpu_compute.len() + self.gpu_cache.len();
        if total == 0 {
            0.0
        } else {
            self.cpu_compute.len() as f64 / total as f64
        }
    }
}

/// The adaptive splitter.
#[derive(Clone, Copy, Debug)]
pub struct HybridPolicy {
    /// Bytes of one raw feature row.
    pub feature_row_bytes: u64,
    /// Bytes of one embedding row (hidden dim).
    pub embedding_row_bytes: u64,
}

impl HybridPolicy {
    /// Plans the split. `gpu_idle_fraction` is the measured share of GPU
    /// time spent waiting on CPU embedding work; `gpu_free_bytes` is what
    /// the memory ledger has left after topology/batch allocations.
    ///
    /// Rules from §4.1.3:
    /// - move hot vertices from CPU to GPU cache while the GPU is idle
    ///   (idle time > 0) **and** memory remains;
    /// - stop when memory is exhausted or idle time reaches zero.
    pub fn plan(&self, hot: &HotSet, gpu_idle_fraction: f64, gpu_free_bytes: u64) -> HybridPlan {
        // The idle fraction comes from wall-clock measurements, so NaN and
        // slightly-out-of-range values happen; clamp rather than panic
        // (NaN maps to 0.0: no evidence of idleness, nothing moves).
        let idle = if gpu_idle_fraction.is_nan() {
            0.0
        } else {
            gpu_idle_fraction.clamp(0.0, 1.0)
        };
        // Idleness decides the *target* share moved to the GPU: fully idle
        // GPU (waiting on the CPU) pulls the whole hot set into its cache;
        // zero idle keeps everything on the CPU.
        let want_gpu = (hot.len() as f64 * idle).round() as usize;
        // Memory caps the move; every cached vertex also frees the staging
        // slot its embedding would have used, so charge the net difference.
        // Zero net cost (embeddings at least as large as features) follows
        // the shared zero-row-size rule: costless rows always fit (see
        // `feature_cache` module docs).
        let per_vertex = self
            .feature_row_bytes
            .saturating_sub(self.embedding_row_bytes);
        let fit_gpu = gpu_free_bytes
            .checked_div(per_vertex)
            .map_or(usize::MAX, |n| n as usize);
        let to_gpu = want_gpu.min(fit_gpu).min(hot.len());
        // The *least* hot of the hot set go to the GPU cache: the hottest
        // vertices are reused most, so CPU-computing them saves the most
        // repeated GPU work per embedding update.
        let cpu_fraction = 1.0 - to_gpu as f64 / hot.len().max(1) as f64;
        let (cpu_compute, gpu_cache) = hot.split_cpu_gpu(cpu_fraction);
        let gpu_bytes = gpu_cache.len() as u64 * self.feature_row_bytes
            + cpu_compute.len() as u64 * self.embedding_row_bytes;
        HybridPlan {
            cpu_compute,
            gpu_cache,
            gpu_bytes,
        }
    }

    /// [`Self::plan`] driven by a *measured* train-stage occupancy rather
    /// than a pre-computed idle fraction — the §4.1.3 feedback loop closed
    /// at runtime. `train_occupancy` is the fraction of wall-clock the
    /// training device spent computing (e.g.
    /// `PipelineReport::train_occupancy`); its complement is the idle share
    /// available for hot-feature caching. Values outside `[0, 1]` (possible
    /// from coarse timers) are clamped instead of panicking.
    pub fn plan_from_occupancy(
        &self,
        hot: &HotSet,
        train_occupancy: f64,
        gpu_free_bytes: u64,
    ) -> HybridPlan {
        let idle = (1.0 - train_occupancy).clamp(0.0, 1.0);
        self.plan(hot, idle, gpu_free_bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use neutron_sample::HotnessRanking;

    fn hot_set(n: usize, ratio: f64) -> HotSet {
        let counts: Vec<u32> = (0..n as u32).rev().collect();
        HotnessRanking::from_counts(counts).hot_set(ratio)
    }

    fn policy() -> HybridPolicy {
        HybridPolicy {
            feature_row_bytes: 400,
            embedding_row_bytes: 100,
        }
    }

    #[test]
    fn zero_idle_keeps_everything_on_cpu() {
        let hot = hot_set(100, 0.2);
        let plan = policy().plan(&hot, 0.0, u64::MAX);
        assert_eq!(plan.cpu_compute.len(), 20);
        assert!(plan.gpu_cache.is_empty());
        assert!((plan.cpu_fraction() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn full_idle_with_memory_moves_all_to_gpu() {
        let hot = hot_set(100, 0.2);
        let plan = policy().plan(&hot, 1.0, u64::MAX);
        assert!(plan.cpu_compute.is_empty());
        assert_eq!(plan.gpu_cache.len(), 20);
    }

    #[test]
    fn memory_caps_the_gpu_share() {
        let hot = hot_set(100, 0.2);
        // Each cached vertex costs its 400 B feature row but frees the
        // 100 B embedding staging slot: net 300 B. Room for exactly 5.
        let plan = policy().plan(&hot, 1.0, 5 * 300);
        assert_eq!(plan.gpu_cache.len(), 5);
        assert_eq!(plan.cpu_compute.len(), 15);
    }

    #[test]
    fn memory_cap_uses_net_bytes_not_gross() {
        let hot = hot_set(100, 0.2);
        // 4 gross rows (4 * 400 B) hold 5 vertices once each freed 100 B
        // staging slot is credited back.
        let plan = policy().plan(&hot, 1.0, 4 * 400);
        assert_eq!(plan.gpu_cache.len(), 5);
    }

    #[test]
    fn zero_net_row_cost_fits_everything() {
        // Embeddings as large as features: caching is memory-neutral, so
        // any budget (even zero) admits the whole idle-driven target —
        // the shared zero-row-size rule.
        let hot = hot_set(100, 0.2);
        let p = HybridPolicy {
            feature_row_bytes: 128,
            embedding_row_bytes: 128,
        };
        let plan = p.plan(&hot, 1.0, 0);
        assert_eq!(plan.gpu_cache.len(), 20);
        assert!(plan.cpu_compute.is_empty());
    }

    #[test]
    fn nan_and_out_of_range_idleness_are_clamped() {
        let hot = hot_set(100, 0.2);
        let p = policy();
        // NaN (e.g. 0/0 from two zero timers) means "no evidence of
        // idleness": nothing moves, and no panic.
        let nan = p.plan(&hot, f64::NAN, u64::MAX);
        assert!(nan.gpu_cache.is_empty());
        let over = p.plan(&hot, 1.7, u64::MAX);
        assert_eq!(over.gpu_cache.len(), 20);
        let under = p.plan(&hot, -0.3, u64::MAX);
        assert!(under.gpu_cache.is_empty());
        // The same safety holds through the occupancy wrapper.
        let nan_occ = p.plan_from_occupancy(&hot, f64::NAN, u64::MAX);
        assert!(nan_occ.gpu_cache.is_empty());
    }

    #[test]
    fn hottest_vertices_stay_on_cpu() {
        let hot = hot_set(10, 1.0);
        let plan = policy().plan(&hot, 0.5, u64::MAX);
        // counts were descending by id, so vertex 0 is hottest.
        assert!(plan.cpu_compute.contains(&0));
        assert!(!plan.gpu_cache.contains(&0));
    }

    #[test]
    fn gpu_bytes_mix_features_and_embeddings() {
        let hot = hot_set(10, 1.0);
        let plan = policy().plan(&hot, 0.5, u64::MAX);
        let expect = plan.gpu_cache.len() as u64 * 400 + plan.cpu_compute.len() as u64 * 100;
        assert_eq!(plan.gpu_bytes, expect);
    }

    #[test]
    fn occupancy_plan_complements_idleness_and_clamps() {
        let hot = hot_set(100, 0.2);
        let p = policy();
        // Fully busy trainer → no idle → everything stays CPU-computed.
        let busy = p.plan_from_occupancy(&hot, 1.0, u64::MAX);
        assert!(busy.gpu_cache.is_empty());
        // Starved trainer → fully idle → the whole hot set moves to GPU.
        let starved = p.plan_from_occupancy(&hot, 0.0, u64::MAX);
        assert!(starved.cpu_compute.is_empty());
        // Timer noise outside [0,1] is clamped, not a panic.
        let noisy = p.plan_from_occupancy(&hot, 1.3, u64::MAX);
        assert!(noisy.gpu_cache.is_empty());
        let negative = p.plan_from_occupancy(&hot, -0.2, u64::MAX);
        assert!(negative.cpu_compute.is_empty());
    }

    #[test]
    fn empty_hot_set_is_fine() {
        let hot = hot_set(10, 0.0);
        let plan = policy().plan(&hot, 0.7, 1000);
        assert_eq!(plan.cpu_fraction(), 0.0);
        assert_eq!(plan.gpu_bytes, 0);
    }
}
