//! Scoped-thread row partitioning for the matmul kernels.
//!
//! The workspace deliberately avoids a thread-pool dependency; matmuls over
//! vertex batches are embarrassingly parallel over rows, so chunking the
//! output buffer across `std::thread` scoped threads is sufficient. Small
//! matrices stay single-threaded to avoid spawn overhead.

/// Row count below which kernels run single-threaded.
pub const PAR_ROW_THRESHOLD: usize = 256;

/// Maximum number of worker threads used by a single kernel. The OS query
/// is cached: kernels run millions of times per epoch and
/// `available_parallelism` is a syscall on most platforms.
pub fn max_threads() -> usize {
    use std::sync::OnceLock;
    static MAX: OnceLock<usize> = OnceLock::new();
    *MAX.get_or_init(|| {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            .min(8)
    })
}

/// Splits `out` (a `rows x cols` row-major buffer) into contiguous row
/// chunks and invokes `f(first_row_index, chunk)` for each, possibly in
/// parallel. `f` must be pure per-chunk (chunks are disjoint).
pub fn for_each_row_chunk<F>(out: &mut [f32], cols: usize, rows: usize, f: F)
where
    F: Fn(usize, &mut [f32]) + Sync,
{
    debug_assert_eq!(out.len(), rows * cols);
    if cols == 0 || rows == 0 {
        return;
    }
    let threads = max_threads();
    if rows < PAR_ROW_THRESHOLD || threads <= 1 {
        f(0, out);
        return;
    }
    // Cap by the actual chunk count: with rows just over the threshold,
    // div_ceil produces fewer chunks than threads, and spawning a scope for
    // one chunk would pay thread start-up for zero parallelism.
    let chunk_rows = rows.div_ceil(threads);
    let num_chunks = rows.div_ceil(chunk_rows);
    if num_chunks <= 1 {
        f(0, out);
        return;
    }
    std::thread::scope(|scope| {
        for (idx, chunk) in out.chunks_mut(chunk_rows * cols).enumerate() {
            let f = &f;
            scope.spawn(move || f(idx * chunk_rows, chunk));
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_path_visits_all_rows() {
        let rows = 10;
        let cols = 3;
        let mut buf = vec![0.0f32; rows * cols];
        for_each_row_chunk(&mut buf, cols, rows, |row0, chunk| {
            for (i, row) in chunk.chunks_exact_mut(cols).enumerate() {
                row.fill((row0 + i) as f32);
            }
        });
        for r in 0..rows {
            assert_eq!(buf[r * cols], r as f32);
        }
    }

    #[test]
    fn parallel_path_visits_all_rows_exactly_once() {
        let rows = PAR_ROW_THRESHOLD * 3 + 7;
        let cols = 2;
        let mut buf = vec![0.0f32; rows * cols];
        for_each_row_chunk(&mut buf, cols, rows, |row0, chunk| {
            for (i, row) in chunk.chunks_exact_mut(cols).enumerate() {
                for v in row.iter_mut() {
                    *v += (row0 + i) as f32 + 1.0;
                }
            }
        });
        for r in 0..rows {
            assert_eq!(
                buf[r * cols],
                r as f32 + 1.0,
                "row {r} written wrong number of times"
            );
        }
    }

    #[test]
    fn empty_matrix_is_a_noop() {
        let mut buf: Vec<f32> = vec![];
        for_each_row_chunk(&mut buf, 0, 0, |_, _| panic!("must not be called"));
    }
}
