//! NeutronOrch feature flags — the ablation axes of Fig 12.

/// Which of NeutronOrch's four techniques are enabled.
///
/// Fig 12 builds them up cumulatively: the baseline is a step-based
/// orchestrator (GPU sampling, CPU gather, GPU training); `+L` moves the
/// bottom layer to the CPU; `+HE` restricts CPU work to hot vertices with
/// bounded-staleness reuse; `+HH` splits hot vertices between CPU compute
/// and GPU caching; `+S` overlaps everything with super-batch pipelining.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct NeutronOrchConfig {
    /// L — layer-based task orchestrating (§4.1.1).
    pub layer_based: bool,
    /// HE — hotness-aware embedding reuse (§4.1.2). Requires `layer_based`.
    pub hotness_reuse: bool,
    /// HH — hybrid hot-vertex processing (§4.1.3). Requires `hotness_reuse`.
    pub hybrid: bool,
    /// S — super-batch pipelined training (§4.2). Requires `hotness_reuse`.
    pub super_batch_pipeline: bool,
}

impl NeutronOrchConfig {
    /// Fig 12's "Baseline": step-based, no NeutronOrch techniques.
    pub fn baseline() -> Self {
        Self {
            layer_based: false,
            hotness_reuse: false,
            hybrid: false,
            super_batch_pipeline: false,
        }
    }

    /// Baseline + L.
    pub fn plus_l() -> Self {
        Self {
            layer_based: true,
            ..Self::baseline()
        }
    }

    /// Baseline + L + HE.
    pub fn plus_l_he() -> Self {
        Self {
            layer_based: true,
            hotness_reuse: true,
            ..Self::baseline()
        }
    }

    /// Baseline + L + HE + HH.
    pub fn plus_l_he_hh() -> Self {
        Self {
            layer_based: true,
            hotness_reuse: true,
            hybrid: true,
            super_batch_pipeline: false,
        }
    }

    /// The full system (all four techniques) — what "NeutronOrch" means in
    /// every other figure.
    pub fn full() -> Self {
        Self {
            layer_based: true,
            hotness_reuse: true,
            hybrid: true,
            super_batch_pipeline: true,
        }
    }

    /// All five ablation stages in Fig 12 order, with their labels.
    pub fn ablation_ladder() -> Vec<(&'static str, Self)> {
        vec![
            ("Baseline", Self::baseline()),
            ("+L", Self::plus_l()),
            ("+L+HE", Self::plus_l_he()),
            ("+L+HE+HH", Self::plus_l_he_hh()),
            ("+L+HE+HH+S", Self::full()),
        ]
    }

    /// Validates flag implications.
    pub fn validate(&self) -> Result<(), String> {
        if self.hotness_reuse && !self.layer_based {
            return Err("hotness reuse requires layer-based orchestration".into());
        }
        if self.hybrid && !self.hotness_reuse {
            return Err("hybrid processing requires hotness reuse".into());
        }
        if self.super_batch_pipeline && !self.hotness_reuse {
            return Err("super-batch pipelining requires hotness reuse".into());
        }
        Ok(())
    }
}

impl Default for NeutronOrchConfig {
    fn default() -> Self {
        Self::full()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ladder_is_monotone_in_features() {
        let ladder = NeutronOrchConfig::ablation_ladder();
        assert_eq!(ladder.len(), 5);
        for (_, cfg) in &ladder {
            cfg.validate().unwrap();
        }
        assert_eq!(ladder[0].1, NeutronOrchConfig::baseline());
        assert_eq!(ladder[4].1, NeutronOrchConfig::full());
    }

    #[test]
    fn invalid_combinations_are_rejected() {
        let bad = NeutronOrchConfig {
            layer_based: false,
            hotness_reuse: true,
            hybrid: false,
            super_batch_pipeline: false,
        };
        assert!(bad.validate().is_err());
        let bad2 = NeutronOrchConfig {
            layer_based: true,
            hotness_reuse: false,
            hybrid: true,
            super_batch_pipeline: false,
        };
        assert!(bad2.validate().is_err());
    }
}
