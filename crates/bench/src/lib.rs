//! Benchmark harness regenerating every table and figure of the paper's
//! evaluation (§5).
//!
//! Each experiment lives in [`exp`] as a pure function returning typed rows
//! plus a paper-style rendered table. The `exp` binary prints them; the
//! criterion benches run scaled-down configurations of the same functions.
//!
//! Absolute numbers are **replica-scale simulated seconds** (the replica
//! graphs are 16–512× smaller than the paper's datasets); the comparisons —
//! who wins, by what factor, where OOMs appear — are the reproduced result.
//! See `EXPERIMENTS.md` for the paper-vs-measured record.

pub mod exp;
pub mod util;

use neutron_core::profile::{WorkloadConfig, WorkloadProfile};
use neutron_graph::DatasetSpec;
use neutron_nn::LayerKind;

/// Experiment sizing: the paper-default replicas or a seconds-fast smoke
/// configuration for criterion and CI.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Setup {
    /// Full replica datasets (Table 4 registry, scaled), paper parameters.
    Paper,
    /// Tiny datasets, few batches — the same code paths in milliseconds.
    Smoke,
}

impl Setup {
    /// The evaluation datasets for this setup, in Table 4 order.
    pub fn datasets(self) -> Vec<DatasetSpec> {
        match self {
            Setup::Paper => DatasetSpec::all_scaled(),
            Setup::Smoke => {
                DatasetSpec::all_scaled()
                    .into_iter()
                    .map(|mut s| {
                        let shrink = (s.vertices / 4000).max(1);
                        s.vertices /= shrink;
                        s.edges /= shrink;
                        // Keep the paper-scale stats (and hence `scale`)
                        // untouched: memory behaviour must not change.
                        s
                    })
                    .collect()
            }
        }
    }

    /// A dataset by Table 4 name, resized for this setup.
    pub fn dataset(self, name: &str) -> DatasetSpec {
        self.datasets()
            .into_iter()
            .find(|d| d.name == name)
            .unwrap_or_else(|| panic!("unknown dataset {name}"))
    }

    /// Batches profiled per workload.
    pub fn profiled_batches(self) -> usize {
        match self {
            Setup::Paper => 5,
            Setup::Smoke => 2,
        }
    }

    /// Epochs for convergence runs.
    pub fn convergence_epochs(self) -> usize {
        match self {
            Setup::Paper => 30,
            Setup::Smoke => 2,
        }
    }
}

/// Builds the workload profile of one experiment cell.
pub fn build_profile(
    setup: Setup,
    dataset: &DatasetSpec,
    kind: LayerKind,
    layers: usize,
    batch_size: usize,
) -> WorkloadProfile {
    let mut cfg = WorkloadConfig::paper_default(kind);
    cfg.layers = layers;
    cfg.batch_size = batch_size;
    cfg.profiled_batches = setup.profiled_batches();
    WorkloadProfile::build(dataset, &cfg)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_setup_shrinks_replicas_but_keeps_paper_stats() {
        let paper = Setup::Paper.dataset("Reddit");
        let smoke = Setup::Smoke.dataset("Reddit");
        assert!(smoke.vertices <= paper.vertices);
        assert_eq!(smoke.paper_vertices, paper.paper_vertices);
        assert_eq!(smoke.feature_dim, paper.feature_dim);
    }

    #[test]
    fn all_six_datasets_present() {
        assert_eq!(Setup::Paper.datasets().len(), 6);
        let names: Vec<&str> = Setup::Smoke.datasets().iter().map(|d| d.name).collect();
        assert!(names.contains(&"Papers100M"));
    }
}
