//! Row-major dense `f32` matrix.

use std::fmt;

/// A row-major dense `f32` matrix.
///
/// This is the single tensor type of the workspace: vertex feature batches,
/// embeddings, weights and gradients are all `Matrix` values. Rows usually
/// index vertices and columns index feature dimensions.
#[derive(Clone, Default, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// Creates a `rows x cols` matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a `rows x cols` matrix filled with `value`.
    pub fn full(rows: usize, cols: usize, value: f32) -> Self {
        Self {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// Wraps an existing buffer. `data.len()` must equal `rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "buffer length {} does not match {}x{}",
            data.len(),
            rows,
            cols
        );
        Self { rows, cols, data }
    }

    /// Builds a matrix from a nested-slice literal; handy in tests.
    pub fn from_rows(rows: &[&[f32]]) -> Self {
        let r = rows.len();
        let c = rows.first().map_or(0, |row| row.len());
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            assert_eq!(row.len(), c, "ragged rows");
            data.extend_from_slice(row);
        }
        Self::from_vec(r, c, data)
    }

    /// Identity matrix of size `n`.
    pub fn eye(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m.set(i, i, 1.0);
        }
        m
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the matrix has no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Element accessor.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    /// Element mutator.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] = v;
    }

    /// Borrow of row `r` as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        let start = r * self.cols;
        &self.data[start..start + self.cols]
    }

    /// Mutable borrow of row `r`.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        let start = r * self.cols;
        &mut self.data[start..start + self.cols]
    }

    /// Underlying buffer.
    #[inline]
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable underlying buffer.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the matrix, returning its buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Copies `src` into row `r`.
    pub fn copy_row_from(&mut self, r: usize, src: &[f32]) {
        assert_eq!(src.len(), self.cols);
        self.row_mut(r).copy_from_slice(src);
    }

    /// Returns a new matrix containing the given rows, in order.
    ///
    /// This is the "gather" primitive of sample-based training: collecting
    /// the feature rows of sampled vertices into a contiguous batch.
    /// Appends straight into reserved capacity (no zero-fill pass) — see
    /// [`crate::kernels`] for the measured rationale.
    pub fn gather_rows(&self, indices: &[usize]) -> Matrix {
        let t0 = crate::timing::start();
        let mut data = Vec::new();
        crate::kernels::gather_rows_into(&mut data, &self.data, self.cols, indices);
        // `cols == 0` gathers still produce `indices.len()` zero-width rows.
        let out = Matrix {
            rows: indices.len(),
            cols: self.cols,
            data,
        };
        crate::timing::stop(crate::timing::Kernel::Gather, t0);
        out
    }

    /// [`Self::gather_rows`] into a caller-owned matrix whose buffer
    /// capacity is reused — the pooled-staging variant: a recycled `out`
    /// that has already seen a batch of this shape gathers without touching
    /// the allocator. Bit-identical to `*out = self.gather_rows(indices)`.
    pub fn gather_rows_into(&self, indices: &[usize], out: &mut Matrix) {
        let t0 = crate::timing::start();
        out.data.clear();
        crate::kernels::gather_rows_into(&mut out.data, &self.data, self.cols, indices);
        // `cols == 0` gathers still produce `indices.len()` zero-width rows.
        out.rows = indices.len();
        out.cols = self.cols;
        crate::timing::stop(crate::timing::Kernel::Gather, t0);
    }

    /// Row gather addressed by `u32` vertex ids, as produced by the
    /// sampling layer — no widened index vector is materialised.
    pub fn gather_rows_u32(&self, indices: &[u32]) -> Matrix {
        let mut out = Matrix::default();
        self.gather_rows_u32_into(indices, &mut out);
        out
    }

    /// [`Self::gather_rows_u32`] into a recycled matrix.
    pub fn gather_rows_u32_into(&self, indices: &[u32], out: &mut Matrix) {
        let t0 = crate::timing::start();
        out.data.clear();
        crate::kernels::gather_rows_u32_into(&mut out.data, &self.data, self.cols, indices);
        out.rows = indices.len();
        out.cols = self.cols;
        crate::timing::stop(crate::timing::Kernel::Gather, t0);
    }

    /// Indirect row gather into a recycled matrix: output row `r` is
    /// `self[ids[positions[r]]]`. Replaces the collect-then-gather pattern
    /// of the cache-keyed miss gather (see [`crate::kernels`]).
    pub fn gather_rows_mapped_into(&self, ids: &[u32], positions: &[u32], out: &mut Matrix) {
        let t0 = crate::timing::start();
        out.data.clear();
        crate::kernels::gather_rows_mapped_into(
            &mut out.data,
            &self.data,
            self.cols,
            ids,
            positions,
        );
        out.rows = positions.len();
        out.cols = self.cols;
        crate::timing::stop(crate::timing::Kernel::Gather, t0);
    }

    /// Accumulates `src`'s rows into rows `indices` of `self` (scatter-add).
    pub fn scatter_add_rows(&mut self, indices: &[usize], src: &Matrix) {
        assert_eq!(indices.len(), src.rows());
        assert_eq!(self.cols, src.cols());
        let t0 = crate::timing::start();
        crate::kernels::scatter_add_rows(&mut self.data, self.cols, indices, &src.data);
        crate::timing::stop(crate::timing::Kernel::ScatterAdd, t0);
    }

    /// Transposed copy.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.set(c, r, self.get(r, c));
            }
        }
        out
    }

    /// Sets every element to zero, keeping the allocation.
    pub fn fill_zero(&mut self) {
        self.data.fill(0.0);
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f32 {
        self.data.iter().map(|v| v * v).sum::<f32>().sqrt()
    }

    /// Max-absolute-value norm (the `‖·‖_inf` of the paper's §4.3 analysis).
    pub fn max_abs(&self) -> f32 {
        self.data.iter().fold(0.0f32, |m, v| m.max(v.abs()))
    }

    /// True when all elements are finite (no NaN/inf escaped a kernel).
    pub fn all_finite(&self) -> bool {
        self.data.iter().all(|v| v.is_finite())
    }

    /// Approximate equality within `eps`, used by kernel-vs-reference tests.
    pub fn approx_eq(&self, other: &Matrix, eps: f32) -> bool {
        self.shape() == other.shape()
            && self
                .data
                .iter()
                .zip(&other.data)
                .all(|(a, b)| (a - b).abs() <= eps * (1.0 + a.abs().max(b.abs())))
    }

    /// Bytes occupied by the element buffer; used by the memory ledger.
    pub fn nbytes(&self) -> usize {
        self.data.len() * std::mem::size_of::<f32>()
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Matrix({}x{})", self.rows, self.cols)?;
        if self.rows <= 8 && self.cols <= 8 {
            writeln!(f)?;
            for r in 0..self.rows {
                writeln!(f, "  {:?}", self.row(r))?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_has_expected_shape_and_content() {
        let m = Matrix::zeros(3, 4);
        assert_eq!(m.shape(), (3, 4));
        assert_eq!(m.len(), 12);
        assert!(m.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn from_rows_round_trips_elements() {
        let m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert_eq!(m.get(0, 1), 2.0);
        assert_eq!(m.get(1, 0), 3.0);
        assert_eq!(m.row(1), &[3.0, 4.0]);
    }

    #[test]
    #[should_panic(expected = "buffer length")]
    fn from_vec_rejects_mismatched_buffer() {
        let _ = Matrix::from_vec(2, 2, vec![1.0; 3]);
    }

    #[test]
    fn gather_rows_selects_in_order() {
        let m = Matrix::from_rows(&[&[0.0], &[1.0], &[2.0], &[3.0]]);
        let g = m.gather_rows(&[3, 1, 1]);
        assert_eq!(g.as_slice(), &[3.0, 1.0, 1.0]);
    }

    #[test]
    fn gather_variants_match_gather_rows_and_reuse_buffers() {
        let m = Matrix::from_rows(&[&[0.0, 10.0], &[1.0, 11.0], &[2.0, 12.0], &[3.0, 13.0]]);
        let want = m.gather_rows(&[3, 1, 1]);

        let mut out = Matrix::full(5, 2, 9.0); // stale recycled shape
        m.gather_rows_into(&[3, 1, 1], &mut out);
        assert_eq!(out, want);

        assert_eq!(m.gather_rows_u32(&[3, 1, 1]), want);
        m.gather_rows_u32_into(&[3, 1, 1], &mut out);
        assert_eq!(out, want);

        // positions [2, 0] into ids [3, 9, 1] -> rows of vertices 1, 3.
        m.gather_rows_mapped_into(&[3, 9, 1], &[2, 0], &mut out);
        assert_eq!(out, m.gather_rows(&[1, 3]));

        // Zero-width-column gathers still report the row count.
        let empty = Matrix::zeros(4, 0);
        empty.gather_rows_into(&[0, 2], &mut out);
        assert_eq!(out.shape(), (2, 0));
        empty.gather_rows_mapped_into(&[1, 0], &[0], &mut out);
        assert_eq!(out.shape(), (1, 0));
    }

    #[test]
    fn scatter_add_accumulates_duplicates() {
        let mut m = Matrix::zeros(3, 2);
        let src = Matrix::from_rows(&[&[1.0, 1.0], &[2.0, 2.0], &[4.0, 4.0]]);
        m.scatter_add_rows(&[0, 2, 2], &src);
        assert_eq!(m.row(0), &[1.0, 1.0]);
        assert_eq!(m.row(1), &[0.0, 0.0]);
        assert_eq!(m.row(2), &[6.0, 6.0]);
    }

    #[test]
    fn transpose_is_involutive() {
        let m = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        let t = m.transpose();
        assert_eq!(t.shape(), (3, 2));
        assert_eq!(t.get(2, 1), 6.0);
        assert_eq!(t.transpose(), m);
    }

    #[test]
    fn eye_matmul_identity_property() {
        let m = Matrix::eye(4);
        assert_eq!(m.get(2, 2), 1.0);
        assert_eq!(m.get(2, 3), 0.0);
    }

    #[test]
    fn norms_and_finiteness() {
        let m = Matrix::from_rows(&[&[3.0, -4.0]]);
        assert!((m.frobenius_norm() - 5.0).abs() < 1e-6);
        assert_eq!(m.max_abs(), 4.0);
        assert!(m.all_finite());
        let bad = Matrix::from_rows(&[&[f32::NAN]]);
        assert!(!bad.all_finite());
    }

    #[test]
    fn approx_eq_tolerates_small_differences() {
        let a = Matrix::from_rows(&[&[1.0, 2.0]]);
        let b = Matrix::from_rows(&[&[1.0 + 1e-6, 2.0 - 1e-6]]);
        assert!(a.approx_eq(&b, 1e-4));
        let c = Matrix::from_rows(&[&[1.5, 2.0]]);
        assert!(!a.approx_eq(&c, 1e-4));
    }
}
