//! Test-runner configuration and deterministic per-case RNG derivation.

use rand::SeedableRng;

/// The RNG handed to strategies.
pub type TestRng = rand::rngs::StdRng;

/// Runner configuration (only `cases` is meaningful in this stand-in).
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// Deterministic RNG for one case of one property: seeded from the test
/// site (`file!()`, `line!()`) and the case index, so every run generates
/// the same inputs.
pub fn case_rng(file: &str, line: u32, case: u32) -> TestRng {
    // FNV-1a over the call site, mixed with the case index.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in file.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h ^= (line as u64) << 32 | case as u64;
    TestRng::seed_from_u64(h)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::RngCore;

    #[test]
    fn case_rng_is_deterministic_and_case_sensitive() {
        let a = case_rng("x.rs", 10, 0).next_u64();
        let b = case_rng("x.rs", 10, 0).next_u64();
        let c = case_rng("x.rs", 10, 1).next_u64();
        let d = case_rng("y.rs", 10, 0).next_u64();
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_ne!(a, d);
    }
}
