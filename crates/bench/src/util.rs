//! Table rendering and unit formatting for experiment output.

/// Formats seconds with adaptive precision.
pub fn fmt_secs(s: f64) -> String {
    if s >= 100.0 {
        format!("{s:.0}")
    } else if s >= 1.0 {
        format!("{s:.2}")
    } else {
        format!("{:.1}ms", s * 1000.0)
    }
}

/// Formats bytes as GB.
pub fn fmt_gb(bytes: u64) -> String {
    format!("{:.2}", bytes as f64 / (1u64 << 30) as f64)
}

/// Formats a fraction as a percentage.
pub fn fmt_pct(x: f64) -> String {
    format!("{:.0}%", x * 100.0)
}

/// Renders an aligned ASCII table.
pub fn render_table(title: &str, headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    out.push_str(&format!("== {title} ==\n"));
    let fmt_row = |cells: &[String]| -> String {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:<w$}", c, w = widths.get(i).copied().unwrap_or(c.len())))
            .collect::<Vec<_>>()
            .join("  ")
    };
    out.push_str(&fmt_row(
        &headers.iter().map(|s| s.to_string()).collect::<Vec<_>>(),
    ));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * widths.len().saturating_sub(1)));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn secs_formatting_adapts() {
        assert_eq!(fmt_secs(123.4), "123");
        assert_eq!(fmt_secs(1.234), "1.23");
        assert_eq!(fmt_secs(0.0123), "12.3ms");
    }

    #[test]
    fn gb_and_pct() {
        assert_eq!(fmt_gb(1 << 30), "1.00");
        assert_eq!(fmt_pct(0.425), "42%");
    }

    #[test]
    fn table_renders_all_rows() {
        let t = render_table(
            "T",
            &["a", "b"],
            &[vec!["1".into(), "2".into()], vec!["333".into(), "4".into()]],
        );
        assert!(t.contains("== T =="));
        assert!(t.contains("333"));
        assert_eq!(t.lines().count(), 5);
    }
}
