//! Vertex partitioning for multi-GPU training (Fig 11 / DSP-style).

use crate::csr::{Csr, VertexId};

/// Assignment of each vertex to a partition in `[0, parts)`.
#[derive(Clone, Debug)]
pub struct Partition {
    pub parts: usize,
    pub assignment: Vec<u32>,
}

impl Partition {
    /// The partition that owns vertex `v`.
    pub fn owner(&self, v: VertexId) -> usize {
        self.assignment[v as usize] as usize
    }

    /// Vertices owned by `part`.
    pub fn members(&self, part: usize) -> Vec<VertexId> {
        self.assignment
            .iter()
            .enumerate()
            .filter_map(|(v, &p)| (p as usize == part).then_some(v as VertexId))
            .collect()
    }

    /// Sizes of all partitions.
    pub fn sizes(&self) -> Vec<usize> {
        let mut sizes = vec![0usize; self.parts];
        for &p in &self.assignment {
            sizes[p as usize] += 1;
        }
        sizes
    }

    /// Fraction of edges crossing partitions — the multi-GPU communication
    /// driver in DSP-style cooperative sampling.
    pub fn edge_cut_fraction(&self, g: &Csr) -> f64 {
        let mut cut = 0usize;
        let mut total = 0usize;
        for (u, v) in g.edges() {
            total += 1;
            if self.assignment[u as usize] != self.assignment[v as usize] {
                cut += 1;
            }
        }
        if total == 0 {
            0.0
        } else {
            cut as f64 / total as f64
        }
    }

    /// Deterministic balance + edge-cut statistics: one CSR walk in edge
    /// order, integer counters only, so the numbers are identical run over
    /// run and independent of thread count.
    pub fn stats(&self, g: &Csr) -> PartitionStats {
        let sizes = self.sizes();
        let mut cut_matrix = vec![0u64; self.parts * self.parts];
        let mut cut_edges = 0u64;
        let mut total_edges = 0u64;
        for (u, v) in g.edges() {
            total_edges += 1;
            let (a, b) = (self.owner(u), self.owner(v));
            if a != b {
                cut_edges += 1;
                // Accumulate both orientations so the matrix is symmetric
                // by construction, whatever edge order the CSR stores.
                cut_matrix[a * self.parts + b] += 1;
                cut_matrix[b * self.parts + a] += 1;
            }
        }
        PartitionStats {
            parts: self.parts,
            sizes,
            cut_edges,
            total_edges,
            cut_matrix,
        }
    }
}

/// Summary statistics for a [`Partition`] over a concrete graph, produced
/// by [`Partition::stats`]. Everything here is integer-derived and
/// deterministic — suitable for bench JSON and CI gates.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PartitionStats {
    /// Number of partitions (row/column count of [`Self::cut_matrix`]).
    pub parts: usize,
    /// Vertices owned by each partition.
    pub sizes: Vec<usize>,
    /// Directed edges whose endpoints live in different partitions.
    pub cut_edges: u64,
    /// All directed edges in the graph.
    pub total_edges: u64,
    /// `parts × parts` row-major matrix: `cut_matrix[a*parts+b]` counts
    /// edges with one endpoint in `a` and the other in `b` (both
    /// orientations of every cut edge are accumulated, so the matrix is
    /// symmetric and its diagonal is zero).
    pub cut_matrix: Vec<u64>,
}

impl PartitionStats {
    /// Cut edges between partitions `a` and `b` (symmetric).
    pub fn cut_between(&self, a: usize, b: usize) -> u64 {
        self.cut_matrix[a * self.parts + b]
    }

    /// `max(sizes) / ideal` where ideal is a perfectly even split — 1.0 is
    /// perfect balance, the DistDGL-style load-imbalance metric.
    pub fn balance(&self) -> f64 {
        let total: usize = self.sizes.iter().sum();
        let max = self.sizes.iter().copied().max().unwrap_or(0);
        if total == 0 {
            1.0
        } else {
            max as f64 / (total as f64 / self.parts as f64)
        }
    }

    /// Fraction of edges that cross partitions.
    pub fn cut_fraction(&self) -> f64 {
        if self.total_edges == 0 {
            0.0
        } else {
            self.cut_edges as f64 / self.total_edges as f64
        }
    }
}

/// Hash (round-robin) partitioning — what DGL/DSP default to for feature
/// sharding across GPUs.
pub fn hash_partition(num_vertices: usize, parts: usize) -> Partition {
    assert!(parts >= 1);
    Partition {
        parts,
        assignment: (0..num_vertices).map(|v| (v % parts) as u32).collect(),
    }
}

/// Contiguous range partitioning — what chunked feature stores use.
pub fn range_partition(num_vertices: usize, parts: usize) -> Partition {
    assert!(parts >= 1);
    let chunk = num_vertices.div_ceil(parts);
    Partition {
        parts,
        assignment: (0..num_vertices)
            .map(|v| (v / chunk.max(1)).min(parts - 1) as u32)
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::erdos_renyi;

    #[test]
    fn hash_partition_is_balanced() {
        let p = hash_partition(103, 4);
        let sizes = p.sizes();
        assert_eq!(sizes.iter().sum::<usize>(), 103);
        assert!(sizes.iter().max().unwrap() - sizes.iter().min().unwrap() <= 1);
    }

    #[test]
    fn range_partition_is_contiguous() {
        let p = range_partition(100, 4);
        assert_eq!(p.assignment[0], 0);
        assert_eq!(p.assignment[99], 3);
        assert_eq!(p.sizes(), vec![25, 25, 25, 25]);
    }

    #[test]
    fn members_round_trip() {
        let p = hash_partition(10, 3);
        let m0 = p.members(0);
        assert!(m0.iter().all(|&v| v % 3 == 0));
    }

    #[test]
    fn edge_cut_reasonable_for_random_graph() {
        let g = erdos_renyi(400, 4000, 1);
        let p = hash_partition(400, 4);
        let cut = p.edge_cut_fraction(&g);
        // Random graph + hash partition: expected cut = 1 - 1/parts = 0.75.
        assert!((cut - 0.75).abs() < 0.1, "cut {cut}");
    }

    #[test]
    fn single_partition_has_no_cut() {
        let g = erdos_renyi(50, 400, 2);
        let p = range_partition(50, 1);
        assert_eq!(p.edge_cut_fraction(&g), 0.0);
    }

    #[test]
    fn stats_agree_with_edge_cut_fraction_and_are_symmetric() {
        let g = erdos_renyi(200, 1600, 7);
        for parts in [1, 2, 3, 4] {
            let p = hash_partition(200, parts);
            let s = p.stats(&g);
            assert_eq!(s.sizes, p.sizes());
            assert_eq!(s.sizes.iter().sum::<usize>(), 200);
            assert!((s.cut_fraction() - p.edge_cut_fraction(&g)).abs() < 1e-12);
            let off_diag: u64 = (0..parts)
                .flat_map(|a| (0..parts).map(move |b| (a, b)))
                .map(|(a, b)| if a == b { 0 } else { s.cut_between(a, b) })
                .sum();
            // Each cut edge lands in [a][b] and [b][a].
            assert_eq!(off_diag, 2 * s.cut_edges);
            for a in 0..parts {
                assert_eq!(s.cut_between(a, a), 0, "diagonal must be zero");
                for b in 0..parts {
                    assert_eq!(s.cut_between(a, b), s.cut_between(b, a));
                }
            }
            assert!(s.balance() >= 1.0 - 1e-12);
        }
    }

    #[test]
    fn stats_are_deterministic_across_calls() {
        let g = erdos_renyi(120, 900, 3);
        let p = range_partition(120, 3);
        assert_eq!(p.stats(&g), p.stats(&g));
        assert_eq!(p.owner(0), 0);
        assert_eq!(p.owner(119), 2);
    }
}
