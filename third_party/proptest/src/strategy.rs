//! Value-generation strategies (no shrinking).

use crate::test_runner::TestRng;
use rand::RngExt;
use std::marker::PhantomData;

/// A recipe for generating values of an associated type.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`, where `f` returns a *strategy* to
    /// draw the final value from (dependent generation).
    fn prop_flat_map<F, S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Maps generated values through a plain function.
    fn prop_map<F, T>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> T,
    {
        Map { inner: self, f }
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, F, T> Strategy for FlatMap<S, F>
where
    S: Strategy,
    T: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let mid = self.inner.generate(rng);
        (self.f)(mid).generate(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, T> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy for "any value of `T`" — see [`any`].
pub struct Any<T>(PhantomData<T>);

/// Generates arbitrary values of `T` over its full domain.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Types with a canonical full-domain generator.
pub trait Arbitrary {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),* $(,)?) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rand::RngCore::next_u64(rng) as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rand::RngCore::next_u64(rng) & 1 == 1
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.random_range(self.clone())
            }
        }

        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! impl_float_range_strategy {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )*};
}

impl_float_range_strategy!(f32, f64);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident.$idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::case_rng;

    #[test]
    fn ranges_tuples_and_just_compose() {
        let mut rng = case_rng(file!(), line!(), 0);
        let strat = (1usize..5, Just("x"), any::<bool>());
        for _ in 0..200 {
            let (n, s, _b) = strat.generate(&mut rng);
            assert!((1..5).contains(&n));
            assert_eq!(s, "x");
        }
    }

    #[test]
    fn flat_map_feeds_dependent_strategy() {
        let mut rng = case_rng(file!(), line!(), 1);
        let strat = (2usize..10).prop_flat_map(|n| (Just(n), 0..n));
        for _ in 0..200 {
            let (n, v) = strat.generate(&mut rng);
            assert!(v < n);
        }
    }

    #[test]
    fn map_transforms_values() {
        let mut rng = case_rng(file!(), line!(), 2);
        let strat = (0u32..10).prop_map(|v| v * 2);
        for _ in 0..50 {
            assert_eq!(strat.generate(&mut rng) % 2, 0);
        }
    }
}
