//! Planted-partition (stochastic block model) generator with labels.
//!
//! The convergence experiments (Fig 16) need graphs where a GNN can actually
//! learn: vertices carry ground-truth community labels and edges fall inside
//! communities with tunable probability. Homophily makes neighbor
//! aggregation informative, so accuracy curves behave like the paper's.

use crate::builder::GraphBuilder;
use crate::csr::{Csr, VertexId};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// A labelled planted-partition graph.
pub struct PlantedPartition {
    /// Symmetric CSR topology.
    pub csr: Csr,
    /// Ground-truth community id per vertex, in `[0, num_communities)`.
    pub labels: Vec<usize>,
}

/// Generates a planted-partition graph: `num_vertices` vertices split evenly
/// into `num_communities`, ~`num_edges` undirected edges, fraction
/// `intra_prob` of which stay inside the source's community.
pub fn planted_partition(
    num_vertices: usize,
    num_edges: usize,
    num_communities: usize,
    intra_prob: f64,
    seed: u64,
) -> PlantedPartition {
    assert!(num_communities >= 1 && num_communities <= num_vertices);
    assert!((0.0..=1.0).contains(&intra_prob));
    let mut rng = StdRng::seed_from_u64(seed);
    // Round-robin assignment keeps communities evenly sized and makes the
    // label derivable from the vertex id (v % k), which tests rely on.
    let labels: Vec<usize> = (0..num_vertices).map(|v| v % num_communities).collect();
    let per_community = num_vertices / num_communities;
    let mut builder = GraphBuilder::new(num_vertices).symmetric(true);
    for _ in 0..num_edges / 2 {
        let s = rng.random_range(0..num_vertices);
        let d = if rng.random_bool(intra_prob) && per_community > 1 {
            // Another vertex of the same community.
            let k = labels[s];
            let idx = rng.random_range(0..per_community);
            (idx * num_communities + k).min(num_vertices - 1)
        } else {
            rng.random_range(0..num_vertices)
        };
        builder.add_edge(s as VertexId, d as VertexId);
    }
    PlantedPartition {
        csr: builder.build(),
        labels,
    }
}

impl PlantedPartition {
    /// Fraction of edges whose endpoints share a label (graph homophily).
    pub fn homophily(&self) -> f64 {
        let mut same = 0usize;
        let mut total = 0usize;
        for (u, v) in self.csr.edges() {
            total += 1;
            if self.labels[u as usize] == self.labels[v as usize] {
                same += 1;
            }
        }
        if total == 0 {
            0.0
        } else {
            same as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_cover_all_communities() {
        let pp = planted_partition(100, 500, 4, 0.9, 1);
        assert_eq!(pp.labels.len(), 100);
        for k in 0..4 {
            assert!(pp.labels.contains(&k));
        }
    }

    #[test]
    fn high_intra_prob_yields_homophilous_graph() {
        let strong = planted_partition(400, 4000, 4, 0.95, 2);
        let weak = planted_partition(400, 4000, 4, 0.0, 2);
        assert!(strong.homophily() > 0.7, "homophily {}", strong.homophily());
        assert!(weak.homophily() < 0.5, "homophily {}", weak.homophily());
    }

    #[test]
    fn deterministic_per_seed() {
        let a = planted_partition(100, 600, 5, 0.8, 3);
        let b = planted_partition(100, 600, 5, 0.8, 3);
        assert_eq!(a.labels, b.labels);
        assert_eq!(a.csr.num_edges(), b.csr.num_edges());
    }
}
