//! Adam optimizer.

use super::Optimizer;
use crate::param::Param;
use neutron_tensor::Matrix;

/// Adam (Kingma & Ba) with bias correction — the optimizer the reference
/// GNN systems default to; used by the convergence experiments' GAT runs.
#[derive(Clone, Debug)]
pub struct Adam {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    t: u64,
    moments: Vec<(Matrix, Matrix)>,
}

/// Adam's mutable state — the step count and per-parameter moment pairs —
/// detached from the hyperparameters so a checkpoint can serialize it and a
/// restored optimizer continues the exact update sequence.
#[derive(Clone, Debug, Default)]
pub struct AdamState {
    /// Bias-correction step counter.
    pub t: u64,
    /// `(m, v)` first/second moment estimates, one pair per parameter, in
    /// the stable parameter order. Empty before the first step (lazy init).
    pub moments: Vec<(Matrix, Matrix)>,
}

impl Adam {
    /// Creates Adam with the standard betas (0.9, 0.999).
    pub fn new(lr: f32) -> Self {
        assert!(lr > 0.0);
        Self {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            t: 0,
            moments: Vec::new(),
        }
    }

    /// Clones out the mutable state (step count + moments).
    pub fn state(&self) -> AdamState {
        AdamState {
            t: self.t,
            moments: self.moments.clone(),
        }
    }

    /// Overwrites the mutable state — the restore half of a checkpoint
    /// round-trip. Subsequent steps are bit-identical to an optimizer that
    /// never stopped, because `step` consumes nothing but `t`, the moments
    /// and the (constant) hyperparameters.
    pub fn restore_state(&mut self, state: AdamState) {
        self.t = state.t;
        self.moments = state.moments;
    }
}

impl Optimizer for Adam {
    fn step(&mut self, params: &mut [&mut Param]) {
        if self.moments.is_empty() {
            self.moments = params
                .iter()
                .map(|p| {
                    let (r, c) = p.value.shape();
                    (Matrix::zeros(r, c), Matrix::zeros(r, c))
                })
                .collect();
        }
        assert_eq!(
            self.moments.len(),
            params.len(),
            "param list must be stable"
        );
        self.t += 1;
        let b1t = 1.0 - self.beta1.powi(self.t as i32);
        let b2t = 1.0 - self.beta2.powi(self.t as i32);
        for (p, (m, v)) in params.iter_mut().zip(&mut self.moments) {
            for ((w, g), (mm, vv)) in p
                .value
                .as_mut_slice()
                .iter_mut()
                .zip(p.grad.as_slice())
                .zip(m.as_mut_slice().iter_mut().zip(v.as_mut_slice()))
            {
                *mm = self.beta1 * *mm + (1.0 - self.beta1) * g;
                *vv = self.beta2 * *vv + (1.0 - self.beta2) * g * g;
                let m_hat = *mm / b1t;
                let v_hat = *vv / b2t;
                *w -= self.lr * m_hat / (v_hat.sqrt() + self.eps);
            }
        }
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimises_a_quadratic() {
        // f(w) = (w - 3)^2, grad = 2(w - 3).
        let mut p = Param::new(Matrix::from_rows(&[&[0.0]]));
        let mut opt = Adam::new(0.1);
        for _ in 0..500 {
            let w = p.value.get(0, 0);
            p.grad.set(0, 0, 2.0 * (w - 3.0));
            opt.step(&mut [&mut p]);
        }
        assert!(
            (p.value.get(0, 0) - 3.0).abs() < 0.05,
            "got {}",
            p.value.get(0, 0)
        );
    }

    #[test]
    fn state_roundtrip_resumes_the_exact_update_sequence() {
        let run = |restart_at: Option<usize>| {
            let mut p = Param::new(Matrix::from_rows(&[&[0.0, 1.0]]));
            let mut opt = Adam::new(0.1);
            for step in 0..20 {
                if restart_at == Some(step) {
                    let state = opt.state();
                    opt = Adam::new(0.1);
                    opt.restore_state(state);
                }
                let w0 = p.value.get(0, 0);
                let w1 = p.value.get(0, 1);
                p.grad.set(0, 0, 2.0 * (w0 - 3.0));
                p.grad.set(0, 1, 0.5 * (w1 + 2.0));
                opt.step(&mut [&mut p]);
            }
            (p.value.get(0, 0).to_bits(), p.value.get(0, 1).to_bits())
        };
        assert_eq!(
            run(None),
            run(Some(7)),
            "restored Adam must be bit-identical"
        );
    }

    #[test]
    fn first_step_size_is_about_lr() {
        let mut p = Param::new(Matrix::from_rows(&[&[1.0]]));
        p.grad.set(0, 0, 10.0); // any positive gradient
        let mut opt = Adam::new(0.01);
        opt.step(&mut [&mut p]);
        // Bias-corrected first step ≈ lr regardless of gradient magnitude.
        assert!((1.0 - p.value.get(0, 0) - 0.01).abs() < 1e-4);
    }
}
