//! Fig 15 — CPU and GPU utilization of five systems on Lj-large and Orkut
//! (GCN).

use crate::util::{fmt_pct, render_table};
use crate::Setup;
use neutron_core::baselines::{Case1Dgl, Case2DglUva, Case3PaGraph, Case4GnnLab};
use neutron_core::{NeutronOrch, Orchestrator};
use neutron_hetero::HardwareSpec;
use neutron_nn::LayerKind;

/// One (dataset, system) utilization pair.
#[derive(Clone, Debug)]
pub struct Fig15Row {
    pub dataset: &'static str,
    pub system: String,
    pub cpu_util: f64,
    pub gpu_util: f64,
}

/// Computes Fig 15.
pub fn data(setup: Setup) -> Vec<Fig15Row> {
    let hw = HardwareSpec::v100_server(1.0);
    let mut rows = Vec::new();
    for name in ["Lj-large", "Orkut"] {
        let spec = setup.dataset(name);
        let profile = crate::build_profile(setup, &spec, LayerKind::Gcn, 3, 1024);
        let systems: Vec<Box<dyn Orchestrator>> = vec![
            Box::new(Case1Dgl { pipelined: true }),
            Box::new(Case3PaGraph),
            Box::new(Case4GnnLab),
            Box::new(Case2DglUva { pipelined: true }),
            Box::new(NeutronOrch::new()),
        ];
        for sys in systems {
            let r = sys.simulate_epoch(&profile, &hw).expect("fits");
            rows.push(Fig15Row {
                dataset: spec.name,
                system: r.system.clone(),
                cpu_util: r.cpu_util,
                gpu_util: r.gpu_util,
            });
        }
    }
    rows
}

/// Renders Fig 15.
pub fn run(setup: Setup) -> String {
    let rows: Vec<Vec<String>> = data(setup)
        .into_iter()
        .map(|r| {
            vec![
                r.dataset.to_string(),
                r.system,
                fmt_pct(r.cpu_util),
                fmt_pct(r.gpu_util),
            ]
        })
        .collect();
    render_table(
        "Fig 15: CPU & GPU utilization (3-layer GCN)",
        &["Dataset", "System", "CPU util", "GPU util"],
        &rows,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn neutronorch_has_best_gpu_utilization() {
        // Paper: NeutronOrch averages 44.5% CPU and 92.9% GPU utilization —
        // both devices busy, unlike the step-based systems.
        let rows = data(Setup::Smoke);
        for name in ["Lj-large", "Orkut"] {
            let subset: Vec<&Fig15Row> = rows.iter().filter(|r| r.dataset == name).collect();
            let ours = subset.iter().find(|r| r.system == "NeutronOrch").unwrap();
            let dgl = subset.iter().find(|r| r.system == "DGL").unwrap();
            assert!(
                ours.gpu_util > dgl.gpu_util,
                "{name}: NeutronOrch GPU {:.2} must beat DGL {:.2}",
                ours.gpu_util,
                dgl.gpu_util
            );
            assert!(ours.cpu_util > 0.05, "{name}: the CPU must not idle");
        }
    }
}
