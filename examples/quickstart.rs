//! Quickstart: train a 2-layer GCN on a scaled Reddit replica with
//! NeutronOrch's bounded-staleness embedding reuse, and compare against
//! exact training.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use neutronorch::core::trainer::{ConvergenceTrainer, ReusePolicy, TrainerConfig};
use neutronorch::graph::DatasetSpec;
use neutronorch::nn::LayerKind;

fn main() {
    // A small homophilous Reddit replica with learnable labels.
    let spec = DatasetSpec::reddit_convergence();
    println!(
        "dataset: {} — |V|={}, target |E|≈{}, {} classes, {} feature dims",
        spec.name, spec.vertices, spec.edges, spec.num_classes, spec.feature_dim
    );

    // NeutronOrch policy: hottest 20% of vertices are computed on the "CPU"
    // once per 4-batch super-batch and reused with staleness < 2n.
    let policy = ReusePolicy::HotnessAware {
        hot_ratio: 0.2,
        super_batch: 4,
    };
    let dataset = spec.build_full();
    let config = TrainerConfig::convergence_default(LayerKind::Gcn, policy);
    let mut trainer = ConvergenceTrainer::new(dataset, config);

    println!("\nepoch  train-loss  test-acc  max-staleness");
    for epoch in 0..12 {
        let obs = trainer.train_epoch(epoch);
        println!(
            "{epoch:>5}  {:>10.4}  {:>8.4}  {:>13}",
            obs.train_loss, obs.test_accuracy, obs.max_staleness
        );
    }
    println!(
        "\nembedding reuses: {} (every one within the 2n-1 = 7 version bound)",
        trainer.embedding_reuses()
    );
}
