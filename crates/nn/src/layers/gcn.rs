//! GCN layer: mean aggregation over sampled neighbors (plus self), linear
//! transform, pointwise nonlinearity.
//!
//! Forward, per destination vertex `v` with sampled neighbors `N(v)`:
//! ```text
//! agg_v = (h_v + Σ_{u∈N(v)} h_u) / (|N(v)| + 1)
//! z_v   = agg_v · W + b
//! out_v = σ(z_v)
//! ```
//! This is Equation (1)/(2) of the paper with a mean `AGGREGATE`, the form
//! used for sampled subgraphs where the full symmetric normalisation is
//! unavailable.

use crate::param::Param;
use neutron_sample::Block;
use neutron_tensor::timing::{self, Kernel};
use neutron_tensor::{init, kernels, ops, Activation, Matrix};

/// A GCN layer (`in_dim → out_dim`).
#[derive(Clone, Debug)]
pub struct GcnLayer {
    weight: Param,
    bias: Param,
    activation: Activation,
}

/// Forward intermediates of a [`GcnLayer`].
pub struct GcnCtx {
    /// Aggregated inputs (num_dst × in_dim).
    agg: Matrix,
    /// Pre-activation outputs (num_dst × out_dim).
    z: Matrix,
}

impl GcnLayer {
    /// Creates a layer; `last` layers use the identity output activation.
    pub fn new(in_dim: usize, out_dim: usize, last: bool, seed: u64) -> Self {
        Self {
            weight: Param::new(init::xavier_uniform(in_dim, out_dim, seed)),
            bias: Param::new(Matrix::zeros(1, out_dim)),
            activation: if last {
                Activation::Identity
            } else {
                Activation::Relu
            },
        }
    }

    /// Mean-aggregates block inputs into per-dst rows. Exposed for reuse by
    /// the CPU-side bottom-layer executor in `neutron-core`.
    pub fn aggregate(block: &Block, input: &Matrix) -> Matrix {
        let t0 = timing::start();
        let mut agg = Matrix::zeros(block.num_dst(), input.cols());
        let mut row: Vec<f32> = Vec::new();
        for i in 0..block.num_dst() {
            // Self contribution: dst i is src i by the prefix convention.
            row.clear();
            row.extend_from_slice(input.row(i));
            for &li in block.neighbors_local(i) {
                kernels::add_assign_slice(&mut row, input.row(li as usize));
            }
            let norm = 1.0 / (block.sampled_degree(i) + 1) as f32;
            for (dst, v) in agg.row_mut(i).iter_mut().zip(&row) {
                *dst = v * norm;
            }
        }
        timing::stop(Kernel::Aggregate, t0);
        agg
    }

    /// Forward pass.
    pub fn forward(&self, block: &Block, input: &Matrix) -> (Matrix, GcnCtx) {
        assert_eq!(input.rows(), block.num_src());
        assert_eq!(input.cols(), self.in_dim());
        let agg = Self::aggregate(block, input);
        let mut z = ops::matmul(&agg, &self.weight.value);
        ops::add_bias_row(&mut z, &self.bias.value);
        let out = self.activation.forward(&z);
        (out, GcnCtx { agg, z })
    }

    /// Backward pass; returns `∂L/∂input`.
    pub fn backward(&mut self, block: &Block, ctx: GcnCtx, d_out: &Matrix) -> Matrix {
        let dz = self.activation.backward(&ctx.z, d_out);
        ops::add_assign(&mut self.weight.grad, &ops::matmul_at_b(&ctx.agg, &dz));
        ops::add_assign(&mut self.bias.grad, &ops::sum_rows(&dz));
        let d_agg = ops::matmul_a_bt(&dz, &self.weight.value);
        // Distribute aggregation gradient back to src rows (scatter-add).
        let t0 = timing::start();
        let mut d_in = Matrix::zeros(block.num_src(), self.in_dim());
        for i in 0..block.num_dst() {
            let norm = 1.0 / (block.sampled_degree(i) + 1) as f32;
            let g = d_agg.row(i);
            kernels::axpy(d_in.row_mut(i), norm, g);
            for &li in block.neighbors_local(i) {
                kernels::axpy(d_in.row_mut(li as usize), norm, g);
            }
        }
        timing::stop(Kernel::Aggregate, t0);
        d_in
    }

    /// Parameter views.
    pub fn params(&self) -> Vec<&Param> {
        vec![&self.weight, &self.bias]
    }

    /// Mutable parameter views.
    pub fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![&mut self.weight, &mut self.bias]
    }

    /// Input dimension.
    pub fn in_dim(&self) -> usize {
        self.weight.value.rows()
    }

    /// Output dimension.
    pub fn out_dim(&self) -> usize {
        self.weight.value.cols()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_block() -> Block {
        Block::new(vec![0, 1], vec![0, 1, 2], vec![0, 2, 3], vec![1, 2, 2])
    }

    #[test]
    fn aggregate_means_self_and_neighbors() {
        let block = toy_block();
        let input = Matrix::from_rows(&[&[3.0], &[6.0], &[9.0]]);
        let agg = GcnLayer::aggregate(&block, &input);
        // dst 0: (3 + 6 + 9) / 3 = 6; dst 1: (6 + 9) / 2 = 7.5
        assert_eq!(agg.get(0, 0), 6.0);
        assert_eq!(agg.get(1, 0), 7.5);
    }

    #[test]
    fn forward_shape_and_determinism() {
        let block = toy_block();
        let input = init::uniform(3, 4, -1.0, 1.0, 1);
        let layer = GcnLayer::new(4, 2, false, 2);
        let (a, _) = layer.forward(&block, &input);
        let (b, _) = layer.forward(&block, &input);
        assert_eq!(a, b);
        assert_eq!(a.shape(), (2, 2));
    }

    #[test]
    fn relu_output_is_nonnegative() {
        let block = toy_block();
        let input = init::uniform(3, 4, -1.0, 1.0, 3);
        let layer = GcnLayer::new(4, 8, false, 4);
        let (out, _) = layer.forward(&block, &input);
        assert!(out.as_slice().iter().all(|&v| v >= 0.0));
    }

    #[test]
    fn isolated_vertex_passes_self_through() {
        let block = Block::new(vec![5], vec![5], vec![0, 0], vec![]);
        let input = Matrix::from_rows(&[&[2.0, -2.0]]);
        let layer = GcnLayer::new(2, 2, true, 5);
        let (out, ctx) = layer.forward(&block, &input);
        // agg == input for an isolated vertex.
        assert_eq!(ctx.agg, input);
        assert_eq!(out.shape(), (1, 2));
    }
}
