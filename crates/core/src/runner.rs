//! High-level experiment loops shared by benches and examples.

use crate::trainer::{ConvergenceTrainer, EpochObservation, ReusePolicy, TrainerConfig};
use neutron_graph::DatasetSpec;
use neutron_nn::LayerKind;

/// One epoch-accuracy curve.
#[derive(Clone, Debug)]
pub struct ConvergenceCurve {
    /// Policy label ("Exact…", "GAS", "NeutronOrch").
    pub label: &'static str,
    /// Per-epoch observations, index = epoch.
    pub epochs: Vec<EpochObservation>,
}

impl ConvergenceCurve {
    /// Final test accuracy.
    pub fn final_accuracy(&self) -> f64 {
        self.epochs.last().map_or(0.0, |o| o.test_accuracy)
    }

    /// Best test accuracy across epochs.
    pub fn best_accuracy(&self) -> f64 {
        self.epochs
            .iter()
            .map(|o| o.test_accuracy)
            .fold(0.0, f64::max)
    }

    /// Largest staleness observed over the run.
    pub fn max_staleness(&self) -> u64 {
        self.epochs
            .iter()
            .map(|o| o.max_staleness)
            .max()
            .unwrap_or(0)
    }
}

/// Trains `epochs` epochs of `kind` on `spec` under `policy` and returns the
/// epoch-to-accuracy curve (one Fig 16 line).
pub fn run_convergence(
    spec: &DatasetSpec,
    kind: LayerKind,
    policy: ReusePolicy,
    epochs: usize,
) -> ConvergenceCurve {
    let label = policy.label();
    let dataset = spec.build_full();
    let config = TrainerConfig::convergence_default(kind, policy);
    let mut trainer = ConvergenceTrainer::new(dataset, config);
    let observations = (0..epochs).map(|e| trainer.train_epoch(e)).collect();
    ConvergenceCurve {
        label,
        epochs: observations,
    }
}

/// The three Fig 16 policies, in plot order.
pub fn fig16_policies(super_batch: usize) -> Vec<ReusePolicy> {
    vec![
        ReusePolicy::Exact,
        ReusePolicy::GasLike,
        ReusePolicy::HotnessAware {
            hot_ratio: 0.2,
            super_batch,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn convergence_curve_accumulates_epochs() {
        let spec = DatasetSpec::tiny();
        let curve = run_convergence(&spec, LayerKind::Gcn, ReusePolicy::Exact, 3);
        assert_eq!(curve.epochs.len(), 3);
        assert!(curve.best_accuracy() >= curve.epochs[0].test_accuracy);
        assert_eq!(curve.max_staleness(), 0);
        assert_eq!(curve.label, "Exact (DGL/PaGraph/GNNLab)");
    }

    #[test]
    fn fig16_policy_set_is_complete() {
        let ps = fig16_policies(4);
        assert_eq!(ps.len(), 3);
        assert_eq!(ps[2].label(), "NeutronOrch");
    }
}
