//! Offline stand-in for the `criterion` benchmark harness.
//!
//! Implements the subset the workspace's benches use: [`Criterion`],
//! [`Criterion::bench_function`], [`Criterion::benchmark_group`] (with
//! `sample_size` / `warm_up_time` / `measurement_time` / `finish`), and the
//! [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Timing methodology is deliberately simple — one warm-up call followed by
//! a fixed small number of timed iterations, reporting the mean — because
//! without crates.io access there is no statistics machinery to lean on.
//! The numbers are indicative, not publication-grade.

use std::time::{Duration, Instant};

/// Timed iterations per benchmark (after one warm-up call).
const TIMED_ITERS: u32 = 5;

/// Benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Runs `f` with a [`Bencher`] and prints the mean iteration time.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            mean: Duration::ZERO,
        };
        f(&mut b);
        println!("bench {id:<44} {:>12.3?} (mean of {TIMED_ITERS})", b.mean);
        self
    }

    /// Opens a named benchmark group; configuration methods are accepted
    /// and ignored.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            c: self,
            name: name.to_string(),
        }
    }
}

/// Per-benchmark iteration driver.
pub struct Bencher {
    mean: Duration,
}

impl Bencher {
    /// Times `f` over a warm-up call plus [`TIMED_ITERS`] measured calls.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        std::hint::black_box(f());
        let start = Instant::now();
        for _ in 0..TIMED_ITERS {
            std::hint::black_box(f());
        }
        self.mean = start.elapsed() / TIMED_ITERS;
    }
}

/// A named group of benchmarks.
pub struct BenchmarkGroup<'a> {
    c: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; sampling effort is fixed here.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility.
    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Accepted for API compatibility.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Runs a benchmark within the group.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id);
        self.c.bench_function(&full, f);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Declares a group function running the listed benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_and_group_chains() {
        let mut c = Criterion::default();
        let mut runs = 0u32;
        c.bench_function("smoke", |b| {
            b.iter(|| {
                runs += 1;
                runs
            })
        });
        assert_eq!(runs, 1 + TIMED_ITERS);
        let mut group = c.benchmark_group("g");
        group.sample_size(10).warm_up_time(Duration::from_millis(1));
        group.bench_function("inner", |b| b.iter(|| 1 + 1));
        group.finish();
    }
}
