//! Erdős–Rényi G(n, m) generator — the unskewed baseline used in tests.

use crate::builder::GraphBuilder;
use crate::csr::{Csr, VertexId};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Generates ~`num_edges` undirected edges uniformly at random.
pub fn erdos_renyi(num_vertices: usize, num_edges: usize, seed: u64) -> Csr {
    assert!(num_vertices > 1);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut builder = GraphBuilder::new(num_vertices).symmetric(true);
    for _ in 0..num_edges / 2 {
        let s = rng.random_range(0..num_vertices) as VertexId;
        let d = rng.random_range(0..num_vertices) as VertexId;
        builder.add_edge(s, d);
    }
    builder.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn approximate_edge_count() {
        let g = erdos_renyi(1000, 20_000, 5);
        assert!(
            g.num_edges() > 15_000 && g.num_edges() <= 20_000,
            "got {}",
            g.num_edges()
        );
    }

    #[test]
    fn degrees_are_balanced() {
        let g = erdos_renyi(500, 20_000, 6);
        let max_deg = (0..500).map(|v| g.degree(v)).max().unwrap();
        let avg = g.avg_degree();
        assert!(
            (max_deg as f64) < 3.0 * avg,
            "ER should have no hubs: {max_deg} vs {avg}"
        );
    }
}
