//! Table 6 — per-epoch runtime vs batch size (3-layer GCN on Products and
//! Wikipedia; batch sizes 256–10000).

use crate::util::{fmt_secs, render_table};
use crate::Setup;
use neutron_core::baselines::{Case1Dgl, Case2DglUva, Case3PaGraph, Case4GnnLab, GasLike};
use neutron_core::{NeutronOrch, Orchestrator};
use neutron_hetero::HardwareSpec;
use neutron_nn::LayerKind;

/// One `(dataset, batch size)` column across systems.
#[derive(Clone, Debug)]
pub struct Table6Col {
    pub dataset: &'static str,
    pub batch_size: usize,
    pub cells: Vec<(&'static str, Result<f64, &'static str>)>,
}

fn systems() -> Vec<(&'static str, Box<dyn Orchestrator>)> {
    vec![
        ("DGL", Box::new(Case1Dgl { pipelined: true })),
        ("PaGraph", Box::new(Case3PaGraph)),
        ("DGL-UVA", Box::new(Case2DglUva { pipelined: true })),
        ("GNNLab", Box::new(Case4GnnLab)),
        ("GAS", Box::new(GasLike)),
        ("NeutronOrch", Box::new(NeutronOrch::new())),
    ]
}

/// Computes Table 6.
pub fn data(setup: Setup) -> Vec<Table6Col> {
    let hw = HardwareSpec::v100_server(1.0);
    let sizes = match setup {
        Setup::Paper => vec![256usize, 1024, 4096, 10_000],
        Setup::Smoke => vec![256usize, 1024],
    };
    let mut cols = Vec::new();
    for name in ["Products", "Wikipedia"] {
        let spec = setup.dataset(name);
        for &bs in &sizes {
            let profile = crate::build_profile(setup, &spec, LayerKind::Gcn, 3, bs);
            let cells = systems()
                .into_iter()
                .map(|(label, sys)| {
                    let cell = match sys.simulate_epoch(&profile, &hw) {
                        Ok(r) => Ok(r.epoch_seconds),
                        Err(_) => Err("OOM"),
                    };
                    (label, cell)
                })
                .collect();
            cols.push(Table6Col {
                dataset: spec.name,
                batch_size: bs,
                cells,
            });
        }
    }
    cols
}

/// Renders Table 6.
pub fn run(setup: Setup) -> String {
    let cols = data(setup);
    let headers: Vec<String> = std::iter::once("System".to_string())
        .chain(
            cols.iter()
                .map(|c| format!("{} bs{}", c.dataset, c.batch_size)),
        )
        .collect();
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let systems: Vec<&'static str> = cols[0].cells.iter().map(|(n, _)| *n).collect();
    let rows: Vec<Vec<String>> = systems
        .iter()
        .enumerate()
        .map(|(si, name)| {
            std::iter::once(name.to_string())
                .chain(cols.iter().map(|c| match &c.cells[si].1 {
                    Ok(s) => fmt_secs(*s),
                    Err(m) => (*m).to_string(),
                }))
                .collect()
        })
        .collect();
    render_table(
        "Table 6: per-epoch runtime vs batch size (3-layer GCN, replica scale)",
        &header_refs,
        &rows,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn larger_batches_train_faster_per_epoch() {
        // The paper's Table 6 trend: per-epoch time *drops* as batch size
        // grows (better GPU occupancy, fewer launches).
        let cols = data(Setup::Smoke);
        for name in ["Products", "Wikipedia"] {
            let ours: Vec<f64> = cols
                .iter()
                .filter(|c| c.dataset == name)
                .filter_map(|c| c.cells.last().unwrap().1.ok())
                .collect();
            assert!(ours.len() >= 2);
            assert!(
                ours[1] < ours[0],
                "{name}: bs1024 ({}) should beat bs256 ({})",
                ours[1],
                ours[0]
            );
        }
    }

    #[test]
    fn neutronorch_wins_each_batch_size() {
        let cols = data(Setup::Smoke);
        for c in &cols {
            let dgl = c.cells[0].1;
            let ours = c.cells.last().unwrap().1;
            if let (Ok(d), Ok(o)) = (dgl, ours) {
                assert!(o < d, "{} bs{}: {o} !< {d}", c.dataset, c.batch_size);
            }
        }
    }
}
