//! Checkpoint/restore correctness: codec round-trips are bit-exact for
//! every checkpointed component (arbitrary IEEE bit patterns included),
//! damaged files are rejected with typed errors — never a panic or a
//! silently-wrong resume — and a session killed at any epoch boundary and
//! restored from its checkpoint is bit-identical to the uninterrupted run
//! for both the single-replica engine and the replicated engine at any R.

use neutronorch::cache::StoreSnapshot;
use neutronorch::core::checkpoint::{
    self, checkpoint_from_bytes, checkpoint_to_bytes, decode_adam, decode_params, decode_rows,
    decode_seeds, decode_store, encode_adam, encode_params, encode_rows, encode_seeds,
    encode_store, Checkpoint, CheckpointError, Reader, Writer, FORMAT_VERSION,
};
use neutronorch::core::engine::{EngineConfig, TrainingEngine};
use neutronorch::core::pipeline::PipelineConfig;
use neutronorch::core::replica::{ReplicatedConfig, ReplicatedEngine};
use neutronorch::core::trainer::{
    ConvergenceTrainer, PendingSnapshot, ReusePolicy, TrainerConfig, TrainerState,
};
use neutronorch::core::InlineRefresh;
use neutronorch::graph::{DatasetSpec, VertexId};
use neutronorch::nn::optim::AdamState;
use neutronorch::nn::LayerKind;
use neutronorch::tensor::Matrix;
use proptest::prelude::*;
use std::path::PathBuf;

// ---------------------------------------------------------------------------
// Helpers.
// ---------------------------------------------------------------------------

fn trainer() -> ConvergenceTrainer {
    let ds = DatasetSpec::tiny().build_full();
    let mut cfg = TrainerConfig::convergence_default(
        LayerKind::Gcn,
        ReusePolicy::HotnessAware {
            hot_ratio: 0.25,
            super_batch: 2,
        },
    );
    cfg.batch_size = 48;
    cfg.lr = 0.4;
    ConvergenceTrainer::new(ds, cfg)
}

fn engine(sampler_threads: usize, ck: Option<(&PathBuf, usize)>) -> TrainingEngine {
    TrainingEngine::new(EngineConfig {
        pipeline: PipelineConfig {
            sampler_threads,
            gather_threads: 1,
            channel_depth: 3,
            h2d_gibps: 0.0,
        },
        gpu_free_bytes: 64 << 20,
        checkpoint_every: ck.map(|(_, every)| every).unwrap_or(0),
        checkpoint_path: ck.map(|(path, _)| path.clone()),
        ..EngineConfig::default()
    })
}

fn replicated(replicas: usize, ck: Option<(&PathBuf, usize)>) -> ReplicatedEngine {
    ReplicatedEngine::new(ReplicatedConfig {
        replicas,
        checkpoint_every: ck.map(|(_, every)| every).unwrap_or(0),
        checkpoint_path: ck.map(|(path, _)| path.clone()),
        ..ReplicatedConfig::default()
    })
}

fn ck_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("nock-test-{}-{tag}.ck", std::process::id()))
}

/// Canonical byte image of a trainer's full mutable state — the equality
/// oracle for "bit-identical" (TrainerState holds f32s whose NaN payloads
/// `PartialEq` would mishandle; the codec preserves raw bits). The
/// adaptive-split knob is masked and the pending refresh's gpu/cpu shares
/// are merged: both are governed by the measured-occupancy split, which
/// varies run to run while being numerically inert — it only moves rows
/// between devices, and publication merges the shares identically.
fn state_bytes(t: &mut ConvergenceTrainer, replicas: usize) -> Vec<u8> {
    let digest = checkpoint::config_digest(t.config(), replicas);
    let mut state = t.capture_state(&mut InlineRefresh::default());
    state.refresh_cpu_fraction = 0.0;
    if let Some(p) = state.pending.as_mut() {
        assert_eq!(p.gpu_version, p.cpu_version, "shares of one refresh task");
        let mut rows: Vec<_> = p.gpu_rows.drain(..).chain(p.cpu_rows.drain(..)).collect();
        rows.sort_by_key(|&(v, _)| v);
        p.cpu_rows = rows;
    }
    checkpoint_to_bytes(
        digest,
        &Checkpoint {
            next_epoch: 0,
            replicas: replicas as u64,
            rng_seeds: Vec::new(),
            state,
        },
    )
}

// ---------------------------------------------------------------------------
// Proptest strategies: arbitrary IEEE bit patterns, not just "nice" floats.
// ---------------------------------------------------------------------------

fn any_f32_bits() -> impl Strategy<Value = f32> {
    any::<u32>().prop_map(f32::from_bits)
}

/// `n` values of `inner` (the vendored strategies only take ranges).
fn exactly<S: Strategy>(inner: S, n: usize) -> impl Strategy<Value = Vec<S::Value>> {
    proptest::collection::vec(inner, n..n + 1)
}

fn matrix(max_dim: usize) -> impl Strategy<Value = Matrix> {
    (1..=max_dim, 1..=max_dim).prop_flat_map(|(r, c)| {
        exactly(any_f32_bits(), r * c).prop_map(move |cells| Matrix::from_vec(r, c, cells))
    })
}

fn params() -> impl Strategy<Value = Vec<Matrix>> {
    proptest::collection::vec(matrix(4), 0..4)
}

fn adam_state() -> impl Strategy<Value = AdamState> {
    let pair = (1usize..4, 1usize..4).prop_flat_map(|(r, c)| {
        (
            exactly(any_f32_bits(), r * c),
            exactly(any_f32_bits(), r * c),
        )
            .prop_map(move |(m, v)| (Matrix::from_vec(r, c, m), Matrix::from_vec(r, c, v)))
    });
    (any::<u64>(), proptest::collection::vec(pair, 0..4))
        .prop_map(|(t, moments)| AdamState { t, moments })
}

fn refresh_rows(dim: usize) -> impl Strategy<Value = Vec<(VertexId, Vec<f32>)>> {
    proptest::collection::vec((any::<u32>(), exactly(any_f32_bits(), dim)), 0..5)
}

fn store_snapshot() -> impl Strategy<Value = StoreSnapshot> {
    (1usize..5).prop_flat_map(|dim| {
        (
            proptest::option::of(any::<u64>()),
            any::<u64>(),
            any::<u64>(),
            proptest::collection::vec((exactly(any_f32_bits(), dim), any::<u64>()), 0..6),
        )
            .prop_map(move |(bound, max_observed_gap, reads, raw)| StoreSnapshot {
                dim,
                bound,
                // Ascending distinct vertex ids, as the store emits them.
                rows: raw
                    .into_iter()
                    .enumerate()
                    .map(|(i, (row, version))| (3 * i as VertexId, row, version))
                    .collect(),
                max_observed_gap,
                reads,
            })
    })
}

fn trainer_state() -> impl Strategy<Value = TrainerState> {
    (
        params(),
        any::<u64>(),
        any::<u64>().prop_map(f64::from_bits),
        proptest::option::of(store_snapshot()),
        proptest::option::of((any::<u64>(), refresh_rows(3), any::<u64>(), refresh_rows(3))),
    )
        .prop_map(
            |(params, version, refresh_cpu_fraction, store, pending)| TrainerState {
                params,
                version,
                refresh_cpu_fraction,
                store,
                pending: pending.map(|(gpu_version, gpu_rows, cpu_version, cpu_rows)| {
                    PendingSnapshot {
                        gpu_version,
                        gpu_rows,
                        cpu_version,
                        cpu_rows,
                    }
                }),
            },
        )
}

fn bits_of(params: &[Matrix]) -> Vec<Vec<u32>> {
    params
        .iter()
        .map(|m| m.as_slice().iter().map(|x| x.to_bits()).collect())
        .collect()
}

// ---------------------------------------------------------------------------
// Component codec round-trips.
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// `decode(encode(params))` preserves shapes and raw IEEE bits —
    /// including NaN payloads, infinities and negative zero.
    #[test]
    fn params_round_trip_bit_exactly(ps in params()) {
        let mut w = Writer::new();
        encode_params(&mut w, &ps);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        let back = decode_params(&mut r).expect("decode");
        prop_assert_eq!(r.remaining(), 0);
        prop_assert_eq!(
            back.iter().map(Matrix::shape).collect::<Vec<_>>(),
            ps.iter().map(Matrix::shape).collect::<Vec<_>>()
        );
        prop_assert_eq!(bits_of(&back), bits_of(&ps));
    }

    /// Adam moments round-trip bit-exactly, step counter included.
    #[test]
    fn adam_state_round_trips_bit_exactly(state in adam_state()) {
        let mut w = Writer::new();
        encode_adam(&mut w, &state);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        let back = decode_adam(&mut r).expect("decode");
        prop_assert_eq!(r.remaining(), 0);
        prop_assert_eq!(back.t, state.t);
        let split = |s: &AdamState| {
            let (m, v): (Vec<_>, Vec<_>) = s.moments.iter().cloned().unzip();
            (bits_of(&m), bits_of(&v))
        };
        prop_assert_eq!(split(&back), split(&state));
    }

    /// Refresh rows (vertex id + embedding row) round-trip bit-exactly.
    #[test]
    fn refresh_rows_round_trip_bit_exactly(rows in refresh_rows(3)) {
        let mut w = Writer::new();
        encode_rows(&mut w, &rows);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        let back = decode_rows(&mut r).expect("decode");
        prop_assert_eq!(r.remaining(), 0);
        let key = |rs: &[(VertexId, Vec<f32>)]| -> Vec<(VertexId, Vec<u32>)> {
            rs.iter()
                .map(|(v, row)| (*v, row.iter().map(|x| x.to_bits()).collect()))
                .collect()
        };
        prop_assert_eq!(key(&back), key(&rows));
    }

    /// The embedding-store snapshot — rows, versions, staleness counters —
    /// round-trips bit-exactly.
    #[test]
    fn store_snapshot_round_trips_bit_exactly(snap in store_snapshot()) {
        let mut w = Writer::new();
        encode_store(&mut w, &snap);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        let back = decode_store(&mut r).expect("decode");
        prop_assert_eq!(r.remaining(), 0);
        prop_assert_eq!(back.dim, snap.dim);
        prop_assert_eq!(back.bound, snap.bound);
        prop_assert_eq!(back.max_observed_gap, snap.max_observed_gap);
        prop_assert_eq!(back.reads, snap.reads);
        let key = |s: &StoreSnapshot| -> Vec<(VertexId, Vec<u32>, u64)> {
            s.rows
                .iter()
                .map(|(v, row, ver)| (*v, row.iter().map(|x| x.to_bits()).collect(), *ver))
                .collect()
        };
        prop_assert_eq!(key(&back), key(&snap));
    }

    /// The rng-stream state (per-replica derived seeds) round-trips.
    #[test]
    fn rng_seeds_round_trip(seeds in proptest::collection::vec(any::<u64>(), 0..6)) {
        let mut w = Writer::new();
        encode_seeds(&mut w, &seeds);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        prop_assert_eq!(decode_seeds(&mut r).expect("decode"), seeds);
        prop_assert_eq!(r.remaining(), 0);
    }

    /// A whole checkpoint survives the on-disk image: header, payload and
    /// checksum agree, and every field — counters, seeds, full trainer
    /// state — comes back bit-identical (compared via re-serialization,
    /// which preserves raw float bits).
    #[test]
    fn whole_checkpoint_round_trips_bit_exactly(
        next_epoch in any::<u64>(),
        replicas in 1u64..8,
        seeds in proptest::collection::vec(any::<u64>(), 0..5),
        state in trainer_state(),
        digest in any::<u64>(),
    ) {
        let ck = Checkpoint { next_epoch, replicas, rng_seeds: seeds, state };
        let bytes = checkpoint_to_bytes(digest, &ck);
        let back = checkpoint_from_bytes(&bytes, digest).expect("parse");
        prop_assert_eq!(back.next_epoch, ck.next_epoch);
        prop_assert_eq!(back.replicas, ck.replicas);
        prop_assert_eq!(&back.rng_seeds, &ck.rng_seeds);
        prop_assert_eq!(checkpoint_to_bytes(digest, &back), bytes);
    }

    /// Every single-byte corruption of a checkpoint image is rejected with
    /// a typed error — the checksum (or a header check) catches it; no
    /// corrupted file ever parses.
    #[test]
    fn any_single_byte_flip_is_rejected(
        state in trainer_state(),
        flip_bit in 0u8..8,
        pos_seed in any::<u64>(),
    ) {
        let ck = Checkpoint { next_epoch: 2, replicas: 1, rng_seeds: vec![7], state };
        let digest = 0xfeed_face_u64;
        let mut bytes = checkpoint_to_bytes(digest, &ck);
        let pos = (pos_seed % bytes.len() as u64) as usize;
        bytes[pos] ^= 1 << flip_bit;
        prop_assert!(
            checkpoint_from_bytes(&bytes, digest).is_err(),
            "flip at byte {} must not parse", pos
        );
    }
}

// ---------------------------------------------------------------------------
// Damaged / mismatched files: typed rejection, never a panic.
// ---------------------------------------------------------------------------

/// Every strict prefix of a checkpoint image fails with a typed error
/// (`Truncated` or `Corrupt`), and a file truncated on disk is equally
/// rejected by `load`.
#[test]
fn every_truncation_is_rejected_with_a_typed_error() {
    let ck = Checkpoint {
        next_epoch: 1,
        replicas: 2,
        rng_seeds: vec![11, 12],
        state: TrainerState {
            params: vec![Matrix::from_vec(2, 2, vec![1.0, -0.0, f32::NAN, 3.5])],
            version: 9,
            refresh_cpu_fraction: 0.5,
            store: None,
            pending: None,
        },
    };
    let digest = 42;
    let bytes = checkpoint_to_bytes(digest, &ck);
    for cut in 0..bytes.len() {
        match checkpoint_from_bytes(&bytes[..cut], digest) {
            Err(CheckpointError::Truncated) | Err(CheckpointError::Corrupt(_)) => {}
            Err(CheckpointError::BadMagic) if cut < 4 => {}
            other => panic!("prefix of {cut} bytes: expected typed rejection, got {other:?}"),
        }
    }

    let path = ck_path("truncated");
    std::fs::write(&path, &bytes[..bytes.len() - 3]).unwrap();
    assert!(matches!(
        checkpoint::load(&path, digest),
        Err(CheckpointError::Truncated) | Err(CheckpointError::Corrupt(_))
    ));
    std::fs::remove_file(&path).ok();
}

/// Wrong magic, a future format version, and a digest from a different
/// config each map to their own typed error.
#[test]
fn header_mismatches_map_to_typed_errors() {
    let ck = Checkpoint {
        next_epoch: 0,
        replicas: 1,
        rng_seeds: vec![],
        state: TrainerState {
            params: vec![],
            version: 0,
            refresh_cpu_fraction: 0.0,
            store: None,
            pending: None,
        },
    };
    let digest = 7;
    let good = checkpoint_to_bytes(digest, &ck);

    let mut bad_magic = good.clone();
    bad_magic[0] = b'X';
    assert_eq!(
        checkpoint_from_bytes(&bad_magic, digest).err(),
        Some(CheckpointError::BadMagic)
    );

    // Version is a little-endian u32 at offset 4; bump it and re-seal the
    // checksum so the version check (not the checksum) fires.
    let mut newer = good.clone();
    newer[4..8].copy_from_slice(&(FORMAT_VERSION + 1).to_le_bytes());
    let body_end = newer.len() - 8;
    let reseal = checkpoint::fnv1a(&newer[..body_end]);
    newer[body_end..].copy_from_slice(&reseal.to_le_bytes());
    assert_eq!(
        checkpoint_from_bytes(&newer, digest).err(),
        Some(CheckpointError::UnsupportedVersion(FORMAT_VERSION + 1))
    );

    assert_eq!(
        checkpoint_from_bytes(&good, digest ^ 1).err(),
        Some(CheckpointError::ConfigMismatch {
            expected: digest ^ 1,
            found: digest,
        })
    );
}

/// The digest binds a checkpoint to the writing configuration: the same
/// trainer config hashes identically, and changing any
/// trajectory-shaping knob (or the replica count) changes the digest.
#[test]
fn config_digest_separates_configurations() {
    let base = trainer().config().clone();
    let d = checkpoint::config_digest(&base, 1);
    assert_eq!(checkpoint::config_digest(&base, 1), d);
    assert_ne!(checkpoint::config_digest(&base, 2), d);
    let mut other = base.clone();
    other.seed ^= 1;
    assert_ne!(checkpoint::config_digest(&other, 1), d);
    let mut other = base.clone();
    other.batch_size += 1;
    assert_ne!(checkpoint::config_digest(&other, 1), d);
    let mut other = base;
    other.lr += 0.1;
    assert_ne!(checkpoint::config_digest(&other, 1), d);
}

// ---------------------------------------------------------------------------
// Session-level kill/restore identity.
// ---------------------------------------------------------------------------

/// The tentpole acceptance test for the single-replica engine: run k
/// epochs with checkpointing on, "kill" the session (drop every in-memory
/// object), restore a fresh trainer from the file and finish the session.
/// Every remaining epoch's loss and the final trainer state must be
/// bit-identical to the uninterrupted run — at every tested thread count
/// and every kill point.
#[test]
fn killed_engine_session_restores_bit_identically() {
    const TOTAL: usize = 4;
    for sampler_threads in [1, 3] {
        let mut full = trainer();
        let uninterrupted = engine(sampler_threads, None).run_session(&mut full, 0, TOTAL);
        let losses: Vec<u32> = uninterrupted
            .epochs
            .iter()
            .map(|r| r.observation.train_loss.to_bits())
            .collect();
        let final_state = state_bytes(&mut full, 1);

        for kill_after in [1, 2, 3] {
            let path = ck_path(&format!("eng-t{sampler_threads}-k{kill_after}"));
            let mut first = trainer();
            let digest = checkpoint::config_digest(first.config(), 1);
            engine(sampler_threads, Some((&path, 1))).run_session(&mut first, 0, kill_after);
            drop(first); // the "kill": all in-memory state is gone

            let ck = checkpoint::load(&path, digest).expect("load checkpoint");
            assert_eq!(ck.next_epoch as usize, kill_after);
            assert_eq!(ck.replicas, 1);
            let mut resumed = trainer();
            resumed.restore_state(&ck.state).expect("restore");
            let rest = engine(sampler_threads, None).run_session(
                &mut resumed,
                kill_after,
                TOTAL - kill_after,
            );
            let resumed_losses: Vec<u32> = rest
                .epochs
                .iter()
                .map(|r| r.observation.train_loss.to_bits())
                .collect();
            assert_eq!(
                resumed_losses,
                losses[kill_after..],
                "threads={sampler_threads} kill_after={kill_after}: resumed losses diverge"
            );
            assert_eq!(
                state_bytes(&mut resumed, 1),
                final_state,
                "threads={sampler_threads} kill_after={kill_after}: final state diverges"
            );
            std::fs::remove_file(&path).ok();
        }
    }
}

/// Same kill/restore identity for the replicated engine at R ∈ {1, 2, 4}:
/// the checkpoint also carries the per-replica rng seeds, and the restored
/// session must reproduce the uninterrupted run's losses and final state
/// bit-for-bit at every width.
#[test]
fn killed_replicated_session_restores_bit_identically_at_any_width() {
    const TOTAL: usize = 4;
    for replicas in [1usize, 2, 4] {
        let mut full = trainer();
        let uninterrupted = replicated(replicas, None).run_session(&mut full, 0, TOTAL);
        let losses: Vec<u32> = uninterrupted
            .epochs
            .iter()
            .map(|r| r.observation.train_loss.to_bits())
            .collect();
        let final_state = state_bytes(&mut full, replicas);

        for kill_after in [1, 2] {
            let path = ck_path(&format!("rep-r{replicas}-k{kill_after}"));
            let mut first = trainer();
            let digest = checkpoint::config_digest(first.config(), replicas);
            let seed = first.config().seed;
            replicated(replicas, Some((&path, 1))).run_session(&mut first, 0, kill_after);
            drop(first);

            let ck = checkpoint::load(&path, digest).expect("load checkpoint");
            assert_eq!(ck.next_epoch as usize, kill_after);
            assert_eq!(ck.replicas as usize, replicas);
            assert_eq!(ck.rng_seeds.len(), replicas);
            // Replica 0's salt vanishes: its stream seed is the config seed.
            assert_eq!(ck.rng_seeds[0], seed);

            let mut resumed = trainer();
            resumed.restore_state(&ck.state).expect("restore");
            let rest = replicated(replicas, None).run_session(
                &mut resumed,
                kill_after,
                TOTAL - kill_after,
            );
            let resumed_losses: Vec<u32> = rest
                .epochs
                .iter()
                .map(|r| r.observation.train_loss.to_bits())
                .collect();
            assert_eq!(
                resumed_losses,
                losses[kill_after..],
                "R={replicas} kill_after={kill_after}: resumed losses diverge"
            );
            assert_eq!(
                state_bytes(&mut resumed, replicas),
                final_state,
                "R={replicas} kill_after={kill_after}: final state diverges"
            );
            std::fs::remove_file(&path).ok();
        }
    }
}

/// A cross-width restore is refused: a checkpoint written at R=2 does not
/// load under the R=1 digest, so a session can never silently resume at
/// the wrong parallelism.
#[test]
fn checkpoint_is_bound_to_the_replica_count() {
    let path = ck_path("width-bound");
    let mut t = trainer();
    let digest_r2 = checkpoint::config_digest(t.config(), 2);
    let digest_r1 = checkpoint::config_digest(t.config(), 1);
    replicated(2, Some((&path, 1))).run_session(&mut t, 0, 1);
    assert!(checkpoint::load(&path, digest_r2).is_ok());
    assert!(matches!(
        checkpoint::load(&path, digest_r1),
        Err(CheckpointError::ConfigMismatch { .. })
    ));
    std::fs::remove_file(&path).ok();
}

/// Checkpoint cadence keys on the absolute epoch: with `checkpoint_every
/// = 2` over 4 epochs, exactly epochs 1 and 3 record a write, the file's
/// resume point is the last boundary, and the writes are visible in the
/// per-epoch telemetry (`checkpoint_bytes` / `checkpoint_seconds`).
#[test]
fn checkpoint_cadence_and_telemetry_follow_absolute_epochs() {
    let path = ck_path("cadence");
    let mut t = trainer();
    let digest = checkpoint::config_digest(t.config(), 1);
    let session = engine(2, Some((&path, 2))).run_session(&mut t, 0, 4);
    let wrote: Vec<bool> = session
        .epochs
        .iter()
        .map(|r| r.checkpoint_bytes > 0)
        .collect();
    assert_eq!(wrote, [false, true, false, true]);
    for run in &session.epochs {
        assert_eq!(
            run.checkpoint_bytes > 0,
            run.checkpoint_seconds > 0.0,
            "epoch {}: bytes and seconds must agree",
            run.epoch
        );
    }
    let ck = checkpoint::load(&path, digest).expect("load");
    assert_eq!(ck.next_epoch, 4);
    std::fs::remove_file(&path).ok();
}
