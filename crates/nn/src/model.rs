//! Multi-layer GNN models over block stacks.

use crate::layers::{Layer, LayerCtx, LayerKind};
use crate::param::Param;
use neutron_sample::Block;
use neutron_tensor::Matrix;

/// Model architecture description.
#[derive(Clone, Debug)]
pub struct ModelConfig {
    /// GNN architecture (all layers share it, like the paper's models).
    pub kind: LayerKind,
    /// Input feature dimension.
    pub feature_dim: usize,
    /// Hidden embedding dimension (Table 4's "hid. dim").
    pub hidden_dim: usize,
    /// Output classes.
    pub num_classes: usize,
    /// Number of layers (paper default 3, §5.1).
    pub layers: usize,
    /// Weight init seed.
    pub seed: u64,
}

impl ModelConfig {
    /// The paper's default 3-layer configuration for a dataset shape.
    pub fn paper_default(
        kind: LayerKind,
        feature_dim: usize,
        hidden_dim: usize,
        num_classes: usize,
    ) -> Self {
        Self {
            kind,
            feature_dim,
            hidden_dim,
            num_classes,
            layers: 3,
            seed: 0x5eed,
        }
    }

    /// Per-layer `(in_dim, out_dim)` pairs, bottom first.
    pub fn layer_dims(&self) -> Vec<(usize, usize)> {
        assert!(self.layers >= 1);
        (0..self.layers)
            .map(|l| {
                let in_dim = if l == 0 {
                    self.feature_dim
                } else {
                    self.hidden_dim
                };
                let out_dim = if l + 1 == self.layers {
                    self.num_classes
                } else {
                    self.hidden_dim
                };
                (in_dim, out_dim)
            })
            .collect()
    }
}

/// A stack of GNN layers; `layers[0]` consumes raw features.
pub struct GnnModel {
    layers: Vec<Layer>,
    config: ModelConfig,
}

/// Saved state of one forward pass, consumed by [`GnnModel::backward`].
pub struct ForwardPass {
    /// Output of each layer, bottom first; `outputs.last()` are the logits.
    pub outputs: Vec<Matrix>,
    /// Per-layer intermediates.
    pub ctxs: Vec<LayerCtx>,
}

impl ForwardPass {
    /// Final-layer logits (one row per seed vertex).
    pub fn logits(&self) -> &Matrix {
        self.outputs.last().expect("model has at least one layer")
    }
}

impl GnnModel {
    /// Builds a model from a config.
    pub fn new(config: ModelConfig) -> Self {
        let dims = config.layer_dims();
        let layers = dims
            .iter()
            .enumerate()
            .map(|(l, &(i, o))| {
                Layer::new(
                    config.kind,
                    i,
                    o,
                    l + 1 == dims.len(),
                    config.seed ^ (l as u64) << 8,
                )
            })
            .collect();
        Self { layers, config }
    }

    /// The model's configuration.
    pub fn config(&self) -> &ModelConfig {
        &self.config
    }

    /// The layer stack.
    pub fn layers(&self) -> &[Layer] {
        &self.layers
    }

    /// Mutable access to one layer (the NeutronOrch trainer drives the
    /// bottom layer separately on the "CPU").
    pub fn layer_mut(&mut self, l: usize) -> &mut Layer {
        &mut self.layers[l]
    }

    /// Full forward over a bottom-first block stack. `features` has one row
    /// per `blocks[0].src()` vertex.
    pub fn forward(&self, blocks: &[Block], features: &Matrix) -> ForwardPass {
        assert_eq!(blocks.len(), self.layers.len(), "one block per layer");
        let mut outputs = Vec::with_capacity(self.layers.len());
        let mut ctxs = Vec::with_capacity(self.layers.len());
        let mut input = features.clone();
        for (layer, block) in self.layers.iter().zip(blocks) {
            let (out, ctx) = layer.forward(block, &input);
            input = out.clone();
            outputs.push(out);
            ctxs.push(ctx);
        }
        ForwardPass { outputs, ctxs }
    }

    /// Forward where the bottom layer's output rows listed in
    /// `override_rows` are replaced by externally supplied embeddings —
    /// NeutronOrch's historical-embedding splice (§4.1.2). Gradient flow
    /// through those rows is cut by [`GnnModel::backward_with_mask`].
    pub fn forward_with_bottom_override(
        &self,
        blocks: &[Block],
        features: &Matrix,
        override_rows: &[(usize, Vec<f32>)],
    ) -> ForwardPass {
        assert!(!self.layers.is_empty());
        let (mut out0, ctx0) = self.layers[0].forward(&blocks[0], features);
        for (row, values) in override_rows {
            out0.copy_row_from(*row, values);
        }
        let mut outputs = vec![out0.clone()];
        let mut ctxs = vec![ctx0];
        let mut input = out0;
        #[allow(clippy::needless_range_loop)] // layers and blocks advance together
        for l in 1..self.layers.len() {
            let (out, ctx) = self.layers[l].forward(&blocks[l], &input);
            input = out.clone();
            outputs.push(out);
            ctxs.push(ctx);
        }
        ForwardPass { outputs, ctxs }
    }

    /// Full backward from `d_logits`; accumulates parameter gradients and
    /// returns `∂L/∂features`.
    pub fn backward(&mut self, blocks: &[Block], pass: ForwardPass, d_logits: &Matrix) -> Matrix {
        self.backward_with_mask(blocks, pass, d_logits, None)
    }

    /// Backward that optionally zeroes the gradient flowing into the bottom
    /// layer's output rows listed in `frozen_bottom_rows` (historical
    /// embeddings are constants; "using historical embeddings avoids … the
    /// associated backward pass", §4.1.2).
    pub fn backward_with_mask(
        &mut self,
        blocks: &[Block],
        pass: ForwardPass,
        d_logits: &Matrix,
        frozen_bottom_rows: Option<&[usize]>,
    ) -> Matrix {
        let mut grad = d_logits.clone();
        let mut ctxs = pass.ctxs;
        for l in (1..self.layers.len()).rev() {
            let ctx = ctxs.pop().expect("ctx per layer");
            grad = self.layers[l].backward(&blocks[l], ctx, &grad);
        }
        if let Some(frozen) = frozen_bottom_rows {
            for &r in frozen {
                grad.row_mut(r).fill(0.0);
            }
        }
        let ctx0 = ctxs.pop().expect("bottom ctx");
        self.layers[0].backward(&blocks[0], ctx0, &grad)
    }

    /// Zeroes all parameter gradients.
    pub fn zero_grad(&mut self) {
        for layer in &mut self.layers {
            for p in layer.params_mut() {
                p.zero_grad();
            }
        }
    }

    /// All parameters, bottom layer first.
    pub fn params(&self) -> Vec<&Param> {
        self.layers.iter().flat_map(|l| l.params()).collect()
    }

    /// All parameters mutably, bottom layer first (optimizer entry point).
    pub fn params_mut(&mut self) -> Vec<&mut Param> {
        self.layers
            .iter_mut()
            .flat_map(|l| l.params_mut())
            .collect()
    }

    /// Total trainable scalars.
    pub fn num_parameters(&self) -> usize {
        self.params().iter().map(|p| p.len()).sum()
    }

    /// Largest single-update weight change measured in `‖·‖∞` — the paper's
    /// `max‖ΔW‖` staleness monitor (§4.3).
    pub fn max_weight_delta(&self, previous: &[Matrix]) -> f32 {
        let params = self.params();
        assert_eq!(params.len(), previous.len());
        params
            .iter()
            .zip(previous)
            .map(|(p, q)| {
                p.value
                    .as_slice()
                    .iter()
                    .zip(q.as_slice())
                    .fold(0.0f32, |m, (a, b)| m.max((a - b).abs()))
            })
            .fold(0.0, f32::max)
    }

    /// Snapshot of all parameter values (for `max_weight_delta`).
    pub fn snapshot(&self) -> Vec<Matrix> {
        self.params().iter().map(|p| p.value.clone()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use neutron_graph::generate::erdos_renyi;
    use neutron_sample::{Fanout, NeighborSampler};
    use neutron_tensor::init;

    fn sampled_setup(kind: LayerKind) -> (Vec<Block>, Matrix, GnnModel) {
        let g = erdos_renyi(120, 1500, 1);
        let sampler = NeighborSampler::new(Fanout::new(vec![4, 3]));
        let blocks = sampler.sample_batch(&g, &[0, 1, 2, 3, 4], 2);
        let features = init::uniform(blocks[0].num_src(), 6, -1.0, 1.0, 3);
        let model = GnnModel::new(ModelConfig {
            kind,
            feature_dim: 6,
            hidden_dim: 5,
            num_classes: 3,
            layers: 2,
            seed: 4,
        });
        (blocks, features, model)
    }

    #[test]
    fn layer_dims_chain_correctly() {
        let cfg = ModelConfig::paper_default(LayerKind::Gcn, 602, 256, 41);
        assert_eq!(cfg.layer_dims(), vec![(602, 256), (256, 256), (256, 41)]);
    }

    #[test]
    fn single_layer_model_maps_features_to_classes() {
        let cfg = ModelConfig {
            kind: LayerKind::Gcn,
            feature_dim: 10,
            hidden_dim: 99,
            num_classes: 4,
            layers: 1,
            seed: 0,
        };
        assert_eq!(cfg.layer_dims(), vec![(10, 4)]);
    }

    #[test]
    fn forward_produces_seed_logits_for_all_kinds() {
        for kind in LayerKind::ALL {
            let (blocks, features, model) = sampled_setup(kind);
            let pass = model.forward(&blocks, &features);
            assert_eq!(pass.logits().shape(), (5, 3), "{kind:?}");
            assert!(pass.logits().all_finite());
        }
    }

    #[test]
    fn backward_fills_all_grads() {
        for kind in LayerKind::ALL {
            let (blocks, features, mut model) = sampled_setup(kind);
            let pass = model.forward(&blocks, &features);
            let d = Matrix::full(5, 3, 0.1);
            model.zero_grad();
            let d_feat = model.backward(&blocks, pass, &d);
            assert_eq!(d_feat.shape(), features.shape());
            for p in model.params() {
                assert!(p.grad.all_finite());
            }
        }
    }

    #[test]
    fn bottom_override_replaces_rows_and_mask_cuts_gradients() {
        let (blocks, features, mut model) = sampled_setup(LayerKind::Gcn);
        let hidden = model.layers()[0].out_dim();
        let stale = vec![0.5f32; hidden];
        let pass = model.forward_with_bottom_override(&blocks, &features, &[(0, stale.clone())]);
        assert_eq!(pass.outputs[0].row(0), &stale[..]);
        // With every bottom row frozen, the bottom weight grad from the
        // aggregation path must be zero.
        let pass2 = model.forward_with_bottom_override(&blocks, &features, &[]);
        model.zero_grad();
        let all_rows: Vec<usize> = (0..pass2.outputs[0].rows()).collect();
        let d = Matrix::full(5, 3, 0.3);
        let d_feat = model.backward_with_mask(&blocks, pass2, &d, Some(&all_rows));
        assert_eq!(
            d_feat.frobenius_norm(),
            0.0,
            "no gradient may reach features"
        );
        let bottom_grad_norm = model.layers()[0].params()[0].grad.frobenius_norm();
        assert_eq!(bottom_grad_norm, 0.0, "bottom layer grads must be cut");
    }

    #[test]
    fn snapshot_delta_tracks_weight_updates() {
        let (_, _, mut model) = sampled_setup(LayerKind::Gcn);
        let snap = model.snapshot();
        assert_eq!(model.max_weight_delta(&snap), 0.0);
        model.params_mut()[0].value.set(0, 0, 100.0);
        assert!(model.max_weight_delta(&snap) > 1.0);
    }

    #[test]
    fn num_parameters_counts_scalars() {
        let (_, _, model) = sampled_setup(LayerKind::Gcn);
        // GCN: (6*5 + 5) + (5*3 + 3) = 35 + 18 = 53.
        assert_eq!(model.num_parameters(), 53);
    }
}
