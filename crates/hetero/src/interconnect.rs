//! Simulated inter-replica interconnect cost model.
//!
//! The PCIe model in [`crate::device`] prices the *host→device* staging
//! path of one replica. Data-parallel replicas add a second, distinct
//! fabric: the link replicas use to pull remote (non-owned) features and
//! to all-reduce gradients at batch boundaries. DistDGL-style systems (see
//! PAPERS.md) show this interconnect — NVLink inside a box, Ethernet/IB
//! across boxes — has its own bandwidth/latency regime and its own traffic
//! pattern (ring all-reduce, peer feature pulls), so it gets its own model
//! here rather than reusing the H2D numbers.
//!
//! Everything is closed-form and deterministic: the engine *measures* byte
//! counts (remote feature rows, gradient bytes per step) and this model
//! converts them to simulated seconds for the bench series.

/// A symmetric replica-to-replica link.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct InterconnectSpec {
    /// Sustained per-direction bandwidth in bytes/second.
    pub bandwidth: f64,
    /// Per-message latency in seconds.
    pub latency: f64,
}

impl InterconnectSpec {
    /// NVLink-class intra-box fabric (matches the `LinkSpec` NVLink
    /// constants in [`crate::device`]).
    pub fn nvlink_like() -> Self {
        Self {
            bandwidth: 150.0e9,
            latency: 3.0e-6,
        }
    }

    /// 25 GbE-class inter-box fabric — the DistDGL regime where partition
    /// locality starts to dominate.
    pub fn ethernet_like() -> Self {
        Self {
            bandwidth: 3.0e9,
            latency: 50.0e-6,
        }
    }

    /// Seconds to move `bytes` over the link as one message.
    pub fn transfer_seconds(&self, bytes: u64) -> f64 {
        if bytes == 0 {
            0.0
        } else {
            self.latency + bytes as f64 / self.bandwidth
        }
    }

    /// Simulated seconds for one ring all-reduce of `model_bytes` across
    /// `replicas`: `2(R-1)` message steps, each carrying a `1/R` shard.
    pub fn allreduce_seconds(&self, model_bytes: u64, replicas: usize) -> f64 {
        if replicas <= 1 || model_bytes == 0 {
            return 0.0;
        }
        let steps = 2 * (replicas as u64 - 1);
        let shard = model_bytes as f64 / replicas as f64;
        steps as f64 * (self.latency + shard / self.bandwidth)
    }
}

/// Total wire bytes one replica sends for a ring all-reduce of
/// `model_bytes` gradients across `replicas`: the classic
/// `2 (R-1) / R × model_bytes` per replica, reported here as the
/// per-replica payload rounded to whole bytes times the step count. Zero
/// at R=1 (no exchange happens).
pub fn ring_allreduce_bytes(model_bytes: u64, replicas: usize) -> u64 {
    if replicas <= 1 {
        return 0;
    }
    let r = replicas as u64;
    // 2(R-1) steps, each sending a 1/R shard; keep the arithmetic in
    // integers (scaled before dividing) so the series is exact.
    2 * (r - 1) * model_bytes / r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_replica_exchanges_nothing() {
        assert_eq!(ring_allreduce_bytes(1 << 20, 1), 0);
        let link = InterconnectSpec::nvlink_like();
        assert_eq!(link.allreduce_seconds(1 << 20, 1), 0.0);
    }

    #[test]
    fn ring_bytes_follow_the_2_r_minus_1_over_r_law() {
        let mb = 1_000_000u64;
        assert_eq!(ring_allreduce_bytes(mb, 2), mb); // 2·1/2 = 1×
        assert_eq!(ring_allreduce_bytes(mb, 4), mb * 3 / 2); // 2·3/4 = 1.5×
        assert!(ring_allreduce_bytes(mb, 8) > ring_allreduce_bytes(mb, 4));
    }

    #[test]
    fn slower_links_cost_more_and_latency_floors_small_messages() {
        let nv = InterconnectSpec::nvlink_like();
        let eth = InterconnectSpec::ethernet_like();
        assert!(eth.transfer_seconds(1 << 20) > nv.transfer_seconds(1 << 20));
        assert!(eth.allreduce_seconds(1 << 20, 4) > nv.allreduce_seconds(1 << 20, 4));
        assert!(nv.transfer_seconds(1) >= nv.latency);
        assert_eq!(nv.transfer_seconds(0), 0.0);
    }
}
